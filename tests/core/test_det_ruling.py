"""Tests for the deterministic sparsify-and-gather ruling-set engine."""

import pytest

from repro.core.det_ruling import _sampling_rate, det_ruling_set
from repro.core.verify import check_ruling_set, verify_ruling_set
from repro.errors import AlgorithmError
from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator


def run_det_ruling(graph, beta=2, regime="sublinear"):
    if regime == "sublinear":
        cfg = MPCConfig.sublinear(
            graph.num_vertices, graph.num_edges,
            max_degree=graph.max_degree(),
        )
    else:
        cfg = MPCConfig.near_linear(
            graph.num_vertices, graph.num_edges,
            max_degree=graph.max_degree(),
        )
    sim = Simulator(cfg)
    dg = DistributedGraph.load(sim, graph)
    counters = det_ruling_set(dg, beta=beta, in_set_key="rs")
    return dg.collect_marked("rs"), counters, sim


class TestSamplingRate:
    def test_small_degree_uses_half(self):
        assert _sampling_rate(10) == (1, 2)

    def test_large_degree_scales(self):
        num, den = _sampling_rate(400)
        assert (num, den) == (4, 20)

    def test_zero_degree(self):
        assert _sampling_rate(0) == (1, 2)


class TestDetRuling:
    @pytest.mark.parametrize("make", [
        lambda: gen.path_graph(30),
        lambda: gen.complete_graph(12),
        lambda: gen.star_graph(40),
        lambda: gen.gnp_random_graph(100, 1, 8, seed=5),
        lambda: gen.random_tree(80, seed=3),
        lambda: gen.chung_lu_power_law(90, seed=2),
        lambda: gen.grid_graph(7, 7),
    ])
    def test_produces_verified_two_ruling_set(self, make):
        graph = make()
        members, counters, _ = run_det_ruling(graph, beta=2)
        verify_ruling_set(graph, members, alpha=2, beta=2)
        assert counters["iterations"] >= 1

    @pytest.mark.parametrize("beta", [2, 3, 4])
    def test_beta_variants(self, beta):
        graph = gen.gnp_random_graph(90, 1, 8, seed=beta)
        members, _, _ = run_det_ruling(graph, beta=beta)
        verify_ruling_set(graph, members, alpha=2, beta=beta)

    def test_rejects_beta_one(self, small_er):
        cfg = MPCConfig.near_linear(
            small_er.num_vertices, small_er.num_edges,
            max_degree=small_er.max_degree(),
        )
        sim = Simulator(cfg)
        dg = DistributedGraph.load(sim, small_er)
        with pytest.raises(AlgorithmError):
            det_ruling_set(dg, beta=1)

    def test_deterministic_across_runs(self, medium_er):
        a, _, _ = run_det_ruling(medium_er)
        b, _, _ = run_det_ruling(medium_er)
        assert a == b

    def test_consumes_all_vertices(self, small_er):
        _, _, sim = run_det_ruling(small_er)
        for machine in sim.machines:
            assert machine.store["g_adj"] == {}

    def test_small_graph_gather_finish(self):
        # A graph that fits one machine should finish in one gather.
        graph = gen.cycle_graph(10)
        members, counters, _ = run_det_ruling(graph, regime="near-linear")
        assert counters["gather_finishes"] == 1
        verify_ruling_set(graph, members, alpha=2, beta=2)

    def test_sparsify_actually_used_on_big_dense_graph(self):
        graph = gen.gnp_random_graph(200, 1, 8, seed=9)
        members, counters, _ = run_det_ruling(graph)
        assert counters["levels_built"] >= 1
        verify_ruling_set(graph, members, alpha=2, beta=2)

    def test_empty_and_trivial(self):
        for graph in (Graph.empty(0), Graph.empty(3)):
            cfg = MPCConfig.near_linear(max(1, graph.num_vertices), 1)
            sim = Simulator(cfg)
            dg = DistributedGraph.load(sim, graph)
            det_ruling_set(dg, beta=2, in_set_key="rs")
            members = dg.collect_marked("rs")
            if graph.num_vertices:
                assert members == list(graph.vertices())

    def test_measured_beta_within_claim(self):
        graph = gen.gnp_random_graph(120, 1, 10, seed=6)
        members, _, _ = run_det_ruling(graph, beta=3)
        assert check_ruling_set(graph, members).measured_beta <= 3
