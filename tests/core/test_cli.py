"""Tests for the repro-mpc command-line interface."""

import json

import pytest

from repro.cli import build_graph, main
from repro.errors import ReproError


class TestBuildGraph:
    @pytest.mark.parametrize("family,n,param", [
        ("gnp", 60, 8),
        ("powerlaw", 60, 0),
        ("tree", 60, 0),
        ("grid", 60, 6),
        ("regular", 60, 6),
        ("star", 20, 0),
        ("cycle", 12, 0),
    ])
    def test_families(self, family, n, param):
        graph = build_graph(family, n, param, seed=1)
        assert graph.num_vertices >= 1

    def test_unknown_family(self):
        with pytest.raises(ReproError):
            build_graph("hypercube", 8, 0, 0)


class TestCommands:
    def test_generate_and_solve_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        assert main([
            "generate", "--family", "gnp", "--n", "80", "--param", "8",
            "--out", str(out),
        ]) == 0
        assert out.exists()
        assert main([
            "solve", "--input", str(out),
            "--algorithm", "det-ruling", "--regime", "near-linear",
        ]) == 0
        captured = capsys.readouterr().out
        assert "rounds:" in captured
        assert "(2, 2)-ruling set" in captured

    def test_solve_json(self, capsys):
        assert main([
            "solve", "--family", "tree", "--n", "50",
            "--algorithm", "greedy-mis", "--json",
        ]) == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines() if line
        ]
        payload = json.loads(lines[-1])
        assert payload["algorithm"] == "greedy-mis"
        assert payload["size"] >= 1
        assert isinstance(payload["members"], list)

    def test_verify_valid_and_invalid(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        main([
            "generate", "--family", "cycle", "--n", "6", "--out", str(out),
        ])
        assert main([
            "verify", "--input", str(out), "--members", "0,2,4",
            "--beta", "1",
        ]) == 0
        assert "VALID" in capsys.readouterr().out
        assert main([
            "verify", "--input", str(out), "--members", "0,1",
            "--beta", "2",
        ]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main([
            "sweep", "--family", "gnp", "--n", "60,80", "--param", "8",
            "--algorithms", "det-luby", "--regime", "near-linear",
        ]) == 0
        out = capsys.readouterr().out
        assert "gnp-60" in out and "gnp-80" in out

    def test_error_path_exit_code(self, capsys):
        assert main([
            "solve", "--family", "gnp", "--n", "40",
            "--algorithm", "nonsense",
        ]) == 2
        assert "error:" in capsys.readouterr().err


class TestTraceCommand:
    def test_trace_writes_jsonl_and_chrome(self, tmp_path, capsys):
        jsonl = tmp_path / "run.trace.jsonl"
        chrome = tmp_path / "run.trace.json"
        assert main([
            "trace", "--family", "gnp", "--n", "60", "--param", "6",
            "--algorithm", "det-luby", "--regime", "near-linear",
            "--out", str(jsonl), "--chrome-out", str(chrome),
        ]) == 0
        out = capsys.readouterr().out
        assert "min headroom:" in out
        assert "budget warnings" in out
        records = [
            json.loads(line) for line in jsonl.read_text().splitlines()
        ]
        assert records[0]["type"] == "meta"
        assert records[-1]["type"] == "summary"
        payload = json.loads(chrome.read_text())
        assert payload["traceEvents"]

    def test_trace_rejects_sequential_algorithm(self, tmp_path, capsys):
        assert main([
            "trace", "--family", "tree", "--n", "30",
            "--algorithm", "greedy-mis", "--out", str(tmp_path / "t.jsonl"),
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_solve_trace_out(self, tmp_path, capsys):
        jsonl = tmp_path / "solve.trace.jsonl"
        assert main([
            "solve", "--family", "gnp", "--n", "60", "--param", "6",
            "--algorithm", "det-ruling", "--regime", "near-linear",
            "--trace-out", str(jsonl),
        ]) == 0
        assert "trace:" in capsys.readouterr().out
        records = [
            json.loads(line) for line in jsonl.read_text().splitlines()
        ]
        summary = records[-1]
        assert summary["type"] == "summary"
        assert summary["total_words"] == sum(
            r["words"] for r in records if r["type"] == "round"
        )
