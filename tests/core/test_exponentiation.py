"""Tests for ball growing / graph exponentiation against BFS ground truth."""

import pytest

from repro.core.exponentiation import grow_balls, power_graph_adjacency
from repro.errors import AlgorithmError, MPCViolationError
from repro.graph import generators as gen
from repro.graph.ops import power_graph
from repro.graph.properties import multi_source_distances
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator


def load(graph, s=16384, k=4):
    sim = Simulator(MPCConfig(num_machines=k, memory_words=s))
    return DistributedGraph.load(sim, graph), sim


def collect_balls(sim):
    balls = {}
    for machine in sim.machines:
        balls.update(machine.store["exp_balls"])
    return balls


class TestGrowBalls:
    @pytest.mark.parametrize("radius", [1, 2, 3, 4, 5])
    def test_balls_match_bfs(self, radius):
        graph = gen.random_tree(40, seed=radius)
        dg, sim = load(graph)
        grow_balls(dg, radius)
        balls = collect_balls(sim)
        for v in graph.vertices():
            dist = multi_source_distances(graph, [v])
            expected = tuple(
                sorted(u for u in graph.vertices() if 0 <= dist[u] <= radius)
            )
            assert balls[v] == expected

    def test_doubling_round_count(self):
        graph = gen.path_graph(40)
        dg, sim = load(graph)
        grow_balls(dg, 8)
        # 3 doublings x 2 rounds, not 8 single expansions.
        assert sim.metrics.rounds <= 7

    def test_rejects_radius_zero(self, path4):
        dg, _ = load(path4)
        with pytest.raises(AlgorithmError):
            grow_balls(dg, 0)

    def test_memory_fault_on_explosive_growth(self):
        # Dense graph + big radius: balls are Θ(n) per vertex and must
        # fault in a small-memory configuration rather than succeed.
        graph = gen.gnp_random_graph(60, 1, 4, seed=1)
        sim = Simulator(MPCConfig(num_machines=8, memory_words=700))
        dg = DistributedGraph.load(sim, graph)
        with pytest.raises(MPCViolationError):
            grow_balls(dg, 4)


class TestPowerGraphAdjacency:
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_matches_sequential_power_graph(self, radius):
        graph = gen.cycle_graph(15)
        dg, sim = load(graph)
        power_graph_adjacency(dg, radius, "gk_adj")
        expected = power_graph(graph, radius)
        for machine in sim.machines:
            for v, nbrs in machine.store["gk_adj"].items():
                assert list(nbrs) == list(expected.neighbors(v))

    def test_non_power_of_two_radius_exact(self):
        graph = gen.path_graph(20)
        dg, sim = load(graph)
        power_graph_adjacency(dg, 3, "g3_adj")
        expected = power_graph(graph, 3)
        collected = {}
        for machine in sim.machines:
            collected.update(machine.store["g3_adj"])
        for v in graph.vertices():
            assert list(collected[v]) == list(expected.neighbors(v))
