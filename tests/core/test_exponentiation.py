"""Tests for ball growing / graph exponentiation against BFS ground truth."""

import pytest

from repro.core.exponentiation import grow_balls, power_graph_adjacency
from repro.errors import AlgorithmError, MPCViolationError
from repro.graph import generators as gen
from repro.graph.ops import power_graph
from repro.graph.properties import multi_source_distances
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator


def load(graph, s=16384, k=4):
    sim = Simulator(MPCConfig(num_machines=k, memory_words=s))
    return DistributedGraph.load(sim, graph), sim


def collect_balls(sim):
    balls = {}
    for machine in sim.machines:
        balls.update(machine.store["exp_balls"])
    return balls


class TestGrowBalls:
    @pytest.mark.parametrize("radius", [1, 2, 3, 4, 5])
    def test_balls_match_bfs(self, radius):
        graph = gen.random_tree(40, seed=radius)
        dg, sim = load(graph)
        grow_balls(dg, radius)
        balls = collect_balls(sim)
        for v in graph.vertices():
            dist = multi_source_distances(graph, [v])
            expected = tuple(
                sorted(u for u in graph.vertices() if 0 <= dist[u] <= radius)
            )
            assert balls[v] == expected

    def test_doubling_round_count(self):
        graph = gen.path_graph(40)
        dg, sim = load(graph)
        grow_balls(dg, 8)
        # 3 doublings x 2 rounds, not 8 single expansions.
        assert sim.metrics.rounds <= 7

    def test_rejects_radius_zero(self, path4):
        dg, _ = load(path4)
        with pytest.raises(AlgorithmError):
            grow_balls(dg, 0)

    def test_memory_fault_on_explosive_growth(self):
        # Dense graph + big radius: balls are Θ(n) per vertex and must
        # fault in a small-memory configuration rather than succeed.
        graph = gen.gnp_random_graph(60, 1, 4, seed=1)
        sim = Simulator(MPCConfig(num_machines=8, memory_words=700))
        dg = DistributedGraph.load(sim, graph)
        with pytest.raises(MPCViolationError):
            grow_balls(dg, 4)


class TestPowerGraphAdjacency:
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_matches_sequential_power_graph(self, radius):
        graph = gen.cycle_graph(15)
        dg, sim = load(graph)
        power_graph_adjacency(dg, radius, "gk_adj")
        expected = power_graph(graph, radius)
        for machine in sim.machines:
            for v, nbrs in machine.store["gk_adj"].items():
                assert list(nbrs) == list(expected.neighbors(v))

    def test_non_power_of_two_radius_exact(self):
        graph = gen.path_graph(20)
        dg, sim = load(graph)
        power_graph_adjacency(dg, 3, "g3_adj")
        expected = power_graph(graph, 3)
        collected = {}
        for machine in sim.machines:
            collected.update(machine.store["g3_adj"])
        for v in graph.vertices():
            assert list(collected[v]) == list(expected.neighbors(v))


class TestBatchedGrowth:
    """Windowed α>2 growth: identical balls, smaller per-round traffic."""

    @pytest.mark.parametrize("radius", [2, 3, 4, 5])
    @pytest.mark.parametrize("batch", [1, 7, 16, 1000])
    def test_balls_bit_identical_to_unbatched(self, radius, batch):
        graph = gen.gnp_random_graph(48, 4, 48, seed=radius)
        dg, sim = load(graph)
        grow_balls(dg, radius)
        expected = collect_balls(sim)
        sim.shutdown()

        dg, sim = load(graph)
        grow_balls(dg, radius, batch_vertices=batch)
        assert collect_balls(sim) == expected
        sim.shutdown()

    def test_batching_lowers_per_round_traffic(self):
        graph = gen.gnp_random_graph(64, 6, 64, seed=9)

        def peak_traffic(batch):
            dg, sim = load(graph, s=1 << 20)
            grow_balls(dg, 4, batch_vertices=batch)
            summary = sim.metrics.summary()
            sim.shutdown()
            return summary["max_words_sent"], summary["max_words_received"]

        unbatched = peak_traffic(None)
        batched = peak_traffic(8)
        assert batched[0] < unbatched[0]
        assert batched[1] < unbatched[1]

    def test_batching_fits_where_unbatched_faults(self):
        # The point of the feature: a budget that unbatched ball-growing
        # blows is honoured when the traffic is spread across windows.
        graph = gen.gnp_random_graph(56, 5, 56, seed=3)
        dg, sim = load(graph, s=1 << 20)
        grow_balls(dg, 3)
        budget = sim.metrics.summary()["max_words_received"] - 1
        sim.shutdown()

        dg, sim = load(graph, s=budget)
        with pytest.raises(MPCViolationError):
            grow_balls(dg, 3)
        sim.shutdown()

        dg, sim = load(graph, s=budget)
        grow_balls(dg, 3, batch_vertices=4)
        sim.shutdown()

    def test_snapshot_key_is_cleaned_up(self):
        graph = gen.cycle_graph(12)
        dg, sim = load(graph)
        grow_balls(dg, 3, batch_vertices=4)
        assert all(
            "_exp_snapshot" not in m.store for m in sim.machines
        )
        sim.shutdown()

    def test_power_graph_adjacency_batched(self):
        graph = gen.random_tree(30, seed=5)
        dg, sim = load(graph)
        power_graph_adjacency(dg, 3, "g3", batch_vertices=5)
        got = {}
        for machine in sim.machines:
            got.update(machine.store["g3"])
        sim.shutdown()
        expected_graph = power_graph(graph, 3)
        expected = {
            v: tuple(expected_graph.neighbors(v))
            for v in expected_graph.vertices()
        }
        assert got == expected

    def test_bad_batch_size_rejected(self, path4):
        dg, sim = load(path4)
        with pytest.raises(AlgorithmError, match="batch_vertices"):
            grow_balls(dg, 2, batch_vertices=0)
        sim.shutdown()
