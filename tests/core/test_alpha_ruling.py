"""Tests for general (alpha, beta)-ruling sets via exponentiation."""

import pytest

from repro.core.alpha_ruling import det_alpha_ruling_set
from repro.core.pipeline import solve_ruling_set
from repro.core.verify import check_ruling_set, verify_ruling_set
from repro.errors import AlgorithmError
from repro.graph import generators as gen
from repro.graph.ops import power_graph
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator


def load_for_alpha(graph, alpha):
    sized = power_graph(graph, alpha - 1) if alpha > 2 else graph
    cfg = MPCConfig.near_linear(
        sized.num_vertices, sized.num_edges, max_degree=sized.max_degree()
    )
    sim = Simulator(cfg)
    return DistributedGraph.load(sim, graph), sim


class TestEngine:
    @pytest.mark.parametrize("alpha", [2, 3, 4])
    def test_verified_alpha_ruling(self, alpha):
        # Sparse base graphs: G^(alpha-1) must fit the regime (a dense
        # base would legitimately fault the simulator at alpha = 4).
        graph = gen.random_tree(70, seed=alpha)
        dg, _ = load_for_alpha(graph, alpha)
        claimed_beta, counters = det_alpha_ruling_set(dg, alpha=alpha)
        members = dg.collect_marked("alpha_rs_in_set")
        verify_ruling_set(graph, members, alpha=alpha, beta=claimed_beta)
        assert counters["iterations"] >= 1

    def test_dense_base_faults_honestly_at_large_alpha(self):
        # G^3 of a dense graph exceeds what the regime sized for G can
        # hold mid-exponentiation; the simulator must fault, not fudge.
        from repro.errors import MPCViolationError

        graph = gen.gnp_random_graph(70, 1, 9, seed=4)
        cfg = MPCConfig.near_linear(
            graph.num_vertices, graph.num_edges,
            max_degree=graph.max_degree(),
        )
        sim = Simulator(cfg)
        dg = DistributedGraph.load(sim, graph)
        with pytest.raises(MPCViolationError):
            det_alpha_ruling_set(dg, alpha=4)

    def test_claimed_beta_formula(self):
        graph = gen.cycle_graph(30)
        dg, _ = load_for_alpha(graph, 3)
        claimed_beta, _ = det_alpha_ruling_set(dg, alpha=3, beta=2)
        assert claimed_beta == 4  # beta * (alpha - 1)

    def test_original_adjacency_preserved(self):
        graph = gen.cycle_graph(20)
        dg, sim = load_for_alpha(graph, 3)
        det_alpha_ruling_set(dg, alpha=3)
        preserved = {}
        for machine in sim.machines:
            preserved.update(machine.store["alpha_original_adj"])
        for v in graph.vertices():
            assert list(preserved[v]) == list(graph.neighbors(v))

    def test_rejects_bad_parameters(self, small_er):
        dg, _ = load_for_alpha(small_er, 2)
        with pytest.raises(AlgorithmError):
            det_alpha_ruling_set(dg, alpha=1)
        with pytest.raises(AlgorithmError):
            det_alpha_ruling_set(dg, alpha=3, beta=1)


class TestPipelineAlpha:
    @pytest.mark.parametrize("algorithm", ["det-ruling", "rand-ruling"])
    def test_alpha_three_through_pipeline(self, algorithm):
        graph = gen.gnp_random_graph(60, 1, 8, seed=5)
        result = solve_ruling_set(
            graph, algorithm=algorithm, alpha=3, beta=2,
            regime="near-linear",
        )
        assert result.alpha == 3
        assert result.beta == 4
        measured = check_ruling_set(graph, result.members, alpha=3)
        assert measured.independent_at == 3

    def test_greedy_alpha(self):
        graph = gen.path_graph(13)
        result = solve_ruling_set(graph, algorithm="greedy-ruling", alpha=4)
        assert result.members == [0, 4, 8, 12]
        assert result.beta == 3

    def test_alpha_unsupported_algorithms(self, small_er):
        for algorithm in ("det-luby", "local-luby", "greedy-mis"):
            with pytest.raises(AlgorithmError):
                solve_ruling_set(small_er, algorithm=algorithm, alpha=3)

    def test_alpha_below_two_rejected(self, small_er):
        with pytest.raises(AlgorithmError):
            solve_ruling_set(small_er, alpha=1)

    def test_alpha_two_unchanged(self, small_er):
        base = solve_ruling_set(
            small_er, algorithm="det-ruling", regime="near-linear"
        )
        explicit = solve_ruling_set(
            small_er, algorithm="det-ruling", alpha=2, regime="near-linear"
        )
        assert base.members == explicit.members
