"""Drift guard: algorithm names live in exactly one module.

The refactor's invariant is that ``repro.core.registry`` is the only
place under ``src/`` or ``benchmarks/`` that spells an algorithm name
as a string literal — everything else refers to the exported constants
or asks the registry.  These tests enforce it structurally:

* an AST scan over both trees flags any non-docstring string constant
  containing a canonical name (docstrings are prose and may discuss
  algorithms by name; code may not);
* the CLI's generated ``--algorithm`` help and the benchmark drivers'
  algorithm axes are compared against the registry, so the user-facing
  surfaces cannot silently diverge from what actually dispatches.
"""

import ast
import sys
from pathlib import Path

from repro.core import registry
from repro.core.registry import MATCHING, MPC_FAMILY, RULING_SET

REPO_ROOT = Path(__file__).resolve().parents[2]
SCANNED_TREES = (REPO_ROOT / "src", REPO_ROOT / "benchmarks")
REGISTRY_PATH = REPO_ROOT / "src" / "repro" / "core" / "registry.py"

ALL_NAMES = registry.algorithm_names()


def _docstring_constants(tree: ast.AST):
    """The Constant nodes that are docstrings (prose, not dispatch)."""
    docstrings = set()
    for node in ast.walk(tree):
        if isinstance(
            node,
            (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
        ):
            body = getattr(node, "body", [])
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                docstrings.add(id(body[0].value))
    return docstrings


def _name_literals(path: Path):
    """(line, literal) pairs in ``path`` that contain an algorithm name."""
    tree = ast.parse(path.read_text(), filename=str(path))
    docstrings = _docstring_constants(tree)
    hits = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and id(node) not in docstrings
            and any(name in node.value for name in ALL_NAMES)
        ):
            hits.append((node.lineno, node.value))
    return hits


def test_registry_is_the_only_module_spelling_names():
    offenders = []
    for tree_root in SCANNED_TREES:
        for path in sorted(tree_root.rglob("*.py")):
            if path == REGISTRY_PATH:
                continue
            for lineno, literal in _name_literals(path):
                offenders.append(
                    f"{path.relative_to(REPO_ROOT)}:{lineno}: {literal!r}"
                )
    assert not offenders, (
        "algorithm-name literals outside repro.core.registry "
        "(use the exported constants instead):\n  " + "\n  ".join(offenders)
    )


#: Modules under the stricter rule: no algorithm-name literal anywhere,
#: docstrings included.  The framework is algorithm-agnostic by design,
#: and the newest family module must not hard-code sibling names either
#: — both would re-grow the coupling this refactor removed.
STRICT_PROSE_FREE = (
    REPO_ROOT / "src" / "repro" / "core" / "program.py",
    REPO_ROOT / "src" / "repro" / "core" / "gp_ruling.py",
)


def test_framework_modules_spell_no_names_even_in_prose():
    offenders = []
    for path in STRICT_PROSE_FREE:
        source = path.read_text()
        for name in ALL_NAMES:
            if name in source:
                offenders.append(f"{path.relative_to(REPO_ROOT)}: {name!r}")
    assert not offenders, (
        "algorithm names in algorithm-agnostic modules (docstrings "
        "included):\n  " + "\n  ".join(offenders)
    )


def test_program_framework_imports_no_solver_modules():
    # Structural independence: the framework must not import anything
    # from repro.core (solvers build on it, never the reverse).
    path = REPO_ROOT / "src" / "repro" / "core" / "program.py"
    tree = ast.parse(path.read_text(), filename=str(path))
    offenders = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            offenders.extend(
                alias.name for alias in node.names
                if alias.name.startswith("repro.core")
            )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.startswith("repro.core"):
                offenders.append(node.module)
    assert not offenders, (
        f"repro.core imports inside the framework module: {offenders}"
    )


def test_registry_spells_every_name_it_exports():
    # The guard above is vacuous if the registry itself stopped defining
    # the names; pin that the literals all live there.
    source = REGISTRY_PATH.read_text()
    for name in ALL_NAMES:
        assert f'"{name}"' in source


class TestCliHelpTracksRegistry:
    """The --algorithm help must be the registry's, verbatim.

    The raw ``action.help`` strings are compared (``format_help()``
    hyphen-wraps long names, so rendered output is not substring-safe).
    """

    def _option_help(self, command: str, option: str) -> str:
        import argparse

        from repro.cli import make_parser

        parser = make_parser()
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                sub = action.choices[command]
                for sub_action in sub._actions:
                    if option in sub_action.option_strings:
                        return sub_action.help or ""
        raise AssertionError(f"no {option!r} option on {command!r}")

    def test_solve_help_lists_ruling_set_algorithms(self):
        help_text = self._option_help("solve", "--algorithm")
        for name in registry.algorithm_names(problem=RULING_SET):
            assert name in help_text

    def test_match_help_lists_matching_algorithms(self):
        help_text = self._option_help("match", "--algorithm")
        for name in registry.algorithm_names(problem=MATCHING):
            assert name in help_text

    def test_sweep_help_lists_ruling_set_algorithms(self):
        help_text = self._option_help("sweep", "--algorithms")
        for name in registry.algorithm_names(problem=RULING_SET):
            assert name in help_text


class TestBenchAxesTrackRegistry:
    def _bench(self, module_name: str):
        if str(REPO_ROOT) not in sys.path:
            sys.path.insert(0, str(REPO_ROOT))
        import importlib

        return importlib.import_module(f"benchmarks.{module_name}")

    def test_e1_axis_is_every_mpc_ruling_set_algorithm(self):
        bench = self._bench("bench_e1_rounds_table")
        assert tuple(bench.ALGORITHMS) == registry.algorithm_names(
            family=MPC_FAMILY, problem=RULING_SET
        )

    def test_bench_axes_are_registered(self):
        for module_name in (
            "bench_e1_rounds_table",
            "bench_e2_delta_sweep",
            "bench_e4_quality",
            "bench_e8_local_baselines",
        ):
            bench = self._bench(module_name)
            for name in bench.ALGORITHMS:
                assert registry.is_registered(name), (
                    f"{module_name}.ALGORITHMS contains unregistered "
                    f"{name!r}"
                )
