"""Tests for the randomized baselines (same engines, drawn seeds)."""

import pytest

from repro.core.rand_baselines import rand_luby_mis, rand_ruling_set
from repro.core.verify import verify_ruling_set
from repro.graph import generators as gen
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator


def load(graph):
    cfg = MPCConfig.near_linear(
        graph.num_vertices, graph.num_edges, max_degree=graph.max_degree()
    )
    sim = Simulator(cfg)
    return DistributedGraph.load(sim, graph), sim


class TestRandLuby:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_verified_mis(self, small_er, seed):
        dg, _ = load(small_er)
        rand_luby_mis(dg, in_set_key="mis", seed=seed)
        members = dg.collect_marked("mis")
        verify_ruling_set(small_er, members, alpha=2, beta=1)

    def test_reproducible_given_seed(self, small_er):
        results = []
        for _ in range(2):
            dg, _ = load(small_er)
            rand_luby_mis(dg, in_set_key="mis", seed=7)
            results.append(dg.collect_marked("mis"))
        assert results[0] == results[1]

    def test_seed_sensitivity(self, medium_er):
        outs = []
        for seed in (1, 2):
            dg, _ = load(medium_er)
            rand_luby_mis(dg, in_set_key="mis", seed=seed)
            outs.append(dg.collect_marked("mis"))
        assert outs[0] != outs[1]

    def test_star(self):
        g = gen.star_graph(30)
        dg, _ = load(g)
        rand_luby_mis(dg, in_set_key="mis", seed=0)
        verify_ruling_set(g, dg.collect_marked("mis"), alpha=2, beta=1)


class TestRandRuling:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_verified_two_ruling(self, medium_er, seed):
        dg, _ = load(medium_er)
        rand_ruling_set(dg, beta=2, in_set_key="rs", seed=seed)
        members = dg.collect_marked("rs")
        verify_ruling_set(medium_er, members, alpha=2, beta=2)

    def test_beta_three(self, medium_er):
        dg, _ = load(medium_er)
        rand_ruling_set(dg, beta=3, in_set_key="rs", seed=3)
        verify_ruling_set(
            medium_er, dg.collect_marked("rs"), alpha=2, beta=3
        )

    def test_fewer_seed_candidates_than_det(self, medium_er):
        # The randomized chooser draws instead of scanning: its candidate
        # count equals the number of choices made, far below the scan's.
        from repro.core.det_ruling import det_ruling_set

        dg_rand, _ = load(medium_er)
        rand_counters = rand_ruling_set(
            dg_rand, beta=2, in_set_key="rs", seed=1
        )
        dg_det, _ = load(medium_er)
        det_counters = det_ruling_set(dg_det, beta=2, in_set_key="rs")
        assert (
            rand_counters["seed_candidates"]
            <= det_counters["seed_candidates"]
        )
