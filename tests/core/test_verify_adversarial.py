"""Adversarial near-miss sets against the generalized verifier.

Each case is one mutation away from a valid ruling set: a pair of
members exactly one hop too close, a single vertex exactly one hop too
far, coverage that leans on a path through a member, and so on.  A
verifier that only spot-checks the paper's α = 2 regime — or that
rounds the measured independence to a pass/fail bit — accepts at least
one of these; the BFS-based oracle must reject every one for precisely
the right reason.
"""

import pytest

from repro.core.verify import check_ruling_set, verify_ruling_set
from repro.errors import VerificationError
from repro.graph import generators as gen
from repro.graph.graph import Graph


class TestNearMissIndependence:
    def test_members_at_distance_alpha_minus_one(self):
        # Path 0-1-2-3-4-5: {0, 3} has pairwise distance 3.  Valid at
        # alpha=3, a near-miss at alpha=4 — binary checkers that only
        # certify "alpha or 1" cannot tell these apart.
        g = gen.path_graph(6)
        members = [0, 3]
        assert verify_ruling_set(g, members, alpha=3, beta=2).independent_at == 3
        with pytest.raises(VerificationError, match="not 4-independent"):
            verify_ruling_set(g, members, alpha=4, beta=2)

    def test_min_distance_is_exact_not_binary(self):
        # Distances between consecutive members: 2, 3, 4.  The check
        # must report min=2 even when asked about alpha=4.
        g = gen.path_graph(10)
        check = check_ruling_set(g, [0, 2, 5, 9], alpha=4)
        assert check.independent_at == 2

    def test_close_pair_hidden_behind_far_pairs(self):
        # Star-with-tail: leaves 1 and 2 share hub 0, so distance 2;
        # the tail member sits far away.  A checker that stops at the
        # first BFS source finding nothing adjacent would pass alpha=3.
        g = Graph.from_edges(
            7, [(0, 1), (0, 2), (0, 3), (3, 4), (4, 5), (5, 6)]
        )
        check = check_ruling_set(g, [1, 2, 6], alpha=3)
        assert check.independent_at == 2
        with pytest.raises(VerificationError, match="not 3-independent"):
            verify_ruling_set(g, [1, 2, 6], alpha=3, beta=3)

    def test_adjacent_members_floor(self):
        g = gen.cycle_graph(8)
        assert check_ruling_set(g, [0, 1, 4], alpha=2).independent_at == 1

    def test_distance_via_third_member_counts(self):
        # Triangle fan: 0-1, 1-2 — members {0, 2} are at distance 2
        # *through* member 1 only if 1 is in the set; with plain
        # {0, 2} on the path they are at distance 2 regardless.  With
        # the chord (0, 2) they are adjacent: the shortest path wins,
        # whoever it routes through.
        g = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert check_ruling_set(g, [0, 2], alpha=2).independent_at == 1


class TestNearMissDomination:
    def test_one_vertex_one_hop_too_far(self):
        # Path 0..5 ruled by {0}: vertex 5 at distance 5.
        g = gen.path_graph(6)
        verify_ruling_set(g, [0], alpha=2, beta=5)
        with pytest.raises(VerificationError, match="exceeds claimed beta=4"):
            verify_ruling_set(g, [0], alpha=2, beta=4)

    def test_unreachable_component(self):
        # Two disjoint edges; members only in one component.
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(VerificationError, match="unreachable"):
            verify_ruling_set(g, [0], alpha=2, beta=99)

    def test_exact_beta_boundary_accepted(self):
        g = gen.cycle_graph(9)
        check = verify_ruling_set(g, [0, 3, 6], alpha=2, beta=1)
        assert check.measured_beta == 1

    def test_isolated_vertex_must_be_member(self):
        g = Graph.from_edges(3, [(0, 1)])  # vertex 2 isolated
        with pytest.raises(VerificationError, match="unreachable"):
            verify_ruling_set(g, [0], alpha=2, beta=9)
        verify_ruling_set(g, [0, 2], alpha=2, beta=1)


class TestGeneralizedRegimes:
    @pytest.mark.parametrize("alpha", [2, 3, 4, 5])
    def test_spaced_cycle_members(self, alpha):
        # Members every `alpha` hops around a cycle of 4·alpha vertices:
        # exactly alpha-independent and (alpha - 1)-dominating, a valid
        # (alpha, alpha-1)-ruling set but a near-miss at alpha+1.
        n = 4 * alpha
        g = gen.cycle_graph(n)
        members = list(range(0, n, alpha))
        check = verify_ruling_set(g, members, alpha=alpha, beta=alpha - 1)
        assert check.independent_at == alpha
        assert check.measured_beta == alpha // 2
        with pytest.raises(VerificationError, match="independent"):
            verify_ruling_set(g, members, alpha=alpha + 1, beta=alpha)

    def test_single_member_is_vacuously_independent(self):
        g = gen.star_graph(5)
        check = verify_ruling_set(g, [0], alpha=7, beta=1)
        assert check.independent_at == 7

    def test_duplicate_members_deduplicated(self):
        g = gen.path_graph(4)
        check = verify_ruling_set(g, [0, 0, 2, 2], alpha=2, beta=1)
        assert check.size == 2
