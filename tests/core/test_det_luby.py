"""Tests for the derandomized Luby MIS engine."""

import pytest

from repro.core.det_luby import det_luby_mis, modulus_for
from repro.core.verify import verify_ruling_set
from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator
from repro.util.prime import is_prime


def run_det_luby(graph, k=None, s=None):
    cfg = MPCConfig.near_linear(
        graph.num_vertices, graph.num_edges, max_degree=graph.max_degree()
    )
    if k is not None or s is not None:
        cfg = MPCConfig(
            num_machines=k or cfg.num_machines,
            memory_words=s or cfg.memory_words,
        )
    sim = Simulator(cfg)
    dg = DistributedGraph.load(sim, graph)
    counters = det_luby_mis(dg, in_set_key="mis")
    return dg.collect_marked("mis"), counters, sim


class TestModulus:
    def test_prime_and_large(self):
        p = modulus_for(100)
        assert is_prime(p) and p > 400


class TestDetLuby:
    @pytest.mark.parametrize("make", [
        lambda: gen.path_graph(25),
        lambda: gen.cycle_graph(16),
        lambda: gen.complete_graph(10),
        lambda: gen.star_graph(25),
        lambda: gen.gnp_random_graph(80, 1, 8, seed=3),
        lambda: gen.random_tree(60, seed=1),
        lambda: gen.grid_graph(5, 8),
        lambda: gen.caterpillar_graph(10, 3),
    ])
    def test_produces_verified_mis(self, make):
        graph = make()
        members, counters, _ = run_det_luby(graph)
        verify_ruling_set(graph, members, alpha=2, beta=1)
        assert counters["phases"] >= 1

    def test_edgeless_all_join(self):
        graph = Graph.empty(7)
        members, counters, _ = run_det_luby(graph)
        assert members == list(range(7))
        assert counters["isolated_joins"] == 7

    def test_deterministic_across_runs(self, small_er):
        a, _, _ = run_det_luby(small_er)
        b, _, _ = run_det_luby(small_er)
        assert a == b

    def test_consumes_all_vertices(self, small_er):
        _, _, sim = run_det_luby(small_er)
        for machine in sim.machines:
            assert machine.store["g_adj"] == {}

    def test_geometric_edge_decay_rough(self):
        # The derandomized phase must make real progress: phase count is
        # far below n (empirically ~log n; assert a generous band).
        graph = gen.gnp_random_graph(150, 1, 10, seed=4)
        _, counters, _ = run_det_luby(graph)
        assert counters["phases"] <= 15

    def test_rejects_beta_param_mismatch(self):
        # det_luby has no beta; this guards the engine's stall contract:
        # deterministic chooser with allow_stalls=0 must never stall.
        graph = gen.gnp_random_graph(60, 1, 6, seed=7)
        members, counters, _ = run_det_luby(graph)
        verify_ruling_set(graph, members, alpha=2, beta=1)
