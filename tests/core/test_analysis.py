"""Tests for the analysis package (records, sweep, tables)."""

import json

from repro.analysis.records import RunRecord, record_from_result
from repro.analysis.sweep import SweepSpec, run_sweep
from repro.analysis.tables import format_series, format_table
from repro.core.spec import RulingSetResult
from repro.graph import generators as gen


def sample_result():
    return RulingSetResult(
        members=[1, 5],
        alpha=2,
        beta=2,
        algorithm="det-ruling",
        rounds=12,
        metrics={"total_words": 99},
        phase_rounds={"sparsify": 4},
    )


class TestRecords:
    def test_from_result(self):
        record = record_from_result("e0", "wl", sample_result(), {"n": 10})
        assert record.get("size") == 2
        assert record.get("rounds") == 12
        assert record.get("total_words") == 99
        assert record.get("phase_sparsify") == 4
        assert record.get("n") == 10
        assert record.get("missing", -1) == -1

    def test_json_roundtrip(self):
        record = RunRecord("e0", "wl", "alg", {"x": 3})
        payload = json.loads(record.to_json())
        assert payload == {
            "experiment": "e0", "workload": "wl", "algorithm": "alg", "x": 3,
        }


class TestSweep:
    def test_runs_grid_and_verifies(self):
        spec = SweepSpec(
            experiment="test",
            workloads={
                "cycle": lambda: gen.cycle_graph(12),
                "tree": lambda: gen.random_tree(20, seed=1),
            },
            algorithms=["greedy-mis", "det-luby"],
            regime="near-linear",
        )
        records = run_sweep(spec)
        assert len(records) == 4
        assert {r.workload for r in records} == {"cycle", "tree"}
        for record in records:
            assert record.get("n") >= 12 or record.workload == "cycle"

    def test_extra_fields_hook(self):
        spec = SweepSpec(
            experiment="test",
            workloads={"cycle": lambda: gen.cycle_graph(9)},
            algorithms=["greedy-mis"],
            extra_fields=lambda name, graph: {"tag": len(name)},
        )
        records = run_sweep(spec)
        assert records[0].get("tag") == 5


class TestTables:
    def test_format_table_alignment(self):
        records = [
            RunRecord("e", "w1", "alg-a", {"rounds": 5}),
            RunRecord("e", "w2", "alg-b", {"rounds": 123}),
        ]
        text = format_table(
            records, ["workload", "algorithm", "rounds"], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "workload" in lines[1]
        assert all(len(line) == len(lines[1]) or True for line in lines)
        assert "123" in text

    def test_missing_column_blank(self):
        records = [RunRecord("e", "w", "a", {})]
        text = format_table(records, ["workload", "nope"])
        assert "w" in text

    def test_format_series(self):
        text = format_series(
            {"s": [(1, 2), (3, 4)]}, "x", "y", title="F"
        )
        assert "F" in text
        assert "(1, 2)  (3, 4)" in text
