"""Phase-program framework: unit semantics and end-to-end name flow.

Two layers of coverage:

* ``TestSignals`` .. ``TestIntrospection`` exercise the framework
  against a stub context (no simulator): signal propagation, loop
  exhaustion, branch routing, subprogram absorption, counter schema,
  namespacing, level teardown, pricing.
* ``TestPhaseNameFlow`` runs real solver programs through the session
  and asserts the programs' declared phase names are exactly what
  arrives in ``RunMetrics`` (``phase_rounds`` / ``time_per_phase``) and
  in ``TraceRecorder`` events — for two different programs, on the
  serial and the shard backend.
"""

import pytest

from repro.core.pipeline import solve_ruling_set
from repro.core.program import (
    BREAK,
    CONTINUE,
    EXIT,
    Branch,
    Loop,
    Phase,
    ProgramContext,
    Subprogram,
    SuperstepProgram,
)
from repro.errors import AlgorithmError


class FakeSim:
    """Driver-side stand-in: records phase labels and local steps."""

    def __init__(self):
        self.phases = []
        self.local_calls = 0

    def begin_phase(self, name):
        self.phases.append(name)

    def local(self, fn):
        self.local_calls += 1


class FakeDG:
    def __init__(self):
        self.sim = FakeSim()


def make_ctx() -> ProgramContext:
    return ProgramContext(FakeDG())


class TestSignals:
    def test_plain_sequence_runs_in_order(self):
        order = []
        prog = SuperstepProgram(
            name="seq",
            steps=(
                Phase(lambda ctx: order.append("a")),
                Phase(lambda ctx: order.append("b")),
            ),
        )
        prog.run(make_ctx())
        assert order == ["a", "b"]

    def test_exit_stops_the_program(self):
        order = []
        prog = SuperstepProgram(
            name="exit",
            steps=(
                Phase(lambda ctx: EXIT),
                Phase(lambda ctx: order.append("unreached")),
            ),
        )
        prog.run(make_ctx())
        assert order == []

    def test_non_signal_return_raises(self):
        prog = SuperstepProgram(
            name="bad", steps=(Phase(lambda ctx: 42, name="oops"),)
        )
        with pytest.raises(AlgorithmError, match="returned 42"):
            prog.run(make_ctx())

    def test_named_phase_emits_begin_phase(self):
        ctx = make_ctx()
        prog = SuperstepProgram(
            name="labels",
            steps=(
                Phase(lambda ctx: None, name="first"),
                Phase(lambda ctx: None),  # unlabelled: no emission
                Phase(lambda ctx: None, name="second"),
            ),
        )
        prog.run(ctx)
        assert ctx.sim.phases == ["first", "second"]


class TestLoop:
    def test_break_ends_loop_continue_skips(self):
        hits = []

        def body(ctx):
            hits.append(ctx.counters.get("i", 0))
            ctx.bump("i")
            if ctx.counters["i"] == 2:
                return CONTINUE
            if ctx.counters["i"] >= 4:
                return BREAK
            return None

        after = []
        prog = SuperstepProgram(
            name="loop",
            steps=(
                Loop(
                    (
                        Phase(body),
                        Phase(lambda ctx: after.append(ctx.counters["i"])),
                    ),
                    limit=lambda ctx: 100,
                ),
            ),
        )
        prog.run(make_ctx())
        assert hits == [0, 1, 2, 3]
        # Iteration 2 CONTINUEd and 4 BREAKed past the second phase.
        assert after == [1, 3]

    def test_exhaustion_raises_the_built_error(self):
        prog = SuperstepProgram(
            name="spin",
            steps=(
                Loop(
                    (Phase(lambda ctx: None),),
                    limit=lambda ctx: 3,
                    exhausted=lambda ctx: AlgorithmError("did not finish"),
                ),
            ),
        )
        with pytest.raises(AlgorithmError, match="did not finish"):
            prog.run(make_ctx())

    def test_exhaustion_silent_without_builder(self):
        prog = SuperstepProgram(
            name="spin",
            steps=(Loop((Phase(lambda ctx: None),), limit=lambda ctx: 3),),
        )
        assert prog.run(make_ctx()) == {}

    def test_exit_propagates_through_loop(self):
        order = []
        prog = SuperstepProgram(
            name="nested-exit",
            steps=(
                Loop((Phase(lambda ctx: EXIT),), limit=lambda ctx: 10),
                Phase(lambda ctx: order.append("after")),
            ),
        )
        prog.run(make_ctx())
        assert order == []


class TestBranch:
    def test_routes_by_pick(self):
        taken = []
        prog = SuperstepProgram(
            name="route",
            steps=(
                Branch(
                    pick=lambda ctx: ctx.state["route"],
                    arms={
                        "left": (Phase(lambda ctx: taken.append("L")),),
                        "right": (Phase(lambda ctx: taken.append("R")),),
                    },
                ),
            ),
        )
        ctx = make_ctx()
        ctx.state["route"] = "right"
        prog.run(ctx)
        assert taken == ["R"]

    def test_unknown_arm_raises(self):
        prog = SuperstepProgram(
            name="route",
            steps=(
                Branch(pick=lambda ctx: "nope", arms={"left": ()}),
            ),
        )
        with pytest.raises(AlgorithmError, match="unknown arm 'nope'"):
            prog.run(make_ctx())


class TestSubprogram:
    def test_child_exit_absorbed_and_counters_seeded(self):
        child = SuperstepProgram(
            name="child",
            counters=("child_hits",),
            steps=(Phase(lambda ctx: EXIT),),
        )
        order = []
        parent = SuperstepProgram(
            name="parent",
            steps=(
                Subprogram(child),
                Phase(lambda ctx: order.append("parent-continues")),
            ),
        )
        ctx = make_ctx()
        counters = parent.run(ctx)
        assert order == ["parent-continues"]
        assert counters["child_hits"] == 0

    def test_namespace_restored_after_run(self):
        inner_keys = []
        prog = SuperstepProgram(
            name="ns",
            namespace="ns1_",
            steps=(Phase(lambda ctx: inner_keys.append(ctx.key("adj"))),),
        )
        ctx = make_ctx()
        prog.run(ctx)
        assert inner_keys == ["ns1_adj"]
        assert ctx.key("adj") == "adj"


class TestLevels:
    def test_release_levels_is_one_local_step(self):
        ctx = make_ctx()
        ctx.push_level("lvl0")
        ctx.push_level("lvl1")
        assert ctx.level_keys == ("lvl0", "lvl1")
        ctx.release_levels()
        assert ctx.level_keys == ()
        assert ctx.sim.local_calls == 1

    def test_release_explicit_keys(self):
        ctx = make_ctx()
        ctx.release("a", "b")
        assert ctx.sim.local_calls == 1


class TestIntrospection:
    def make_program(self):
        return SuperstepProgram(
            name="intro",
            counters=("x",),
            steps=(
                Phase(lambda ctx: None, name="setup", keys=("k1",)),
                Loop(
                    (
                        Phase(
                            lambda ctx: None, name="work",
                            keys=("k2", "k1"), price=lambda ctx: 7,
                        ),
                        Branch(
                            pick=lambda ctx: "a",
                            arms={
                                "a": (
                                    Phase(
                                        lambda ctx: None, name="arm-a",
                                        price=lambda ctx: 3,
                                    ),
                                ),
                                "b": (Phase(lambda ctx: None, name="work"),),
                            },
                        ),
                    ),
                    limit=lambda ctx: 1,
                ),
            ),
        )

    def test_phase_names_unique_in_order(self):
        assert self.make_program().phase_names() == ("setup", "work", "arm-a")

    def test_declared_keys_deduplicated(self):
        assert self.make_program().declared_keys() == ("k1", "k2")

    def test_price_is_max_not_sum(self):
        assert self.make_program().price(make_ctx()) == 7

    def test_describe_lists_every_phase(self):
        text = self.make_program().describe()
        assert "program intro:" in text
        assert "setup: keys=k1" in text
        assert "[priced]" in text


# ---------------------------------------------------------------------------
# End-to-end: phase names flow program -> simulator -> metrics/trace.
# ---------------------------------------------------------------------------


def _registered_program(algorithm, graph):
    from repro.core.registry import RunContext, get_algorithm

    spec = get_algorithm(algorithm)
    ctx = RunContext(graph=graph, alpha=2, beta=2, seed=0, in_set_key="x")
    return spec.program_factory(ctx)


def _declared_names(algorithm, graph):
    """The program's static phase names, plus its dynamic subroutine's.

    The ruling-set engines call the Luby engine at *runtime* (level
    solves, endgame) rather than composing it statically, so its labels
    legitimately appear in a run's attribution too.
    """
    from repro.core.det_luby import luby_program

    declared = set(_registered_program(algorithm, graph).phase_names())
    if algorithm != "det-luby":
        declared |= set(luby_program().phase_names())
    return declared


FLOW_CASES = [
    ("det-ruling", "ruling-iteration"),
    ("det-luby", "luby-phase"),
    ("gp-2ruling", "gp-degree-class"),
]


class TestPhaseNameFlow:
    @pytest.mark.parametrize("algorithm,marker", FLOW_CASES)
    def test_metrics_phases_are_program_phases(
        self, small_er, algorithm, marker
    ):
        declared = _declared_names(algorithm, small_er)
        assert marker in declared
        result = solve_ruling_set(small_er, algorithm=algorithm)
        observed = set(result.phase_rounds) | set(result.time_per_phase)
        # Rounds before the first Phase (graph distribution) land in the
        # metrics' catch-all bucket; everything else must be a name the
        # program itself declared.
        observed.discard("(unphased)")
        assert observed  # phases actually ran and were attributed
        assert observed <= declared
        assert marker in observed

    @pytest.mark.parametrize("algorithm,marker", FLOW_CASES)
    def test_trace_events_carry_program_phases(
        self, small_er, algorithm, marker
    ):
        declared = _declared_names(algorithm, small_er)
        result = solve_ruling_set(small_er, algorithm=algorithm, trace=True)
        labels = {
            ev["phase"] for ev in result.trace.events
            if ev["type"] == "phase"
        }
        assert labels
        assert labels <= declared
        assert marker in labels

    @pytest.mark.parametrize(
        "algorithm,marker", [FLOW_CASES[0], FLOW_CASES[1]]
    )
    def test_phase_names_flow_on_shard_backend(
        self, small_er, algorithm, marker
    ):
        declared = _declared_names(algorithm, small_er)
        result = solve_ruling_set(
            small_er, algorithm=algorithm, backend="shard", trace=True
        )
        observed = set(result.phase_rounds) | set(result.time_per_phase)
        observed.discard("(unphased)")
        assert observed and observed <= declared
        assert marker in observed
        labels = {
            ev["phase"] for ev in result.trace.events
            if ev["type"] == "phase"
        }
        assert labels <= declared

    def test_shard_and_serial_attribute_identically(self, small_er):
        serial = solve_ruling_set(small_er, algorithm="gp-2ruling")
        shard = solve_ruling_set(
            small_er, algorithm="gp-2ruling", backend="shard"
        )
        assert serial.phase_rounds == shard.phase_rounds
        assert serial.members == shard.members
        assert serial.rounds == shard.rounds
