"""Registry coverage: every name solves, flags match behavior, errors teach.

The registry is the single source of truth for algorithm names and
capabilities, so these tests sweep *the registry itself*: every
registered algorithm must solve a small graph through its public entry
point, unknown names must raise an error that enumerates the registry,
and the capability flags (``uses_seed``, ``supports_alpha_gt2``) must
describe what the algorithms actually do — a flag that drifts from
behavior is a registry bug even if every solver still works.
"""

import pytest

from repro.core import registry
from repro.core.det_matching import solve_matching, verify_maximal_matching
from repro.core.pipeline import solve_ruling_set
from repro.core.registry import (
    FAMILIES,
    LOCAL_FAMILY,
    MATCHING,
    MPC_FAMILY,
    PROBLEMS,
    RULING_SET,
    SEQUENTIAL_FAMILY,
    AlgorithmSpec,
)
from repro.core.verify import check_ruling_set
from repro.errors import AlgorithmError
from repro.graph import generators as gen

RULING_NAMES = registry.algorithm_names(problem=RULING_SET)
MATCHING_NAMES = registry.algorithm_names(problem=MATCHING)


def small_graph():
    return gen.gnp_random_graph(64, 8, 64, seed=5)


class TestEveryNameSolves:
    @pytest.mark.parametrize("name", RULING_NAMES)
    def test_ruling_set_names(self, name):
        graph = small_graph()
        result = solve_ruling_set(graph, algorithm=name, seed=1)
        assert result.algorithm == name
        assert result.members
        measured = check_ruling_set(graph, result.members)
        assert measured.independent_at >= 2

    @pytest.mark.parametrize("name", MATCHING_NAMES)
    def test_matching_names(self, name):
        graph = small_graph()
        result = solve_matching(graph, algorithm=name, seed=1)
        assert result.algorithm == name
        verify_maximal_matching(graph, result.matching)

    def test_registry_covers_both_problems(self):
        assert RULING_NAMES and MATCHING_NAMES
        assert set(RULING_NAMES + MATCHING_NAMES) == set(
            registry.algorithm_names()
        )


class TestUnknownNames:
    def test_get_algorithm_enumerates_registry(self):
        with pytest.raises(AlgorithmError) as excinfo:
            registry.get_algorithm("no-such-algorithm")
        message = str(excinfo.value)
        for name in registry.algorithm_names():
            assert name in message

    def test_solve_ruling_set_unknown(self):
        with pytest.raises(AlgorithmError, match="no-such-algorithm"):
            solve_ruling_set(small_graph(), algorithm="no-such-algorithm")

    def test_solve_matching_unknown(self):
        with pytest.raises(AlgorithmError, match="no-such-algorithm"):
            solve_matching(small_graph(), algorithm="no-such-algorithm")

    def test_problem_mismatch_rejected_both_ways(self):
        graph = small_graph()
        with pytest.raises(AlgorithmError):
            solve_ruling_set(graph, algorithm=MATCHING_NAMES[0])
        with pytest.raises(AlgorithmError):
            solve_matching(graph, algorithm=RULING_NAMES[0])

    def test_is_registered(self):
        assert registry.is_registered(registry.DET_RULING)
        assert not registry.is_registered("no-such-algorithm")


class TestSeedFlagMatchesBehavior:
    """``uses_seed`` must describe the output, not just the signature.

    Seeds 1 and 9 are pinned: every seeded algorithm demonstrably
    diverges between them on this workload (all algorithms are
    deterministic functions of the seed, so this never flakes).
    """

    @pytest.mark.parametrize("name", RULING_NAMES)
    def test_ruling_set_seed_sensitivity(self, name):
        graph = small_graph()
        first = solve_ruling_set(graph, algorithm=name, seed=1).members
        second = solve_ruling_set(graph, algorithm=name, seed=9).members
        if registry.get_algorithm(name).uses_seed:
            assert first != second
        else:
            assert first == second

    @pytest.mark.parametrize("name", MATCHING_NAMES)
    def test_matching_seed_sensitivity(self, name):
        graph = small_graph()
        first = solve_matching(graph, algorithm=name, seed=1).matching
        second = solve_matching(graph, algorithm=name, seed=9).matching
        if registry.get_algorithm(name).uses_seed:
            assert first != second
        else:
            assert first == second


class TestAlphaFlagMatchesBehavior:
    """``supports_alpha_gt2`` must gate α > 2 exactly."""

    @pytest.mark.parametrize("name", RULING_NAMES)
    def test_alpha3_gated_by_flag(self, name):
        graph = gen.random_tree(48, seed=3)
        if registry.get_algorithm(name).supports_alpha_gt2:
            result = solve_ruling_set(
                graph, algorithm=name, alpha=3, seed=1,
                regime="near-linear",
            )
            measured = check_ruling_set(graph, result.members, alpha=3)
            assert measured.independent_at == 3
        else:
            with pytest.raises(AlgorithmError):
                solve_ruling_set(
                    graph, algorithm=name, alpha=3, seed=1,
                    regime="near-linear",
                )


class TestRegistration:
    def test_duplicate_name_rejected(self):
        spec = registry.get_algorithm(registry.DET_RULING)
        with pytest.raises(AlgorithmError, match="already registered"):
            registry.register(spec)

    def test_bad_family_rejected(self):
        with pytest.raises(AlgorithmError, match="family"):
            registry.register(AlgorithmSpec(
                name="bogus-family-alg", family="quantum",
                problem=RULING_SET, description="", runner=lambda ctx: None,
            ))
        assert not registry.is_registered("bogus-family-alg")

    def test_bad_problem_rejected(self):
        with pytest.raises(AlgorithmError, match="problem"):
            registry.register(AlgorithmSpec(
                name="bogus-problem-alg", family=MPC_FAMILY,
                problem="sorting", description="", runner=lambda ctx: None,
            ))
        assert not registry.is_registered("bogus-problem-alg")

    def test_specs_well_formed(self):
        for spec in registry.algorithm_specs():
            assert spec.family in FAMILIES
            assert spec.problem in PROBLEMS
            assert spec.description
            assert callable(spec.runner)

    def test_family_filters_partition_registry(self):
        by_family = [
            registry.algorithm_names(family=family)
            for family in (MPC_FAMILY, LOCAL_FAMILY, SEQUENTIAL_FAMILY)
        ]
        flattened = [name for names in by_family for name in names]
        assert sorted(flattened) == sorted(registry.algorithm_names())


class TestGeneratedText:
    def test_help_text_lists_every_name(self):
        text = registry.help_text()
        for name in registry.algorithm_names():
            assert name in text

    def test_markdown_table_row_per_algorithm(self):
        table = registry.markdown_table()
        rows = [line for line in table.splitlines() if line.startswith("| `")]
        assert len(rows) == len(registry.algorithm_names())
        for spec in registry.algorithm_specs():
            assert f"`{spec.name}`" in table
            assert spec.description.split("(")[0].strip()[:20] in table

    def test_markdown_table_has_rounds_column(self):
        table = registry.markdown_table()
        header = table.splitlines()[0]
        assert "| Rounds |" in header
        for spec in registry.algorithm_specs():
            row = next(
                line for line in table.splitlines()
                if line.startswith(f"| `{spec.name}`")
            )
            assert f"| {spec.round_complexity} |" in row

    def test_help_text_rounds_variant(self):
        text = registry.help_text(rounds=True)
        for spec in registry.algorithm_specs():
            assert f"{spec.name} [{spec.round_complexity}]" in text

    def test_readme_table_matches_generator(self):
        # The README algorithm table is generated, never hand-edited;
        # this pins the committed block to the current generator output.
        import pathlib

        readme = pathlib.Path(__file__).resolve().parents[2] / "README.md"
        source = readme.read_text(encoding="utf-8")
        table = registry.markdown_table()
        assert table in source, (
            "README algorithm table is stale — regenerate it with "
            "registry.markdown_table()"
        )
