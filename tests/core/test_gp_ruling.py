"""Tests for the degree-class-decomposition (2, 2)-ruling set family."""

import json

import pytest

from repro.core.gp_ruling import claimed_round_bound, gp_2ruling_set
from repro.core.pipeline import solve_ruling_set
from repro.core.verify import verify_ruling_set
from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator


def run_gp(graph, regime="sublinear"):
    if regime == "sublinear":
        cfg = MPCConfig.sublinear(
            graph.num_vertices, graph.num_edges,
            max_degree=graph.max_degree(),
        )
    else:
        cfg = MPCConfig.near_linear(
            graph.num_vertices, graph.num_edges,
            max_degree=graph.max_degree(),
        )
    sim = Simulator(cfg)
    dg = DistributedGraph.load(sim, graph)
    counters = gp_2ruling_set(dg, in_set_key="gp")
    return dg.collect_marked("gp"), counters, sim


WORKLOADS = [
    ("path30", lambda: gen.path_graph(30)),
    ("cycle50", lambda: gen.cycle_graph(50)),
    ("complete12", lambda: gen.complete_graph(12)),
    ("star40", lambda: gen.star_graph(40)),
    ("grid8x8", lambda: gen.grid_graph(8, 8)),
    ("gnp100", lambda: gen.gnp_random_graph(100, 1, 8, seed=5)),
    ("tree80", lambda: gen.random_tree(80, seed=3)),
    ("powerlaw", lambda: gen.chung_lu_power_law(120, 25, seed=7)),
    ("caterpillar", lambda: gen.caterpillar_graph(12, 3)),
]


class TestCorrectness:
    @pytest.mark.parametrize(
        "name,make", WORKLOADS, ids=[w[0] for w in WORKLOADS]
    )
    def test_output_is_2_2_ruling_set(self, name, make):
        graph = make()
        members, counters, _ = run_gp(graph)
        check = verify_ruling_set(graph, members, alpha=2, beta=2)
        assert check.size == len(members) == counters["members"]

    def test_near_linear_regime(self):
        graph = gen.gnp_random_graph(90, 1, 6, seed=11)
        members, _, _ = run_gp(graph, regime="near-linear")
        verify_ruling_set(graph, members, alpha=2, beta=2)

    def test_single_vertex_and_edgeless(self):
        for graph in (Graph.empty(1), Graph.empty(5)):
            members, _, _ = run_gp(graph)
            verify_ruling_set(graph, members, alpha=2, beta=2)
            assert sorted(members) == list(range(graph.num_vertices))


class TestRoundBound:
    @pytest.mark.parametrize(
        "name,make", WORKLOADS, ids=[w[0] for w in WORKLOADS]
    )
    def test_rounds_within_claimed_bound(self, name, make):
        graph = make()
        _, _, sim = run_gp(graph)
        bound = claimed_round_bound(graph.num_vertices, graph.max_degree())
        assert sim.metrics.rounds <= bound

    def test_bound_grows_doubly_logarithmically_in_degree(self):
        # The whole point of the decomposition: the bound over degree is
        # log log, so squaring Δ adds O(1) classes, not O(log Δ).
        base = claimed_round_bound(10**6, 2**4)
        squared = claimed_round_bound(10**6, 2**16)
        fourth = claimed_round_bound(10**6, 2**64)
        assert base <= squared <= fourth
        assert fourth - squared <= squared - base + claimed_round_bound(
            10**6, 2
        )


class TestDeterminism:
    def test_identical_across_repeat_runs(self):
        graph = gen.gnp_random_graph(80, 1, 7, seed=23)
        first = run_gp(graph)
        second = run_gp(graph)
        assert sorted(first[0]) == sorted(second[0])
        assert first[1] == second[1]
        assert first[2].metrics.rounds == second[2].metrics.rounds

    def test_identical_across_kernels(self):
        graph = gen.gnp_random_graph(80, 1, 7, seed=23)
        results = {}
        for kernel in ("python", "numpy"):
            res = solve_ruling_set(
                graph, algorithm="gp-2ruling", kernel=kernel
            )
            results[kernel] = (sorted(res.members), res.rounds, res.metrics)
        assert results["python"] == results["numpy"]

    def test_identical_across_backends(self):
        graph = gen.gnp_random_graph(80, 1, 7, seed=23)
        serial = solve_ruling_set(graph, algorithm="gp-2ruling")
        shard = solve_ruling_set(
            graph, algorithm="gp-2ruling", backend="shard"
        )
        assert sorted(serial.members) == sorted(shard.members)
        assert serial.rounds == shard.rounds
        assert serial.metrics == shard.metrics


class TestWiring:
    def test_registry_spec(self):
        from repro.core import registry

        spec = registry.get_algorithm("gp-2ruling")
        assert spec.family == registry.MPC_FAMILY
        assert spec.problem == registry.RULING_SET
        assert spec.program_factory is not None
        assert spec.claimed_rounds is not None
        assert "log log" in spec.round_complexity
        # The claimed β is a constant 2 — including on the streaming
        # path, which prices the claim before any graph exists.
        assert spec.claimed_beta(None, 2, 5) == 2

    def test_pipeline_solves_and_verifies(self, small_er):
        result = solve_ruling_set(small_er, algorithm="gp-2ruling", beta=5)
        assert result.beta == 2  # constant regardless of requested β
        verify_ruling_set(small_er, result.members, alpha=2, beta=2)
        assert result.rounds <= claimed_round_bound(
            small_er.num_vertices, small_er.max_degree()
        )

    def test_program_phase_names(self, small_er):
        from repro.core.registry import RunContext, get_algorithm

        spec = get_algorithm("gp-2ruling")
        ctx = RunContext(
            graph=small_er, alpha=2, beta=2, seed=0, in_set_key="gp"
        )
        names = spec.program_factory(ctx).phase_names()
        assert "gp-degree-class" in names
        assert "gp-sparsify" in names

    def test_sweep_grid_accepts_gp(self):
        from repro.analysis.sweep import SweepSpec, run_sweep

        spec = SweepSpec(
            experiment="test_gp_sweep",
            workloads={"tiny": lambda: gen.cycle_graph(12)},
            algorithms=["gp-2ruling", "det-luby"],
        )
        records = run_sweep(spec)
        by_alg = {r.algorithm: r for r in records}
        assert set(by_alg) == {"gp-2ruling", "det-luby"}
        assert by_alg["gp-2ruling"].get("size") > 0

    def test_cli_solve(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import write_edge_list

        graph_path = tmp_path / "g.txt"
        write_edge_list(gen.cycle_graph(20), graph_path)
        assert main([
            "solve", "--input", str(graph_path),
            "--algorithm", "gp-2ruling", "--json",
        ]) == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines() if line
        ]
        payload = json.loads(lines[-1])
        assert payload["algorithm"] == "gp-2ruling"
        assert payload["beta"] == 2
        assert payload["size"] >= 1
