"""Tests for the one-call driver."""

import pytest

from repro.core.pipeline import make_config, solve_ruling_set
from repro.errors import AlgorithmError
from repro.graph import generators as gen
from repro.graph.graph import Graph


class TestMakeConfig:
    def test_regimes(self, small_er):
        assert "sublinear" in make_config(small_er, "sublinear").label
        assert make_config(small_er, "near-linear").label == "near-linear"
        assert make_config(small_er, "single").num_machines == 1

    def test_unknown_regime(self, small_er):
        with pytest.raises(AlgorithmError):
            make_config(small_er, "galactic")


class TestSolve:
    @pytest.mark.parametrize("algorithm,beta", [
        ("det-ruling", 2),
        ("rand-ruling", 2),
        ("det-luby", 1),
        ("rand-luby", 1),
        ("greedy-mis", 1),
        ("greedy-ruling", 1),
        ("local-luby", 1),
        ("local-bitwise", 7),
        ("local-coloring-mis", 1),
    ])
    def test_all_algorithms_verified(self, small_er, algorithm, beta):
        result = solve_ruling_set(small_er, algorithm=algorithm)
        assert result.size >= 1
        assert result.algorithm == algorithm
        # verify=True already ran; re-check the claim shape.
        assert result.beta >= 1

    def test_unknown_algorithm(self, small_er):
        with pytest.raises(AlgorithmError):
            solve_ruling_set(small_er, algorithm="quantum")

    def test_empty_graph(self):
        result = solve_ruling_set(Graph.empty(0))
        assert result.members == []

    def test_mpc_metrics_present(self, small_er):
        result = solve_ruling_set(
            small_er, algorithm="det-ruling", regime="near-linear"
        )
        assert result.rounds > 0
        assert result.metrics["num_machines"] >= 2
        assert result.metrics["peak_memory_words"] <= result.metrics[
            "memory_words"
        ]
        assert result.phase_rounds  # phases recorded

    def test_sequential_has_zero_rounds(self, small_er):
        assert solve_ruling_set(small_er, algorithm="greedy-mis").rounds == 0

    def test_local_records_rounds_in_metrics(self, small_er):
        result = solve_ruling_set(small_er, algorithm="local-luby")
        assert result.metrics["local_rounds"] >= 1

    def test_beta_parameter_respected(self, medium_er):
        result = solve_ruling_set(medium_er, algorithm="det-ruling", beta=3)
        assert result.beta == 3

    def test_summary_row(self, small_er):
        row = solve_ruling_set(small_er, algorithm="greedy-mis").summary_row()
        assert row["algorithm"] == "greedy-mis"
        assert row["size"] >= 1

    def test_verification_can_be_disabled(self, small_er):
        result = solve_ruling_set(
            small_er, algorithm="det-luby", regime="near-linear",
            verify=False,
        )
        assert result.size >= 1


class TestSimulatorLifecycle:
    """The session must release backend resources on every path."""

    def _recording_simulator(self, monkeypatch):
        import repro.core.session as session

        sims = []
        real_simulator = session.Simulator

        class RecordingSimulator(real_simulator):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.shutdown_calls = 0
                sims.append(self)

            def shutdown(self):
                self.shutdown_calls += 1
                super().shutdown()

        monkeypatch.setattr(session, "Simulator", RecordingSimulator)
        return sims

    def test_shutdown_on_success(self, small_er, monkeypatch):
        sims = self._recording_simulator(monkeypatch)
        solve_ruling_set(small_er, algorithm="det-luby")
        assert sims and all(s.shutdown_calls >= 1 for s in sims)

    def test_shutdown_when_solve_raises(self, small_er, monkeypatch):
        # Regression: a raising solve (e.g. MPCViolationError) used to
        # skip the trailing shutdown() and leak process-pool workers.
        # The registry program factory imports luby_program lazily, so
        # patching the algorithm module's attribute intercepts the call.
        import repro.core.det_luby as det_luby_mod

        from repro.errors import MPCViolationError

        sims = self._recording_simulator(monkeypatch)

        def blow_budget(*args, **kwargs):
            raise MPCViolationError("synthetic budget blowout")

        monkeypatch.setattr(det_luby_mod, "luby_program", blow_budget)
        with pytest.raises(MPCViolationError):
            solve_ruling_set(small_er, algorithm="det-luby")
        assert sims and all(s.shutdown_calls >= 1 for s in sims)


class TestTraceThreading:
    def test_trace_disabled_by_default(self, small_er):
        result = solve_ruling_set(small_er, algorithm="det-ruling")
        assert result.trace is None

    def test_trace_rides_on_result(self, small_er):
        plain = solve_ruling_set(small_er, algorithm="det-ruling")
        traced = solve_ruling_set(
            small_er, algorithm="det-ruling", trace=True
        )
        assert traced.trace is not None
        # Pure observer: members and model metrics are bit-identical.
        assert traced.members == plain.members
        assert traced.metrics == plain.metrics
        assert traced.trace.total_words() == traced.metrics["total_words"]

    def test_trace_ignored_for_sequential(self, small_er):
        result = solve_ruling_set(
            small_er, algorithm="greedy-mis", trace=True
        )
        assert result.trace is None
