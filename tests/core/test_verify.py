"""Tests for the ruling-set verifier (ground truth of the whole project)."""

import pytest

from repro.core.verify import check_ruling_set, verify_ruling_set
from repro.errors import VerificationError
from repro.graph import generators as gen
from repro.graph.graph import Graph


class TestCheck:
    def test_mis_on_path(self, path4):
        check = check_ruling_set(path4, [0, 2])
        assert check.independent_at == 2
        assert check.measured_beta == 1
        assert check.size == 2

    def test_non_independent_detected(self, path4):
        check = check_ruling_set(path4, [0, 1])
        assert check.independent_at == 1

    def test_alpha_three(self, path4):
        assert check_ruling_set(path4, [0, 3], alpha=3).independent_at == 3
        # Generalized check reports the true min pairwise distance (2),
        # not a binary pass/fail collapsed to 1.
        assert check_ruling_set(path4, [0, 2], alpha=3).independent_at == 2

    def test_empty_graph(self):
        check = check_ruling_set(Graph.empty(0), [])
        assert check.size == 0

    def test_empty_set_on_nonempty_graph(self, path4):
        with pytest.raises(VerificationError):
            check_ruling_set(path4, [])

    def test_out_of_range_member(self, path4):
        with pytest.raises(VerificationError):
            check_ruling_set(path4, [9])


class TestVerify:
    def test_accepts_valid(self, path4):
        verify_ruling_set(path4, [1], alpha=2, beta=2)

    def test_rejects_dependence(self, path4):
        with pytest.raises(VerificationError, match="independent"):
            verify_ruling_set(path4, [0, 1], alpha=2, beta=1)

    def test_rejects_bad_radius(self, path4):
        with pytest.raises(VerificationError, match="radius"):
            verify_ruling_set(path4, [0], alpha=2, beta=2)

    def test_rejects_unreachable(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(VerificationError, match="unreachable"):
            verify_ruling_set(g, [0], alpha=2, beta=5)

    def test_measured_beta_can_be_smaller_than_claim(self, path4):
        check = verify_ruling_set(path4, [0, 2], alpha=2, beta=5)
        assert check.measured_beta == 1

    def test_planted_instance(self):
        g, centers = gen.planted_ruling_set_graph(5, 3, 2, seed=1)
        verify_ruling_set(g, centers, alpha=2, beta=2)

    def test_greedy_mis_verifies_everywhere(self):
        from repro.core.greedy import greedy_mis

        for make in (
            lambda: gen.cycle_graph(9),
            lambda: gen.complete_graph(7),
            lambda: gen.gnp_random_graph(70, 1, 7, seed=2),
        ):
            g = make()
            verify_ruling_set(g, greedy_mis(g), alpha=2, beta=1)
