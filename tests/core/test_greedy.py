"""Tests for the sequential greedy oracles."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.greedy import greedy_mis, greedy_mis_on_edges, greedy_ruling_set
from repro.core.verify import verify_ruling_set
from repro.errors import AlgorithmError
from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.graph.properties import multi_source_distances


class TestGreedyMIS:
    def test_path(self, path4):
        assert greedy_mis(path4) == [0, 2]

    def test_respects_order(self, path4):
        assert greedy_mis(path4, order=[1, 0, 2, 3]) == [1, 3]

    def test_rejects_non_permutation(self, path4):
        with pytest.raises(AlgorithmError):
            greedy_mis(path4, order=[0, 0, 1, 2])

    def test_edgeless(self):
        g = Graph.empty(4)
        assert greedy_mis(g) == [0, 1, 2, 3]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 40), st.integers(1, 6))
    def test_always_maximal_independent(self, n, inv_p):
        g = gen.gnp_random_graph(n, 1, inv_p + 1, seed=n)
        verify_ruling_set(g, greedy_mis(g), alpha=2, beta=1)


class TestGreedyOnEdges:
    def test_sparse_ids(self):
        assert greedy_mis_on_edges([5, 7, 9], [(5, 7), (7, 9)]) == [5, 9]

    def test_isolated_included(self):
        assert greedy_mis_on_edges([3, 8], []) == [3, 8]

    def test_unknown_vertex_rejected(self):
        with pytest.raises(AlgorithmError):
            greedy_mis_on_edges([1, 2], [(1, 3)])

    def test_matches_dense_greedy(self, small_er):
        from_edges = greedy_mis_on_edges(
            list(small_er.vertices()), list(small_er.edges())
        )
        assert from_edges == greedy_mis(small_er)


class TestGreedyRulingSet:
    def test_alpha_two_is_mis(self, small_er):
        assert greedy_ruling_set(small_er, alpha=2) == greedy_mis(small_er)

    def test_alpha_three_on_path(self):
        g = gen.path_graph(7)
        members = greedy_ruling_set(g, alpha=3)
        assert members == [0, 3, 6]

    def test_rejects_bad_alpha(self, path4):
        with pytest.raises(AlgorithmError):
            greedy_ruling_set(path4, alpha=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 35), st.integers(2, 4))
    def test_alpha_independence_and_domination(self, n, alpha):
        g = gen.gnp_random_graph(n, 1, 4, seed=n * alpha)
        members = greedy_ruling_set(g, alpha=alpha)
        # alpha-independence: pairwise distance >= alpha.
        for s in members:
            dist = multi_source_distances(g, [s])
            for t in members:
                if t != s and dist[t] >= 0:
                    assert dist[t] >= alpha
        # (alpha-1)-domination.
        dist = multi_source_distances(g, members)
        assert all(0 <= d <= alpha - 1 for d in dist)
