"""Tests for deterministic maximal matching on the distributed line graph."""

import pytest

from repro.core.det_matching import (
    build_distributed_line_graph,
    det_maximal_matching,
    matching_config,
    verify_maximal_matching,
)
from repro.core.rand_baselines import random_luby_chooser
from repro.errors import AlgorithmError
from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator
from repro.util.rng import SplitMix64


def load_for_matching(graph):
    # Size the regime for the line graph, which is what the machines hold.
    cfg = matching_config(graph)
    sim = Simulator(cfg)
    return DistributedGraph.load(sim, graph), sim


class TestLineGraph:
    def test_conflict_lists_match_ground_truth(self, small_er):
        dg, sim = load_for_matching(small_er)
        line_dg = build_distributed_line_graph(dg)
        # Rebuild the mapping and adjacency driver-side and compare with
        # a sequential line graph.
        table = {}
        adjacency = {}
        for machine in sim.machines:
            table.update(machine.store["lg_edge_table"])
            adjacency.update(machine.store["lg_adj"])
        assert len(table) == small_er.num_edges
        assert sorted(table.values()) == sorted(small_er.edges())
        for edge_id, (u, v) in table.items():
            expected = {
                other_id
                for other_id, (a, b) in table.items()
                if other_id != edge_id and {a, b} & {u, v}
            }
            assert set(adjacency[edge_id]) == expected

    def test_edge_ids_dense(self, path4):
        dg, sim = load_for_matching(path4)
        line_dg = build_distributed_line_graph(dg)
        assert line_dg.num_vertices == path4.num_edges
        ids = sorted(
            eid
            for machine in sim.machines
            for eid in machine.store["lg_edge_table"]
        )
        assert ids == list(range(path4.num_edges))


class TestMatching:
    @pytest.mark.parametrize("make", [
        lambda: gen.path_graph(20),
        lambda: gen.cycle_graph(15),
        lambda: gen.complete_graph(9),
        lambda: gen.star_graph(16),
        lambda: gen.gnp_random_graph(50, 1, 7, seed=2),
        lambda: gen.random_tree(40, seed=1),
        lambda: gen.grid_graph(5, 6),
    ])
    def test_maximal_matching_everywhere(self, make):
        graph = make()
        dg, _ = load_for_matching(graph)
        matching, counters = det_maximal_matching(dg)
        verify_maximal_matching(graph, matching)
        assert counters["phases"] >= 1

    def test_deterministic(self, small_er):
        runs = []
        for _ in range(2):
            dg, _ = load_for_matching(small_er)
            matching, _ = det_maximal_matching(dg)
            runs.append(matching)
        assert runs[0] == runs[1]

    def test_randomized_chooser_works(self, small_er):
        dg, _ = load_for_matching(small_er)
        matching, _ = det_maximal_matching(
            dg,
            chooser=random_luby_chooser(SplitMix64(seed=3)),
            allow_stalls=64,
        )
        verify_maximal_matching(small_er, matching)

    def test_star_matches_one_edge(self):
        graph = gen.star_graph(12)
        dg, _ = load_for_matching(graph)
        matching, _ = det_maximal_matching(dg)
        assert len(matching) == 1

    def test_edgeless(self):
        graph = Graph.empty(5)
        dg, _ = load_for_matching(graph)
        matching, _ = det_maximal_matching(dg)
        assert matching == []


class TestVerifier:
    def test_rejects_non_edge(self, path4):
        with pytest.raises(AlgorithmError):
            verify_maximal_matching(path4, [(0, 2)])

    def test_rejects_shared_endpoint(self, path4):
        with pytest.raises(AlgorithmError):
            verify_maximal_matching(path4, [(0, 1), (1, 2)])

    def test_rejects_non_maximal(self, path4):
        with pytest.raises(AlgorithmError):
            verify_maximal_matching(path4, [])
        with pytest.raises(AlgorithmError):
            verify_maximal_matching(path4, [(0, 1)])  # (2,3) extendable

    def test_accepts_valid(self, path4):
        verify_maximal_matching(path4, [(0, 1), (2, 3)])


class TestSolveMatching:
    def test_driver_roundtrip(self, small_er):
        from repro.core.det_matching import solve_matching

        matching, metrics = solve_matching(small_er)
        assert metrics["rounds"] >= 1
        assert metrics["alg_phases"] >= 1
        assert len(matching) >= 1

    def test_randomized_driver(self, small_er):
        from repro.core.det_matching import solve_matching

        matching, _ = solve_matching(small_er, deterministic=False, seed=2)
        verify_maximal_matching(small_er, matching)

    def test_empty_graph(self):
        from repro.core.det_matching import solve_matching

        matching, metrics = solve_matching(Graph.empty(0))
        assert matching == [] and metrics["rounds"] == 0


class TestSolveMatchingParity:
    """Backend and trace wiring must be pure observers for matching too.

    ``solve_matching`` now runs through the same solver session as
    ``solve_ruling_set``; a process-pool backend or an attached trace
    must leave the matching and every model quantity bit-identical to
    the serial/untraced run.
    """

    def _reference(self, graph):
        from repro.core.det_matching import solve_matching

        return solve_matching(graph)

    def _assert_model_identical(self, reference, other):
        assert other.matching == reference.matching
        assert other.rounds == reference.rounds
        assert other.metrics == reference.metrics
        assert other.phase_rounds == reference.phase_rounds

    def test_process_backend_bit_identical(self, small_er):
        from repro.core.det_matching import solve_matching

        reference = self._reference(small_er)
        parallel = solve_matching(
            small_er, backend="process", backend_workers=2
        )
        self._assert_model_identical(reference, parallel)

    def test_trace_bit_identical_and_populated(self, small_er):
        from repro.core.det_matching import solve_matching

        reference = self._reference(small_er)
        traced = solve_matching(small_er, trace=True)
        self._assert_model_identical(reference, traced)
        assert reference.trace is None
        assert traced.trace is not None and traced.trace.events

    def test_randomized_backend_and_trace_together(self, small_er):
        from repro.core.det_matching import solve_matching

        reference = solve_matching(small_er, deterministic=False, seed=7)
        combined = solve_matching(
            small_er, deterministic=False, seed=7,
            backend="process", backend_workers=2, trace=True,
        )
        self._assert_model_identical(reference, combined)

    def test_result_tuple_compat(self, small_er):
        # Pre-session callers unpacked (matching, metrics); the result
        # object must keep supporting that shape.
        from repro.core.det_matching import solve_matching

        result = solve_matching(small_er)
        matching, metrics = result
        assert matching == result.matching
        assert metrics == result.metrics


class TestCliMatch:
    def test_match_command(self, capsys):
        from repro.cli import main

        assert main([
            "match", "--family", "grid", "--n", "64", "--param", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "matching size:" in out

    def test_match_json(self, capsys):
        import json as json_mod

        from repro.cli import main

        assert main([
            "match", "--family", "tree", "--n", "40", "--json",
        ]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        payload = json_mod.loads(lines[-1])
        assert isinstance(payload["matching"], list)
