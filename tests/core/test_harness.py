"""Fuzzing harness: full-registry coverage, failure capture, filters."""

import dataclasses

from repro.core import registry
from repro.core.harness import FAIL, OK, fuzz_verify
from repro.graph.generators import path_graph
from repro.graph.graph import Graph


def small_cells():
    return [
        ("path-6", path_graph(6)),
        ("triangle", Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])),
    ]


class TestCoverage:
    def test_every_registered_algorithm_is_swept(self):
        report = fuzz_verify(graphs=small_cells())
        swept = {cell.algorithm for cell in report.cells}
        assert swept == set(registry.algorithm_names())
        assert report.ok, report.format()

    def test_seeded_algorithms_run_every_seed(self):
        report = fuzz_verify(graphs=small_cells()[:1], solver_seeds=(0, 7))
        by_algorithm = {}
        for cell in report.cells:
            by_algorithm.setdefault(cell.algorithm, []).append(cell.seed)
        for spec in registry.algorithm_specs():
            expected = [0, 7] if spec.uses_seed else [0]
            assert by_algorithm[spec.name] == expected

    def test_filters_restrict_the_sweep(self):
        report = fuzz_verify(
            graphs=small_cells()[:1],
            families=[registry.SEQUENTIAL_FAMILY],
        )
        assert {cell.algorithm for cell in report.cells} == set(
            registry.algorithm_names(family=registry.SEQUENTIAL_FAMILY)
        )
        named = fuzz_verify(
            graphs=small_cells()[:1], algorithms=[registry.GREEDY_MIS]
        )
        assert {cell.algorithm for cell in named.cells} == {
            registry.GREEDY_MIS
        }

    def test_hostile_suite_all_green(self):
        report = fuzz_verify(scale=1)
        assert report.ok, report.format()
        assert len(report.cells) >= len(registry.algorithm_names()) * 8

    def test_governed_sweep_all_green(self):
        report = fuzz_verify(
            scale=1, governed=True, families=[registry.MPC_FAMILY]
        )
        assert report.governed
        assert report.ok, report.format()


class TestFailureCapture:
    def test_planted_invalid_output_is_caught(self, monkeypatch):
        # Replace the sequential MIS oracle's runner with one returning
        # two adjacent vertices — the independent validator must flag
        # the cell, and the sweep must keep going rather than raise.
        from repro.core.registry import RunPayload

        spec = registry.get_algorithm(registry.GREEDY_MIS)
        bad = dataclasses.replace(
            spec, runner=lambda ctx: RunPayload(members=[0, 1])
        )
        monkeypatch.setitem(registry._REGISTRY, registry.GREEDY_MIS, bad)
        report = fuzz_verify(
            graphs=small_cells(), algorithms=[registry.GREEDY_MIS]
        )
        assert [cell.status for cell in report.cells] == [FAIL, FAIL]
        assert all("independent" in cell.detail for cell in report.cells)
        assert not report.ok
        assert "FAIL" in report.format()

    def test_planted_overclaimed_beta_is_caught(self, monkeypatch):
        # A claimed_beta of 0 means "every vertex is a member" — the
        # real solver dominates at radius 1, so the validator refuses.
        spec = registry.get_algorithm(registry.DET_LUBY)
        bad = dataclasses.replace(spec, claimed_beta=lambda g, a, b: 0)
        monkeypatch.setitem(registry._REGISTRY, registry.DET_LUBY, bad)
        report = fuzz_verify(
            graphs=[("path-6", path_graph(6))],
            algorithms=[registry.DET_LUBY],
        )
        assert not report.ok
        assert "exceeds claimed" in report.failures[0].detail

    def test_passing_report_shape(self):
        report = fuzz_verify(
            graphs=[("path-6", path_graph(6))],
            algorithms=[registry.GREEDY_MIS],
        )
        (cell,) = report.cells
        assert cell.status == OK
        assert cell.detail == ""
        assert cell.output_size > 0
        assert "0 failures" in report.format()
