"""Before/after oracle for the registry/session refactor.

``tests/data/refactor_parity.json`` was captured by running the
*pre-refactor* drivers (hand-rolled dispatch in ``core/pipeline.py``, the
standalone simulator session in ``det_matching.solve_matching``) over the
E1 and E4 benchmark workloads and the matching smoke graphs.  These tests
replay every cell through the refactored registry/session path and
require bit-identical members, rounds, claimed (α, β), full
``metrics.summary()`` (plus counters), and per-phase round attribution.

If an intentional model-level change ever invalidates the oracle,
regenerate it from a commit whose behaviour is the new baseline — never
edit the JSON by hand.
"""

import json
from pathlib import Path

import pytest

from repro.core.det_matching import solve_matching
from repro.core.pipeline import solve_ruling_set
from repro.graph import generators as gen

ORACLE_PATH = Path(__file__).parent.parent / "data" / "refactor_parity.json"
ORACLE = json.loads(ORACLE_PATH.read_text())

# The exact workload constructions the oracle was captured with.
E1_WORKLOADS = {
    "er-0128": lambda: gen.gnp_random_graph(128, 16, 128, seed=128),
    "pl-0128": lambda: gen.chung_lu_power_law(128, seed=128),
}
E4_WORKLOADS = {
    "er-256": lambda: gen.gnp_random_graph(256, 16, 256, seed=4),
    "power-law-256": lambda: gen.chung_lu_power_law(256, seed=4),
    "tree-256": lambda: gen.random_tree(256, seed=4),
    "grid-16x16": lambda: gen.grid_graph(16, 16),
    "caterpillar": lambda: gen.caterpillar_graph(40, 5),
    "regular-24": lambda: gen.regular_graph(256, 24),
}
MATCHING_WORKLOADS = {
    "er-60": lambda: gen.gnp_random_graph(60, 1, 6, seed=99),
    "grid-8x8": lambda: gen.grid_graph(8, 8),
}
MATCHING_VARIANTS = {
    "det": dict(deterministic=True),
    "rand": dict(deterministic=False, seed=2),
}

_GRAPH_CACHE = {}


def _workload(experiment: str, name: str):
    key = (experiment, name)
    if key not in _GRAPH_CACHE:
        table = E1_WORKLOADS if experiment == "e1" else E4_WORKLOADS
        _GRAPH_CACHE[key] = table[name]()
    return _GRAPH_CACHE[key]


@pytest.mark.parametrize("cell", sorted(ORACLE["ruling"]))
def test_ruling_cell_bit_identical(cell):
    experiment, workload, algorithm = cell.split("/")
    graph = _workload(experiment, workload)
    result = solve_ruling_set(
        graph, algorithm=algorithm, beta=2, regime="sublinear"
    )
    expected = ORACLE["ruling"][cell]
    assert result.members == expected["members"]
    assert result.rounds == expected["rounds"]
    assert result.alpha == expected["alpha"]
    assert result.beta == expected["beta"]
    assert result.metrics == expected["metrics"]
    assert result.phase_rounds == expected["phase_rounds"]


@pytest.mark.parametrize("cell", sorted(ORACLE["matching"]))
def test_matching_cell_bit_identical(cell):
    workload, variant = cell.split("/")
    graph = MATCHING_WORKLOADS[workload]()
    matching, metrics = solve_matching(graph, **MATCHING_VARIANTS[variant])
    expected = ORACLE["matching"][cell]
    assert [list(edge) for edge in matching] == expected["matching"]
    assert metrics == expected["metrics"]


def test_oracle_covers_every_preexisting_mpc_algorithm():
    # The oracle pins every algorithm name that existed before the
    # refactor on at least one workload (sequential/LOCAL baselines are
    # exercised by their own deterministic unit tests).
    pinned = {cell.split("/")[2] for cell in ORACLE["ruling"]}
    assert {"det-ruling", "rand-ruling", "det-luby", "rand-luby",
            "greedy-mis"} <= pinned
    assert len(ORACLE["ruling"]) == 32
    assert len(ORACLE["matching"]) == 4
