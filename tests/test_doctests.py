"""Run every module's doctests — examples in docstrings must stay true."""

import doctest
import importlib
import pkgutil

import pytest

import repro


def all_repro_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        names.append(module_info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", all_repro_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{module_name}: {results.failed} doctest failures"
    )
