"""Tests for the deterministic bitwise-ID ruling set baseline."""

import pytest

from repro.core.verify import check_ruling_set, verify_ruling_set
from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.local.algorithms.agl_ruling import run_bitwise_ruling_set
from repro.util.mathx import ilog2_ceil


class TestBitwiseRulingSet:
    @pytest.mark.parametrize("make", [
        lambda: gen.path_graph(33),
        lambda: gen.cycle_graph(17),
        lambda: gen.complete_graph(9),
        lambda: gen.star_graph(20),
        lambda: gen.gnp_random_graph(80, 1, 8, seed=5),
        lambda: gen.random_tree(64, seed=2),
        lambda: gen.grid_graph(6, 7),
    ])
    def test_is_log_ruling_set(self, make):
        g = make()
        members, rounds = run_bitwise_ruling_set(g)
        beta = max(1, ilog2_ceil(max(2, g.num_vertices)))
        verify_ruling_set(g, members, alpha=2, beta=beta)
        assert rounds == beta

    def test_deterministic(self, small_er):
        a, _ = run_bitwise_ruling_set(small_er)
        b, _ = run_bitwise_ruling_set(small_er)
        assert a == b

    def test_edgeless_keeps_everyone(self):
        g = Graph.empty(6)
        members, _ = run_bitwise_ruling_set(g)
        assert members == list(range(6))

    def test_empty_graph(self):
        members, rounds = run_bitwise_ruling_set(Graph.empty(0))
        assert members == [] and rounds == 0

    def test_clique_leaves_single_member_or_few(self):
        # On a clique, survivors form an independent set => exactly one.
        members, _ = run_bitwise_ruling_set(gen.complete_graph(16))
        assert len(members) == 1

    def test_domination_tighter_than_bound_on_path(self):
        g = gen.path_graph(64)
        members, _ = run_bitwise_ruling_set(g)
        measured = check_ruling_set(g, members).measured_beta
        assert measured <= ilog2_ceil(64)
