"""Tests for the LOCAL-model Luby MIS baseline."""

import pytest

from repro.core.verify import verify_ruling_set
from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.local.algorithms.luby_mis import run_luby_mis


def assert_is_mis(graph, members):
    verify_ruling_set(graph, members, alpha=2, beta=1)


class TestLubyMIS:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_er_graph(self, small_er, seed):
        members, rounds = run_luby_mis(small_er, seed=seed)
        assert_is_mis(small_er, members)
        assert rounds >= 1

    def test_deterministic_given_seed(self, small_er):
        a, _ = run_luby_mis(small_er, seed=5)
        b, _ = run_luby_mis(small_er, seed=5)
        assert a == b

    def test_seed_changes_output(self, medium_er):
        a, _ = run_luby_mis(medium_er, seed=1)
        b, _ = run_luby_mis(medium_er, seed=2)
        assert a != b  # overwhelmingly likely on 150 vertices

    def test_clique(self):
        members, _ = run_luby_mis(gen.complete_graph(12), seed=0)
        assert len(members) == 1

    def test_star(self):
        g = gen.star_graph(30)
        members, _ = run_luby_mis(g, seed=0)
        assert_is_mis(g, members)

    def test_edgeless(self):
        g = Graph.empty(5)
        members, _ = run_luby_mis(g, seed=0)
        assert members == [0, 1, 2, 3, 4]

    def test_path(self):
        g = gen.path_graph(20)
        members, _ = run_luby_mis(g, seed=3)
        assert_is_mis(g, members)

    def test_round_count_logarithmic_rough(self):
        # Not a proof — a sanity band: rounds ≈ 2 per phase, phases ≈ log n.
        g = gen.gnp_random_graph(200, 1, 15, seed=8)
        _, rounds = run_luby_mis(g, seed=0)
        assert rounds <= 40
