"""CONGEST-mode tests: bandwidth accounting and baseline compliance."""

import pytest

from repro.errors import AlgorithmError, CongestViolationError
from repro.graph import generators as gen
from repro.local.algorithms.agl_ruling import BitwiseRulingSet
from repro.local.algorithms.luby_mis import IN_MIS, LubyMIS
from repro.local.network import (
    LocalNetwork,
    VertexAlgorithm,
    payload_words,
)


class WidePayload(VertexAlgorithm):
    """Broadcasts a payload of ``width`` words every round."""

    def __init__(self, width):
        self.width = width

    def init(self, v, degree):
        return 0

    def message(self, v, state, round_no):
        return tuple(range(self.width))

    def update(self, v, state, inbox, round_no):
        return state + 1

    def halted(self, v, state):
        return state >= 2


class TestPayloadWords:
    def test_scalars_and_tags(self):
        assert payload_words(5) == 1
        assert payload_words(None) == 0
        assert payload_words("in") == 1
        assert payload_words(("prio", (2**63, 7))) == 3

    def test_rejects_opaque(self):
        with pytest.raises(TypeError):
            payload_words(object())


class TestCongestMode:
    def test_wide_payload_faults(self):
        g = gen.cycle_graph(6)
        network = LocalNetwork(g, bandwidth_words=4)
        with pytest.raises(CongestViolationError):
            network.run(WidePayload(width=5))

    def test_fitting_payload_passes(self):
        g = gen.cycle_graph(6)
        network = LocalNetwork(g, bandwidth_words=4)
        result = network.run(WidePayload(width=4))
        assert result.completed
        assert result.max_message_words == 4

    def test_local_mode_unbounded(self):
        g = gen.cycle_graph(6)
        result = LocalNetwork(g).run(WidePayload(width=100))
        assert result.completed
        assert result.max_message_words == 100

    def test_bandwidth_validation(self):
        with pytest.raises(AlgorithmError):
            LocalNetwork(gen.cycle_graph(3), bandwidth_words=0)

    def test_message_count_accounting(self):
        g = gen.cycle_graph(5)  # 5 vertices, degree 2
        result = LocalNetwork(g).run(WidePayload(width=1))
        # 2 rounds x 5 vertices x degree 2 broadcasts.
        assert result.total_messages == 2 * 5 * 2


class TestBaselinesAreCongest:
    def test_luby_fits_constant_bandwidth(self, small_er):
        network = LocalNetwork(small_er, bandwidth_words=3)
        result = network.run(LubyMIS(seed=1))
        assert result.completed
        members = [
            v
            for v in small_er.vertices()
            if result.states[v].status == IN_MIS
        ]
        assert members  # a real MIS came out under CONGEST constraints

    def test_bitwise_ruling_fits_constant_bandwidth(self, small_er):
        algorithm = BitwiseRulingSet(small_er.num_vertices)
        network = LocalNetwork(small_er, bandwidth_words=2)
        result = network.run(algorithm, max_rounds=algorithm.bits)
        assert result.max_message_words <= 2
