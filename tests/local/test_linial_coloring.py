"""Tests for Linial colour reduction and the coloring-based MIS."""

import pytest

from repro.core.verify import verify_ruling_set
from repro.errors import AlgorithmError
from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.local.algorithms.linial_coloring import (
    mis_from_coloring,
    reduction_schedule,
    run_coloring_mis,
    run_linial_coloring,
)
from repro.local.network import LocalNetwork


def assert_proper(graph, colors):
    for u, v in graph.edges():
        assert colors[u] != colors[v], f"edge ({u},{v}) monochromatic"


GRAPHS = [
    ("path", lambda: gen.path_graph(200)),
    ("cycle", lambda: gen.cycle_graph(101)),
    ("tree", lambda: gen.random_tree(150, seed=2)),
    ("grid", lambda: gen.grid_graph(10, 12)),
    ("er", lambda: gen.gnp_random_graph(120, 1, 15, seed=3)),
    ("regular", lambda: gen.regular_graph(90, 6)),
]


class TestSchedule:
    def test_shrinks_palette(self):
        schedule = reduction_schedule(10_000, 4)
        palettes = [k for _, _, k in schedule]
        assert palettes == sorted(palettes, reverse=True)
        assert palettes[-1] < 10_000

    def test_log_star_length(self):
        # The schedule length is tiny even for huge n (log* behaviour).
        assert len(reduction_schedule(10**9, 4)) <= 6

    def test_empty_when_trivial(self):
        assert reduction_schedule(1, 1) == []


class TestLinialColoring:
    @pytest.mark.parametrize("name,make", GRAPHS)
    def test_proper_coloring(self, name, make):
        graph = make()
        colors, rounds, palette = run_linial_coloring(graph)
        assert_proper(graph, colors)
        assert all(0 <= c < palette for c in colors)

    @pytest.mark.parametrize("name,make", GRAPHS)
    def test_palette_quadratic_in_degree(self, name, make):
        graph = make()
        _, _, palette = run_linial_coloring(graph)
        delta = max(1, graph.max_degree())
        # O(Δ² log² Δ)-ish bound with a generous constant.
        assert palette <= 64 * delta * delta * max(
            1, delta.bit_length() ** 2
        )

    def test_round_count_small(self):
        graph = gen.path_graph(500)
        _, rounds, _ = run_linial_coloring(graph)
        assert rounds <= 6  # log* 500 plus slack

    def test_congest_compliant(self):
        # One colour word per round fits CONGEST.
        from repro.local.algorithms.linial_coloring import LinialColoring

        graph = gen.gnp_random_graph(80, 1, 10, seed=1)
        algorithm = LinialColoring(graph.num_vertices, graph.max_degree())
        network = LocalNetwork(graph, bandwidth_words=1)
        result = network.run(
            algorithm, max_rounds=len(algorithm.schedule)
        )
        assert result.max_message_words <= 1

    def test_empty_graph(self):
        colors, rounds, palette = run_linial_coloring(Graph.empty(0))
        assert colors == [] and rounds == 0


class TestColoringMIS:
    @pytest.mark.parametrize("name,make", GRAPHS)
    def test_mis_valid(self, name, make):
        graph = make()
        members, rounds, palette = run_coloring_mis(graph)
        verify_ruling_set(graph, members, alpha=2, beta=1)
        assert rounds <= 6 + palette

    def test_mis_from_trivial_coloring(self):
        graph = gen.path_graph(6)
        members, rounds = mis_from_coloring(graph, list(range(6)))
        verify_ruling_set(graph, members, alpha=2, beta=1)
        assert members[0] == 0  # id order = colour order here

    def test_rejects_wrong_length(self):
        with pytest.raises(AlgorithmError):
            mis_from_coloring(gen.path_graph(4), [0, 1])

    def test_deterministic(self):
        graph = gen.gnp_random_graph(90, 1, 9, seed=5)
        assert run_coloring_mis(graph) == run_coloring_mis(graph)
