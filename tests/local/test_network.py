"""Tests for the LOCAL-model round simulator."""

import pytest

from repro.errors import AlgorithmError
from repro.graph import generators as gen
from repro.local.network import (
    LocalNetwork,
    VertexAlgorithm,
    require_completed,
)


class FloodMin(VertexAlgorithm):
    """Every vertex learns the minimum id in its component (flooding)."""

    def init(self, v, degree):
        return {"best": v, "changed": True}

    def message(self, v, state, round_no):
        return state["best"] if state["changed"] else None

    def update(self, v, state, inbox, round_no):
        incoming = [payload for _, payload in inbox]
        best = min([state["best"]] + incoming)
        state["changed"] = best < state["best"]
        state["best"] = best
        return state

    def halted(self, v, state):
        return False  # runs for the fixed round budget


class HaltImmediately(VertexAlgorithm):
    def init(self, v, degree):
        return "done"

    def message(self, v, state, round_no):
        return None

    def update(self, v, state, inbox, round_no):
        return state

    def halted(self, v, state):
        return True


class TestNetwork:
    def test_flooding_converges_to_min(self):
        g = gen.cycle_graph(10)
        result = LocalNetwork(g).run(FloodMin(), max_rounds=10)
        assert all(state["best"] == 0 for state in result.states)

    def test_flood_needs_diameter_rounds(self):
        g = gen.path_graph(8)
        result = LocalNetwork(g).run(FloodMin(), max_rounds=3)
        # Vertex 7 is 7 hops from 0: after 3 rounds it cannot know 0.
        assert result.states[7]["best"] != 0

    def test_halts_immediately(self):
        g = gen.path_graph(5)
        result = LocalNetwork(g).run(HaltImmediately(), max_rounds=100)
        assert result.completed
        assert result.rounds == 0

    def test_round_budget_respected(self):
        g = gen.path_graph(4)
        result = LocalNetwork(g).run(FloodMin(), max_rounds=5)
        assert result.rounds == 5
        assert not result.completed

    def test_require_completed(self):
        g = gen.path_graph(4)
        result = LocalNetwork(g).run(FloodMin(), max_rounds=1)
        with pytest.raises(AlgorithmError):
            require_completed(result, "flooding")

    def test_empty_graph(self):
        from repro.graph.graph import Graph

        result = LocalNetwork(Graph.empty(0)).run(FloodMin(), max_rounds=3)
        assert result.completed
