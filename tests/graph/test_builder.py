"""Tests for GraphBuilder semantics (dedup, self-loop absorption, growth)."""

import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder


class TestBuilder:
    def test_deduplicates_orientations(self):
        b = GraphBuilder()
        b.add_edge(0, 3)
        b.add_edge(3, 0)
        assert b.num_edges == 1

    def test_drops_self_loops(self):
        b = GraphBuilder()
        b.add_edge(2, 2)
        assert b.num_edges == 0
        assert b.num_vertices == 3  # vertex set still grew

    def test_grows_vertex_set(self):
        b = GraphBuilder(num_vertices=2)
        b.add_edge(0, 7)
        assert b.num_vertices == 8

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphError):
            GraphBuilder().add_edge(-1, 0)

    def test_rejects_negative_initial_size(self):
        with pytest.raises(GraphError):
            GraphBuilder(num_vertices=-1)

    def test_has_edge(self):
        b = GraphBuilder()
        b.add_edge(1, 2)
        assert b.has_edge(2, 1)
        assert not b.has_edge(1, 3)

    def test_add_edges_bulk(self):
        b = GraphBuilder()
        b.add_edges([(0, 1), (1, 2), (0, 1)])
        assert b.num_edges == 2

    def test_build_preserves_isolated_prefix(self):
        b = GraphBuilder(num_vertices=5)
        b.add_edge(0, 1)
        g = b.build()
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_build_matches_edges(self):
        b = GraphBuilder()
        edges = [(0, 5), (5, 2), (2, 0)]
        b.add_edges(edges)
        g = b.build()
        assert set(g.edges()) == {(0, 2), (0, 5), (2, 5)}
