"""Tests for graph analysis routines (the verification ground truth)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GraphError, VertexError
from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.graph.properties import (
    UNREACHED,
    connected_components,
    degeneracy,
    degeneracy_ordering,
    degree_histogram,
    domination_radius,
    eccentricity,
    is_independent_set,
    multi_source_distances,
)


class TestDistances:
    def test_single_source_path(self, path4):
        assert multi_source_distances(path4, [0]) == [0, 1, 2, 3]

    def test_multi_source(self, path4):
        assert multi_source_distances(path4, [0, 3]) == [0, 1, 1, 0]

    def test_unreached(self):
        g = Graph.from_edges(3, [(0, 1)])
        assert multi_source_distances(g, [0]) == [0, 1, UNREACHED]

    def test_bad_source(self, path4):
        with pytest.raises(VertexError):
            multi_source_distances(path4, [5])


class TestIndependence:
    def test_independent(self, path4):
        assert is_independent_set(path4, [0, 2])
        assert is_independent_set(path4, [0, 3])
        assert is_independent_set(path4, [])

    def test_not_independent(self, path4):
        assert not is_independent_set(path4, [0, 1])

    def test_out_of_range(self, path4):
        with pytest.raises(VertexError):
            is_independent_set(path4, [7])


class TestDomination:
    def test_radius(self, path4):
        assert domination_radius(path4, [1]) == 2
        assert domination_radius(path4, [0, 3]) == 1
        assert domination_radius(path4, [0, 1, 2, 3]) == 0

    def test_empty_dominators(self, path4):
        with pytest.raises(GraphError):
            domination_radius(path4, [])

    def test_unreachable(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            domination_radius(g, [0])

    def test_empty_graph(self):
        assert domination_radius(Graph.empty(0), []) == 0


class TestComponents:
    def test_two_components(self):
        g = Graph.from_edges(5, [(0, 1), (2, 3)])
        assert connected_components(g) == [[0, 1], [2, 3], [4]]

    def test_connected(self, small_er):
        # The fixture graph is dense enough to be connected.
        assert len(connected_components(small_er)) == 1

    @given(st.integers(1, 30))
    def test_component_partition(self, n):
        g = gen.random_tree(n, seed=n)
        comps = connected_components(g)
        flattened = sorted(v for comp in comps for v in comp)
        assert flattened == list(range(n))


class TestEccentricityAndHistogram:
    def test_eccentricity_path(self, path4):
        assert eccentricity(path4, 0) == 3
        assert eccentricity(path4, 1) == 2

    def test_histogram(self, path4):
        assert degree_histogram(path4) == {1: 2, 2: 2}

    def test_histogram_total(self, small_er):
        assert sum(degree_histogram(small_er).values()) == small_er.num_vertices


class TestDegeneracy:
    def test_tree_is_1_degenerate(self):
        assert degeneracy(gen.random_tree(40, seed=1)) == 1

    def test_clique(self):
        assert degeneracy(gen.complete_graph(6)) == 5

    def test_cycle(self):
        assert degeneracy(gen.cycle_graph(9)) == 2

    def test_empty(self):
        assert degeneracy(Graph.empty(0)) == 0
        assert degeneracy(Graph.empty(4)) == 0

    def test_ordering_is_permutation(self, small_er):
        order = degeneracy_ordering(small_er)
        assert sorted(order) == list(small_er.vertices())

    def test_ordering_witnesses_degeneracy(self, small_er):
        # Each vertex's later-neighbours count is bounded by the degeneracy.
        order = degeneracy_ordering(small_er)
        position = {v: i for i, v in enumerate(order)}
        d = degeneracy(small_er)
        for v in small_er.vertices():
            later = sum(
                1 for u in small_er.neighbors(v) if position[u] > position[v]
            )
            assert later <= d
