"""Unit and property tests for the core Graph type."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GraphError, VertexError
from repro.graph.graph import Graph


def edge_list_strategy(max_n=25):
    """Random simple-graph edge sets with their vertex count."""
    return st.integers(2, max_n).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.sets(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).map(
                    lambda e: (min(e), max(e))
                ).filter(lambda e: e[0] != e[1]),
                max_size=n * 2,
            ),
        )
    )


class TestConstruction:
    def test_empty(self):
        g = Graph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0

    def test_basic(self, path4):
        assert path4.num_vertices == 4
        assert path4.num_edges == 3

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            Graph.from_edges(2, [(1, 1)])

    def test_rejects_duplicate(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(0, 1), (1, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(VertexError):
            Graph.from_edges(2, [(0, 2)])

    def test_rejects_negative_n(self):
        with pytest.raises(GraphError):
            Graph.from_edges(-1, [])

    def test_zero_vertices(self):
        g = Graph.empty(0)
        assert g.num_vertices == 0
        assert list(g.edges()) == []
        assert g.max_degree() == 0


class TestQueries:
    def test_neighbors_sorted(self):
        g = Graph.from_edges(4, [(2, 0), (2, 3), (2, 1)])
        assert list(g.neighbors(2)) == [0, 1, 3]

    def test_degree(self, path4):
        assert path4.degree(0) == 1
        assert path4.degree(1) == 2

    def test_degrees_list(self, path4):
        assert path4.degrees() == [1, 2, 2, 1]

    def test_has_edge(self, path4):
        assert path4.has_edge(0, 1)
        assert path4.has_edge(1, 0)
        assert not path4.has_edge(0, 2)
        assert not path4.has_edge(1, 1)

    def test_edges_each_once(self, path4):
        assert list(path4.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_max_degree(self, triangle):
        assert triangle.max_degree() == 2

    def test_vertex_range_check(self, path4):
        with pytest.raises(VertexError):
            path4.degree(4)
        with pytest.raises(VertexError):
            path4.neighbors(-1)


class TestDunder:
    def test_equality(self):
        a = Graph.from_edges(3, [(0, 1)])
        b = Graph.from_edges(3, [(0, 1)])
        c = Graph.from_edges(3, [(0, 2)])
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_repr(self, path4):
        assert repr(path4) == "Graph(n=4, m=3)"


class TestProperties:
    @given(edge_list_strategy())
    def test_roundtrip_edges(self, data):
        n, edges = data
        g = Graph.from_edges(n, sorted(edges))
        assert set(g.edges()) == edges
        assert g.num_edges == len(edges)

    @given(edge_list_strategy())
    def test_handshake_lemma(self, data):
        n, edges = data
        g = Graph.from_edges(n, sorted(edges))
        assert sum(g.degrees()) == 2 * g.num_edges

    @given(edge_list_strategy())
    def test_symmetry(self, data):
        n, edges = data
        g = Graph.from_edges(n, sorted(edges))
        for v in g.vertices():
            for u in g.neighbors(v):
                assert v in g.neighbors(u)
