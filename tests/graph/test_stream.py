"""Streaming edge-list ingest: pass-1 stats, sharding, hostile inputs.

The load-bearing claim is ingest parity: ``shard_edge_list`` followed by
``DistributedGraph.load_sharded`` must plant *bit-identical* machine
state to reading the whole file in memory and loading it under the same
owner map — streamed and in-memory runs are interchangeable.
"""

import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list, stream_edge_list, write_edge_list
from repro.graph.stream import scan_edge_list_stats, shard_edge_list
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import ADJ, OWNER, DistributedGraph
from repro.mpc.ownermap import HashOwnerMap, ModOwnerMap, edge_id
from repro.mpc.simulator import Simulator


def _write(tmp_path, text, name="g.txt"):
    path = tmp_path / name
    path.write_text(text, encoding="ascii")
    return path


class TestStreamEdgeList:
    def test_yields_header_then_edges(self, tmp_path):
        path = _write(tmp_path, "3 2\n0 1\n1 2\n")
        assert list(stream_edge_list(path)) == [(3, 2), (0, 1), (1, 2)]

    def test_comment_only_file_raises_no_header(self, tmp_path):
        path = _write(tmp_path, "# nothing\n# but comments\n")
        with pytest.raises(GraphError, match="no header"):
            list(stream_edge_list(path))

    def test_torn_final_line(self, tmp_path):
        # A partial write (no trailing newline, one token) must fail
        # loudly as a malformed edge line, not be silently dropped.
        path = _write(tmp_path, "3 2\n0 1\n1")
        with pytest.raises(GraphError, match="bad edge line"):
            list(stream_edge_list(path))

    def test_torn_final_token(self, tmp_path):
        path = _write(tmp_path, "3 2\n0 1\n1 2x")
        with pytest.raises(GraphError, match="bad edge token"):
            list(stream_edge_list(path))

    def test_negative_vertex_rejected(self, tmp_path):
        path = _write(tmp_path, "3 1\n0 -1\n")
        with pytest.raises(GraphError, match="non-negative"):
            list(stream_edge_list(path))

    def test_out_of_range_vertex_rejected(self, tmp_path):
        path = _write(tmp_path, "3 1\n0 5\n")
        with pytest.raises(GraphError, match="exceed declared"):
            list(stream_edge_list(path))


class TestScanStats:
    def test_counts_match_graph(self, tmp_path, small_er):
        path = tmp_path / "g.txt"
        write_edge_list(small_er, path)
        stats = scan_edge_list_stats(path)
        assert stats.num_vertices == small_er.num_vertices
        assert stats.declared_edges == small_er.num_edges
        assert stats.max_degree == small_er.max_degree()

    def test_duplicate_lines_overcount_degree(self, tmp_path):
        # Dedup needs memory pass 1 doesn't have: the degree estimate on
        # duplicated lines is an upper bound (never an undercount).
        path = _write(tmp_path, "3 2\n0 1\n1 0\n0 2\n")
        stats = scan_edge_list_stats(path)
        assert stats.max_degree >= 2

    def test_empty_graph(self, tmp_path):
        path = _write(tmp_path, "0 0\n")
        stats = scan_edge_list_stats(path)
        assert stats.num_vertices == 0
        assert stats.max_degree == 0


class TestShardEdgeList:
    def _parity_state(self, sim, dg):
        return [
            (dict(m.store[ADJ]), m.store[OWNER]) for m in sim.machines
        ]

    @pytest.mark.parametrize(
        "owner_factory",
        [
            lambda n, k: ModOwnerMap(n, k),
            lambda n, k: HashOwnerMap(n, k, seed=7),
        ],
    )
    def test_planted_state_bit_identical_to_in_memory_load(
        self, tmp_path, small_er, owner_factory
    ):
        path = tmp_path / "g.txt"
        write_edge_list(small_er, path)
        k = 6
        owner_map = owner_factory(small_er.num_vertices, k)
        cfg = MPCConfig(num_machines=k, memory_words=65536)

        with Simulator(cfg) as sim:
            DistributedGraph.load(sim, small_er, owner_map)
            expected = self._parity_state(sim, None)

        with shard_edge_list(path, owner_map) as sharded:
            assert sharded.num_edges == small_er.num_edges
            assert sharded.max_degree == small_er.max_degree()
            with Simulator(cfg) as sim:
                DistributedGraph.load_sharded(sim, sharded)
                streamed = self._parity_state(sim, None)

        assert streamed == expected

    def test_isolated_vertices_planted_as_empty_rows(self, tmp_path):
        path = _write(tmp_path, "5 1\n0 1\n")
        owner_map = ModOwnerMap(5, 2)
        with shard_edge_list(path, owner_map) as sharded:
            cfg = MPCConfig(num_machines=2, memory_words=1024)
            with Simulator(cfg) as sim:
                DistributedGraph.load_sharded(sim, sharded)
                adjs = [dict(m.store[ADJ]) for m in sim.machines]
        assert adjs[0] == {0: (1,), 2: (), 4: ()}
        assert adjs[1] == {1: (0,), 3: ()}

    def test_duplicate_orientations_match_reader(self, tmp_path):
        text = "3 2\n0 1\n1 0\n1 2\n2 1\n"
        path = _write(tmp_path, text)
        graph = read_edge_list(path)
        with shard_edge_list(path, ModOwnerMap(3, 2)) as sharded:
            assert sharded.num_edges == graph.num_edges == 2
            assert sharded.max_degree == graph.max_degree()

    def test_declared_count_mismatch_raises_and_cleans_up(self, tmp_path):
        path = _write(tmp_path, "3 3\n0 1\n1 2\n")
        with pytest.raises(GraphError, match="declared m=3 but read 2"):
            shard_edge_list(path, ModOwnerMap(3, 2))

    def test_checksum_invariant_under_line_order(self, tmp_path):
        a = _write(tmp_path, "4 3\n0 1\n1 2\n2 3\n", name="a.txt")
        b = _write(tmp_path, "4 3\n2 3\n1 0\n1 2\n", name="b.txt")
        with shard_edge_list(a, ModOwnerMap(4, 2)) as sa:
            with shard_edge_list(b, ModOwnerMap(4, 3)) as sb:
                assert sa.checksum == sb.checksum != 0

    def test_checksum_is_xor_of_edge_ids(self, tmp_path):
        path = _write(tmp_path, "4 2\n0 1\n2 3\n")
        with shard_edge_list(path, ModOwnerMap(4, 2)) as sharded:
            assert sharded.checksum == edge_id(0, 1) ^ edge_id(2, 3)

    def test_owner_map_size_mismatch_rejected(self, tmp_path):
        path = _write(tmp_path, "3 1\n0 1\n")
        with pytest.raises(GraphError, match="owner map covers"):
            shard_edge_list(path, ModOwnerMap(5, 2))

    def test_tiny_chunk_size_changes_nothing(self, tmp_path, small_er):
        path = tmp_path / "g.txt"
        write_edge_list(small_er, path)
        owner_map = ModOwnerMap(small_er.num_vertices, 4)
        with shard_edge_list(path, owner_map) as big:
            with shard_edge_list(path, owner_map, chunk_edges=1) as tiny:
                assert tiny.checksum == big.checksum
                assert tiny.num_edges == big.num_edges
                for mid in range(4):
                    assert tiny.read_shard(mid) == big.read_shard(mid)

    def test_bad_chunk_size_rejected(self, tmp_path):
        path = _write(tmp_path, "2 1\n0 1\n")
        with pytest.raises(GraphError, match="chunk_edges"):
            shard_edge_list(path, ModOwnerMap(2, 1), chunk_edges=0)

    def test_cleanup_is_idempotent(self, tmp_path):
        path = _write(tmp_path, "2 1\n0 1\n")
        sharded = shard_edge_list(path, ModOwnerMap(2, 1))
        sharded.cleanup()
        sharded.cleanup()
        assert sharded.read_shard(0) == {}


class TestSpillDirLifecycle:
    """An aborted ingest must never leak its ``repro-ingest-*`` dir.

    Regression: ``shard_edge_list`` only removed the spill directory on
    the declared-count-mismatch path; a raise mid-stream (malformed
    line, interrupt, full disk) left the directory and its spool files
    behind.  ``REPRO_SHARD_DIR`` makes the leak observable: every
    spill dir lands under a root we fully control.
    """

    def _leftovers(self, root):
        return sorted(p.name for p in root.glob("repro-ingest-*"))

    def test_count_mismatch_cleans_up(self, tmp_path, monkeypatch):
        root = tmp_path / "spill"
        monkeypatch.setenv("REPRO_SHARD_DIR", str(root))
        path = _write(tmp_path, "3 3\n0 1\n1 2\n")
        with pytest.raises(GraphError, match="declared m=3 but read 2"):
            shard_edge_list(path, ModOwnerMap(3, 2))
        assert self._leftovers(root) == []

    def test_malformed_line_mid_stream_cleans_up(self, tmp_path, monkeypatch):
        root = tmp_path / "spill"
        monkeypatch.setenv("REPRO_SHARD_DIR", str(root))
        path = _write(tmp_path, "4 3\n0 1\n1 2x\n2 3\n")
        with pytest.raises(GraphError, match="bad edge token"):
            shard_edge_list(path, ModOwnerMap(4, 2))
        assert self._leftovers(root) == []

    def test_interrupt_mid_ingest_cleans_up(self, tmp_path, monkeypatch):
        # KeyboardInterrupt is a BaseException: the cleanup must catch
        # wider than Exception to cover operator interrupts.
        root = tmp_path / "spill"
        monkeypatch.setenv("REPRO_SHARD_DIR", str(root))
        path = _write(tmp_path, "4 2\n0 1\n2 3\n")
        owner_map = ModOwnerMap(4, 2)
        calls = []

        class Interrupting:
            num_vertices = owner_map.num_vertices
            num_machines = owner_map.num_machines

            def owner_of(self, v):
                calls.append(v)
                if len(calls) > 2:
                    raise KeyboardInterrupt
                return owner_map.owner_of(v)

        with pytest.raises(KeyboardInterrupt):
            shard_edge_list(path, Interrupting())
        assert calls  # the ingest really was underway
        assert self._leftovers(root) == []

    def test_success_hands_dir_to_sharded_graph(self, tmp_path, monkeypatch):
        root = tmp_path / "spill"
        monkeypatch.setenv("REPRO_SHARD_DIR", str(root))
        path = _write(tmp_path, "3 2\n0 1\n1 2\n")
        with shard_edge_list(path, ModOwnerMap(3, 2)):
            assert len(self._leftovers(root)) == 1
        assert self._leftovers(root) == []


class TestReaderSingleMaterialization:
    def test_isolated_vertices_without_rebuild(self, tmp_path, monkeypatch):
        # Regression: the old reader padded isolated vertices by
        # rebuilding through Graph.from_edges — a second O(n + m)
        # materialization at peak.  The builder is now seeded with the
        # header's n, so exactly one Graph is ever constructed.
        path = _write(tmp_path, "5 1\n0 1\n")
        builds = []
        original = Graph.from_edges.__func__

        def counting(cls, *args, **kwargs):
            builds.append(1)
            return original(cls, *args, **kwargs)

        monkeypatch.setattr(Graph, "from_edges", classmethod(counting))
        graph = read_edge_list(path)
        assert graph.num_vertices == 5
        assert graph.degree(4) == 0
        assert sum(builds) == 1
