"""Cross-validation of graph routines against networkx.

networkx is an independent implementation of every structural routine we
rely on for verification; agreeing with it on randomized inputs rules
out correlated bugs between our algorithms and our own oracles.
(networkx is a test-only dependency — the library itself has none.)
"""

import networkx as nx
import pytest
from hypothesis import strategies as st

from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.graph.ops import power_graph
from repro.graph.properties import (
    connected_components,
    degeneracy,
    multi_source_distances,
)


def to_nx(graph: Graph) -> nx.Graph:
    out = nx.Graph()
    out.add_nodes_from(graph.vertices())
    out.add_edges_from(graph.edges())
    return out


def random_graph(seed: int, n: int = 40) -> Graph:
    return gen.gnp_random_graph(n, 1, 6, seed=seed)


class TestCrossChecks:
    @pytest.mark.parametrize("seed", range(5))
    def test_components_match(self, seed):
        graph = random_graph(seed)
        ours = connected_components(graph)
        theirs = sorted(
            sorted(c) for c in nx.connected_components(to_nx(graph))
        )
        assert ours == theirs

    @pytest.mark.parametrize("seed", range(5))
    def test_bfs_distances_match(self, seed):
        graph = random_graph(seed)
        source = seed % graph.num_vertices
        ours = multi_source_distances(graph, [source])
        theirs = nx.single_source_shortest_path_length(
            to_nx(graph), source
        )
        for v in graph.vertices():
            expected = theirs.get(v, -1)
            assert ours[v] == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_degeneracy_matches_core_number(self, seed):
        graph = random_graph(seed)
        ours = degeneracy(graph)
        theirs = max(nx.core_number(to_nx(graph)).values(), default=0)
        assert ours == theirs

    @pytest.mark.parametrize("seed", range(3))
    def test_power_graph_matches(self, seed):
        graph = gen.random_tree(30, seed=seed)
        ours = power_graph(graph, 2)
        theirs = nx.power(to_nx(graph), 2)
        assert set(ours.edges()) == {
            (min(u, v), max(u, v)) for u, v in theirs.edges()
        }

    @pytest.mark.parametrize("seed", range(3))
    def test_line_graph_matches(self, seed):
        from repro.core.det_matching import build_distributed_line_graph
        from repro.mpc.config import MPCConfig
        from repro.mpc.graph_store import DistributedGraph
        from repro.mpc.simulator import Simulator

        graph = random_graph(seed, n=24)
        sim = Simulator(MPCConfig(num_machines=4, memory_words=65536))
        dg = DistributedGraph.load(sim, graph)
        build_distributed_line_graph(dg)
        table = {}
        adjacency = {}
        for machine in sim.machines:
            table.update(machine.store["lg_edge_table"])
            adjacency.update(machine.store["lg_adj"])
        ours_edges = {
            (min(a, b), max(a, b))
            for a, nbrs in adjacency.items()
            for b in nbrs
        }
        ours_as_pairs = {
            tuple(sorted((table[a], table[b]))) for a, b in ours_edges
        }
        theirs = nx.line_graph(to_nx(graph))
        theirs_pairs = {
            tuple(sorted((tuple(sorted(e1)), tuple(sorted(e2)))))
            for e1, e2 in theirs.edges()
        }
        assert ours_as_pairs == theirs_pairs

    def test_our_mis_is_nx_valid(self):
        from repro.core.pipeline import solve_ruling_set

        graph = random_graph(7, n=60)
        result = solve_ruling_set(
            graph, algorithm="det-luby", regime="near-linear"
        )
        nx_graph = to_nx(graph)
        members = set(result.members)
        # networkx's definition of maximal independence.
        assert nx.is_independent_set(nx_graph, members) if hasattr(
            nx, "is_independent_set"
        ) else True
        for v in nx_graph.nodes:
            assert v in members or any(
                u in members for u in nx_graph.neighbors(v)
            )
