"""Hostile families: determinism, structure, and sweep-order identity."""

import pytest

from repro.analysis.sweep import SweepSpec, failures, run_sweep
from repro.core.registry import DET_RULING, GP_RULING
from repro.errors import GraphError
from repro.graph.generators import (
    components_then_giant,
    hostile_suite,
    relabeled_graph,
)
from repro.graph.graph import Graph


class TestDeterminism:
    def test_same_seed_byte_identical_edge_lists(self):
        for (name_a, graph_a), (name_b, graph_b) in zip(
            hostile_suite(scale=1, seed=3), hostile_suite(scale=1, seed=3)
        ):
            assert name_a == name_b
            assert list(graph_a.edges()) == list(graph_b.edges())
            assert graph_a.fingerprint() == graph_b.fingerprint()

    def test_seed_changes_the_seeded_cells(self):
        by_name_a = dict(hostile_suite(scale=1, seed=0))
        by_name_b = dict(hostile_suite(scale=1, seed=99))
        relabeled = "components-then-giant-relabeled"
        assert (
            by_name_a[relabeled].fingerprint()
            != by_name_b[relabeled].fingerprint()
        )

    def test_components_then_giant_deterministic_per_seed(self):
        a = components_then_giant(4, 3, 24, extra_edges=12, seed=5)
        b = components_then_giant(4, 3, 24, extra_edges=12, seed=5)
        c = components_then_giant(4, 3, 24, extra_edges=12, seed=6)
        assert list(a.edges()) == list(b.edges())
        assert list(a.edges()) != list(c.edges())


class TestStructure:
    def test_suite_names_are_unique_and_nonempty(self):
        cells = hostile_suite()
        names = [name for name, _ in cells]
        assert len(names) == len(set(names))
        assert all(graph.num_vertices > 0 for _, graph in cells)

    def test_scale_grows_the_cells(self):
        small = dict(hostile_suite(scale=1))
        large = dict(hostile_suite(scale=2))
        assert set(small) == set(large)
        assert all(
            large[name].num_vertices >= small[name].num_vertices
            for name in small
        )

    def test_invalid_scale_rejected(self):
        with pytest.raises(GraphError):
            hostile_suite(scale=0)

    def test_relabeled_preserves_the_degree_multiset(self):
        base = components_then_giant(4, 3, 24, extra_edges=12, seed=0)
        twin = relabeled_graph(base, seed=7)
        assert twin.num_vertices == base.num_vertices
        assert twin.num_edges == base.num_edges
        assert sorted(twin.degrees()) == sorted(base.degrees())

    def test_relabeling_with_identity_seedless_structure(self):
        # A permutation is a bijection: relabeling twice with different
        # seeds still preserves the degree multiset.
        base = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        once = relabeled_graph(base, seed=1)
        twice = relabeled_graph(once, seed=2)
        assert sorted(twice.degrees()) == sorted(base.degrees())

    def test_components_then_giant_ordering(self):
        # Small cliques occupy the low ids; no edge crosses from the
        # small-component id range into the giant component's range.
        graph = components_then_giant(3, 3, 12, extra_edges=4, seed=1)
        boundary = 3 * 3
        assert graph.num_vertices == boundary + 12
        for u, v in graph.edges():
            assert (u < boundary) == (v < boundary)


class TestSweepOrderIdentity:
    """--jobs N over the hostile suite is record-identical to serial."""

    def test_parallel_sweep_matches_serial(self):
        workloads = {
            name: (lambda g=graph: g)
            for name, graph in hostile_suite(scale=1)
        }
        spec = SweepSpec(
            experiment="hostile-sweep",
            workloads=workloads,
            algorithms=[DET_RULING, GP_RULING],
            beta=2,
            regime="sublinear",
        )
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=2)
        assert not failures(serial)
        assert serial == parallel  # meta (worker, wall) excluded by design
