"""Tests for graph transformations (subgraphs, powers, unions)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GraphError, VertexError
from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.graph.ops import (
    complement_graph,
    induced_subgraph,
    power_graph,
    relabel_dense,
    remove_vertices,
    union_disjoint,
)
from repro.graph.properties import multi_source_distances


class TestInducedSubgraph:
    def test_basic(self, path4):
        sub, old = induced_subgraph(path4, [1, 2, 3])
        assert old == [1, 2, 3]
        assert set(sub.edges()) == {(0, 1), (1, 2)}

    def test_empty_selection(self, path4):
        sub, old = induced_subgraph(path4, [])
        assert sub.num_vertices == 0
        assert old == []

    def test_duplicates_collapsed(self, path4):
        sub, old = induced_subgraph(path4, [2, 2, 1])
        assert old == [1, 2]

    def test_out_of_range(self, path4):
        with pytest.raises(VertexError):
            induced_subgraph(path4, [9])

    def test_remove_vertices(self, path4):
        sub, old = remove_vertices(path4, [0])
        assert old == [1, 2, 3]
        assert sub.num_edges == 2


class TestRelabelDense:
    def test_basic(self):
        g, old = relabel_dense(100, [(10, 50), (50, 99)])
        assert old == [10, 50, 99]
        assert set(g.edges()) == {(0, 1), (1, 2)}

    def test_out_of_range(self):
        with pytest.raises(VertexError):
            relabel_dense(5, [(0, 7)])


class TestPowerGraph:
    def test_square_of_path(self, path4):
        g2 = power_graph(path4, 2)
        assert set(g2.edges()) == {
            (0, 1), (0, 2), (1, 2), (1, 3), (2, 3),
        }

    def test_first_power_is_identity(self, small_er):
        assert power_graph(small_er, 1) == small_er

    def test_rejects_zero(self, path4):
        with pytest.raises(GraphError):
            power_graph(path4, 0)

    @given(st.integers(4, 12), st.integers(1, 3))
    def test_matches_bfs_distances(self, n, k):
        g = gen.cycle_graph(n)
        gk = power_graph(g, k)
        for v in g.vertices():
            dist = multi_source_distances(g, [v])
            expected = {u for u in g.vertices() if u != v and 0 < dist[u] <= k}
            assert set(gk.neighbors(v)) == expected


class TestUnionAndComplement:
    def test_union_disjoint(self, path4, triangle):
        g = union_disjoint([path4, triangle])
        assert g.num_vertices == 7
        assert g.num_edges == 6
        assert g.has_edge(4, 5)  # triangle shifted by 4

    def test_union_empty_list(self):
        assert union_disjoint([]).num_vertices == 0

    def test_complement_of_complete(self):
        g = complement_graph(gen.complete_graph(5))
        assert g.num_edges == 0

    def test_complement_involution(self, small_er):
        assert complement_graph(complement_graph(small_er)) == small_er
