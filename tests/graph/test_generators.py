"""Tests for the workload generators: shapes, determinism, validity."""

import pytest

from repro.errors import GraphError
from repro.graph import generators as gen
from repro.graph.properties import (
    connected_components,
    domination_radius,
    is_independent_set,
)


class TestStructured:
    def test_path(self):
        g = gen.path_graph(5)
        assert g.num_edges == 4
        assert g.degrees() == [1, 2, 2, 2, 1]

    def test_path_trivial(self):
        assert gen.path_graph(1).num_edges == 0
        assert gen.path_graph(0).num_vertices == 0

    def test_cycle(self):
        g = gen.cycle_graph(6)
        assert g.num_edges == 6
        assert all(d == 2 for d in g.degrees())

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            gen.cycle_graph(2)

    def test_complete(self):
        g = gen.complete_graph(6)
        assert g.num_edges == 15
        assert all(d == 5 for d in g.degrees())

    def test_star(self):
        g = gen.star_graph(7)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 1 for v in range(1, 7))

    def test_grid(self):
        g = gen.grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_binary_tree(self):
        g = gen.complete_binary_tree(7)
        assert g.num_edges == 6
        assert g.degree(0) == 2
        assert len(connected_components(g)) == 1

    def test_caterpillar(self):
        g = gen.caterpillar_graph(4, 2)
        assert g.num_vertices == 4 + 8
        assert g.num_edges == 3 + 8

    def test_circulant_is_cycle(self):
        assert gen.circulant_graph(6, [1]) == gen.cycle_graph(6)

    def test_circulant_bad_offset(self):
        with pytest.raises(GraphError):
            gen.circulant_graph(6, [4])

    def test_regular_degrees(self):
        for n, d in [(10, 4), (12, 5), (9, 2)]:
            g = gen.regular_graph(n, d)
            assert all(deg == d for deg in g.degrees())

    def test_regular_odd_parity_rejected(self):
        with pytest.raises(GraphError):
            gen.regular_graph(9, 3)

    def test_regular_zero(self):
        assert gen.regular_graph(5, 0).num_edges == 0


class TestSeededFamilies:
    def test_gnp_deterministic(self):
        a = gen.gnp_random_graph(50, 1, 10, seed=3)
        b = gen.gnp_random_graph(50, 1, 10, seed=3)
        assert a == b

    def test_gnp_seed_sensitivity(self):
        a = gen.gnp_random_graph(50, 1, 10, seed=3)
        b = gen.gnp_random_graph(50, 1, 10, seed=4)
        assert a != b

    def test_gnp_density_rough(self):
        g = gen.gnp_random_graph(100, 1, 10, seed=1)
        expected = 100 * 99 / 2 / 10
        assert 0.6 * expected <= g.num_edges <= 1.4 * expected

    def test_gnm_exact_edges(self):
        g = gen.gnm_random_graph(40, 100, seed=2)
        assert g.num_edges == 100

    def test_gnm_too_many_edges(self):
        with pytest.raises(GraphError):
            gen.gnm_random_graph(4, 7)

    def test_gnm_error_names_the_bad_value(self):
        with pytest.raises(
            GraphError,
            match=r"m=100 exceeds the simple-graph maximum 10 for n=5",
        ):
            gen.gnm_random_graph(5, 100)
        with pytest.raises(GraphError, match=r"m must be >= 0, got m=-3"):
            gen.gnm_random_graph(5, -3)

    def test_gnp_zero_denominator_names_the_bad_value(self):
        with pytest.raises(GraphError, match=r"got p_den=0"):
            gen.gnp_random_graph(10, 1, 0)
        with pytest.raises(GraphError, match=r"got p_den=-2"):
            gen.gnp_random_graph(10, 1, -2)

    def test_gnp_negative_numerator_names_the_bad_value(self):
        with pytest.raises(GraphError, match=r"got p_num=-1"):
            gen.gnp_random_graph(10, -1, 2)

    def test_gnp_probability_above_one_names_the_fraction(self):
        with pytest.raises(
            GraphError, match=r"must be <= 1, got 3/2"
        ):
            gen.gnp_random_graph(10, 3, 2)

    def test_random_tree_is_tree(self):
        g = gen.random_tree(60, seed=5)
        assert g.num_edges == 59
        assert len(connected_components(g)) == 1

    def test_power_law_deterministic(self):
        a = gen.chung_lu_power_law(60, seed=1)
        b = gen.chung_lu_power_law(60, seed=1)
        assert a == b

    def test_power_law_skew(self):
        g = gen.chung_lu_power_law(120, seed=1)
        degrees = sorted(g.degrees(), reverse=True)
        # Head should be much heavier than the tail.
        assert degrees[0] >= 4 * max(1, degrees[len(degrees) // 2])

    def test_power_law_rejects_flat_exponent(self):
        with pytest.raises(GraphError):
            gen.chung_lu_power_law(10, exponent_tenths=10)

    def test_bipartite_structure(self):
        g = gen.random_bipartite(10, 12, 1, 3, seed=4)
        assert g.num_vertices == 22
        for u, v in g.edges():
            assert (u < 10) != (v < 10)


class TestPlanted:
    def test_plant_is_ruling_set(self):
        g, centers = gen.planted_ruling_set_graph(6, 3, 2, seed=9)
        assert is_independent_set(g, centers)
        assert domination_radius(g, centers) <= 2

    def test_plant_shape(self):
        g, centers = gen.planted_ruling_set_graph(4, 2, 3, seed=0)
        assert len(centers) == 4
        assert g.num_vertices == 4 * (1 + 2 * 3)

    def test_plant_rejects_bad_args(self):
        with pytest.raises(GraphError):
            gen.planted_ruling_set_graph(0, 1, 1)


class TestRmatAndBarbell:
    def test_rmat_shape(self):
        g = gen.rmat_graph(7, edge_factor=6, seed=2)
        assert g.num_vertices == 128
        assert g.num_edges <= 6 * 128

    def test_rmat_deterministic(self):
        assert gen.rmat_graph(6, seed=4) == gen.rmat_graph(6, seed=4)

    def test_rmat_skew(self):
        g = gen.rmat_graph(8, edge_factor=8, seed=1)
        degrees = sorted(g.degrees(), reverse=True)
        # The head is far heavier than the median: R-MAT's signature.
        assert degrees[0] >= 5 * max(1, degrees[len(degrees) // 2])

    def test_rmat_validation(self):
        with pytest.raises(GraphError):
            gen.rmat_graph(0)
        with pytest.raises(GraphError):
            gen.rmat_graph(4, quadrants=(50, 20, 20, 20))

    def test_barbell_structure(self):
        g = gen.barbell_graph(4, 2)
        assert g.num_vertices == 10
        # Two K4s (6 edges each) + path of 3 edges.
        assert g.num_edges == 6 + 6 + 3
        from repro.graph.properties import connected_components

        assert len(connected_components(g)) == 1

    def test_barbell_no_path(self):
        g = gen.barbell_graph(3, 0)
        assert g.num_vertices == 6
        assert g.num_edges == 3 + 3 + 1

    def test_barbell_validation(self):
        with pytest.raises(GraphError):
            gen.barbell_graph(1, 2)
