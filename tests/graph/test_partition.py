"""Tests for machine partitions (plans and compact owner maps)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MPCConfigError
from repro.graph import generators as gen
from repro.graph.partition import (
    PartitionPlan,
    balanced_edge_partition,
    hash_partition,
    round_robin_partition,
)
from repro.mpc.ownermap import (
    HashOwnerMap,
    ModOwnerMap,
    RangeOwnerMap,
    balanced_range_map,
    deserialize_owner_map,
)


class TestPartitionPlan:
    def test_validation(self):
        with pytest.raises(MPCConfigError):
            PartitionPlan(owner=[0, 5], num_machines=2)
        with pytest.raises(MPCConfigError):
            PartitionPlan(owner=[], num_machines=0)

    def test_vertices_of(self):
        plan = PartitionPlan(owner=[0, 1, 0], num_machines=2)
        assert plan.vertices_of(0) == [0, 2]
        assert plan.vertices_of(1) == [1]

    def test_loads(self, path4):
        plan = balanced_edge_partition(path4, 2)
        loads = plan.machine_loads(path4)
        assert sum(loads) == 2 * path4.num_edges


class TestBalancedPartition:
    @given(st.integers(1, 8), st.integers(5, 60))
    def test_balance_bound(self, k, n):
        g = gen.gnp_random_graph(n, 1, 4, seed=n)
        plan = balanced_edge_partition(g, k)
        total = 2 * g.num_edges + n
        loads = [
            sum(g.degree(v) + 1 for v in plan.vertices_of(m))
            for m in range(k)
        ]
        assert sum(loads) == total
        assert max(loads) <= total // k + g.max_degree() + 2

    def test_contiguous(self, small_er):
        plan = balanced_edge_partition(small_er, 4)
        assert plan.owner == sorted(plan.owner)


class TestOwnerMaps:
    def test_range_map_matches_plan(self, small_er):
        k = 5
        owner_map = balanced_range_map(small_er, k)
        plan = balanced_edge_partition(small_er, k)
        for v in small_er.vertices():
            assert owner_map.owner_of(v) == plan.owner[v]

    def test_range_owned_by(self):
        owner_map = RangeOwnerMap((0, 2, 5))
        assert list(owner_map.owned_by(0)) == [0, 1]
        assert list(owner_map.owned_by(1)) == [2, 3, 4]

    def test_range_validation(self):
        with pytest.raises(MPCConfigError):
            RangeOwnerMap((1, 2))
        with pytest.raises(MPCConfigError):
            RangeOwnerMap((0, 3, 2))

    def test_mod_map(self):
        owner_map = ModOwnerMap(num_vertices=7, num_machines=3)
        assert owner_map.owner_of(5) == 2
        assert list(owner_map.owned_by(1)) == [1, 4]

    def test_hash_map_in_range(self):
        owner_map = HashOwnerMap(num_vertices=50, num_machines=7, seed=3)
        for v in range(50):
            assert 0 <= owner_map.owner_of(v) < 7

    def test_hash_map_partition(self):
        owner_map = HashOwnerMap(num_vertices=30, num_machines=4, seed=1)
        owned = sorted(v for m in range(4) for v in owner_map.owned_by(m))
        assert owned == list(range(30))

    @pytest.mark.parametrize("factory", [
        lambda: RangeOwnerMap((0, 3, 8)),
        lambda: ModOwnerMap(num_vertices=8, num_machines=3),
        lambda: HashOwnerMap(num_vertices=8, num_machines=3, seed=5),
    ])
    def test_serialize_roundtrip(self, factory):
        owner_map = factory()
        restored = deserialize_owner_map(owner_map.serialize())
        for v in range(8):
            assert restored.owner_of(v) == owner_map.owner_of(v)

    def test_out_of_range_rejected(self):
        owner_map = ModOwnerMap(num_vertices=4, num_machines=2)
        with pytest.raises(MPCConfigError):
            owner_map.owner_of(4)


class TestOtherPartitions:
    def test_round_robin(self):
        plan = round_robin_partition(5, 2)
        assert plan.owner == [0, 1, 0, 1, 0]

    def test_hash_partition_valid(self, small_er):
        plan = hash_partition(small_er, 3, seed=2)
        assert len(plan.owner) == small_er.num_vertices
        assert all(0 <= m < 3 for m in plan.owner)

    def test_hash_partition_seed_sensitivity(self, small_er):
        a = hash_partition(small_er, 3, seed=1)
        b = hash_partition(small_er, 3, seed=2)
        assert a.owner != b.owner
