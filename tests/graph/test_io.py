"""Round-trip and validation tests for edge-list persistence."""

import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list, write_edge_list


class TestRoundTrip:
    def test_simple(self, tmp_path, small_er):
        target = tmp_path / "g.txt"
        write_edge_list(small_er, target)
        assert read_edge_list(target) == small_er

    def test_isolated_vertices_preserved(self, tmp_path):
        g = Graph.from_edges(6, [(0, 1)])
        target = tmp_path / "g.txt"
        write_edge_list(g, target)
        assert read_edge_list(target).num_vertices == 6

    def test_empty_graph(self, tmp_path):
        g = Graph.empty(3)
        target = tmp_path / "g.txt"
        write_edge_list(g, target)
        loaded = read_edge_list(target)
        assert loaded.num_vertices == 3
        assert loaded.num_edges == 0


class TestParsing:
    def test_comments_and_blank_lines(self, tmp_path):
        target = tmp_path / "g.txt"
        target.write_text("# comment\n\n3 1\n# another\n0 2\n")
        g = read_edge_list(target)
        assert g.has_edge(0, 2)

    def test_missing_header(self, tmp_path):
        target = tmp_path / "g.txt"
        target.write_text("# only comments\n")
        with pytest.raises(GraphError):
            read_edge_list(target)

    def test_bad_edge_line(self, tmp_path):
        target = tmp_path / "g.txt"
        target.write_text("2 1\n0 1 9\n")
        with pytest.raises(GraphError):
            read_edge_list(target)

    def test_edge_count_mismatch(self, tmp_path):
        target = tmp_path / "g.txt"
        target.write_text("3 2\n0 1\n")
        with pytest.raises(GraphError):
            read_edge_list(target)

    def test_vertex_overflow(self, tmp_path):
        target = tmp_path / "g.txt"
        target.write_text("2 1\n0 5\n")
        with pytest.raises(GraphError):
            read_edge_list(target)

    def test_malformed_endpoint_token(self, tmp_path):
        # Regression: non-numeric tokens used to escape as a bare
        # ValueError from int(); they must surface as GraphError with
        # the offending line in the message.
        target = tmp_path / "g.txt"
        target.write_text("2 1\n0 x\n")
        with pytest.raises(GraphError, match="'x'"):
            read_edge_list(target)

    def test_malformed_header_token(self, tmp_path):
        target = tmp_path / "g.txt"
        target.write_text("two 1\n0 1\n")
        with pytest.raises(GraphError, match="'two'"):
            read_edge_list(target)
