"""Stateful property testing of GraphBuilder against a model set.

Hypothesis drives arbitrary interleavings of edge additions and checks
the builder against a plain Python set model, then verifies the built
graph's invariants (symmetry, handshake lemma, dedup).
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder

VERTICES = st.integers(0, 30)


class BuilderMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.builder = GraphBuilder()
        self.model = set()
        self.max_vertex = -1

    @rule(u=VERTICES, v=VERTICES)
    def add_edge(self, u, v):
        self.builder.add_edge(u, v)
        self.max_vertex = max(self.max_vertex, u, v)
        if u != v:
            self.model.add((min(u, v), max(u, v)))

    @rule(u=VERTICES, v=VERTICES)
    def query_has_edge(self, u, v):
        expected = (min(u, v), max(u, v)) in self.model
        assert self.builder.has_edge(u, v) == expected

    @invariant()
    def counts_match_model(self):
        assert self.builder.num_edges == len(self.model)
        assert self.builder.num_vertices == self.max_vertex + 1

    @invariant()
    def build_is_consistent(self):
        graph = self.builder.build()
        assert set(graph.edges()) == self.model
        assert sum(graph.degrees()) == 2 * len(self.model)
        for v in graph.vertices():
            for u in graph.neighbors(v):
                assert v in graph.neighbors(u)


BuilderMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
TestBuilderStateful = BuilderMachine.TestCase
