"""Content-addressed graph fingerprints and O(1) re-hashing.

Regression suite for the ``Graph.__hash__`` hot-path fix: hashing used
to rebuild ``tuple(indptr)`` / ``tuple(indices)`` on every call, making
any dict-keyed-by-Graph loop quadratic.  The digest is now computed once
and cached on the instance; these tests pin that structurally (the digest
helper must not run a second time) rather than by timing.
"""

import pickle

import pytest

import repro.graph.graph as graph_module
from repro.graph.graph import Graph


@pytest.fixture
def path_graph():
    return Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])


class TestFingerprint:
    def test_equal_graphs_share_fingerprint(self, path_graph):
        twin = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert twin == path_graph
        assert twin.fingerprint() == path_graph.fingerprint()
        assert hash(twin) == hash(path_graph)

    def test_different_graphs_differ(self, path_graph):
        other = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (2, 4)])
        assert other.fingerprint() != path_graph.fingerprint()

    def test_fingerprint_is_hex_sha256(self, path_graph):
        fp = path_graph.fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # parses as hex

    def test_fingerprint_stable_across_pickle(self, path_graph):
        fp = path_graph.fingerprint()
        clone = pickle.loads(pickle.dumps(path_graph))
        assert clone.fingerprint() == fp

    def test_fingerprint_of_empty_graph(self):
        assert Graph.empty(0).fingerprint() != Graph.empty(1).fingerprint()


class TestHashIsCached:
    def test_second_hash_does_not_recompute_digest(
        self, path_graph, monkeypatch
    ):
        calls = {"n": 0}
        real = graph_module._csr_digest

        def counting(indptr, indices):
            calls["n"] += 1
            return real(indptr, indices)

        monkeypatch.setattr(graph_module, "_csr_digest", counting)
        fresh = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        hash(fresh)
        assert calls["n"] == 1
        # Re-hashing and re-fingerprinting must reuse the cached digest.
        hash(fresh)
        fresh.fingerprint()
        hash(fresh)
        assert calls["n"] == 1

    def test_dict_key_loop_hashes_once(self, monkeypatch):
        calls = {"n": 0}
        real = graph_module._csr_digest

        def counting(indptr, indices):
            calls["n"] += 1
            return real(indptr, indices)

        monkeypatch.setattr(graph_module, "_csr_digest", counting)
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        table = {g: 0}
        for i in range(50):
            table[g] = table[g] + 1  # two hashes per iteration, 0 digests
        assert table[g] == 50
        assert calls["n"] == 1
