"""Shared fixtures: canonical small graphs and MPC configurations."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.graph import Graph
from repro.mpc.config import MPCConfig
from repro.mpc.simulator import Simulator


@pytest.fixture
def path4() -> Graph:
    """The path 0-1-2-3."""
    return generators.path_graph(4)


@pytest.fixture
def triangle() -> Graph:
    """The 3-cycle."""
    return generators.cycle_graph(3)


@pytest.fixture
def small_er() -> Graph:
    """A fixed 60-vertex Erdős–Rényi graph (same in every test run)."""
    return generators.gnp_random_graph(60, 1, 6, seed=99)


@pytest.fixture
def medium_er() -> Graph:
    """A fixed 150-vertex Erdős–Rényi graph."""
    return generators.gnp_random_graph(150, 1, 12, seed=42)


@pytest.fixture
def sim8() -> Simulator:
    """A generic 8-machine simulator with comfortable memory."""
    return Simulator(MPCConfig(num_machines=8, memory_words=4096))


def make_sim_for(graph: Graph, regime: str = "near-linear") -> Simulator:
    """Simulator configured for a specific graph (helper, not a fixture)."""
    if regime == "near-linear":
        cfg = MPCConfig.near_linear(
            graph.num_vertices, graph.num_edges, max_degree=graph.max_degree()
        )
    else:
        cfg = MPCConfig.sublinear(
            graph.num_vertices, graph.num_edges,
            max_degree=graph.max_degree(),
        )
    return Simulator(cfg)
