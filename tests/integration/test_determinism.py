"""Bit-for-bit determinism: the headline property of the whole library.

The deterministic algorithms must produce the identical member set, round
count, and communication metrics on every run; the randomized baselines
must do the same for a fixed seed.
"""

import pytest

from repro.core.pipeline import solve_ruling_set
from repro.graph import generators as gen


def run_twice(graph, **kwargs):
    first = solve_ruling_set(graph, **kwargs)
    second = solve_ruling_set(graph, **kwargs)
    return first, second


@pytest.mark.parametrize("algorithm", ["det-ruling", "det-luby"])
def test_deterministic_members_and_rounds(algorithm):
    graph = gen.gnp_random_graph(130, 1, 10, seed=21)
    a, b = run_twice(graph, algorithm=algorithm, regime="sublinear")
    assert a.members == b.members
    assert a.rounds == b.rounds
    assert a.metrics == b.metrics


@pytest.mark.parametrize("algorithm", ["rand-ruling", "rand-luby"])
def test_randomized_reproducible_with_seed(algorithm):
    graph = gen.gnp_random_graph(130, 1, 10, seed=22)
    a, b = run_twice(graph, algorithm=algorithm, seed=5)
    assert a.members == b.members
    assert a.rounds == b.rounds


def test_deterministic_insensitive_to_seed_argument():
    # The deterministic path must ignore the seed parameter entirely.
    graph = gen.gnp_random_graph(100, 1, 9, seed=23)
    a = solve_ruling_set(graph, algorithm="det-ruling", seed=1)
    b = solve_ruling_set(graph, algorithm="det-ruling", seed=999)
    assert a.members == b.members
    assert a.rounds == b.rounds


def test_phase_attribution_stable():
    graph = gen.gnp_random_graph(100, 1, 9, seed=24)
    a, b = run_twice(graph, algorithm="det-ruling")
    assert a.phase_rounds == b.phase_rounds
