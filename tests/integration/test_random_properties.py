"""Hypothesis-driven end-to-end properties on random graphs.

For arbitrary small random graphs (structure chosen by hypothesis), the
deterministic algorithms must produce verified outputs, respect the
model budgets, and be reproducible.  These tests catch interactions the
curated workloads miss (disconnected graphs, isolated vertices, odd
degree mixes).
"""

from hypothesis import given, settings, strategies as st

from repro.core.pipeline import solve_ruling_set
from repro.core.verify import check_ruling_set
from repro.graph.graph import Graph


@st.composite
def random_graphs(draw, max_n=36):
    n = draw(st.integers(1, max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(
            st.sampled_from(possible) if possible else st.nothing(),
            unique=True,
            max_size=min(len(possible), 3 * n),
        )
        if possible
        else st.just([])
    )
    return Graph.from_edges(n, edges)


@settings(max_examples=15, deadline=None)
@given(random_graphs())
def test_det_ruling_verified_on_arbitrary_graphs(graph):
    result = solve_ruling_set(
        graph, algorithm="det-ruling", regime="near-linear"
    )
    check = check_ruling_set(graph, result.members)
    assert check.independent_at == 2
    assert check.measured_beta <= 2


@settings(max_examples=15, deadline=None)
@given(random_graphs())
def test_det_luby_is_maximal_on_arbitrary_graphs(graph):
    result = solve_ruling_set(
        graph, algorithm="det-luby", regime="near-linear"
    )
    members = set(result.members)
    # Maximality: every non-member has a member neighbour.
    for v in graph.vertices():
        if v not in members:
            assert any(u in members for u in graph.neighbors(v))


@settings(max_examples=10, deadline=None)
@given(random_graphs(max_n=24), st.integers(2, 4))
def test_beta_parameter_never_violated(graph, beta):
    result = solve_ruling_set(
        graph, algorithm="det-ruling", beta=beta, regime="near-linear"
    )
    assert check_ruling_set(graph, result.members).measured_beta <= beta


@settings(max_examples=10, deadline=None)
@given(random_graphs(max_n=24))
def test_budget_never_exceeded(graph):
    result = solve_ruling_set(
        graph, algorithm="det-ruling", regime="near-linear"
    )
    assert (
        result.metrics["peak_memory_words"] <= result.metrics["memory_words"]
    )
    assert (
        result.metrics["max_words_received"]
        <= result.metrics["memory_words"]
    )
