"""End-to-end matrix: generators × algorithms × regimes, all verified.

Every cell runs a full pipeline — config, simulator, distributed load,
algorithm, collection — and the pipeline's built-in verification checks
2-independence and β-domination against sequential BFS ground truth.
"""

import pytest

from repro.core.pipeline import solve_ruling_set
from repro.graph import generators as gen

WORKLOADS = {
    "er-sparse": lambda: gen.gnp_random_graph(120, 1, 20, seed=1),
    "er-dense": lambda: gen.gnp_random_graph(80, 1, 5, seed=2),
    "power-law": lambda: gen.chung_lu_power_law(100, seed=3),
    "tree": lambda: gen.random_tree(100, seed=4),
    "grid": lambda: gen.grid_graph(8, 9),
    "star": lambda: gen.star_graph(60),
    "caterpillar": lambda: gen.caterpillar_graph(12, 4),
    "regular": lambda: gen.regular_graph(60, 8),
}

MPC_ALGS = ["det-ruling", "rand-ruling", "det-luby", "rand-luby"]


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("algorithm", MPC_ALGS)
def test_mpc_matrix_sublinear(workload, algorithm):
    graph = WORKLOADS[workload]()
    result = solve_ruling_set(
        graph, algorithm=algorithm, regime="sublinear"
    )
    assert result.size >= 1
    assert result.rounds >= 1
    assert (
        result.metrics["peak_memory_words"]
        <= result.metrics["memory_words"]
    )


@pytest.mark.parametrize("workload", ["er-sparse", "power-law", "tree"])
@pytest.mark.parametrize("algorithm", MPC_ALGS)
def test_mpc_matrix_near_linear(workload, algorithm):
    graph = WORKLOADS[workload]()
    result = solve_ruling_set(
        graph, algorithm=algorithm, regime="near-linear"
    )
    assert result.size >= 1


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_beta_three_everywhere(workload):
    graph = WORKLOADS[workload]()
    result = solve_ruling_set(
        graph, algorithm="det-ruling", beta=3, regime="sublinear"
    )
    assert result.size >= 1


def test_planted_instance_full_pipeline():
    graph, centers = gen.planted_ruling_set_graph(8, 4, 2, seed=7)
    result = solve_ruling_set(graph, algorithm="det-ruling", beta=2)
    # The algorithm's set need not equal the plant, but both must verify
    # and have comparable size (the plant is a 2-ruling set too).
    assert result.size >= 1
