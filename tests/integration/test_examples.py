"""Smoke tests: every example script runs end-to-end at a small size.

Examples are part of the public deliverable; these tests execute each
one's ``main()`` with reduced parameters so a refactor that breaks an
example fails CI, not a reader.
"""

import importlib.util
import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main(n=80, seed=3)
        out = capsys.readouterr().out
        assert "ruling set size:" in out
        assert "MPC rounds:" in out

    def test_wireless_scheduling(self, capsys):
        load_example("wireless_scheduling").main(rows=8, cols=8)
        out = capsys.readouterr().out
        assert "cluster heads" in out
        assert "verified" in out

    def test_network_backbone(self, capsys):
        load_example("network_backbone").main(n=128)
        out = capsys.readouterr().out
        assert "landmarks" in out

    def test_derandomization_demo(self, capsys):
        load_example("derandomization_demo").main(n=40)
        out = capsys.readouterr().out
        assert "ACCEPT" in out
        assert "committed seed" in out

    def test_switch_scheduling(self, capsys):
        load_example("switch_scheduling").main(ports=10)
        out = capsys.readouterr().out
        assert "drained" in out
