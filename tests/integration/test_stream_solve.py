"""End-to-end out-of-core solves: file in, verified ruling set out.

``solve_ruling_set_stream`` chains every piece of the shard path —
pass-1 sizing, pass-2 ingest, shard-backend execution, harvest-based
collection — so these tests are the overlap oracle the acceptance
criterion names: streamed runs must be bit-identical to in-memory serial
runs of the same algorithm under the same owner map.
"""

import pytest

from repro.core import registry
from repro.core.pipeline import solve_ruling_set, solve_ruling_set_stream
from repro.core.registry import RunContext
from repro.core.session import make_config, make_config_from_stats
from repro.core.verify import verify_ruling_set
from repro.errors import AlgorithmError
from repro.graph import generators as gen
from repro.graph.io import write_edge_list
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.ownermap import ModOwnerMap
from repro.mpc.simulator import Simulator


def _serial_reference(graph, algorithm, beta=2):
    """The in-memory run under the stream path's owner map (ModOwnerMap)."""
    cfg = make_config(graph)
    spec = registry.get_algorithm(algorithm)
    with Simulator(cfg) as sim:
        dg = DistributedGraph.load(
            sim, graph, ModOwnerMap(graph.num_vertices, cfg.num_machines)
        )
        spec.runner(
            RunContext(graph=graph, beta=beta, dg=dg, sim=sim)
        )
        members = dg.collect_marked("result_set")
        rounds = sim.metrics.rounds
        metrics = dict(sim.metrics.summary())
    return members, rounds, metrics


class TestStreamSolveParity:
    @pytest.mark.parametrize(
        "algorithm", [registry.DET_RULING, registry.DET_LUBY]
    )
    def test_bit_identical_to_serial_in_memory(self, tmp_path, algorithm):
        graph = gen.gnp_random_graph(72, 5, 72, seed=17)
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)

        result = solve_ruling_set_stream(path, algorithm=algorithm)
        members, rounds, metrics = _serial_reference(graph, algorithm)

        assert result.members == members
        assert result.rounds == rounds
        for key, value in metrics.items():
            assert result.metrics[key] == value
        verify_ruling_set(
            graph, result.members, alpha=result.alpha, beta=result.beta
        )

    def test_verify_flag_runs_oracle(self, tmp_path):
        graph = gen.cycle_graph(30)
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        result = solve_ruling_set_stream(path, verify=True)
        assert result.size > 0

    def test_ingest_metrics_present(self, tmp_path, small_er):
        path = tmp_path / "g.txt"
        write_edge_list(small_er, path)
        result = solve_ruling_set_stream(path)
        assert result.metrics["ingest_edges"] == small_er.num_edges
        assert result.metrics["ingest_max_degree"] == small_er.max_degree()
        assert result.metrics["shard_max_resident_words"] > 0
        assert result.metrics["shard_shard_spills"] > 0

    def test_deterministic_across_runs(self, tmp_path, small_er):
        path = tmp_path / "g.txt"
        write_edge_list(small_er, path)
        a = solve_ruling_set_stream(path)
        b = solve_ruling_set_stream(path, num_shards=7, chunk_messages=3)
        assert a.members == b.members
        assert a.rounds == b.rounds
        # Residency stats legitimately differ with the shard count; the
        # model quantities must not.
        for key in ("total_words", "total_messages", "max_words_sent"):
            assert a.metrics[key] == b.metrics[key]

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n", encoding="ascii")
        result = solve_ruling_set_stream(path)
        assert result.members == []

    def test_non_mpc_algorithm_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(gen.cycle_graph(6), path)
        with pytest.raises(AlgorithmError, match="MPC ruling-set"):
            solve_ruling_set_stream(path, algorithm=registry.GREEDY_MIS)


class TestConfigFromStats:
    def test_counts_path_matches_graph_path(self, medium_er):
        from_graph = make_config(medium_er)
        from_stats = make_config_from_stats(
            medium_er.num_vertices,
            medium_er.num_edges,
            medium_er.max_degree(),
        )
        assert from_stats == from_graph

    @pytest.mark.parametrize("regime", ["near-linear", "single"])
    def test_other_regimes(self, small_er, regime):
        assert make_config_from_stats(
            small_er.num_vertices,
            small_er.num_edges,
            small_er.max_degree(),
            regime,
        ) == make_config(small_er, regime)

    def test_unknown_regime_rejected(self):
        with pytest.raises(AlgorithmError, match="unknown regime"):
            make_config_from_stats(10, 10, 2, "huge")
