"""Algorithms must be *correct* under any vertex partition.

The output may legitimately differ between owner maps (iteration order of
machine-local solvers changes tie-breaks in greedy MIS), but every output
must verify, and the deterministic algorithms must be reproducible per
owner map.
"""

import pytest

from repro.core.det_luby import det_luby_mis
from repro.core.det_ruling import det_ruling_set
from repro.core.verify import verify_ruling_set
from repro.graph import generators as gen
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.ownermap import (
    HashOwnerMap,
    ModOwnerMap,
    balanced_range_map,
)
from repro.mpc.simulator import Simulator


def graph_under_test():
    return gen.gnp_random_graph(90, 1, 9, seed=31)


def config_for(graph):
    return MPCConfig.near_linear(
        graph.num_vertices, graph.num_edges, max_degree=graph.max_degree()
    )


def make_owner_map(name, graph, k):
    if name == "range":
        return balanced_range_map(graph, k)
    if name == "mod":
        return ModOwnerMap(graph.num_vertices, k)
    return HashOwnerMap(graph.num_vertices, k, seed=17)


def run_with_map(graph, map_name, engine):
    cfg = config_for(graph)
    sim = Simulator(cfg)
    owner_map = make_owner_map(map_name, graph, cfg.num_machines)
    dg = DistributedGraph.load(sim, graph, owner_map=owner_map)
    engine(dg)
    return dg.collect_marked("out")


@pytest.mark.parametrize("map_name", ["range", "mod", "hash"])
def test_det_luby_valid_under_any_partition(map_name):
    graph = graph_under_test()
    members = run_with_map(
        graph, map_name, lambda dg: det_luby_mis(dg, in_set_key="out")
    )
    verify_ruling_set(graph, members, alpha=2, beta=1)


@pytest.mark.parametrize("map_name", ["range", "mod", "hash"])
def test_det_ruling_valid_under_any_partition(map_name):
    graph = graph_under_test()
    members = run_with_map(
        graph, map_name,
        lambda dg: det_ruling_set(dg, beta=2, in_set_key="out"),
    )
    verify_ruling_set(graph, members, alpha=2, beta=2)


def test_reproducible_per_owner_map():
    graph = graph_under_test()
    for name in ("range", "mod", "hash"):
        first = run_with_map(
            graph, name, lambda dg: det_luby_mis(dg, in_set_key="out")
        )
        second = run_with_map(
            graph, name, lambda dg: det_luby_mis(dg, in_set_key="out")
        )
        assert first == second, name
