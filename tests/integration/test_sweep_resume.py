"""End-to-end kill-and-resume: SIGKILL a parallel CLI sweep, resume it.

Drives the same script CI runs (``benchmarks/sweep_resume_check.py``):
serial baseline -> parallel sweep killed after the first checkpointed
cell -> ``--resume`` -> record streams must match exactly.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_killed_parallel_sweep_resumes_to_serial_baseline():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "benchmarks.sweep_resume_check"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK:" in proc.stdout
