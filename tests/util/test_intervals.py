"""Exactness tests for cyclic-interval arithmetic (vs brute force)."""

import pytest
from hypothesis import given, strategies as st

from repro.util.intervals import (
    CyclicInterval,
    cyclic_overlap,
    intersect_segments,
    interval_to_segments,
    segments_length,
    segments_overlap_range,
)


def brute_members(start, length, p):
    return {(start + i) % p for i in range(length)}


class TestCyclicInterval:
    def test_contains_no_wrap(self):
        ival = CyclicInterval(2, 3, 10)
        assert all(ival.contains(x) for x in (2, 3, 4))
        assert not ival.contains(5)

    def test_contains_wrap(self):
        ival = CyclicInterval(8, 4, 10)
        assert all(ival.contains(x) for x in (8, 9, 0, 1))
        assert not ival.contains(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            CyclicInterval(10, 1, 10)
        with pytest.raises(ValueError):
            CyclicInterval(0, 11, 10)
        with pytest.raises(ValueError):
            CyclicInterval(0, 1, 0)

    @given(st.integers(2, 60), st.data())
    def test_contains_matches_brute(self, p, data):
        start = data.draw(st.integers(0, p - 1))
        length = data.draw(st.integers(0, p))
        ival = CyclicInterval(start, length, p)
        members = brute_members(start, length, p)
        for x in range(p):
            assert ival.contains(x) == (x in members)


class TestSegments:
    def test_empty(self):
        assert interval_to_segments(3, 0, 10) == []

    def test_full_circle(self):
        assert interval_to_segments(3, 10, 10) == [(0, 10)]

    @given(st.integers(2, 60), st.data())
    def test_segments_cover_exactly(self, p, data):
        start = data.draw(st.integers(0, p - 1))
        length = data.draw(st.integers(0, p))
        segments = interval_to_segments(start, length, p)
        covered = set()
        for lo, hi in segments:
            assert 0 <= lo < hi <= p
            covered.update(range(lo, hi))
        assert covered == brute_members(start, length, p)
        assert segments_length(segments) == length


class TestIntersection:
    @given(st.integers(2, 40), st.data())
    def test_overlap_matches_brute(self, p, data):
        s1 = data.draw(st.integers(0, p - 1))
        l1 = data.draw(st.integers(0, p))
        s2 = data.draw(st.integers(0, p - 1))
        l2 = data.draw(st.integers(0, p))
        a = CyclicInterval(s1, l1, p)
        b = CyclicInterval(s2, l2, p)
        expected = len(brute_members(s1, l1, p) & brute_members(s2, l2, p))
        assert cyclic_overlap(a, b) == expected

    def test_modulus_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cyclic_overlap(CyclicInterval(0, 1, 5), CyclicInterval(0, 1, 7))

    def test_intersect_segments_sorted_disjoint(self):
        out = intersect_segments([(0, 4), (6, 9)], [(2, 8)])
        assert out == [(2, 4), (6, 8)]


class TestRangeOverlap:
    @given(st.integers(2, 40), st.data())
    def test_matches_brute(self, p, data):
        start = data.draw(st.integers(0, p - 1))
        length = data.draw(st.integers(0, p))
        lo = data.draw(st.integers(0, p))
        hi = data.draw(st.integers(lo, p))
        segments = interval_to_segments(start, length, p)
        expected = len(
            brute_members(start, length, p) & set(range(lo, hi))
        )
        assert segments_overlap_range(segments, lo, hi) == expected

    def test_empty_range(self):
        assert segments_overlap_range([(0, 5)], 3, 3) == 0
