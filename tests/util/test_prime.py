"""Unit and property tests for repro.util.prime."""

import pytest
from hypothesis import given, strategies as st

from repro.util.prime import is_prime, next_prime, prime_field_for


def _trial_division(n: int) -> bool:
    if n < 2:
        return False
    d = 2
    while d * d <= n:
        if n % d == 0:
            return False
        d += 1
    return True


class TestIsPrime:
    def test_small_cases(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31}
        for n in range(32):
            assert is_prime(n) == (n in primes)

    def test_mersenne(self):
        assert is_prime(2**31 - 1)

    def test_carmichael_numbers_rejected(self):
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not is_prime(n)

    def test_large_composite(self):
        assert not is_prime((2**31 - 1) * (2**13 - 1))

    @given(st.integers(0, 200_000))
    def test_matches_trial_division(self, n):
        assert is_prime(n) == _trial_division(n)


class TestNextPrime:
    def test_at_prime(self):
        assert next_prime(17) == 17

    def test_between_primes(self):
        assert next_prime(14) == 17

    def test_small(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 2
        assert next_prime(3) == 3

    @given(st.integers(0, 500_000))
    def test_is_first_prime_at_or_above(self, n):
        p = next_prime(n)
        assert p >= n and is_prime(p)
        for candidate in range(max(2, n), p):
            assert not is_prime(candidate)


class TestPrimeFieldFor:
    def test_strictly_larger(self):
        assert prime_field_for(10) == 11
        assert prime_field_for(11) == 13

    def test_zero(self):
        assert prime_field_for(0) == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            prime_field_for(-1)

    @given(st.integers(0, 100_000))
    def test_exceeds_every_id(self, max_id):
        assert prime_field_for(max_id) > max_id
