"""Unit and statistical tests for the SplitMix64 PRG."""

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import SplitMix64, splitmix64


class TestMixFunction:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_range(self):
        for x in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(x) < 2**64

    def test_avalanche_rough(self):
        # Flipping one input bit should flip roughly half the output bits.
        flips = bin(splitmix64(0) ^ splitmix64(1)).count("1")
        assert 16 <= flips <= 48


class TestStream:
    def test_reproducible(self):
        a = SplitMix64(seed=7)
        b = SplitMix64(seed=7)
        assert [a.next_u64() for _ in range(10)] == [
            b.next_u64() for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = SplitMix64(seed=1)
        b = SplitMix64(seed=2)
        assert a.next_u64() != b.next_u64()

    def test_counter_resume(self):
        a = SplitMix64(seed=3)
        for _ in range(5):
            a.next_u64()
        resumed = SplitMix64(seed=3, counter=5)
        assert a.next_u64() == resumed.next_u64()

    @given(st.integers(1, 10**9))
    def test_next_below_in_range(self, bound):
        rng = SplitMix64(seed=bound)
        for _ in range(5):
            assert 0 <= rng.next_below(bound) < bound

    def test_next_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SplitMix64().next_below(0)

    def test_next_below_rejects_bound_over_word_size(self):
        # Regression: a bound > 2**64 used to make the rejection-sampling
        # limit zero, so every draw was "rejected" and the loop never
        # terminated.  Now it must fail fast.
        with pytest.raises(ValueError):
            SplitMix64().next_below(2**64 + 1)

    def test_next_below_accepts_full_word_bound(self):
        rng = SplitMix64(seed=9)
        assert 0 <= rng.next_below(2**64) < 2**64

    def test_next_unit_in_range(self):
        rng = SplitMix64(seed=11)
        for _ in range(100):
            assert 0.0 <= rng.next_unit() < 1.0

    def test_uniformity_rough(self):
        rng = SplitMix64(seed=5)
        buckets = [0] * 10
        for _ in range(10_000):
            buckets[rng.next_below(10)] += 1
        assert all(800 <= b <= 1200 for b in buckets)


class TestBernoulli:
    def test_degenerate(self):
        rng = SplitMix64(seed=1)
        assert rng.bernoulli(0, 5) is False
        assert rng.bernoulli(5, 5) is True
        assert rng.bernoulli(7, 5) is True

    def test_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            SplitMix64().bernoulli(1, 0)

    def test_rate_rough(self):
        rng = SplitMix64(seed=9)
        hits = sum(rng.bernoulli(1, 4) for _ in range(10_000))
        assert 2200 <= hits <= 2800


class TestForkAndShuffle:
    def test_forks_independent(self):
        root = SplitMix64(seed=4)
        c1, c2 = root.fork(1), root.fork(2)
        assert c1.next_u64() != c2.next_u64()

    def test_fork_deterministic(self):
        assert SplitMix64(seed=4).fork(9).next_u64() == SplitMix64(
            seed=4
        ).fork(9).next_u64()

    def test_shuffle_is_permutation(self):
        rng = SplitMix64(seed=8)
        items = list(range(50))
        rng.shuffle(items)
        assert sorted(items) == list(range(50))
        assert items != list(range(50))  # astronomically unlikely to match
