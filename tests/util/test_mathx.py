"""Unit and property tests for repro.util.mathx."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.mathx import (
    ceil_div,
    ilog2_ceil,
    ilog2_floor,
    int_nth_root_floor,
    ipow_ceil,
    next_pow2,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(6, 3) == 2

    def test_rounds_up(self):
        assert ceil_div(7, 3) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_negative_numerator(self):
        assert ceil_div(-1, 2) == 0

    def test_rejects_nonpositive_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_math_ceil(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b) or ceil_div(a, b) == -(-a // b)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_bracket(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a <= q * b or (a == 0 and q == 0)


class TestIntegerLogs:
    def test_floor_powers(self):
        for k in range(20):
            assert ilog2_floor(1 << k) == k

    def test_ceil_powers(self):
        for k in range(20):
            assert ilog2_ceil(1 << k) == k

    def test_floor_between_powers(self):
        assert ilog2_floor(9) == 3

    def test_ceil_between_powers(self):
        assert ilog2_ceil(9) == 4

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ilog2_floor(0)
        with pytest.raises(ValueError):
            ilog2_ceil(0)

    @given(st.integers(1, 10**12))
    def test_floor_ceil_sandwich(self, x):
        f, c = ilog2_floor(x), ilog2_ceil(x)
        assert 2**f <= x <= 2**c
        assert c - f in (0, 1)


class TestNextPow2:
    def test_small_values(self):
        assert next_pow2(0) == 1
        assert next_pow2(1) == 1
        assert next_pow2(2) == 2
        assert next_pow2(3) == 4

    @given(st.integers(1, 10**9))
    def test_is_smallest(self, x):
        p = next_pow2(x)
        assert p >= x and p & (p - 1) == 0
        assert p == 1 or p // 2 < x


class TestNthRoot:
    @given(st.integers(0, 10**18), st.integers(1, 8))
    def test_floor_property(self, x, n):
        r = int_nth_root_floor(x, n)
        assert r**n <= x < (r + 1) ** n

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            int_nth_root_floor(-1, 2)
        with pytest.raises(ValueError):
            int_nth_root_floor(4, 0)


class TestIpowCeil:
    def test_square_root(self):
        assert ipow_ceil(100, 1, 2) == 10
        assert ipow_ceil(101, 1, 2) == 11

    def test_two_thirds(self):
        assert ipow_ceil(1000, 2, 3) == 100

    def test_identity(self):
        assert ipow_ceil(7, 1, 1) == 7

    @given(st.integers(1, 10**6), st.integers(1, 4), st.integers(1, 4))
    def test_ceiling_property(self, base, num, den):
        r = ipow_ceil(base, num, den)
        # r is the smallest integer with r**den >= base**num.
        assert r**den >= base**num
        assert r == 0 or (r - 1) ** den < base**num
