"""Trace layer: observer purity, exports, budget audit, cross-checks."""

import json

import pytest

from repro.core.det_luby import (
    conditional_expectation_chooser,
    det_luby_mis,
)
from repro.graph import generators as gen
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.message import Message
from repro.mpc.simulator import Simulator
from repro.mpc.trace import TraceRecorder


def run_det_luby(backend_name="serial", trace=False, workers=2):
    graph = gen.gnp_random_graph(96, 8, 96, seed=7)
    cfg = MPCConfig.sublinear(
        graph.num_vertices, graph.num_edges, max_degree=graph.max_degree()
    ).with_backend(backend_name, workers)
    if trace:
        cfg = cfg.with_trace()
    with Simulator(cfg) as sim:
        dg = DistributedGraph.load(sim, graph)
        det_luby_mis(
            dg,
            in_set_key="mis",
            chooser=conditional_expectation_chooser(chunk_bits=3),
        )
        members = dg.collect_marked("mis")
    return members, sim.metrics, sim.trace


class TestZeroCostWhenDisabled:
    def test_trace_off_by_default(self):
        sim = Simulator(MPCConfig(num_machines=2, memory_words=256))
        assert sim.trace is None

    def test_config_enables_trace(self):
        cfg = MPCConfig(num_machines=2, memory_words=256).with_trace()
        sim = Simulator(cfg)
        assert isinstance(sim.trace, TraceRecorder)

    def test_injected_recorder_overrides_config(self):
        cfg = MPCConfig(num_machines=2, memory_words=256)
        recorder = TraceRecorder(cfg)
        sim = Simulator(cfg, trace=recorder)
        assert sim.trace is recorder


class TestObserverPurity:
    """Traced and untraced runs must be bit-identical (the tentpole pin)."""

    def test_identical_summary_and_members_serial(self):
        plain_members, plain_metrics, no_trace = run_det_luby(trace=False)
        traced_members, traced_metrics, trace = run_det_luby(trace=True)
        assert no_trace is None
        assert trace is not None
        assert traced_members == plain_members
        assert traced_metrics.summary() == plain_metrics.summary()

    def test_identical_summary_and_members_process(self):
        plain_members, plain_metrics, _ = run_det_luby("serial", trace=False)
        traced_members, traced_metrics, trace = run_det_luby(
            "process", trace=True
        )
        assert traced_members == plain_members
        assert traced_metrics.summary() == plain_metrics.summary()
        # Backend attribution rode along on the trace events.
        assert any(
            ev.get("backend") for ev in trace.events if ev["type"] == "round"
        )


class TestCrossChecks:
    def test_round_words_sum_to_total_words(self):
        _, metrics, trace = run_det_luby(trace=True)
        assert trace.total_words() == metrics.total_words
        assert [
            ev["words"] for ev in trace.round_events()
        ] == metrics.words_per_round
        assert len(trace.round_events()) == metrics.rounds

    def test_per_machine_rows_sum_to_round_words(self):
        _, _, trace = run_det_luby(trace=True)
        for ev in trace.round_events():
            assert sum(ev["sent_per_machine"]) == ev["words"]
            assert sum(ev["received_per_machine"]) == ev["words"]
            assert max(ev["sent_per_machine"]) == ev["max_sent"]
            assert max(ev["received_per_machine"]) == ev["max_received"]

    def test_memory_peaks_match_metrics(self):
        _, metrics, trace = run_det_luby(trace=True)
        assert (
            max(trace.machine_peak_words.values())
            == metrics.peak_memory_words
        )

    def test_phase_marks_recorded(self):
        _, metrics, trace = run_det_luby(trace=True)
        traced_phases = [
            ev["phase"] for ev in trace.events if ev["type"] == "phase"
        ]
        assert traced_phases == [mark.name for mark in metrics.phases]


class TestJsonlExport:
    def test_valid_jsonl_with_meta_and_summary(self, tmp_path):
        _, metrics, trace = run_det_luby(trace=True)
        path = tmp_path / "run.trace.jsonl"
        trace.write_jsonl(path)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[0]["type"] == "meta"
        assert records[0]["memory_words"] == trace.config.memory_words
        assert records[-1]["type"] == "summary"
        assert records[-1]["total_words"] == metrics.total_words
        round_words = sum(
            r["words"] for r in records if r["type"] == "round"
        )
        assert round_words == metrics.total_words

    def test_headroom_never_exceeds_budget(self):
        _, _, trace = run_det_luby(trace=True)
        budget = trace.config.memory_words
        for ev in trace.round_events():
            assert 0 <= ev["headroom_words"] <= budget
        assert trace.min_headroom_words() <= budget


class TestChromeTraceExport:
    def test_valid_json_with_monotone_timestamps(self, tmp_path):
        _, _, trace = run_det_luby(trace=True)
        path = tmp_path / "run.trace.json"
        trace.write_chrome_trace(path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert events, "chrome trace must not be empty"
        last_ts = -1.0
        for ev in events:
            if ev["ph"] == "M":
                continue
            assert ev["ts"] >= last_ts, "timestamps must be monotone"
            last_ts = ev["ts"]
            if ev["ph"] == "X":
                assert ev["dur"] > 0

    def test_counters_present(self):
        _, _, trace = run_det_luby(trace=True)
        counters = {
            ev["name"]
            for ev in trace.chrome_trace_events()
            if ev["ph"] == "C"
        }
        assert {"words sent", "budget headroom"} <= counters


class TestBudgetAuditor:
    def test_warns_before_hard_fault(self):
        # A 2-machine ping with S=8: 5 of 8 words in one round crosses a
        # 0.5 threshold but not the hard budget.
        cfg = MPCConfig(
            num_machines=2, memory_words=8
        ).with_trace(warn_utilization=0.5)
        sim = Simulator(cfg)
        sim.communicate(
            lambda m: [Message(1, (1, 2, 3, 4, 5))] if m.mid == 0 else []
        )
        sim.machine(1).clear_inbox()
        kinds = {(w["kind"], w["machine"]) for w in sim.trace.warnings}
        assert ("sent", 0) in kinds
        assert ("received", 1) in kinds
        for warning in sim.trace.warnings:
            assert warning["utilization"] >= 0.5
            assert warning["budget"] == 8

    def test_quiet_below_threshold(self):
        cfg = MPCConfig(num_machines=2, memory_words=256).with_trace()
        sim = Simulator(cfg)
        sim.communicate(
            lambda m: [Message(1, (1,))] if m.mid == 0 else []
        )
        assert sim.trace.warnings == []

    def test_format_warnings_human_readable(self):
        cfg = MPCConfig(
            num_machines=2, memory_words=8
        ).with_trace(warn_utilization=0.5)
        sim = Simulator(cfg)
        sim.communicate(
            lambda m: [Message(1, (1, 2, 3, 4, 5))] if m.mid == 0 else []
        )
        lines = sim.trace.format_warnings()
        assert lines and all("words" in line for line in lines)

    def test_invalid_threshold_rejected(self):
        cfg = MPCConfig(num_machines=2, memory_words=256)
        with pytest.raises(ValueError):
            TraceRecorder(cfg, warn_utilization=0.0)
        from repro.errors import MPCConfigError

        with pytest.raises(MPCConfigError):
            cfg.with_trace(warn_utilization=1.5)


class TestOverBudgetClamp:
    """Satellite regression: a round past budget (enforcement off, trace
    on) must clamp headroom at zero and flag the overshoot — never
    report negative headroom no auditor warns on."""

    def run_past_budget(self):
        # 12 words into an S=8 budget: only possible with enforcement
        # lifted, which is exactly the trace-only probe configuration.
        cfg = MPCConfig(num_machines=2, memory_words=8).with_trace()
        sim = Simulator(cfg, enforce=False)
        sim.communicate(
            lambda m: [Message(1, tuple(range(12)))] if m.mid == 0 else []
        )
        sim.machine(1).clear_inbox()
        return sim.trace

    def test_headroom_clamped_and_overshoot_flagged(self):
        trace = self.run_past_budget()
        (event,) = trace.round_events()
        assert event["max_sent"] == 12
        assert event["headroom_words"] == 0  # clamped, not -4
        assert event["over_budget_words"] == 4

    def test_min_headroom_never_negative(self):
        trace = self.run_past_budget()
        assert trace.min_headroom_words() == 0
        assert trace.over_budget_rounds() == 1

    def test_round_over_budget_warning_emitted(self):
        trace = self.run_past_budget()
        over = [
            w for w in trace.warnings if w["kind"] == "round-over-budget"
        ]
        assert len(over) == 1
        assert over[0]["words"] == 12 and over[0]["budget"] == 8
        assert over[0]["utilization"] == 1.5

    def test_summary_counts_over_budget_rounds(self):
        trace = self.run_past_budget()
        summary = json.loads(trace.jsonl_lines()[-1])
        assert summary["over_budget_rounds"] == 1
        assert summary["min_headroom_words"] == 0
