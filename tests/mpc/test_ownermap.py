"""Owner maps as an input-validation boundary: properties + hostile input.

The serialized metadata travels between machines (and now to disk, via
the streaming ingest), so round-trips must be exact for every map and
every size, and malformed payloads must raise :class:`MPCConfigError` —
never ``IndexError``/``TypeError`` escaping from the parser.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MPCConfigError
from repro.graph.generators import star_graph
from repro.graph.partition import plan_from_owner_map
from repro.mpc.ownermap import (
    HashOwnerMap,
    ModOwnerMap,
    RangeOwnerMap,
    balanced_range_map,
    deserialize_owner_map,
    edge_id,
    edge_owner_of,
)

sizes = st.tuples(st.integers(0, 200), st.integers(1, 40))


class TestRoundTrip:
    @settings(max_examples=60)
    @given(sizes)
    def test_mod_roundtrip(self, nk):
        n, k = nk
        owner_map = ModOwnerMap(n, k)
        restored = deserialize_owner_map(owner_map.serialize())
        assert restored == owner_map
        for v in range(n):
            assert restored.owner_of(v) == owner_map.owner_of(v)

    @settings(max_examples=60)
    @given(sizes, st.integers(0, 2**32))
    def test_hash_roundtrip(self, nk, seed):
        n, k = nk
        owner_map = HashOwnerMap(n, k, seed=seed)
        restored = deserialize_owner_map(owner_map.serialize())
        assert restored == owner_map

    @settings(max_examples=60)
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=8))
    def test_range_roundtrip(self, increments):
        bounds = [0]
        for step in increments:
            bounds.append(bounds[-1] + step)
        owner_map = RangeOwnerMap(tuple(bounds))
        restored = deserialize_owner_map(owner_map.serialize())
        assert restored == owner_map

    @settings(max_examples=60)
    @given(sizes, st.integers(0, 2**16))
    def test_partition_is_exact(self, nk, seed):
        # Every vertex owned exactly once, by a machine in range — for
        # every map kind at every size, including k = 1 and k > n.
        n, k = nk
        for owner_map in (
            ModOwnerMap(n, k),
            HashOwnerMap(n, k, seed=seed),
        ):
            owned = sorted(
                v for m in range(k) for v in owner_map.owned_by(m)
            )
            assert owned == list(range(n))
            for v in range(n):
                assert 0 <= owner_map.owner_of(v) < k


class TestDegenerateSizes:
    @pytest.mark.parametrize("cls", [ModOwnerMap, HashOwnerMap])
    def test_single_machine_owns_everything(self, cls):
        owner_map = cls(10, 1)
        assert list(owner_map.owned_by(0)) == list(range(10))

    @pytest.mark.parametrize("cls", [ModOwnerMap, HashOwnerMap])
    def test_more_machines_than_vertices(self, cls):
        owner_map = cls(3, 50)
        owned = sorted(v for m in range(50) for v in owner_map.owned_by(m))
        assert owned == [0, 1, 2]

    @pytest.mark.parametrize("cls", [ModOwnerMap, HashOwnerMap])
    def test_zero_machines_rejected(self, cls):
        with pytest.raises(MPCConfigError, match="num_machines"):
            cls(10, 0)

    @pytest.mark.parametrize("cls", [ModOwnerMap, HashOwnerMap])
    def test_negative_vertex_count_rejected(self, cls):
        with pytest.raises(MPCConfigError, match="num_vertices"):
            cls(-1, 2)

    def test_empty_vertex_set(self):
        owner_map = ModOwnerMap(0, 3)
        assert list(owner_map.owned_by(0)) == []
        with pytest.raises(MPCConfigError):
            owner_map.owner_of(0)


class TestBalanceOnSkewedDegrees:
    def test_star_graph_load_bound(self):
        # One hub of degree n-1: the balanced range map must still honor
        # its load bound total/k + (Δ + 1) — the hub cannot drag a pile
        # of leaves onto its machine.
        graph = star_graph(101)
        k = 5
        owner_map = balanced_range_map(graph, k)
        plan = plan_from_owner_map(owner_map)
        loads = plan.machine_loads(graph)
        total = 2 * graph.num_edges + graph.num_vertices
        bound = total // k + graph.max_degree() + 1
        assert max(loads) <= bound

    def test_plan_matches_owner_map(self):
        graph = star_graph(40)
        owner_map = balanced_range_map(graph, 4)
        plan = plan_from_owner_map(owner_map)
        assert plan.num_machines == owner_map.num_machines
        for v in graph.vertices():
            assert plan.owner[v] == owner_map.owner_of(v)


class TestEdgeIds:
    @settings(max_examples=100)
    @given(st.integers(0, 2**40), st.integers(0, 2**40))
    def test_symmetric(self, u, v):
        assert edge_id(u, v) == edge_id(v, u)
        assert 0 <= edge_id(u, v) < 2**64

    def test_distinct_edges_distinct_ids(self):
        seen = {}
        for u in range(40):
            for v in range(u + 1, 40):
                eid = edge_id(u, v)
                assert eid not in seen, (seen.get(eid), (u, v))
                seen[eid] = (u, v)

    def test_negative_endpoint_rejected(self):
        with pytest.raises(MPCConfigError, match="out of range"):
            edge_id(-1, 3)

    @settings(max_examples=50)
    @given(st.integers(0, 2**64 - 1), st.integers(1, 64))
    def test_edge_owner_in_range(self, eid, k):
        assert 0 <= edge_owner_of(eid, k) < k

    def test_edge_owner_rejects_zero_machines(self):
        with pytest.raises(MPCConfigError):
            edge_owner_of(123, 0)


class TestHostilePayloads:
    @pytest.mark.parametrize(
        "payload",
        [
            (),
            [],
            None,
            42,
            "mod",
            (99, 1, 2),          # unknown kind
            (1, 4),              # mod: missing field
            (1, 4, 2, 9),        # mod: extra field
            (2, 4, 2),           # hash: missing seed
            (2, 4, 2, 0, 0),     # hash: extra field
            (0,),                # range: no bounds
            (0, 0),              # range: single bound
            (1, 4, 0),           # mod: zero machines
            (1, -1, 2),          # mod: negative n
            (0, 1, 2, 3),        # range: bounds not starting at 0
            (0, 0, 5, 3),        # range: decreasing bounds
            (1, "4", 2),         # stringly-typed field
            (1, 4.0, 2),         # float field
            (1, True, 2),        # bool is not an int here
        ],
    )
    def test_rejected_with_config_error(self, payload):
        with pytest.raises(MPCConfigError):
            deserialize_owner_map(payload)

    def test_list_payload_accepted(self):
        # Lists are fine (JSON round-trips produce them) — only the
        # contents are validated.
        restored = deserialize_owner_map([1, 6, 2])
        assert restored == ModOwnerMap(6, 2)
