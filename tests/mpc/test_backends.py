"""Execution backends: serial vs process pool, determinism, fallbacks."""

import os
import signal

import pytest

from repro.core.det_luby import (
    conditional_expectation_chooser,
    det_luby_mis,
)
from repro.errors import MPCConfigError
from repro.graph import generators as gen
from repro.mpc.backends import (
    ProcessPoolBackend,
    SerialBackend,
    _chunk_ranges,
    resolve_backend,
)
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator


def _double_store(machine):
    """Module-level so plain pickle can ship it to workers."""
    machine.store["x"] = machine.mid * 2


def _emit_to_zero(machine):
    from repro.mpc.message import Message

    return [Message(dst=0, payload=(machine.mid,))]


def _sigkill_in_worker(machine):
    """SIGKILL the hosting process *only* when it is a pool worker.

    The parent pid rides in the machine store (shipped to the worker by
    pickling), so the in-process serial re-run after recovery executes
    the benign branch instead of killing the test process.  Works for
    every multiprocessing start method.
    """
    if os.getpid() != machine.store["parent_pid"]:
        os.kill(os.getpid(), signal.SIGKILL)
    machine.store["x"] = machine.mid * 3


def _sigkill_comm(machine):
    from repro.mpc.message import Message

    if os.getpid() != machine.store["parent_pid"]:
        os.kill(os.getpid(), signal.SIGKILL)
    return [Message(dst=0, payload=(machine.mid,))]


def run_det_luby(backend_name, workers=0):
    graph = gen.gnp_random_graph(96, 8, 96, seed=7)
    cfg = MPCConfig.sublinear(
        graph.num_vertices, graph.num_edges, max_degree=graph.max_degree()
    ).with_backend(backend_name, workers)
    with Simulator(cfg) as sim:
        dg = DistributedGraph.load(sim, graph)
        det_luby_mis(
            dg,
            in_set_key="mis",
            chooser=conditional_expectation_chooser(chunk_bits=3),
        )
        members = dg.collect_marked("mis")
        return members, sim.metrics.summary(), sim.backend.stats()


class TestResolveBackend:
    def test_serial_default(self):
        assert resolve_backend("serial").name == "serial"

    def test_process(self):
        backend = resolve_backend("process", workers=2)
        assert backend.name == "process"
        assert backend.workers == 2

    def test_unknown_name_rejected(self):
        with pytest.raises(MPCConfigError):
            resolve_backend("gpu")

    def test_negative_workers_rejected(self):
        with pytest.raises(MPCConfigError):
            ProcessPoolBackend(workers=-1)

    def test_config_carries_backend(self):
        cfg = MPCConfig(num_machines=2, memory_words=256)
        assert cfg.backend == "serial"
        forked = cfg.with_backend("process", workers=3)
        assert (forked.backend, forked.backend_workers) == ("process", 3)
        assert cfg.backend == "serial"  # frozen original untouched


class TestChunkRanges:
    @pytest.mark.parametrize("count,parts", [(1, 1), (7, 3), (8, 4), (3, 8)])
    def test_contiguous_cover(self, count, parts):
        ranges = _chunk_ranges(count, parts)
        flat = [i for r in ranges for i in r]
        assert flat == list(range(count))
        sizes = [len(r) for r in ranges]
        assert max(sizes) - min(sizes) <= 1  # balanced


class TestProcessPoolExecution:
    def test_local_step_runs_on_workers(self):
        backend = ProcessPoolBackend(workers=2)
        cfg = MPCConfig(num_machines=6, memory_words=256)
        sim = Simulator(cfg, backend=backend)
        try:
            sim.local(_double_store)
            assert [m.store["x"] for m in sim.machines] == [
                0, 2, 4, 6, 8, 10,
            ]
            assert backend.stats()["parallel_steps"] >= 1
        finally:
            sim.shutdown()

    def test_communicate_routes_in_id_order(self):
        backend = ProcessPoolBackend(workers=2)
        cfg = MPCConfig(num_machines=5, memory_words=256)
        sim = Simulator(cfg, backend=backend)
        try:
            sim.communicate(_emit_to_zero)
            # Inbox order must match what the serial backend produces:
            # sender id order, regardless of worker completion order.
            assert sim.machine(0).inbox == [(m,) for m in range(5)]
            assert sim.metrics.rounds == 1
        finally:
            sim.shutdown()

    def test_unpicklable_callback_falls_back_to_serial(self):
        import threading

        lock = threading.Lock()  # neither pickle nor cloudpickle can ship it

        def touch(machine):
            with lock:
                machine.store["x"] = machine.mid

        backend = ProcessPoolBackend(workers=2)
        cfg = MPCConfig(num_machines=4, memory_words=256)
        sim = Simulator(cfg, backend=backend)
        try:
            sim.local(touch)
            assert [m.store["x"] for m in sim.machines] == [0, 1, 2, 3]
            assert backend.stats()["unpicklable_fallbacks"] >= 1
        finally:
            sim.shutdown()

    def test_single_worker_gates_to_serial(self):
        backend = ProcessPoolBackend(workers=1)
        cfg = MPCConfig(num_machines=4, memory_words=256)
        sim = Simulator(cfg, backend=backend)
        sim.local(_double_store)
        assert backend.stats()["serial_fallbacks"] >= 1
        assert backend.stats()["parallel_steps"] == 0

    def test_shutdown_idempotent(self):
        backend = ProcessPoolBackend(workers=2)
        backend.shutdown()
        backend.shutdown()

    def test_shutdown_idempotent_after_use(self):
        backend = ProcessPoolBackend(workers=2)
        cfg = MPCConfig(num_machines=6, memory_words=256)
        sim = Simulator(cfg, backend=backend)
        sim.local(_double_store)
        assert backend._executor is not None
        sim.shutdown()
        assert backend._executor is None
        sim.shutdown()  # second call must be a no-op, not an error
        assert backend._executor is None

    def test_context_manager_releases_pool_on_error(self):
        # Regression: a solve that raises mid-run must still tear the
        # worker pool down (the pipeline relies on this contract).
        backend = ProcessPoolBackend(workers=2)
        cfg = MPCConfig(num_machines=6, memory_words=256)
        with pytest.raises(RuntimeError):
            with Simulator(cfg, backend=backend) as sim:
                sim.local(_double_store)
                assert backend._executor is not None
                raise RuntimeError("solve blew up mid-run")
        assert backend._executor is None


class TestBrokenPoolRecovery:
    def _machines(self, count):
        from repro.mpc.machine import Machine

        machines = []
        for mid in range(count):
            machine = Machine(mid)
            machine.store["parent_pid"] = os.getpid()
            machines.append(machine)
        return machines

    def test_sigkilled_worker_recovers_via_serial_rerun(self):
        backend = ProcessPoolBackend(workers=2)
        machines = self._machines(4)
        try:
            backend.run_local(machines, _sigkill_in_worker)
            # The step still completed, exactly once per machine, via the
            # serial fallback (no half-applied parallel state survives).
            assert [m.store["x"] for m in machines] == [0, 3, 6, 9]
            stats = backend.stats()
            assert stats["broken_pool_recoveries"] == 1
            assert stats["parallel_steps"] == 0
            assert backend._executor is None  # dead pool torn down
        finally:
            backend.shutdown()

    def test_pool_is_recreated_after_recovery(self):
        backend = ProcessPoolBackend(workers=2)
        machines = self._machines(4)
        try:
            backend.run_local(machines, _sigkill_in_worker)
            assert backend.stats()["broken_pool_recoveries"] == 1
            # The next parallel step lazily builds a fresh, working pool.
            backend.run_local(machines, _double_store)
            assert [m.store["x"] for m in machines] == [0, 2, 4, 6]
            assert backend.stats()["parallel_steps"] == 1
            assert backend._executor is not None
        finally:
            backend.shutdown()

    def test_communicate_step_recovers_too(self):
        from repro.mpc.machine import Machine

        backend = ProcessPoolBackend(workers=2)
        machines = [Machine(mid) for mid in range(4)]
        for machine in machines:
            machine.store["parent_pid"] = os.getpid()
        try:
            outboxes = backend.run_communicate(machines, _sigkill_comm)
            assert [ob[0].payload for ob in outboxes] == [
                (0,), (1,), (2,), (3,),
            ]
            assert backend.stats()["broken_pool_recoveries"] == 1
        finally:
            backend.shutdown()


class TestBackendEquivalence:
    def test_det_luby_identical_across_backends(self):
        """The acceptance invariant: backends change wall-clock only."""
        serial_members, serial_metrics, _ = run_det_luby("serial")
        process_members, process_metrics, stats = run_det_luby(
            "process", workers=2
        )
        assert process_members == serial_members
        assert process_metrics == serial_metrics
        # The pool genuinely ran (closures via cloudpickle); if cloudpickle
        # were missing every step would fall back and this run would still
        # pass the equality assertions above.
        assert sum(stats.values()) > 0

    def test_serial_backend_is_plain_loop(self):
        backend = SerialBackend()
        cfg = MPCConfig(num_machines=3, memory_words=256)
        sim = Simulator(cfg, backend=backend)
        sim.local(lambda m: m.store.__setitem__("x", m.mid))
        assert [m.store["x"] for m in sim.machines] == [0, 1, 2]
        # The serial backend now reports step counters (the trace layer
        # snapshots them for attribution) but nothing pool-related.
        assert backend.stats() == {"local_steps": 1, "communicate_steps": 0}
