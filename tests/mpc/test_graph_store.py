"""Tests for the distributed graph store against the in-memory graph."""

import pytest

from repro.errors import MPCViolationError
from repro.graph import generators as gen
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import ADJ, DistributedGraph
from repro.mpc.ownermap import HashOwnerMap, ModOwnerMap
from repro.mpc.simulator import Simulator


def load(graph, k=6, s=8192, owner_map=None):
    sim = Simulator(MPCConfig(num_machines=k, memory_words=s))
    return DistributedGraph.load(sim, graph, owner_map=owner_map), sim


class TestLoading:
    def test_snapshot_matches_graph(self, small_er):
        dg, _ = load(small_er)
        vertices, edges = dg.snapshot_active()
        assert vertices == list(small_er.vertices())
        assert edges == sorted(small_er.edges())

    def test_counts(self, small_er):
        dg, _ = load(small_er)
        assert dg.count_active() == small_er.num_vertices
        assert dg.count_active_edges() == small_er.num_edges
        assert dg.max_active_degree() == small_er.max_degree()

    def test_custom_owner_map(self, small_er):
        owner_map = ModOwnerMap(small_er.num_vertices, 6)
        dg, _ = load(small_er, owner_map=owner_map)
        vertices, edges = dg.snapshot_active()
        assert edges == sorted(small_er.edges())

    def test_memory_enforced_at_load(self):
        g = gen.complete_graph(30)
        sim = Simulator(MPCConfig(num_machines=2, memory_words=64))
        with pytest.raises(MPCViolationError):
            DistributedGraph.load(sim, g)


class TestPushValues:
    def test_neighbor_values(self, small_er):
        dg, sim = load(small_er)
        sim.local(
            lambda m: m.store.__setitem__(
                "vals", {v: v * 10 for v in m.store[ADJ]}
            )
        )
        dg.push_values("vals")
        for m in sim.machines:
            for u, received in m.store["g_nbr_values"].items():
                expected = sorted((v, v * 10) for v in small_er.neighbors(u))
                assert received == expected

    def test_tuple_values(self, path4):
        dg, sim = load(path4, k=2)
        sim.local(
            lambda m: m.store.__setitem__(
                "vals", {v: (v, v + 1) for v in m.store[ADJ]}
            )
        )
        dg.push_values("vals")
        machine_of_1 = sim.machine(dg.owner_of(1))
        assert machine_of_1.store["g_nbr_values"][1] == [(0, 0, 1), (2, 2, 3)]


class TestPushFlags:
    def test_only_neighbors_pinged(self, path4):
        dg, sim = load(path4, k=2)
        sim.local(
            lambda m: m.store.__setitem__(
                "flags", sorted(v for v in m.store[ADJ] if v == 0)
            )
        )
        dg.push_flags("flags", "hit")
        hit = set()
        for m in sim.machines:
            hit.update(m.store["hit"])
        assert hit == {1}


class TestDeactivate:
    def test_removes_and_scrubs(self, small_er):
        dg, sim = load(small_er)
        removed = {v for v in small_er.vertices() if v % 3 == 0}
        sim.local(
            lambda m: m.store.__setitem__(
                "rm", {v for v in m.store[ADJ] if v in removed}
            )
        )
        dg.deactivate("rm")
        vertices, edges = dg.snapshot_active()
        assert set(vertices) == set(small_er.vertices()) - removed
        for u, v in edges:
            assert u not in removed and v not in removed
        # Scrubbed adjacency must exactly match the induced subgraph.
        expected = sorted(
            (u, v)
            for u, v in small_er.edges()
            if u not in removed and v not in removed
        )
        assert edges == expected

    def test_deactivate_everything(self, triangle):
        dg, sim = load(triangle, k=2)
        sim.local(lambda m: m.store.__setitem__("rm", set(m.store[ADJ])))
        dg.deactivate("rm")
        assert dg.count_active() == 0


class TestGather:
    def test_gather_subgraph(self, small_er):
        dg, sim = load(small_er)
        flagged = {v for v in small_er.vertices() if v < 20}
        sim.local(
            lambda m: m.store.__setitem__(
                "flags", {v for v in m.store[ADJ] if v in flagged}
            )
        )
        dg.gather_flagged_to_zero("flags", "gv", "ge")
        m0 = sim.machine(0)
        assert m0.store["gv"] == sorted(flagged)
        assert m0.store["ge"] == sorted(
            (u, v)
            for u, v in small_er.edges()
            if u in flagged and v in flagged
        )

    def test_gather_with_hash_owner_map(self, small_er):
        owner_map = HashOwnerMap(small_er.num_vertices, 6, seed=11)
        dg, sim = load(small_er, owner_map=owner_map)
        sim.local(
            lambda m: m.store.__setitem__(
                "flags", {v for v in m.store[ADJ] if v % 2 == 0}
            )
        )
        dg.gather_flagged_to_zero("flags", "gv", "ge")
        m0 = sim.machine(0)
        assert m0.store["gv"] == [
            v for v in small_er.vertices() if v % 2 == 0
        ]


class TestCollect:
    def test_collect_marked(self, path4):
        dg, sim = load(path4, k=2)
        sim.local(
            lambda m: m.store.__setitem__(
                "marks", {v for v in m.store[ADJ] if v % 2 == 0}
            )
        )
        assert dg.collect_marked("marks") == [0, 2]
