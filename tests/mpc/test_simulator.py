"""Tests for the superstep engine: routing, budgets, determinism."""

import pytest

from repro.errors import MPCRoutingError, MPCViolationError
from repro.mpc.config import MPCConfig
from repro.mpc.message import Message
from repro.mpc.simulator import Simulator


def small_sim(k=4, s=64):
    return Simulator(MPCConfig(num_machines=k, memory_words=s))


class TestMessage:
    def test_words(self):
        assert Message(0, (1, 2, 3)).words == 3

    def test_rejects_negative_destination(self):
        with pytest.raises(MPCRoutingError):
            Message(-1, (1,))

    def test_rejects_non_tuple_payload(self):
        with pytest.raises(TypeError):
            Message(0, [1, 2])

    def test_rejects_non_int_words(self):
        with pytest.raises(TypeError):
            Message(0, (1, "x"))
        with pytest.raises(TypeError):
            Message(0, (True,))


class TestLocalStep:
    def test_applies_to_all_machines(self):
        sim = small_sim()
        sim.local(lambda m: m.store.__setitem__("x", m.mid))
        assert [m.store["x"] for m in sim.machines] == [0, 1, 2, 3]

    def test_local_costs_no_rounds(self):
        sim = small_sim()
        sim.local(lambda m: None)
        assert sim.metrics.rounds == 0

    def test_memory_enforced_after_local(self):
        sim = small_sim(s=8)
        with pytest.raises(MPCViolationError):
            sim.local(lambda m: m.store.__setitem__("x", tuple(range(20))))


class TestCommunicate:
    def test_delivery(self):
        sim = small_sim()

        def ring(machine):
            return [Message((machine.mid + 1) % 4, (machine.mid,))]

        sim.communicate(ring)
        for m in sim.machines:
            assert m.inbox == [((m.mid - 1) % 4,)]
        assert sim.metrics.rounds == 1

    def test_synchronous_semantics(self):
        # A message sent this round must not be visible during the same round.
        sim = small_sim()

        def send_and_check(machine):
            assert machine.inbox == []
            return [Message(0, (machine.mid,))]

        sim.communicate(send_and_check)
        assert sorted(sim.machine(0).inbox) == [(0,), (1,), (2,), (3,)]

    def test_inbox_sender_order(self):
        sim = small_sim()
        sim.communicate(lambda m: [Message(0, (m.mid,))])
        assert [p[0] for p in sim.machine(0).inbox] == [0, 1, 2, 3]

    def test_routing_error(self):
        sim = small_sim()
        with pytest.raises(MPCRoutingError):
            sim.communicate(lambda m: [Message(9, (1,))])

    def test_negative_destination_rejected_by_router(self):
        # Regression: a negative dst used to wrap via Python list
        # indexing and silently deliver to machine k+dst.  Message
        # validates at construction, but pickle reconstruction (the
        # process backend's transport) bypasses __post_init__ — the
        # router must reject out-of-range ids on its own.
        sim = small_sim()
        evil = Message.__new__(Message)
        object.__setattr__(evil, "dst", -1)
        object.__setattr__(evil, "payload", (7,))
        with pytest.raises(MPCRoutingError):
            sim.communicate(lambda m: [evil] if m.mid == 0 else [])
        # Nothing wrapped around to the last machine.
        assert sim.machine(3).inbox == []

    def test_pickle_roundtrip_skips_message_validation(self):
        # Documents why the router-side check exists: pickle rebuilds
        # frozen dataclasses without calling __post_init__.
        import pickle

        msg = pickle.loads(pickle.dumps(Message(1, (5,))))
        hacked = Message.__new__(Message)
        object.__setattr__(hacked, "dst", -2)
        object.__setattr__(hacked, "payload", msg.payload)
        assert pickle.loads(pickle.dumps(hacked)).dst == -2

    def test_send_budget_enforced(self):
        sim = small_sim(s=8)
        with pytest.raises(MPCViolationError):
            sim.communicate(
                lambda m: [Message(0, tuple(range(9)))] if m.mid == 1 else []
            )

    def test_receive_budget_enforced(self):
        sim = small_sim(k=8, s=8)
        # Every machine sends 3 words to machine 0: 24 > 8 received.
        with pytest.raises(MPCViolationError):
            sim.communicate(lambda m: [Message(0, (1, 2, 3))])

    def test_enforcement_can_be_disabled(self):
        sim = Simulator(MPCConfig(num_machines=2, memory_words=8), enforce=False)
        sim.communicate(lambda m: [Message(0, tuple(range(20)))])
        assert sim.metrics.max_words_received == 40


class TestMetrics:
    def test_round_accounting(self):
        sim = small_sim()
        sim.communicate(lambda m: [Message(0, (1, 2))])
        assert sim.metrics.rounds == 1
        assert sim.metrics.total_messages == 4
        assert sim.metrics.total_words == 8
        assert sim.metrics.max_words_sent == 2
        assert sim.metrics.max_words_received == 8

    def test_peak_memory_tracked(self):
        sim = small_sim()
        sim.local(lambda m: m.store.__setitem__("x", (1, 2, 3)))
        assert sim.metrics.peak_memory_words >= 3

    def test_phases(self):
        sim = small_sim()
        sim.begin_phase("a")
        sim.communicate(lambda m: [])
        sim.communicate(lambda m: [])
        sim.begin_phase("b")
        sim.communicate(lambda m: [])
        assert sim.metrics.phase_rounds() == {"a": 2, "b": 1}

    def test_repeated_phase_names_accumulate(self):
        sim = small_sim()
        for _ in range(2):
            sim.begin_phase("loop")
            sim.communicate(lambda m: [])
        assert sim.metrics.phase_rounds() == {"loop": 2}

    def test_summary_keys(self):
        sim = small_sim()
        summary = sim.metrics.summary()
        assert set(summary) == {
            "rounds",
            "total_messages",
            "total_words",
            "max_words_sent",
            "max_words_received",
            "peak_memory_words",
        }
