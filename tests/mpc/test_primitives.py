"""MPC primitives vs sequential references, across machine counts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpc.config import MPCConfig
from repro.mpc.message import Message
from repro.mpc.primitives import (
    all_reduce_scalar,
    dedup_items,
    exclusive_prefix_counts,
    reduce_scalar,
    reduce_vector,
    sample_sort,
    shuffle,
)
from repro.mpc.primitives.broadcast import broadcast_value
from repro.mpc.primitives.shuffle import inbox_grouped_by_first
from repro.mpc.simulator import Simulator
from repro.util.rng import SplitMix64


def sim_with(k, s=4096):
    return Simulator(MPCConfig(num_machines=k, memory_words=s))


class TestReduce:
    @pytest.mark.parametrize("k", [1, 2, 3, 8, 17])
    def test_sum_of_mids(self, k):
        sim = sim_with(k)
        total = reduce_scalar(sim, lambda m: m.mid, lambda a, b: a + b)
        assert total == k * (k - 1) // 2

    @pytest.mark.parametrize("k", [2, 7])
    def test_max(self, k):
        sim = sim_with(k)
        assert reduce_scalar(sim, lambda m: m.mid * 3, max) == 3 * (k - 1)

    def test_vector_elementwise(self):
        sim = sim_with(5)
        out = reduce_vector(
            sim,
            lambda m: (m.mid, 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
            width=2,
        )
        assert out == (10, 5)

    def test_small_memory_forces_tree(self):
        # With tiny memory the fanout drops and multiple rounds are needed.
        sim = sim_with(16, s=64)
        total = reduce_scalar(sim, lambda m: 1, lambda a, b: a + b)
        assert total == 16
        assert sim.metrics.rounds >= 1

    def test_width_mismatch_rejected(self):
        sim = sim_with(2)
        with pytest.raises(ValueError):
            reduce_vector(sim, lambda m: (1, 2), lambda a, b: a, width=3)

    def test_no_leftover_state(self):
        sim = sim_with(4)
        reduce_scalar(sim, lambda m: 1, lambda a, b: a + b)
        for m in sim.machines:
            assert "_prim_partial" not in m.store


class TestBroadcast:
    @pytest.mark.parametrize("k", [1, 2, 5, 16])
    def test_all_receive(self, k):
        sim = sim_with(k)
        broadcast_value(sim, (7, 8), "val")
        assert all(m.store["val"] == (7, 8) for m in sim.machines)

    def test_tree_when_memory_small(self):
        sim = sim_with(32, s=64)
        broadcast_value(sim, (9,), "val")
        assert all(m.store["val"] == (9,) for m in sim.machines)
        assert sim.metrics.rounds >= 2  # fanout limited: genuine tree

    def test_all_reduce(self):
        sim = sim_with(6)
        total = all_reduce_scalar(
            sim, lambda m: m.mid, lambda a, b: a + b, "total"
        )
        assert total == 15
        assert all(m.store["total"] == 15 for m in sim.machines)


class TestShuffleAndPrefix:
    def test_shuffle_groups(self):
        sim = sim_with(3)

        def items(machine):
            return [Message(0, (machine.mid % 2, machine.mid))]

        shuffle(sim, items)
        groups = inbox_grouped_by_first(sim.machine(0))
        assert groups == {0: [(0,), (2,)], 1: [(1,)]}

    def test_prefix_counts(self):
        sim = sim_with(5)
        sim.local(lambda m: m.store.__setitem__("items", [0] * (m.mid + 1)))
        total = exclusive_prefix_counts(
            sim, lambda m: len(m.store["items"]), "offset"
        )
        assert total == 15
        assert [m.store["offset"] for m in sim.machines] == [0, 1, 3, 6, 10]


class TestSampleSort:
    @pytest.mark.parametrize("k", [1, 2, 4, 9])
    def test_globally_sorted(self, k):
        sim = sim_with(k)
        rng = SplitMix64(seed=k)

        def plant(machine):
            local = SplitMix64(seed=machine.mid * 7 + 1)
            machine.store["items"] = [
                (local.next_below(500), machine.mid) for _ in range(40)
            ]

        sim.local(plant)
        expected = sorted(
            item for m in sim.machines for item in m.store["items"]
        )
        sample_sort(sim, "items", width=2)
        collected = [item for m in sim.machines for item in m.store["items"]]
        assert collected == expected

    def test_empty_inputs(self):
        sim = sim_with(4)
        sim.local(lambda m: m.store.__setitem__("items", []))
        sample_sort(sim, "items", width=2)
        assert all(m.store["items"] == [] for m in sim.machines)

    def test_skewed_inputs(self):
        sim = sim_with(4)
        sim.local(
            lambda m: m.store.__setitem__(
                "items", [(1, i) for i in range(30)] if m.mid == 0 else []
            )
        )
        sample_sort(sim, "items", width=2)
        collected = [item for m in sim.machines for item in m.store["items"]]
        assert collected == [(1, i) for i in range(30)]

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 100), max_size=60), st.integers(2, 6))
    def test_random_inputs(self, values, k):
        sim = sim_with(k)
        chunks = [values[i::k] for i in range(k)]

        def plant(machine):
            machine.store["items"] = [
                (v, machine.mid) for v in chunks[machine.mid]
            ]

        sim.local(plant)
        sample_sort(sim, "items", width=2)
        collected = [
            item[0] for m in sim.machines for item in m.store["items"]
        ]
        assert collected == sorted(values)


class TestDedup:
    def test_removes_duplicates(self):
        sim = sim_with(4)
        sim.local(
            lambda m: m.store.__setitem__("items", [(1, 2), (m.mid, 0)])
        )
        dedup_items(sim, "items")
        collected = sorted(
            item for m in sim.machines for item in m.store["items"]
        )
        assert collected == [(0, 0), (1, 0), (1, 2), (2, 0), (3, 0)]

    def test_idempotent(self):
        sim = sim_with(3)
        sim.local(lambda m: m.store.__setitem__("items", [(5, 5)]))
        dedup_items(sim, "items")
        dedup_items(sim, "items")
        collected = [item for m in sim.machines for item in m.store["items"]]
        assert collected == [(5, 5)]
