"""Wall-clock timing metrics: per-phase and per-round attribution."""

from repro.core.pipeline import solve_ruling_set
from repro.graph import generators as gen
from repro.mpc.config import MPCConfig
from repro.mpc.metrics import RunMetrics
from repro.mpc.simulator import Simulator


class TestRecordElapsed:
    def test_accumulates_wall_time(self):
        metrics = RunMetrics()
        metrics.record_elapsed(0.25)
        metrics.record_elapsed(0.5)
        assert metrics.wall_time_s == 0.75

    def test_unphased_bucket(self):
        metrics = RunMetrics()
        metrics.record_elapsed(1.0)
        assert metrics.time_per_phase == {RunMetrics.UNPHASED: 1.0}

    def test_attributed_to_current_phase(self):
        metrics = RunMetrics()
        metrics.begin_phase("sparsify")
        metrics.record_elapsed(1.0)
        metrics.begin_phase("gather")
        metrics.record_elapsed(2.0)
        metrics.begin_phase("sparsify")  # repeated names accumulate
        metrics.record_elapsed(4.0)
        assert metrics.time_per_phase == {"sparsify": 5.0, "gather": 2.0}

    def test_round_flag_appends_per_round(self):
        metrics = RunMetrics()
        metrics.record_elapsed(0.1)
        metrics.record_elapsed(0.2, is_round=True)
        metrics.record_elapsed(0.3, is_round=True)
        assert metrics.time_per_round == [0.2, 0.3]

    def test_summary_excludes_timing(self):
        # test_determinism compares summary() between identical runs;
        # wall clock would make equal runs compare unequal.
        metrics = RunMetrics()
        metrics.record_elapsed(1.0, is_round=True)
        assert all("time" not in key for key in metrics.summary())

    def test_timing_summary_keys(self):
        metrics = RunMetrics()
        metrics.begin_phase("scan")
        metrics.record_elapsed(0.5)
        out = metrics.timing_summary()
        assert out["wall_time_s"] == 0.5
        assert out["time_scan"] == 0.5


class TestSimulatorTiming:
    def test_rounds_are_timed(self):
        sim = Simulator(MPCConfig(num_machines=3, memory_words=256))
        sim.local(lambda m: None)
        sim.communicate(lambda m: [])
        sim.communicate(lambda m: [])
        assert len(sim.metrics.time_per_round) == sim.metrics.rounds == 2
        assert sim.metrics.wall_time_s >= sum(sim.metrics.time_per_round)

    def test_phase_attribution_follows_begin_phase(self):
        sim = Simulator(MPCConfig(num_machines=2, memory_words=256))
        sim.begin_phase("setup")
        sim.communicate(lambda m: [])
        sim.begin_phase("work")
        sim.communicate(lambda m: [])
        phases = sim.metrics.time_per_phase
        assert set(phases) == {"setup", "work"}
        assert all(seconds >= 0 for seconds in phases.values())


class TestPipelineTiming:
    def test_result_carries_wall_clock(self):
        graph = gen.gnp_random_graph(64, 8, 64, seed=3)
        result = solve_ruling_set(graph, algorithm="det-luby", beta=2)
        assert result.wall_time_s > 0
        assert "luby-seed-search" in result.time_per_phase
        # Per-phase times decompose the (rounded) total.
        assert (
            abs(sum(result.time_per_phase.values()) - result.wall_time_s)
            < 1e-3
        )

    def test_timing_stays_out_of_metrics_dict(self):
        graph = gen.gnp_random_graph(64, 8, 64, seed=3)
        result = solve_ruling_set(graph, algorithm="det-luby", beta=2)
        assert all("time" not in key for key in result.metrics)
