"""Edge cases and failure-injection for the MPC layer."""

import pytest

from repro.errors import AlgorithmError, MPCViolationError
from repro.graph import generators as gen
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import ADJ, DistributedGraph
from repro.mpc.machine import Costed, words_of
from repro.mpc.metrics import RunMetrics
from repro.mpc.primitives.broadcast import broadcast_value
from repro.mpc.primitives.sort import sample_sort
from repro.mpc.simulator import Simulator


class TestCosted:
    def test_declared_cost(self):
        assert words_of(Costed(object(), words=9)) == 9

    def test_zero_cost_allowed(self):
        assert words_of(Costed("x", words=0)) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Costed("x", words=-1)

    def test_nested_in_store(self):
        assert words_of({"k": Costed([1] * 100, words=3)}) == 4


class TestGraphStoreFaults:
    def test_push_to_deactivated_vertex_detected(self):
        graph = gen.path_graph(4)
        sim = Simulator(MPCConfig(num_machines=2, memory_words=4096))
        dg = DistributedGraph.load(sim, graph)

        # Corrupt one machine's adjacency so it references a vertex the
        # receiver no longer considers active; push must fault loudly.
        def deactivate_locally_only(machine):
            machine.store[ADJ].pop(0, None)

        sim.local(deactivate_locally_only)

        def set_values(machine):
            machine.store["vals"] = {v: 1 for v in machine.store[ADJ]}

        sim.local(set_values)
        with pytest.raises(AlgorithmError, match="non-active"):
            dg.push_values("vals")

    def test_gather_overflow_faults(self):
        # Flag a subgraph too large for machine 0's budget.
        graph = gen.complete_graph(24)
        cfg = MPCConfig(num_machines=8, memory_words=200)
        sim = Simulator(cfg)
        with pytest.raises(MPCViolationError):
            dg = DistributedGraph.load(sim, graph)
            sim.local(
                lambda m: m.store.__setitem__(
                    "flags", set(m.store[ADJ])
                )
            )
            dg.gather_flagged_to_zero("flags", "gv", "ge")


class TestPrimitiveEdges:
    def test_broadcast_single_machine(self):
        sim = Simulator(MPCConfig(num_machines=1, memory_words=64))
        broadcast_value(sim, (5,), "x")
        assert sim.machine(0).store["x"] == (5,)
        assert sim.metrics.rounds == 0  # nobody to send to

    def test_sort_all_duplicates(self):
        sim = Simulator(MPCConfig(num_machines=4, memory_words=4096))
        sim.local(
            lambda m: m.store.__setitem__("items", [(7, 7)] * 20)
        )
        sample_sort(sim, "items", width=2)
        collected = [
            item for m in sim.machines for item in m.store["items"]
        ]
        assert collected == [(7, 7)] * 80

    def test_sort_single_item(self):
        sim = Simulator(MPCConfig(num_machines=3, memory_words=4096))
        sim.local(
            lambda m: m.store.__setitem__(
                "items", [(1, 2)] if m.mid == 2 else []
            )
        )
        sample_sort(sim, "items", width=2)
        collected = [
            item for m in sim.machines for item in m.store["items"]
        ]
        assert collected == [(1, 2)]


class TestMetricsEdges:
    def test_empty_phase_rounds(self):
        assert RunMetrics().phase_rounds() == {}

    def test_phase_with_no_rounds(self):
        metrics = RunMetrics()
        metrics.begin_phase("idle")
        assert metrics.phase_rounds() == {"idle": 0}

    def test_record_round_accumulates(self):
        metrics = RunMetrics()
        metrics.record_round(messages=2, words=5, max_sent=3, max_received=5)
        metrics.record_round(messages=1, words=1, max_sent=1, max_received=1)
        assert metrics.rounds == 2
        assert metrics.total_words == 6
        assert metrics.max_words_sent == 3
