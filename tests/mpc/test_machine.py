"""Tests for machine state and word accounting."""

import pytest

from repro.mpc.machine import Machine, words_of


class TestWordsOf:
    def test_scalars(self):
        assert words_of(5) == 1
        assert words_of(True) == 1
        assert words_of(2.5) == 1
        assert words_of(None) == 0

    def test_big_int_still_one_word(self):
        # Words model O(log n)-bit quantities; counters are 1 word.
        assert words_of(10**30) == 1

    def test_containers(self):
        assert words_of((1, 2, 3)) == 3
        assert words_of([1, [2, 3]]) == 3
        assert words_of({1, 2}) == 2
        assert words_of(frozenset({1})) == 1

    def test_dict_counts_keys_and_values(self):
        assert words_of({1: (2, 3)}) == 3

    def test_nested(self):
        state = {"adj": {0: (1, 2), 1: (0,)}, "count": 7}
        # "adj"(1) + [0 + (1,2)] + [1 + (0,)] + "count"(1) + 7(1)
        assert words_of(state) == 1 + 3 + 2 + 1 + 1

    def test_string_cost(self):
        assert words_of("x") == 1
        assert words_of("a" * 16) == 2

    def test_rejects_unknown_types(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            words_of(Opaque())


class TestMachine:
    def test_initial_state(self):
        m = Machine(3)
        assert m.mid == 3
        assert m.memory_words() == 0

    def test_memory_counts_store_and_inbox(self):
        m = Machine(0)
        m.store["x"] = (1, 2, 3)
        m.inbox = [(4, 5)]
        assert m.memory_words() == 1 + 3 + 2

    def test_clear_inbox(self):
        m = Machine(0)
        m.inbox = [(1,)]
        m.clear_inbox()
        assert m.inbox == []

    def test_repr(self):
        assert "mid=2" in repr(Machine(2))
