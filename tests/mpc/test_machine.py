"""Tests for machine state and word accounting."""

import pytest

from repro.mpc.machine import Machine, words_of


class TestWordsOf:
    def test_scalars(self):
        assert words_of(5) == 1
        assert words_of(True) == 1
        assert words_of(2.5) == 1
        assert words_of(None) == 0

    def test_big_int_still_one_word(self):
        # Words model O(log n)-bit quantities; counters are 1 word.
        assert words_of(10**30) == 1

    def test_containers(self):
        assert words_of((1, 2, 3)) == 3
        assert words_of([1, [2, 3]]) == 3
        assert words_of({1, 2}) == 2
        assert words_of(frozenset({1})) == 1

    def test_dict_counts_keys_and_values(self):
        assert words_of({1: (2, 3)}) == 3

    def test_nested(self):
        state = {"adj": {0: (1, 2), 1: (0,)}, "count": 7}
        # "adj"(1) + [0 + (1,2)] + [1 + (0,)] + "count"(1) + 7(1)
        assert words_of(state) == 1 + 3 + 2 + 1 + 1

    def test_string_cost(self):
        assert words_of("x") == 1
        assert words_of("a" * 16) == 2

    def test_rejects_unknown_types(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            words_of(Opaque())


class TestMachine:
    def test_initial_state(self):
        m = Machine(3)
        assert m.mid == 3
        assert m.memory_words() == 0

    def test_memory_counts_store_and_inbox(self):
        m = Machine(0)
        m.store["x"] = (1, 2, 3)
        m.inbox = [(4, 5)]
        assert m.memory_words() == 1 + 3 + 2

    def test_clear_inbox(self):
        m = Machine(0)
        m.inbox = [(1,)]
        m.clear_inbox()
        assert m.inbox == []

    def test_repr(self):
        assert "mid=2" in repr(Machine(2))


def _reference_words(obj):
    """The pre-batching per-element walk, kept as the pricing oracle."""
    if obj is None:
        return 0
    if isinstance(obj, (bool, int, float)):
        return 1
    if isinstance(obj, str):
        return max(1, (len(obj) + 7) // 8)
    if isinstance(obj, dict):
        return sum(
            _reference_words(k) + _reference_words(v) for k, v in obj.items()
        )
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(_reference_words(x) for x in obj)
    return words_of(obj)  # Costed etc.: defer to the real implementation


class TestBatchedWordsOf:
    """The flat-array fast paths must price identically to the walk."""

    def test_flat_int_containers(self):
        for obj in (
            list(range(100)),
            tuple(range(7)),
            set(range(9)),
            [True, False, 3, 2.5],
        ):
            assert words_of(obj) == _reference_words(obj)

    def test_tuple_of_tuples(self):
        obj = [(1, 2), (), (3, 4, 5), (True, 7.5)]
        assert words_of(obj) == _reference_words(obj) == 7

    def test_mixed_container_falls_back(self):
        obj = [1, (2, 3), "abcdefghij"]
        assert words_of(obj) == _reference_words(obj) == 1 + 2 + 2

    def test_strings_never_priced_as_scalars(self):
        # str is excluded from the scalar fast path: it prices len/8.
        obj = ["abcdefghi", "x"]
        assert words_of(obj) == _reference_words(obj) == 2 + 1

    def test_flat_dicts(self):
        assert words_of({1: 2, 3: 4}) == _reference_words({1: 2, 3: 4}) == 4
        obj = {1: (2, 3), 4: (), 5: (6,)}
        assert words_of(obj) == _reference_words(obj) == 6

    def test_dict_with_tuple_keys_falls_back(self):
        obj = {(1, 2): 3, (4,): 5}
        assert words_of(obj) == _reference_words(obj) == 5

    def test_nested_dict_falls_back(self):
        obj = {1: {2: 3}, 4: [5, 6]}
        assert words_of(obj) == _reference_words(obj) == 6

    def test_empty_containers(self):
        for obj in ([], (), set(), {}):
            assert words_of(obj) == 0


class TestBatchedWordsOfProperty:
    def test_adjacency_shaped_state(self):
        # The shape that actually rides the hot path: dicts of int ->
        # tuple-of-int adjacency rows, inboxes of int tuples.
        import random

        rng = random.Random(7)
        for _ in range(50):
            adj = {
                v: tuple(rng.sample(range(200), rng.randrange(6)))
                for v in rng.sample(range(200), rng.randrange(20))
            }
            inbox = [
                tuple(rng.randrange(999) for _ in range(rng.randrange(5)))
                for _ in range(rng.randrange(15))
            ]
            assert words_of(adj) == _reference_words(adj)
            assert words_of(inbox) == _reference_words(inbox)
