"""Tests for MPC regime configuration."""

import pytest

from repro.errors import MPCConfigError
from repro.mpc.config import MPCConfig


class TestValidation:
    def test_rejects_zero_machines(self):
        with pytest.raises(MPCConfigError):
            MPCConfig(num_machines=0, memory_words=100)

    def test_rejects_tiny_memory(self):
        with pytest.raises(MPCConfigError):
            MPCConfig(num_machines=2, memory_words=2)

    def test_total_memory(self):
        cfg = MPCConfig(num_machines=4, memory_words=100)
        assert cfg.total_memory == 400

    def test_input_size_validation(self):
        cfg = MPCConfig(num_machines=2, memory_words=100)
        cfg.validate_input_size(200)
        with pytest.raises(MPCConfigError):
            cfg.validate_input_size(201)

    def test_input_words(self):
        assert MPCConfig.input_words(10, 20) == 50


class TestFactories:
    def test_sublinear_fits_input(self):
        cfg = MPCConfig.sublinear(1000, 5000, 2, 3)
        assert cfg.total_memory >= MPCConfig.input_words(1000, 5000)

    def test_sublinear_memory_grows_with_alpha(self):
        lo = MPCConfig.sublinear(4000, 8000, 1, 2)
        hi = MPCConfig.sublinear(4000, 8000, 3, 4)
        assert hi.memory_words >= lo.memory_words

    def test_sublinear_rejects_bad_alpha(self):
        with pytest.raises(MPCConfigError):
            MPCConfig.sublinear(100, 100, 3, 2)
        with pytest.raises(MPCConfigError):
            MPCConfig.sublinear(100, 100, 0, 1)

    def test_max_degree_floor(self):
        cfg = MPCConfig.sublinear(400, 399, max_degree=399)  # star
        assert cfg.memory_words >= 16 * 400

    def test_k_at_most_quarter_s(self):
        # Dense input: the side condition must lift S rather than explode k.
        cfg = MPCConfig.sublinear(100, 4950, 1, 2)
        assert cfg.num_machines <= cfg.memory_words // 4

    def test_near_linear(self):
        cfg = MPCConfig.near_linear(500, 2000)
        assert cfg.memory_words >= 500
        assert cfg.total_memory >= MPCConfig.input_words(500, 2000)

    def test_single_machine(self):
        cfg = MPCConfig.single_machine(100, 300)
        assert cfg.num_machines == 1
        assert cfg.total_memory >= MPCConfig.input_words(100, 300)

    def test_tiny_graph_floor(self):
        cfg = MPCConfig.sublinear(1, 0)
        assert cfg.memory_words >= 64

    def test_labels(self):
        assert "sublinear" in MPCConfig.sublinear(100, 100).label
        assert MPCConfig.near_linear(100, 100).label == "near-linear"
