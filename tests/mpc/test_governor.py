"""Load governor: peak-hold, throttle planning, wiring, bit-identity."""

import os

import pytest

from repro.core.alpha_ruling import det_alpha_ruling_set
from repro.core.exponentiation import BALLS, grow_balls
from repro.errors import MPCConfigError, MPCViolationError
from repro.graph import generators as gen
from repro.mpc.config import MPCConfig
from repro.mpc.governor import GovernorPolicy, LoadGovernor, PeakHold
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import GOVERNED_ENV, Simulator


class TestPeakHold:
    def test_holds_the_maximum(self):
        ph = PeakHold()
        for value in (10, 80, 30, 79):
            ph.observe(value)
        assert ph.peak == 80
        assert ph.observations == 4

    def test_negative_observations_clamp_to_zero(self):
        ph = PeakHold()
        ph.observe(-5)
        assert ph.peak == 0

    def test_decay_lowers_the_peak_between_highs(self):
        ph = PeakHold(decay_num=1, decay_den=2)
        ph.observe(100)
        ph.observe(0)
        assert ph.peak == 50  # decayed once
        ph.observe(60)
        assert ph.peak == 60  # new high wins over 25

    def test_invalid_decay_rejected(self):
        with pytest.raises(MPCConfigError):
            PeakHold(decay_num=0, decay_den=1)
        with pytest.raises(MPCConfigError):
            PeakHold(decay_num=3, decay_den=2)
        with pytest.raises(MPCConfigError):
            PeakHold(decay_num=1, decay_den=0)


class TestGovernorPolicy:
    def test_defaults_are_valid(self):
        policy = GovernorPolicy()
        assert policy.target_num == 1 and policy.target_den == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_num": 0},
            {"target_num": 3, "target_den": 2},
            {"target_den": 0},
            {"chunk_floor": 0},
            {"window_floor": 0},
            {"decay_num": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(MPCConfigError):
            GovernorPolicy(**kwargs)


class TestLoadGovernorQueries:
    def test_target_is_a_budget_fraction(self):
        gov = LoadGovernor(4096)
        assert gov.target_words == 2048
        gov = LoadGovernor(
            1000, GovernorPolicy(target_num=3, target_den=4)
        )
        assert gov.target_words == 750

    def test_invalid_budget_rejected(self):
        with pytest.raises(MPCConfigError):
            LoadGovernor(0)

    def test_headroom_tracks_round_peak_and_clamps(self):
        gov = LoadGovernor(100)
        assert gov.headroom_words() == 100
        gov.observe_round(words=200, max_sent=60, max_received=40)
        assert gov.peak_round_words() == 60
        assert gov.headroom_words() == 40
        gov.observe_round(words=500, max_sent=80, max_received=250)
        assert gov.headroom_words() == 0  # clamped, never negative

    def test_scale_chunk_is_identity_before_any_round(self):
        gov = LoadGovernor(100)
        assert gov.scale_chunk(4096) == 4096
        assert gov.stats()["chunk_scalings"] == 0

    def test_scale_chunk_shrinks_with_headroom_and_floors(self):
        gov = LoadGovernor(100, GovernorPolicy(chunk_floor=8))
        gov.observe_round(words=0, max_sent=75, max_received=0)
        assert gov.scale_chunk(400) == 100  # 400 * 25 // 100
        gov.observe_round(words=0, max_sent=100, max_received=0)
        assert gov.scale_chunk(400) == 8  # zero headroom -> floor
        assert gov.scale_chunk(4) == 4  # floor never exceeds base
        # the base-4 call returned the base unchanged — not a scaling
        assert gov.stats()["chunk_scalings"] == 2

    def test_scale_chunk_rejects_bad_base(self):
        with pytest.raises(MPCConfigError):
            LoadGovernor(100).scale_chunk(0)

    def test_feed_trace_primes_the_estimator(self):
        from repro.mpc.trace import TraceRecorder

        cfg = MPCConfig(num_machines=2, memory_words=64)
        recorder = TraceRecorder(cfg)
        recorder.record_round(
            round_index=1, phase="p", elapsed_s=0.0, messages=2, words=10,
            max_sent=10, max_received=10, sent_per_machine=[10, 0],
            received_per_machine=[0, 10], backend_stats={},
        )
        recorder.record_memory(0, 33, round_index=1)
        gov = LoadGovernor(64)
        gov.feed_trace(recorder)
        assert gov.peak_round_words() == 10
        assert gov.peak_memory_words() == 33


class TestPlanBatch:
    def owner_of(self, v):
        return v // 4  # 4 vertices per machine

    def test_returns_none_when_full_window_fits(self):
        gov = LoadGovernor(100)  # target 50
        sizes = {v: 10 for v in range(8)}
        assert gov.plan_batch(8, sizes, self.owner_of) is None
        stats = gov.stats()
        assert stats["planned_steps"] == 1
        assert stats["batched_steps"] == 0

    def test_halves_until_per_machine_load_fits(self):
        gov = LoadGovernor(100)  # target 50: 4 x 20 = 80 per machine
        sizes = {v: 20 for v in range(8)}
        batch = gov.plan_batch(8, sizes, self.owner_of)
        # windows of 2 put <= 40 words on one machine; 4 would put 80.
        assert batch == 2
        assert gov.stats()["batched_steps"] == 1

    def test_floors_at_window_floor(self):
        gov = LoadGovernor(100, GovernorPolicy(window_floor=2))
        sizes = {v: 1000 for v in range(8)}  # nothing ever fits
        assert gov.plan_batch(8, sizes, self.owner_of) == 2

    def test_empty_inputs_plan_unbatched(self):
        gov = LoadGovernor(100)
        assert gov.plan_batch(0, {}, self.owner_of) is None
        assert gov.plan_batch(8, {}, self.owner_of) is None


class TestConfigWiring:
    def test_ungoverned_by_default(self):
        sim = Simulator(MPCConfig(num_machines=2, memory_words=256))
        assert sim.governor is None

    def test_with_governor_enables_and_sizes_the_target(self):
        cfg = MPCConfig(num_machines=2, memory_words=256).with_governor(
            target_percent=25
        )
        assert cfg.governed and cfg.governor_target_percent == 25
        sim = Simulator(cfg)
        assert isinstance(sim.governor, LoadGovernor)
        assert sim.governor.target_words == 64

    def test_invalid_target_percent_rejected(self):
        with pytest.raises(MPCConfigError):
            MPCConfig(
                num_machines=2, memory_words=256, governed=True,
                governor_target_percent=0,
            )

    def test_env_override_governs(self, monkeypatch):
        monkeypatch.setenv(GOVERNED_ENV, "1")
        sim = Simulator(MPCConfig(num_machines=2, memory_words=256))
        assert sim.governor is not None

    def test_env_false_values_stay_ungoverned(self, monkeypatch):
        for value in ("", "0", "false"):
            monkeypatch.setenv(GOVERNED_ENV, value)
            sim = Simulator(MPCConfig(num_machines=2, memory_words=256))
            assert sim.governor is None

    def test_simulator_feeds_round_and_memory_peaks(self):
        from repro.mpc.message import Message

        cfg = MPCConfig(num_machines=2, memory_words=256).with_governor()
        sim = Simulator(cfg)
        sim.communicate(
            lambda m: [Message(1, (1, 2, 3))] if m.mid == 0 else []
        )
        assert sim.governor.peak_round_words() == 3
        assert sim.governor.peak_memory_words() > 0

    def test_injected_governor_wins(self):
        gov = LoadGovernor(999)
        sim = Simulator(
            MPCConfig(num_machines=2, memory_words=256), governor=gov
        )
        assert sim.governor is gov


def grow_balls_radius2(graph, config, governed):
    cfg = config.with_governor() if governed else config
    with Simulator(cfg) as sim:
        dg = DistributedGraph.load(sim, graph)
        grow_balls(dg, radius=2, governor=sim.governor)
        balls = {
            v: machine.store[BALLS][v]
            for machine in sim.machines
            for v in machine.store.get(BALLS, {})
        }
    return balls, sim.metrics.rounds, sim.metrics.total_words


class TestGovernedExponentiation:
    """The tentpole contract at the engine level (DESIGN.md section 15)."""

    def test_noop_at_feasible_sizes_is_bit_identical(self):
        graph = gen.circulant_graph(96, [1, 2])
        cfg = MPCConfig(num_machines=4, memory_words=4096)
        plain = grow_balls_radius2(graph, cfg, governed=False)
        governed = grow_balls_radius2(graph, cfg, governed=True)
        assert plain == governed  # balls, rounds, and words all equal

    def test_dense_faults_ungoverned_and_completes_governed(self):
        # One machine's respond round receives (n/k) * d * (d + 2) words:
        # 20 * 16 * 18 = 5760 > 4096 — the quadratic-traffic regime.
        graph = gen.circulant_graph(240, list(range(1, 9)))
        cfg = MPCConfig(num_machines=12, memory_words=4096)
        with pytest.raises(MPCViolationError):
            grow_balls_radius2(graph, cfg, governed=False)
        governed_balls, _, governed_words = grow_balls_radius2(
            graph, cfg, governed=True
        )
        # Reference: same config, enforcement lifted — windowing must
        # reproduce its balls (and total words) exactly.
        with Simulator(cfg, enforce=False) as sim:
            dg = DistributedGraph.load(sim, graph)
            grow_balls(dg, radius=2)
            reference = {
                v: machine.store[BALLS][v]
                for machine in sim.machines
                for v in machine.store.get(BALLS, {})
            }
        assert governed_balls == reference
        assert governed_words == sim.metrics.total_words

    def test_alpha_solver_members_match_unenforced_reference(self):
        graph = gen.circulant_graph(240, list(range(1, 9)))
        cfg = MPCConfig(num_machines=12, memory_words=4096)

        def run(config, enforce=True):
            with Simulator(config, enforce=enforce) as sim:
                dg = DistributedGraph.load(sim, graph)
                det_alpha_ruling_set(dg, alpha=3, beta=2)
                return dg.collect_marked("alpha_rs_in_set")

        with pytest.raises(MPCViolationError):
            run(cfg)
        assert run(cfg.with_governor()) == run(cfg, enforce=False)


def test_governed_env_replay_is_bit_identical(monkeypatch):
    """A feasible end-to-end solve under REPRO_GOVERNED must not move."""
    from repro.core.pipeline import solve_ruling_set

    graph = gen.gnp_random_graph(96, 8, 96, seed=5)
    plain = solve_ruling_set(graph)
    monkeypatch.setenv(GOVERNED_ENV, "1")
    governed = solve_ruling_set(graph)
    assert governed.members == plain.members
    assert governed.rounds == plain.rounds
    assert governed.metrics == plain.metrics


def test_os_environ_unpolluted():
    # Paranoia: the suite must not leave the governed switch behind.
    assert os.environ.get(GOVERNED_ENV, "") in ("", "0", "false")
