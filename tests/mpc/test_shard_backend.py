"""The out-of-core shard backend: parity, residency, harvest, errors.

The contract under test is determinism-by-construction: a run on the
shard backend must be *bit-identical* to the serial backend — members,
rounds, every model metric, and even the text of budget/routing errors —
while never keeping more than one machine shard resident in the driver.
"""

import os

import pytest

from repro.core.det_luby import det_luby_mis
from repro.core.det_ruling import det_ruling_set
from repro.errors import MPCConfigError, MPCRoutingError, MPCViolationError
from repro.graph import generators as gen
from repro.mpc.backends import resolve_backend
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.machine import words_of
from repro.mpc.message import Message
from repro.mpc.ownermap import ModOwnerMap
from repro.mpc.shard import ShardBackend
from repro.mpc.simulator import BACKEND_ENV, Simulator


def _run(graph, backend=None, solver=det_luby_mis):
    cfg = MPCConfig.sublinear(
        graph.num_vertices, graph.num_edges, max_degree=graph.max_degree()
    )
    with Simulator(cfg, backend=backend) as sim:
        dg = DistributedGraph.load(
            sim, graph, ModOwnerMap(graph.num_vertices, cfg.num_machines)
        )
        solver(dg)
        members = dg.collect_marked("result_set")
        metrics = dict(sim.metrics.summary())
        rounds = sim.metrics.rounds
    return members, rounds, metrics


class TestParity:
    @pytest.mark.parametrize("num_shards", [1, 3, 4, 7])
    def test_bit_identical_to_serial(self, num_shards):
        graph = gen.gnp_random_graph(80, 6, 80, seed=13)
        serial = _run(graph)
        sharded = _run(graph, backend=ShardBackend(num_shards=num_shards))
        assert sharded == serial

    def test_det_ruling_parity(self):
        graph = gen.gnp_random_graph(64, 5, 64, seed=5)
        serial = _run(graph, solver=det_ruling_set)
        sharded = _run(
            graph, backend=ShardBackend(num_shards=3), solver=det_ruling_set
        )
        assert sharded == serial

    def test_tiny_chunk_size_changes_nothing(self):
        # chunk_messages=1 forces a spool flush per message: maximal
        # chunking must still reproduce the serial arrival order.
        graph = gen.gnp_random_graph(48, 4, 48, seed=3)
        serial = _run(graph)
        sharded = _run(
            graph, backend=ShardBackend(num_shards=4, chunk_messages=1)
        )
        assert sharded == serial

    def test_more_shards_than_machines(self):
        graph = gen.cycle_graph(24)
        serial = _run(graph)
        sharded = _run(graph, backend=ShardBackend(num_shards=64))
        assert sharded == serial


class TestResidency:
    def test_one_shard_resident_at_a_time(self):
        graph = gen.gnp_random_graph(96, 8, 96, seed=21)

        def peak_resident(num_shards):
            cfg = MPCConfig.sublinear(
                graph.num_vertices,
                graph.num_edges,
                max_degree=graph.max_degree(),
            )
            backend = ShardBackend(num_shards=num_shards)
            with Simulator(cfg, backend=backend) as sim:
                dg = DistributedGraph.load(
                    sim,
                    graph,
                    ModOwnerMap(graph.num_vertices, cfg.num_machines),
                )
                det_luby_mis(dg)
                stats = backend.stats()
                largest = max(len(rng) for rng in backend._shards)
                assert stats["max_resident_machines"] == largest
            return stats["max_resident_words"]

        # num_shards=1 keeps every machine resident — that high-water
        # mark is the all-in-driver footprint sharding exists to shrink.
        assert peak_resident(4) < peak_resident(1)

    def test_spill_files_are_source_of_truth(self):
        # After any superstep the in-driver Machine objects are husks.
        cfg = MPCConfig(num_machines=6, memory_words=4096)
        backend = ShardBackend(num_shards=3)
        with Simulator(cfg, backend=backend) as sim:
            sim.local(lambda m: m.store.__setitem__("x", m.mid))
            assert all(m.store == {} for m in sim.machines)
            values = sim.harvest(lambda m: m.store["x"])
        assert values == [0, 1, 2, 3, 4, 5]

    def test_shutdown_removes_spill_dir(self):
        cfg = MPCConfig(num_machines=4, memory_words=1024)
        backend = ShardBackend(num_shards=2)
        with Simulator(cfg, backend=backend) as sim:
            sim.local(lambda m: m.store.__setitem__("x", 1))
            spill_dir = backend._dir
            assert spill_dir is not None and os.path.isdir(spill_dir)
        assert not os.path.exists(spill_dir)

    def test_memory_snapshot_prices_spilled_state(self):
        cfg = MPCConfig(num_machines=4, memory_words=1024)
        backend = ShardBackend(num_shards=2)
        with Simulator(cfg, backend=backend) as sim:
            sim.local(
                lambda m: m.store.__setitem__("x", tuple(range(m.mid + 1)))
            )
            snapshot = sim.backend.memory_snapshot()
        expected = [words_of({"x": tuple(range(mid + 1))}) for mid in range(4)]
        assert snapshot == expected


class TestHarvest:
    def test_harvest_mutation_persists(self):
        cfg = MPCConfig(num_machines=5, memory_words=1024)
        backend = ShardBackend(num_shards=2)
        with Simulator(cfg, backend=backend) as sim:
            sim.local(lambda m: m.store.__setitem__("x", m.mid))
            popped = sim.harvest(lambda m: m.store.pop("x"), only=(3,))
            assert popped == [3]
            remaining = sim.harvest(lambda m: sorted(m.store))
        assert remaining == [["x"], ["x"], ["x"], [], ["x"]]

    def test_harvest_only_order_is_request_order(self):
        cfg = MPCConfig(num_machines=6, memory_words=1024)
        backend = ShardBackend(num_shards=3)
        with Simulator(cfg, backend=backend) as sim:
            sim.local(lambda m: m.store.__setitem__("x", m.mid * 10))
            values = sim.harvest(lambda m: m.store["x"], only=(5, 0, 2))
        assert values == [50, 0, 20]

    def test_harvest_matches_serial_backend(self):
        cfg = MPCConfig(num_machines=4, memory_words=1024)
        with Simulator(cfg) as sim:
            sim.local(lambda m: m.store.__setitem__("x", m.mid))
            assert sim.harvest(lambda m: m.store["x"]) == [0, 1, 2, 3]
            assert sim.harvest(lambda m: m.store["x"], only=(2,)) == [2]


class TestErrors:
    def _violation_texts(self, backend):
        cfg = MPCConfig(num_machines=3, memory_words=8)
        with Simulator(cfg, backend=backend) as sim:
            with pytest.raises(MPCViolationError) as err:
                sim.communicate(
                    lambda m: [Message(0, tuple(range(16)))]
                    if m.mid == 1
                    else []
                )
        return str(err.value)

    def test_sent_violation_text_matches_serial(self):
        assert self._violation_texts(None) == self._violation_texts(
            ShardBackend(num_shards=2)
        )

    def test_received_violation_text_matches_serial(self):
        def fan_in(m):
            return [Message(0, (1, 2, 3, 4, 5, 6))]

        texts = []
        for backend in (None, ShardBackend(num_shards=2)):
            cfg = MPCConfig(num_machines=3, memory_words=8)
            with Simulator(cfg, backend=backend) as sim:
                with pytest.raises(MPCViolationError) as err:
                    sim.communicate(fan_in)
            texts.append(str(err.value))
        assert texts[0] == texts[1]
        assert "received" in texts[0]

    def test_routing_error_text_matches_serial(self):
        texts = []
        for backend in (None, ShardBackend(num_shards=2)):
            cfg = MPCConfig(num_machines=3, memory_words=64)
            with Simulator(cfg, backend=backend) as sim:
                with pytest.raises(MPCRoutingError) as err:
                    sim.communicate(
                        lambda m: [Message(7, (1,))] if m.mid == 2 else []
                    )
            texts.append(str(err.value))
        assert texts[0] == texts[1]

    def test_negative_knobs_rejected(self):
        with pytest.raises(MPCConfigError):
            ShardBackend(num_shards=-1)
        with pytest.raises(MPCConfigError):
            ShardBackend(chunk_messages=-1)


class TestWiring:
    def test_resolve_backend_by_name(self):
        backend = resolve_backend("shard", 3)
        assert isinstance(backend, ShardBackend)
        assert backend.num_shards == 3
        backend.shutdown()

    def test_config_backend_shard(self):
        cfg = MPCConfig(num_machines=4, memory_words=1024).with_backend(
            "shard", 2
        )
        with Simulator(cfg) as sim:
            assert isinstance(sim.backend, ShardBackend)
            sim.local(lambda m: m.store.__setitem__("x", 1))
            assert sim.harvest(lambda m: m.store["x"]) == [1, 1, 1, 1]

    def test_env_override_applies_to_default_config(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "shard")
        cfg = MPCConfig(num_machines=4, memory_words=1024)
        sim = Simulator(cfg)
        try:
            assert isinstance(sim.backend, ShardBackend)
        finally:
            sim.shutdown()

    def test_env_override_loses_to_explicit_config(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "shard")
        cfg = MPCConfig(num_machines=2, memory_words=1024).with_backend(
            "process", 1
        )
        sim = Simulator(cfg)
        try:
            assert not isinstance(sim.backend, ShardBackend)
            assert sim.backend.name == "process"
        finally:
            sim.shutdown()

    def test_spill_dir_env_respected(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SHARD_DIR", str(tmp_path))
        cfg = MPCConfig(num_machines=2, memory_words=1024)
        backend = ShardBackend(num_shards=2)
        with Simulator(cfg, backend=backend) as sim:
            sim.local(lambda m: m.store.__setitem__("x", 1))
            assert backend._dir.startswith(str(tmp_path))

    def test_resident_machines_hint(self):
        cfg = MPCConfig(num_machines=10, memory_words=1024)
        backend = ShardBackend(num_shards=4)
        with Simulator(cfg, backend=backend) as sim:
            assert sim.backend.resident_machines_hint() is None
            sim.local(lambda m: None)
            assert sim.backend.resident_machines_hint() == 3


class TestSpillDirLifecycle:
    """Abnormal exits must not leak ``repro-shard-*`` spill dirs.

    The guarantee under audit: the Simulator context manager calls
    ``shutdown()`` on *any* exit — a solve raising mid-superstep, an
    operator interrupt — and shutdown removes the backend-owned spill
    directory, including when ``REPRO_SHARD_DIR`` roots it.
    """

    def _leftovers(self, root):
        return sorted(p.name for p in root.glob("repro-shard-*"))

    def _cfg(self, k=3):
        return MPCConfig(num_machines=k, memory_words=4096)

    def test_raising_solve_leaves_no_spill_dirs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_DIR", str(tmp_path))
        graph = gen.cycle_graph(18)
        with pytest.raises(RuntimeError, match="solver fault"):
            with Simulator(
                self._cfg(), backend=ShardBackend(num_shards=2)
            ) as sim:
                DistributedGraph.load(
                    sim, graph, ModOwnerMap(graph.num_vertices, 3)
                )
                assert len(self._leftovers(tmp_path)) == 1  # spilled
                raise RuntimeError("solver fault")
        assert self._leftovers(tmp_path) == []

    def test_raise_mid_superstep_cleans_up(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_DIR", str(tmp_path))

        def faulting(machine):
            raise RuntimeError("superstep fault")

        with pytest.raises(RuntimeError, match="superstep fault"):
            with Simulator(
                self._cfg(), backend=ShardBackend(num_shards=2)
            ) as sim:
                sim.local(faulting)
        assert self._leftovers(tmp_path) == []

    def test_interrupt_cleans_up(self, tmp_path, monkeypatch):
        # KeyboardInterrupt is a BaseException; the context manager's
        # __exit__ still runs, so the spill dir must still go away.
        monkeypatch.setenv("REPRO_SHARD_DIR", str(tmp_path))

        def interrupted(machine):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            with Simulator(
                self._cfg(), backend=ShardBackend(num_shards=2)
            ) as sim:
                sim.local(interrupted)
        assert self._leftovers(tmp_path) == []

    def test_explicit_spill_dir_root_survives(self, tmp_path):
        # Only the backend-created repro-shard-* subdir is removed; the
        # user-provided root directory itself is never deleted.
        root = tmp_path / "spool-root"
        with pytest.raises(RuntimeError):
            with Simulator(
                self._cfg(),
                backend=ShardBackend(num_shards=2, spill_dir=str(root)),
            ) as sim:
                sim.local(lambda m: m.store.__setitem__("x", 1))
                raise RuntimeError("fault")
        assert root.is_dir()
        assert sorted(root.glob("repro-shard-*")) == []

    def test_shutdown_is_idempotent_after_fault(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_DIR", str(tmp_path))
        backend = ShardBackend(num_shards=2)
        with pytest.raises(RuntimeError):
            with Simulator(self._cfg(), backend=backend) as sim:
                sim.local(lambda m: None)
                raise RuntimeError("fault")
        backend.shutdown()  # second shutdown must be a no-op
        assert self._leftovers(tmp_path) == []
