"""Kernel selection contract and the flat CSR machine-state views."""

import pytest

from repro.derand.family import Seed
from repro.errors import MPCConfigError
from repro.mpc.config import MPCConfig
from repro.mpc.state_layout import (
    BoundedCache,
    KERNEL_ENV,
    KERNEL_NUMPY,
    KERNEL_PYTHON,
    MAX_VECTOR_MODULUS,
    MachineCSR,
    NO_NUMPY_ENV,
    flatten_groups,
    hash_ids,
    kernel_of,
    numpy_available,
    numpy_or_none,
    resolve_kernel,
    supports_modulus,
)

if not numpy_available():
    pytest.skip(
        "numpy kernel unavailable (missing or REPRO_NO_NUMPY)",
        allow_module_level=True,
    )
np = pytest.importorskip("numpy")


class TestResolution:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert resolve_kernel(None) == KERNEL_PYTHON

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, KERNEL_NUMPY)
        assert resolve_kernel(KERNEL_PYTHON) == KERNEL_PYTHON

    def test_env_consulted_when_unset(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, KERNEL_NUMPY)
        assert resolve_kernel(None) == KERNEL_NUMPY

    def test_unknown_name_raises(self):
        with pytest.raises(MPCConfigError, match="unknown kernel"):
            resolve_kernel("cuda")

    def test_unknown_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "fortran")
        with pytest.raises(MPCConfigError, match="unknown kernel"):
            resolve_kernel(None)

    def test_numpy_falls_back_without_numpy(self, monkeypatch):
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        assert not numpy_available()
        assert numpy_or_none() is None
        assert resolve_kernel(KERNEL_NUMPY) == KERNEL_PYTHON

    def test_kernel_of_reads_config(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        cfg = MPCConfig(num_machines=2, memory_words=1024, kernel="numpy")

        class FakeSim:
            config = cfg

        assert kernel_of(FakeSim()) == KERNEL_NUMPY
        assert kernel_of(
            type("S", (), {"config": cfg.with_kernel(None)})()
        ) == KERNEL_PYTHON

    def test_config_rejects_unknown_kernel(self):
        with pytest.raises(MPCConfigError, match="unknown kernel"):
            MPCConfig(num_machines=2, memory_words=1024, kernel="gpu")

    def test_supports_modulus_bounds(self):
        assert supports_modulus(2)
        assert supports_modulus(MAX_VECTOR_MODULUS)
        assert not supports_modulus(MAX_VECTOR_MODULUS + 1)
        assert not supports_modulus(1)


class TestHashIds:
    def test_matches_seed_hash_at_large_modulus(self):
        # The Mersenne prime 2^31 - 1: the largest-practical field the
        # int64 product guard admits; exactness must hold right at it.
        p = (1 << 31) - 1
        assert supports_modulus(p)
        seed = Seed(a=p - 3, b=p - 11, p=p)
        ids = [0, 1, 2, p // 2, p - 2, p - 1]
        out = hash_ids(
            np, np.array(ids, dtype=np.int64), seed.a, seed.b, p
        )
        assert out.tolist() == [seed.hash(x) for x in ids]


class TestMachineCSR:
    def _reference(self, adj, seed, threshold):
        sampled = {
            v: tuple(u for u in nbrs if seed.hash(u) < threshold)
            for v, nbrs in adj.items()
            if seed.hash(v) < threshold
        }
        return sampled

    def test_row_order_is_insertion_order(self):
        adj = {5: (1, 9), 1: (), 9: (5,)}
        csr = MachineCSR.from_adjacency(adj, np)
        assert csr.ids.tolist() == [5, 1, 9]
        assert csr.degrees.tolist() == [2, 0, 1]
        assert csr.indices.tolist() == [1, 9, 5]
        assert csr.id_to_index == {5: 0, 1: 1, 9: 2}

    def test_empty_adjacency(self):
        csr = MachineCSR.from_adjacency({}, np)
        assert csr.num_vertices == 0
        seed = Seed(a=3, b=4, p=11)
        assert csr.sampled_subgraph(seed, 5) == {}
        assert csr.row_any(csr.hash_indices(seed) < 5).tolist() == []

    def test_isolated_vertices_report_no_coverage(self):
        adj = {0: (), 3: (7,), 7: (3,)}
        csr = MachineCSR.from_adjacency(adj, np)
        seed = Seed(a=1, b=0, p=13)
        covered = csr.row_any(csr.hash_indices(seed) < 13)
        # Every neighbour hashes below p, but the isolated row has no
        # neighbours at all — reduceat's empty-row hazard.
        assert covered.tolist() == [False, True, True]

    def test_sampled_subgraph_matches_reference(self):
        p = 101
        adj = {
            v: tuple(u for u in range(0, 40, 3) if u != v)
            for v in range(0, 40, 2)
        }
        for a, b in [(1, 0), (17, 55), (100, 3)]:
            seed = Seed(a=a, b=b, p=p)
            for threshold in (0, 1, 37, p):
                got = MachineCSR.from_adjacency(adj, np).sampled_subgraph(
                    seed, threshold
                )
                want = self._reference(adj, seed, threshold)
                assert got == want
                assert list(got) == list(want)  # same insertion order
                assert all(
                    type(v) is int for v in got
                ) and all(
                    type(u) is int for us in got.values() for u in us
                )

    def test_single_vertex(self):
        csr = MachineCSR.from_adjacency({4: ()}, np)
        seed = Seed(a=2, b=1, p=7)
        assert csr.hash_ids(seed).tolist() == [seed.hash(4)]
        assert csr.sampled_subgraph(seed, 7) == {4: ()}


class TestFlattenGroups:
    def test_roundtrip(self):
        groups = [(3, 1), (), (2,), (9, 9, 9)]
        indptr, values = flatten_groups(groups, np)
        assert indptr.tolist() == [0, 2, 2, 3, 6]
        assert values.tolist() == [3, 1, 2, 9, 9, 9]

    def test_empty(self):
        indptr, values = flatten_groups([], np)
        assert indptr.tolist() == [0]
        assert values.tolist() == []


class TestBoundedCache:
    def test_unbounded_by_default(self):
        cache = BoundedCache(None)
        for i in range(100):
            cache.put(i, i * 2)
        assert len(cache) == 100
        assert cache.get(0) == 0

    def test_lru_eviction(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a: b is now oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_put_refreshes_recency(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 10

    def test_zero_capacity_rejected(self):
        with pytest.raises(MPCConfigError):
            BoundedCache(0)
