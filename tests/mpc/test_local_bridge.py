"""The LOCAL→MPC bridge vs direct LOCAL execution."""

import pytest

from repro.core.verify import verify_ruling_set
from repro.errors import AlgorithmError
from repro.graph import generators as gen
from repro.local.algorithms.linial_coloring import (
    LinialColoring,
    run_linial_coloring,
)
from repro.local.algorithms.luby_mis import IN_MIS, LubyMIS, run_luby_mis
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.local_bridge import (
    LocalBridge,
    decode_payload,
    encode_payload,
)
from repro.mpc.simulator import Simulator


def load(graph, s_extra=4):
    cfg = MPCConfig.near_linear(
        graph.num_vertices, graph.num_edges,
        slack=s_extra, max_degree=graph.max_degree(),
    )
    sim = Simulator(cfg)
    return DistributedGraph.load(sim, graph), sim


class TestCodec:
    def test_int_roundtrip(self):
        assert decode_payload(encode_payload(7, ()), ()) == 7

    def test_tuple_roundtrip(self):
        assert decode_payload(encode_payload((1, 2, 3), ()), ()) == (1, 2, 3)

    def test_tagged_roundtrip(self):
        tags = ("prio", "in")
        encoded = encode_payload(("prio", (9, 2)), tags)
        assert decode_payload(encoded, tags) == ("prio", (9, 2))
        encoded = encode_payload(("in", 5), tags)
        assert decode_payload(encoded, tags) == ("in", (5,))

    def test_unknown_tag_rejected(self):
        with pytest.raises(AlgorithmError):
            encode_payload(("nope", 1), ("prio",))
        with pytest.raises(AlgorithmError):
            decode_payload((9, 1), ("prio",))

    def test_unencodable_rejected(self):
        with pytest.raises(AlgorithmError):
            encode_payload(object(), ())


class TestBridgedLuby:
    def test_matches_direct_local_run(self):
        graph = gen.gnp_random_graph(70, 1, 8, seed=6)
        direct_members, direct_rounds = run_luby_mis(graph, seed=3)

        dg, sim = load(graph)
        bridge = LocalBridge(
            dg, LubyMIS(seed=3), tags=("prio", "in", "out")
        )
        rounds, done = bridge.run()
        assert done
        states = bridge.collect_states()
        members = sorted(
            v for v, state in states.items() if state.status == IN_MIS
        )
        assert members == direct_members
        assert rounds == direct_rounds
        # Two MPC rounds per LOCAL round (exchange + halting consensus),
        # plus the final consensus that observed completion.
        assert sim.metrics.rounds == 2 * rounds + 1

    def test_bridged_output_verifies(self):
        graph = gen.random_tree(90, seed=2)
        dg, _ = load(graph)
        bridge = LocalBridge(
            dg, LubyMIS(seed=1), tags=("prio", "in", "out")
        )
        bridge.run()
        states = bridge.collect_states()
        members = [
            v for v, state in states.items() if state.status == IN_MIS
        ]
        verify_ruling_set(graph, members, alpha=2, beta=1)


class TestBridgedColoring:
    def test_matches_direct_coloring(self):
        graph = gen.grid_graph(8, 8)
        direct_colors, direct_rounds, _ = run_linial_coloring(graph)

        dg, _ = load(graph)
        algorithm = LinialColoring(
            graph.num_vertices, graph.max_degree()
        )
        bridge = LocalBridge(dg, algorithm)
        bridge.run(max_rounds=len(algorithm.schedule))
        states = bridge.collect_states()
        colors = [states[v].color for v in graph.vertices()]
        assert colors == direct_colors


class TestAccounting:
    def test_state_cost_charged(self):
        graph = gen.cycle_graph(12)
        dg, sim = load(graph)
        bridge = LocalBridge(
            dg, LubyMIS(seed=0), tags=("prio", "in", "out")
        )
        bridge.run()
        # Peak memory must include the declared per-vertex state charge.
        assert sim.metrics.peak_memory_words >= bridge.state_words
