"""BatchEngine: dedup, warm serving, parallel determinism, failures."""

import json

import pytest

from repro.core import registry
from repro.core.pipeline import solve_ruling_set
from repro.core.session import SessionFactory
from repro.errors import ServeError
from repro.graph import generators as gen
from repro.serve import (
    BatchEngine,
    ResultCache,
    payload_to_result,
    read_requests,
    write_records,
)

GNP = {"family": "gnp", "n": 96, "param": 6, "seed": 1}
TREE = {"family": "tree", "n": 64, "seed": 2}


def _requests():
    return [
        {"id": "a", "graph": dict(GNP), "algorithm": registry.DET_RULING},
        {"id": "b", "graph": dict(GNP), "algorithm": registry.DET_RULING},
        {"id": "c", "graph": dict(GNP), "algorithm": registry.DET_LUBY},
        {"id": "d", "graph": dict(TREE), "algorithm": registry.DET_MATCHING},
    ]


def _strip_serve(records):
    return [
        {key: value for key, value in record.items() if key != "_serve"}
        for record in records
    ]


class TestPlanning:
    def test_identical_requests_dedup_to_one_execution(self):
        engine = BatchEngine(ResultCache())
        records = engine.run(_requests())
        counters = engine.trace.counters
        assert counters["executed"] == 3  # a/b collapse
        assert counters["dedup"] == 1
        shared = [
            {k: v for k, v in record.items() if k not in ("id", "_serve")}
            for record in records[:2]
        ]
        assert shared[0] == shared[1]  # b serves a's solve verbatim
        assert records[0]["_serve"]["cache"] == "miss"
        assert records[1]["_serve"]["cache"] == "dedup"

    def test_one_graph_load_per_distinct_source(self):
        engine = BatchEngine(ResultCache())
        engine.run(_requests())
        assert engine.trace.counters["graph_load"] == 2

    def test_records_preserve_input_order_and_ids(self):
        engine = BatchEngine(ResultCache())
        records = engine.run(_requests())
        assert [record["id"] for record in records] == ["a", "b", "c", "d"]

    def test_default_ids_are_positional(self):
        engine = BatchEngine(ResultCache())
        records = engine.run(
            [{"graph": dict(TREE), "algorithm": registry.GREEDY_MIS}]
        )
        assert records[0]["id"] == "req-0"

    def test_unknown_algorithm_is_a_failure_record_not_a_crash(self):
        engine = BatchEngine(ResultCache())
        records = engine.run(
            [
                {"id": "bad", "graph": dict(TREE), "algorithm": "nope"},
                {"id": "ok", "graph": dict(TREE),
                 "algorithm": registry.GREEDY_MIS},
            ]
        )
        assert records[0]["status"] == "failed"
        assert records[0]["error_type"] == "AlgorithmError"
        assert records[1]["status"] == "ok"
        assert engine.trace.counters["failed"] == 1

    def test_solve_failure_is_recorded_and_not_cached(self):
        # alpha > 2 is unsupported by the Luby MIS engine: the solve
        # raises, the batch records it, and nothing lands in the cache.
        cache = ResultCache()
        engine = BatchEngine(cache)
        records = engine.run(
            [{"id": "x", "graph": dict(TREE),
              "algorithm": registry.DET_LUBY, "alpha": 3}]
        )
        assert records[0]["status"] == "failed"
        assert cache.stats()["stores"] == 0
        # A rerun must re-fail (errors are outcomes, never cached).
        engine2 = BatchEngine(cache)
        rerun = engine2.run(
            [{"id": "x", "graph": dict(TREE),
              "algorithm": registry.DET_LUBY, "alpha": 3}]
        )
        assert rerun[0]["status"] == "failed"
        assert _strip_serve(records) == _strip_serve(rerun)

    def test_dedup_of_a_failure_shares_the_outcome(self):
        engine = BatchEngine(ResultCache())
        records = engine.run(
            [
                {"id": "x", "graph": dict(TREE),
                 "algorithm": registry.DET_LUBY, "alpha": 3},
                {"id": "y", "graph": dict(TREE),
                 "algorithm": registry.DET_LUBY, "alpha": 3},
            ]
        )
        assert engine.trace.counters["executed"] == 0
        assert engine.trace.counters["failed"] == 1
        assert records[1]["status"] == "failed"
        assert records[1]["error"] == records[0]["error"]

    def test_oversized_batch_refused(self):
        engine = BatchEngine(ResultCache(), max_requests=2)
        with pytest.raises(ServeError, match="max_requests=2"):
            engine.run(_requests())

    def test_unknown_request_field_rejected(self):
        engine = BatchEngine(ResultCache())
        with pytest.raises(ServeError, match="unknown fields"):
            engine.run([{"graph": dict(TREE), "betta": 2}])

    def test_missing_graph_rejected(self):
        engine = BatchEngine(ResultCache())
        with pytest.raises(ServeError, match="'graph'"):
            engine.run([{"algorithm": registry.DET_RULING}])


class TestWarmServing:
    def test_second_run_is_all_hits_with_zero_executions(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        BatchEngine(cache).run(_requests())
        warm = BatchEngine(ResultCache(disk_dir=tmp_path))
        records = warm.run(_requests())
        assert warm.trace.counters["executed"] == 0
        assert warm.trace.counters["cache_miss"] == 0
        assert warm.trace.counters["cache_hit"] == 3
        assert all(record["status"] == "ok" for record in records)

    def test_warm_records_identical_to_cold_modulo_serve(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        cold = BatchEngine(cache).run(_requests())
        warm = BatchEngine(ResultCache(disk_dir=tmp_path)).run(_requests())
        assert _strip_serve(cold) == _strip_serve(warm)

    def test_cache_hit_reconstructs_bit_identical_result(self):
        # The tentpole acceptance test: serve a request cold, then
        # rebuild the result object from the cache and compare it (==,
        # wall clock included) against a direct pipeline solve captured
        # from the same execution.
        graph = gen.gnp_random_graph(96, 6, 96, seed=1)
        direct = solve_ruling_set(graph, algorithm=registry.DET_RULING)
        cache = ResultCache()
        engine = BatchEngine(cache)
        records = engine.run(
            [{"id": "a", "graph": dict(GNP),
              "algorithm": registry.DET_RULING}]
        )
        restored = payload_to_result(cache.get(records[0]["key"]))
        assert restored.members == direct.members
        assert restored.rounds == direct.rounds
        assert restored.metrics == direct.metrics
        assert restored.phase_rounds == direct.phase_rounds
        # And the round-trip through the cache itself is exact.
        assert payload_to_result(cache.get(records[0]["key"])) == restored

    def test_hit_serves_without_entering_the_simulator(self, tmp_path):
        import repro.core.session as session_module

        cache = ResultCache(disk_dir=tmp_path)
        BatchEngine(cache).run(_requests())
        engine = BatchEngine(ResultCache(disk_dir=tmp_path))
        calls = {"n": 0}
        original = session_module.SolverSession._run_mpc

        def counting(self):
            calls["n"] += 1
            return original(self)

        session_module.SolverSession._run_mpc = counting
        try:
            engine.run(_requests())
        finally:
            session_module.SolverSession._run_mpc = original
        assert calls["n"] == 0  # zero MPC rounds executed on a warm cache


class TestParallelDeterminism:
    def test_jobs_gt_1_matches_serial_record_for_record(self):
        serial = BatchEngine(ResultCache()).run(_requests())
        parallel = BatchEngine(ResultCache(), jobs=2).run(_requests())
        assert _strip_serve(serial) == _strip_serve(parallel)

    def test_retries_do_not_change_records(self):
        plain = BatchEngine(ResultCache()).run(_requests())
        retried = BatchEngine(ResultCache(), retries=2).run(_requests())
        assert _strip_serve(plain) == _strip_serve(retried)


class TestWarmSessions:
    def test_factory_solve_matches_cold_solve(self):
        graph = gen.gnp_random_graph(96, 6, 96, seed=7)
        factory = SessionFactory()
        warm = solve_ruling_set(
            graph, algorithm=registry.DET_RULING, session_factory=factory
        )
        cold = solve_ruling_set(graph, algorithm=registry.DET_RULING)
        assert warm.members == cold.members
        assert warm.rounds == cold.rounds
        assert warm.metrics == cold.metrics
        assert warm.phase_rounds == cold.phase_rounds

    def test_power_graph_built_once_across_alpha_solves(self):
        graph = gen.gnp_random_graph(64, 4, 64, seed=7)
        factory = SessionFactory()
        first = solve_ruling_set(
            graph, algorithm=registry.DET_RULING, alpha=3,
            session_factory=factory,
        )
        assert len(factory._power_cache) == 1
        cached_power = next(iter(factory._power_cache.values()))
        second = solve_ruling_set(
            graph, algorithm=registry.DET_RULING, alpha=3,
            session_factory=factory,
        )
        assert len(factory._power_cache) == 1
        assert next(iter(factory._power_cache.values())) is cached_power
        assert first.members == second.members

    def test_config_cache_reused_across_solves(self):
        graph = gen.gnp_random_graph(64, 4, 64, seed=7)
        factory = SessionFactory()
        solve_ruling_set(
            graph, algorithm=registry.DET_RULING, session_factory=factory
        )
        solve_ruling_set(
            graph, algorithm=registry.DET_RULING, beta=3,
            session_factory=factory,
        )
        # beta is not a sizing input, so both solves share one config.
        assert len(factory._config_cache) == 1


class TestRequestIO:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text(
            "\n".join(json.dumps(req) for req in _requests()) + "\n\n"
        )
        assert read_requests(path) == _requests()

    def test_malformed_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text('{"id": "a"}\nnot json\n')
        with pytest.raises(ServeError, match=":2"):
            read_requests(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ServeError, match="JSON object"):
            read_requests(path)

    def test_write_records_round_trips(self, tmp_path):
        records = BatchEngine(ResultCache()).run(
            [{"id": "a", "graph": dict(TREE),
              "algorithm": registry.GREEDY_MIS}]
        )
        out = tmp_path / "out.jsonl"
        write_records(records, out)
        parsed = [json.loads(line) for line in out.read_text().splitlines()]
        assert parsed == records


class TestCLI:
    def _write_requests(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text(
            "\n".join(json.dumps(req) for req in _requests()) + "\n"
        )
        return path

    def test_batch_twice_second_run_all_hits(self, tmp_path, capsys):
        from repro.cli import main

        requests = self._write_requests(tmp_path)
        args = [
            "batch", "--requests", str(requests),
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args + ["--out", str(tmp_path / "run1.jsonl")]) == 0
        assert main(args + ["--out", str(tmp_path / "run2.jsonl")]) == 0
        err = capsys.readouterr().err
        assert "hits=3 misses=0 dedup=1 executed=0" in err
        first = (tmp_path / "run1.jsonl").read_text().splitlines()
        second = (tmp_path / "run2.jsonl").read_text().splitlines()
        strip = lambda lines: _strip_serve([json.loads(l) for l in lines])
        assert strip(first) == strip(second)

    def test_batch_failure_exit_code(self, tmp_path):
        from repro.cli import main

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"id": "bad", "graph": dict(TREE),
                        "algorithm": "nope"}) + "\n"
        )
        assert main(
            ["batch", "--requests", str(requests),
             "--out", str(tmp_path / "out.jsonl")]
        ) == 1

    def test_cache_warm_stats_clear(self, tmp_path, capsys):
        from repro.cli import main

        requests = self._write_requests(tmp_path)
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["cache", "warm", "--cache-dir", cache_dir,
             "--requests", str(requests)]
        ) == 0
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "disk entries: 3" in out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 3" in capsys.readouterr().out

    def test_cache_requires_dir(self):
        from repro.cli import main

        assert main(["cache", "stats"]) == 2  # ReproError exit path

    def test_batch_trace_out(self, tmp_path):
        from repro.cli import main

        requests = self._write_requests(tmp_path)
        trace_path = tmp_path / "trace.jsonl"
        assert main(
            ["batch", "--requests", str(requests),
             "--out", str(tmp_path / "out.jsonl"),
             "--trace-out", str(trace_path)]
        ) == 0
        lines = [json.loads(l) for l in trace_path.read_text().splitlines()]
        assert lines[0]["layer"] == "serve"
        assert lines[-1]["type"] == "summary"
        assert lines[-1]["executed"] == 3


class TestAtomicWrite:
    def test_no_tmp_file_left_behind(self, tmp_path):
        out = tmp_path / "out.jsonl"
        write_records([{"id": "a", "status": "ok"}], out)
        assert json.loads(out.read_text()) == {"id": "a", "status": "ok"}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failed_write_preserves_previous_file(self, tmp_path):
        # Regression: write_records used a plain write_text — a crash
        # mid-write left a torn, half-valid file.  With the atomic
        # tmp-then-replace pattern the previous content survives any
        # failure before the rename.
        out = tmp_path / "out.jsonl"
        write_records([{"id": "old"}], out)
        with pytest.raises(TypeError):
            write_records([{"id": object()}], out)  # unserialisable
        assert json.loads(out.read_text()) == {"id": "old"}

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        out = tmp_path / "out.jsonl"
        write_records([{"id": "one"}], out)
        write_records([{"id": "two"}, {"id": "three"}], out)
        parsed = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        assert parsed == [{"id": "two"}, {"id": "three"}]


class TestDuplicateIds:
    def test_duplicate_explicit_ids_raise(self):
        engine = BatchEngine(ResultCache())
        requests = [
            {"id": "x", "graph": dict(TREE)},
            {"id": "x", "graph": dict(GNP)},
        ]
        with pytest.raises(
            ServeError, match="duplicate request id 'x'"
        ) as excinfo:
            engine.run(requests)
        assert "request 0 and request 1" in str(excinfo.value)
        # The check fires before any work: no loads, no cache traffic.
        assert engine.trace.counters.get("graph_load", 0) == 0
        assert engine.trace.counters["cache_miss"] == 0

    def test_duplicate_ids_name_file_lines(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text(
            json.dumps({"id": "x", "graph": dict(TREE)})
            + "\n\n"
            + json.dumps({"id": "x", "graph": dict(GNP)})
            + "\n"
        )
        requests, linenos = read_requests(path, with_linenos=True)
        assert linenos == [1, 3]  # the blank line is skipped, not counted
        engine = BatchEngine(ResultCache())
        with pytest.raises(ServeError, match=r"line 1 and line 3"):
            engine.run(requests, linenos=linenos)

    def test_cli_batch_reports_duplicate_ids(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "requests.jsonl"
        path.write_text(
            json.dumps({"id": "dup", "graph": dict(TREE)}) + "\n"
            + json.dumps({"id": "dup", "graph": dict(TREE)}) + "\n"
        )
        assert main(["batch", "--requests", str(path)]) == 2
        err = capsys.readouterr().err
        assert "duplicate request id 'dup'" in err
        assert "line 1 and line 2" in err

    def test_distinct_ids_still_dedup_by_key(self):
        # Distinct ids with identical solve params remain a dedup —
        # the id check must not break key-level dedup semantics.
        engine = BatchEngine(ResultCache())
        engine.run(_requests())
        assert engine.trace.counters["dedup"] == 1


class TestStreamingRead:
    def test_file_is_streamed_not_slurped(self, tmp_path, monkeypatch):
        # Regression: read_requests slurped the file via read_text.
        # Pin the streaming implementation by making whole-file reads
        # explode.
        from pathlib import Path

        path = tmp_path / "requests.jsonl"
        path.write_text(
            "\n".join(json.dumps(req) for req in _requests()) + "\n"
        )

        def boom(self, *args, **kwargs):
            raise AssertionError("read_requests must stream, not slurp")

        monkeypatch.setattr(Path, "read_text", boom)
        assert read_requests(path) == _requests()

    def test_error_messages_unchanged_by_streaming(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text('{"id": "a"}\n\nnot json\n')
        with pytest.raises(
            ServeError, match=rf"{path}:3: request is not valid JSON"
        ):
            read_requests(path)
        path.write_text('{"id": "a"}\n[1, 2]\n')
        with pytest.raises(
            ServeError,
            match=rf"{path}:2: request must be a JSON object, got list",
        ):
            read_requests(path)


class TestServeRequestPath:
    def test_matches_batch_records(self):
        batch = BatchEngine(ResultCache())
        batch_records = batch.run(_requests())
        served_engine = BatchEngine(ResultCache())
        served = [
            served_engine.serve_request(request, index=index)
            for index, request in enumerate(_requests())
        ]
        assert _strip_serve(served) == _strip_serve(batch_records)

    def test_request_b_is_hit_not_dedup(self):
        # Sequential serving has no batch-level dedup window: the
        # second identical request resolves through the cache instead,
        # with an identical deterministic record either way.
        engine = BatchEngine(ResultCache())
        for index, request in enumerate(_requests()):
            engine.serve_request(request, index=index)
        assert engine.trace.counters["executed"] == 3
        assert engine.trace.counters["cache_hit"] == 1
        assert engine.trace.counters["dedup"] == 0

    def test_unknown_algorithm_is_failure_record(self):
        engine = BatchEngine(ResultCache())
        record = engine.serve_request(
            {"id": "x", "graph": dict(TREE), "algorithm": "nope"}
        )
        assert record["status"] == "failed"
        assert "nope" in record["error"]

    def test_unknown_fields_raise_like_batch(self):
        engine = BatchEngine(ResultCache())
        with pytest.raises(ServeError, match="unknown fields"):
            engine.serve_request(
                {"id": "x", "graph": dict(TREE), "bogus": 1}
            )

    def test_graph_pool_eviction(self):
        engine = BatchEngine(ResultCache(), graph_pool=1)
        engine.serve_request({"id": "a", "graph": dict(TREE)})
        engine.serve_request({"id": "b", "graph": dict(GNP)})
        engine.serve_request({"id": "c", "graph": dict(TREE), "beta": 3})
        # Pool of one: TREE was evicted by GNP and reloaded for "c".
        assert engine.trace.counters["graph_load"] == 3
        assert engine.trace.counters["graph_evict"] == 2
