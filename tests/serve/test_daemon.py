"""Daemon lifecycle: admission, fairness, warm pools, bit-identity.

The load-bearing claims: (1) a served record's deterministic part is
byte-identical to the same request through the batch engine; (2) a
request is either served or *explicitly refused* with a structured
record — never silently dropped; (3) a flooding tenant cannot starve
another (round-robin fairness); (4) repeated graphs never reload (warm
pool).  Tests drive the asyncio daemon through ``asyncio.run`` inside
synchronous test functions (no asyncio pytest plugin in the toolchain).
"""

import asyncio
import json

import pytest

from repro.errors import ServeError
from repro.mpc.config import MPCConfig
from repro.serve import (
    AdmissionPolicy,
    BatchEngine,
    ResultCache,
    ServeDaemon,
    estimate_request_words,
    replay_requests,
)


def _engine(**kwargs):
    return BatchEngine(ResultCache(memory_entries=32), **kwargs)


def _request(rid, *, n=48, param=6, seed=0, **extra):
    return {
        "id": rid,
        "graph": {"family": "gnp", "n": n, "param": param},
        "seed": seed,
        **extra,
    }


def _strip_serve(record):
    return {k: v for k, v in record.items() if k != "_serve"}


async def _with_workers(daemon, body):
    """Run ``body()`` with the daemon's worker pool alive, then drain."""
    workers = [
        asyncio.create_task(daemon._worker())
        for _ in range(daemon.workers)
    ]
    try:
        return await body()
    finally:
        daemon.request_stop()
        await asyncio.gather(*workers)


class TestBitIdentity:
    def test_served_records_match_batch_records(self):
        requests = [
            _request("a", seed=1),
            _request("b", seed=2),
            _request("c", n=32, param=4, seed=1),
        ]
        batch = _engine()
        batch_records = batch.run([dict(r) for r in requests])

        daemon = ServeDaemon(_engine(), workers=2)

        async def body():
            return await replay_requests(
                daemon, [dict(r) for r in requests], concurrency=3
            )

        served = asyncio.run(_with_workers(daemon, body))
        assert [_strip_serve(r) for r in served] == [
            _strip_serve(r) for r in batch_records
        ]
        # Canonical-JSON serialization is the byte-level contract.
        assert [
            json.dumps(_strip_serve(r), sort_keys=True) for r in served
        ] == [
            json.dumps(_strip_serve(r), sort_keys=True)
            for r in batch_records
        ]

    def test_cache_hit_path_also_identical(self):
        daemon = ServeDaemon(_engine())

        async def body():
            first = await daemon.submit(_request("a"))
            second = await daemon.submit(_request("b"))
            return first, second

        first, second = asyncio.run(_with_workers(daemon, body))
        assert first["_serve"]["cache"] == "miss"
        assert second["_serve"]["cache"] == "hit"
        # Same solve params, different id: payloads identical.
        a = {k: v for k, v in _strip_serve(first).items() if k != "id"}
        b = {k: v for k, v in _strip_serve(second).items() if k != "id"}
        assert a == b


class TestAdmissionControl:
    def test_queue_full_refusal_shape(self):
        daemon = ServeDaemon(
            _engine(), policy=AdmissionPolicy(max_queue=1)
        )

        async def body():
            # No workers running: the first admit holds the only slot.
            refusal, future = daemon.admit(_request("first"))
            assert refusal is None and future is not None
            record = await daemon.submit(_request("second"))
            return record

        async def scenario():
            return await body()

        record = asyncio.run(scenario())
        assert record["status"] == "refused"
        assert record["error_type"] == "ServeError"
        assert "max_queue=1" in record["error"]
        assert record["id"] == "second"
        serve = record["_serve"]
        assert serve["queue_depth"] == 1
        assert serve["tenant"] == "default"
        assert "est_words" in serve and "inflight_words" in serve

    def test_words_budget_refusal(self):
        est = estimate_request_words(_request("big", n=4096, param=8))
        assert est > 0
        daemon = ServeDaemon(
            _engine(),
            policy=AdmissionPolicy(
                max_queue=100, max_inflight_words=est - 1
            ),
        )

        async def scenario():
            return await daemon.submit(_request("big", n=4096, param=8))

        record = asyncio.run(scenario())
        assert record["status"] == "refused"
        assert "max_inflight_words" in record["error"]

    def test_every_submission_gets_a_record(self):
        # Saturate a 2-deep queue with 8 requests: each submission
        # resolves to either a served record or a structured refusal —
        # silent drops would show up as a short result list.
        daemon = ServeDaemon(
            _engine(), policy=AdmissionPolicy(max_queue=2)
        )
        requests = [_request(f"r{i}", seed=i) for i in range(8)]

        async def body():
            return await replay_requests(
                daemon, requests, concurrency=8
            )

        records = asyncio.run(_with_workers(daemon, body))
        assert len(records) == len(requests)
        statuses = {r["status"] for r in records}
        assert statuses <= {"ok", "refused"}
        refused = [r for r in records if r["status"] == "refused"]
        for record in refused:
            assert record["error_type"] == "ServeError"
            assert record["error"]
        assert daemon.stats()["refused"] == len(refused)

    def test_refusals_are_traced(self):
        daemon = ServeDaemon(
            _engine(), policy=AdmissionPolicy(max_queue=1)
        )

        async def scenario():
            daemon.admit(_request("held"))
            return await daemon.submit(_request("spill"))

        asyncio.run(scenario())
        refusals = [
            ev
            for ev in daemon.engine.trace.events
            if ev["type"] == "refused"
        ]
        assert len(refusals) == 1
        assert refusals[0]["id"] == "spill"
        assert daemon.engine.trace.counters["refused"] == 1

    def test_policy_validation(self):
        with pytest.raises(ServeError, match="max_queue"):
            AdmissionPolicy(max_queue=0)
        with pytest.raises(ServeError, match="max_inflight_words"):
            AdmissionPolicy(max_inflight_words=-1)
        with pytest.raises(ServeError, match="workers"):
            ServeDaemon(_engine(), workers=0)

    def test_shutdown_refuses_new_but_drains_admitted(self):
        daemon = ServeDaemon(_engine())

        async def scenario():
            refusal_a, future_a = daemon.admit(_request("queued"))
            assert refusal_a is None
            daemon.request_stop()
            late = await daemon.submit(_request("late"))
            worker = asyncio.create_task(daemon._worker())
            queued = await future_a
            await worker
            return queued, late

        queued, late = asyncio.run(scenario())
        assert queued["status"] == "ok"
        assert late["status"] == "refused"
        assert "shutting down" in late["error"]


class TestFairness:
    def test_round_robin_pop_order(self):
        daemon = ServeDaemon(_engine())

        async def scenario():
            # Tenant A floods 4 requests before tenant B's 2 arrive.
            for i in range(4):
                daemon.admit(_request(f"a{i}"), tenant="A")
            for i in range(2):
                daemon.admit(_request(f"b{i}"), tenant="B")
            order = []
            while True:
                pending = daemon._next_pending()
                if pending is None:
                    break
                order.append(str(pending.data["id"]))
            return order

        order = asyncio.run(scenario())
        assert order == ["a0", "b0", "a1", "b1", "a2", "a3"]

    def test_flooding_tenant_does_not_starve_the_other(self):
        # End to end with one worker: all requests admitted up front,
        # then execution order observed through the latency records
        # (appended at completion).  B's two requests must both finish
        # before A's flood does.
        daemon = ServeDaemon(_engine())

        async def body():
            futures = []
            for i in range(4):
                _, future = daemon.admit(
                    _request(f"a{i}", seed=i), tenant="A"
                )
                futures.append(future)
            for i in range(2):
                _, future = daemon.admit(
                    _request(f"b{i}", seed=10 + i), tenant="B"
                )
                futures.append(future)
            await asyncio.gather(*futures)

        asyncio.run(_with_workers(daemon, body))
        completion = [
            str(entry["id"])
            for entry in daemon.engine.trace.latencies
        ]
        assert completion == ["a0", "b0", "a1", "b1", "a2", "a3"]
        tenants = {
            entry["id"]: entry["tenant"]
            for entry in daemon.engine.trace.latencies
        }
        assert tenants["a0"] == "A" and tenants["b0"] == "B"


class TestWarmPools:
    def test_repeated_graph_loads_once(self):
        daemon = ServeDaemon(_engine())
        # Distinct solve params (beta) on one graph source: four real
        # executions, one load.
        requests = [
            _request(f"r{i}", beta=beta)
            for i, beta in enumerate((2, 3, 4, 5))
        ]

        async def body():
            for request in requests:
                await daemon.submit(request)

        asyncio.run(_with_workers(daemon, body))
        assert daemon.engine.trace.counters["graph_load"] == 1
        assert daemon.engine.trace.counters["executed"] == 4

    def test_latency_attribution_recorded(self):
        daemon = ServeDaemon(_engine())

        async def body():
            await daemon.submit(_request("a"))
            await daemon.submit(_request("b"))

        asyncio.run(_with_workers(daemon, body))
        latencies = daemon.engine.trace.latencies
        assert len(latencies) == 2
        for entry in latencies:
            assert entry["type"] == "latency"
            assert entry["outcome"] == "ok"
            assert entry["total_s"] >= entry["execute_s"] >= 0.0
            assert entry["queue_s"] >= 0.0
        summary = daemon.engine.trace.latency_summary()
        assert summary["count"] == 2
        for stage in ("queue_ms", "execute_ms", "total_ms"):
            assert set(summary[stage]) == {"p50", "p95", "p99"}
        # Latency rides the trace export between events and summary.
        lines = daemon.engine.trace.jsonl_lines()
        kinds = [json.loads(line)["type"] for line in lines]
        assert kinds.count("latency") == 2
        assert kinds[-1] == "summary"

    def test_failures_do_not_kill_the_worker(self):
        daemon = ServeDaemon(_engine())

        async def body():
            bad = await daemon.submit(
                {"id": "bad", "graph": {"input": "/nonexistent/g.txt"}}
            )
            good = await daemon.submit(_request("good"))
            return bad, good

        bad, good = asyncio.run(_with_workers(daemon, body))
        assert bad["status"] == "failed"
        assert bad["error_type"] == "FileNotFoundError"
        assert good["status"] == "ok"

    def test_malformed_request_is_invalid_not_fatal(self):
        daemon = ServeDaemon(_engine())

        async def body():
            invalid = await daemon.submit(
                {"id": "x", "graph": {"family": "gnp"}, "bogus": 1}
            )
            good = await daemon.submit(_request("good"))
            return invalid, good

        invalid, good = asyncio.run(_with_workers(daemon, body))
        assert invalid["status"] == "invalid"
        assert invalid["error_type"] == "ServeError"
        assert "unknown fields" in invalid["error"]
        assert good["status"] == "ok"


class TestSocketLifecycle:
    def test_clean_startup_and_shutdown(self, tmp_path):
        socket_path = str(tmp_path / "repro.sock")
        daemon = ServeDaemon(_engine(), workers=2)

        async def scenario():
            server = asyncio.create_task(daemon.serve_unix(socket_path))
            # Wait for the socket to appear.
            for _ in range(200):
                try:
                    reader, writer = await asyncio.open_unix_connection(
                        socket_path
                    )
                    break
                except (ConnectionRefusedError, FileNotFoundError):
                    await asyncio.sleep(0.01)
            else:
                raise AssertionError("daemon socket never came up")

            async def ask(payload):
                writer.write(json.dumps(payload).encode() + b"\n")
                await writer.drain()

            await ask({"op": "ping"})
            await ask(_request("a", tenant="t1"))
            await ask(_request("b", seed=7, tenant="t2"))
            writer.write(b"not json at all\n")
            await writer.drain()
            await ask({"op": "stats"})
            await ask({"op": "shutdown"})
            responses = []
            while True:
                line = await reader.readline()
                if not line:
                    break
                responses.append(json.loads(line))
            writer.close()
            await server
            return responses

        responses = asyncio.run(scenario())
        by_kind = {}
        for record in responses:
            by_kind.setdefault(
                record.get("op") or record.get("id") or "invalid", record
            )
        assert by_kind["ping"]["status"] == "ok"
        assert by_kind["a"]["status"] == "ok"
        assert by_kind["b"]["status"] == "ok"
        assert by_kind["a"]["_serve"]["tenant"] == "t1"
        assert by_kind["b"]["_serve"]["tenant"] == "t2"
        assert by_kind["invalid"]["status"] == "invalid"
        assert "not valid JSON" in by_kind["invalid"]["error"]
        stats = by_kind["stats"]["stats"]
        assert stats["max_queue"] == daemon.policy.max_queue
        assert by_kind["shutdown"]["status"] == "ok"
        # Requests on the wire before the shutdown op were served, and
        # the daemon exited cleanly (serve_unix returned).
        assert daemon.stats()["served"] == 2

    def test_control_op_unknown(self):
        daemon = ServeDaemon(_engine())
        record = daemon._control("reboot")
        assert record["status"] == "invalid"
        assert "unknown control op" in record["error"]


class TestEstimates:
    def test_generator_estimate_uses_input_words_model(self):
        data = _request("x", n=100, param=10)
        assert estimate_request_words(data) == MPCConfig.input_words(
            100, 100 * 10 // 2
        )

    def test_edge_list_estimate_reads_header_only(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 250\n" + "0 1\n" * 250, encoding="ascii")
        data = {"id": "x", "graph": {"input": str(path)}}
        assert estimate_request_words(data) == MPCConfig.input_words(
            100, 250
        )

    def test_unpriceable_requests_are_admitted(self, tmp_path):
        assert estimate_request_words({"id": "x"}) == 0
        assert estimate_request_words({"graph": "nope"}) == 0
        assert (
            estimate_request_words(
                {"graph": {"input": str(tmp_path / "missing.txt")}}
            )
            == 0
        )
        assert (
            estimate_request_words({"graph": {"family": "gnp", "n": "?"}})
            == 0
        )


class TestUnpriceableAdmission:
    """Satellite regression: unpriceable requests must not bypass the
    inflight-words cap once a conservative default price is set."""

    def unpriceable(self, rid):
        # graph is not a dict -> estimate_request_words returns 0.
        return {"id": rid, "graph": "not-a-spec"}

    def test_estimator_still_returns_zero(self):
        assert estimate_request_words(self.unpriceable("u")) == 0

    def test_legacy_default_admits_at_zero(self):
        # default_request_words=0 keeps the historical loophole open
        # deliberately (opt-in throttling, zero-surprise upgrades).
        daemon = ServeDaemon(
            _engine(),
            policy=AdmissionPolicy(max_queue=4, max_inflight_words=10),
        )

        async def scenario():
            refusal, future = daemon.admit(self.unpriceable("u"))
            return refusal

        assert asyncio.run(scenario()) is None

    def test_default_price_is_charged_against_the_cap(self):
        daemon = ServeDaemon(
            _engine(),
            policy=AdmissionPolicy(
                max_queue=4,
                max_inflight_words=50,
                default_request_words=100,
            ),
        )

        async def scenario():
            refusal, future = daemon.admit(self.unpriceable("u"))
            assert future is None
            return refusal

        record = asyncio.run(scenario())
        assert record["status"] == "refused"
        assert "max_inflight_words" in record["error"]
        assert record["_serve"]["est_words"] == 100

    def test_peak_hold_lifts_the_unpriceable_price(self):
        priced = _request("priced", n=512, param=8)
        est = estimate_request_words(priced)
        assert est > 1
        daemon = ServeDaemon(
            _engine(),
            policy=AdmissionPolicy(
                max_queue=4,
                max_inflight_words=est + 1,  # room for priced, not 2x
                default_request_words=1,
            ),
        )

        async def scenario():
            refusal, future = daemon.admit(priced)  # holds est words
            assert refusal is None
            return daemon.admit(self.unpriceable("u"))[0]

        record = asyncio.run(scenario())
        # The unknown request is assumed as heavy as the heaviest known
        # one: charged est (> default 1), which busts the cap.
        assert record["status"] == "refused"
        assert record["_serve"]["est_words"] == est
        assert daemon.stats()["unpriceable_priced"] == 1

    def test_stats_surface_the_governor_state(self):
        daemon = ServeDaemon(
            _engine(),
            policy=AdmissionPolicy(default_request_words=7),
        )

        async def scenario():
            daemon.admit(_request("p", n=64, param=6))
            daemon.admit(self.unpriceable("u"))

        asyncio.run(scenario())
        stats = daemon.stats()
        assert stats["default_request_words"] == 7
        assert stats["peak_request_words"] > 0
        assert stats["unpriceable_priced"] == 1

    def test_negative_default_rejected(self):
        with pytest.raises(ServeError, match="default_request_words"):
            AdmissionPolicy(default_request_words=-1)
