"""ResultCache: tiers, eviction accounting, and bit-identical round-trips."""

import pytest

from repro.core import registry
from repro.core.pipeline import solve_ruling_set
from repro.core.det_matching import solve_matching
from repro.errors import ServeError
from repro.graph import generators as gen
from repro.serve import (
    ResultCache,
    payload_to_result,
    result_to_payload,
)


def _payload(tag: int) -> dict:
    return {"tag": tag}


class TestRoundTrip:
    def test_ruling_set_result_bit_identical(self):
        # The acceptance criterion: a cache hit reconstructs a result
        # equal (dataclass ==, wall clock included) to the original.
        graph = gen.gnp_random_graph(96, 6, 96, seed=3)
        result = solve_ruling_set(graph, algorithm=registry.DET_RULING)
        cache = ResultCache()
        cache.put("k", result_to_payload(result))
        assert payload_to_result(cache.get("k")) == result

    def test_matching_result_bit_identical(self):
        graph = gen.random_tree(48, seed=5)
        result = solve_matching(graph)
        cache = ResultCache()
        cache.put("k", result_to_payload(result))
        restored = payload_to_result(cache.get("k"))
        assert restored == result
        # JSON turns tuples into lists; the restore must undo that, or
        # downstream verify calls break on unhashable edge types.
        assert all(isinstance(edge, tuple) for edge in restored.matching)

    def test_disk_round_trip_survives_process_boundary(self, tmp_path):
        graph = gen.cycle_graph(32)
        result = solve_ruling_set(graph, algorithm=registry.DET_LUBY)
        ResultCache(disk_dir=tmp_path).put("k", result_to_payload(result))
        fresh = ResultCache(disk_dir=tmp_path)  # simulates a new process
        assert payload_to_result(fresh.get("k")) == result

    def test_unknown_payload_rejected(self):
        with pytest.raises(ServeError):
            payload_to_result({"problem": "sudoku"})

    def test_uncacheable_object_rejected(self):
        with pytest.raises(ServeError):
            result_to_payload(object())


class TestMemoryTier:
    def test_hit_and_miss_counted(self):
        cache = ResultCache(memory_entries=4)
        assert cache.get("absent") is None
        cache.put("k", _payload(1))
        assert cache.get("k") == _payload(1)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1

    def test_lru_eviction_counted_and_oldest_first(self):
        cache = ResultCache(memory_entries=2)
        cache.put("a", _payload(1))
        cache.put("b", _payload(2))
        cache.get("a")  # refresh: b is now least-recently-used
        cache.put("c", _payload(3))
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["memory_entries"] == 2
        assert cache.get("b") is None  # evicted
        assert cache.get("a") == _payload(1)  # survived the refresh

    def test_zero_memory_entries_disables_tier(self, tmp_path):
        cache = ResultCache(memory_entries=0, disk_dir=tmp_path)
        cache.put("k", _payload(1))
        assert cache.stats()["memory_entries"] == 0
        assert cache.get("k") == _payload(1)  # served from disk
        assert cache.stats()["disk_hits"] == 1

    def test_negative_memory_entries_rejected(self):
        with pytest.raises(ServeError):
            ResultCache(memory_entries=-1)

    def test_get_returns_fresh_copies(self):
        cache = ResultCache()
        cache.put("k", {"nested": {"x": 1}})
        cache.get("k")["nested"]["x"] = 99
        assert cache.get("k") == {"nested": {"x": 1}}


class TestDiskTier:
    def test_disk_hit_promotes_to_memory(self, tmp_path):
        ResultCache(disk_dir=tmp_path).put("k", _payload(1))
        cache = ResultCache(disk_dir=tmp_path)
        cache.get("k")
        assert cache.stats()["disk_hits"] == 1
        cache.get("k")
        assert cache.stats()["memory_hits"] == 1
        # Promotion is not a store: the entry was already persistent.
        assert cache.stats()["stores"] == 0

    def test_clear_drops_both_tiers(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        cache.put("a", _payload(1))
        cache.put("b", _payload(2))
        assert cache.clear() == 2
        assert cache.stats()["disk_entries"] == 0
        assert cache.get("a") is None

    def test_stats_counts_entries_and_bytes(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        cache.put("aa11", _payload(1))
        cache.put("bb22", _payload(2))
        stats = cache.stats()
        assert stats["disk_entries"] == 2
        assert stats["disk_bytes"] > 0

    def test_memory_and_disk_hits_byte_identical(self, tmp_path):
        payload = {"members": [3, 1, 2], "metrics": {"z": 1, "a": 2}}
        cache = ResultCache(disk_dir=tmp_path)
        cache.put("k", payload)
        from_memory = cache.get("k")
        from_disk = ResultCache(disk_dir=tmp_path).get("k")
        assert from_memory == from_disk == payload


class TestConcurrentMutation:
    """Disk-tier accounting must tolerate files vanishing mid-walk."""

    def _populated(self, tmp_path, count=3):
        cache = ResultCache(memory_entries=0, disk_dir=tmp_path)
        for tag in range(count):
            cache.put(f"key-{tag}", _payload(tag))
        return cache

    def test_disk_bytes_with_vanishing_entries(self, tmp_path, monkeypatch):
        cache = self._populated(tmp_path)
        paths = cache._disk_objects()
        assert len(paths) == 3
        survivor_bytes = paths[0].stat().st_size

        original = type(paths[1]).stat
        doomed = {str(p) for p in paths[1:]}

        def racing_stat(self, **kwargs):
            # Simulate a concurrent `cache clear` deleting the entry
            # between the rglob walk and the stat call.
            if str(self) in doomed:
                raise FileNotFoundError(str(self))
            return original(self, **kwargs)

        monkeypatch.setattr(type(paths[1]), "stat", racing_stat)
        assert cache.disk_bytes() == survivor_bytes

    def test_clear_with_vanishing_entries(self, tmp_path, monkeypatch):
        cache = self._populated(tmp_path)
        paths = cache._disk_objects()
        doomed = {str(paths[0])}
        original = type(paths[0]).unlink

        def racing_unlink(self, **kwargs):
            if str(self) in doomed:
                raise FileNotFoundError(str(self))
            return original(self, **kwargs)

        monkeypatch.setattr(type(paths[0]), "unlink", racing_unlink)
        # The racer "deleted" one entry first: clear removes the other
        # two and reports only what it actually deleted.
        assert cache.clear() == 2

    def test_counts_after_whole_tree_vanishes(self, tmp_path):
        import shutil

        cache = self._populated(tmp_path)
        shutil.rmtree(tmp_path / "objects")
        assert cache.disk_entries() == 0
        assert cache.disk_bytes() == 0
        assert cache.clear() == 0
        stats = cache.stats()
        assert stats["disk_entries"] == 0
        assert stats["disk_bytes"] == 0
