"""Cache-key canonicalization: semantic fields in, everything else out."""

from repro.core import registry
from repro.core.registry import canonical_cache_params
from repro.graph import generators as gen
from repro.mpc.config import MPCConfig
from repro.serve import cache_key

DET = registry.get_algorithm(registry.DET_RULING)
RAND = registry.get_algorithm(registry.RAND_RULING)
MATCH = registry.get_algorithm(registry.DET_MATCHING)


class TestCanonicalParams:
    def test_non_semantic_config_fields_do_not_fragment(self):
        # Two explicit configs that differ only in execution strategy
        # and observability (backend, workers, trace, label) must key
        # identically: the backend/trace layers guarantee bit-identical
        # results, so distinct entries would be pure cache misses.
        base = MPCConfig(num_machines=8, memory_words=4096)
        noisy = MPCConfig(
            num_machines=8, memory_words=4096, label="noisy",
            backend="process", backend_workers=4,
            trace=True, trace_warn_utilization=0.5,
        )
        assert canonical_cache_params(
            DET, config=base
        ) == canonical_cache_params(DET, config=noisy)

    def test_model_config_fields_do_fragment(self):
        a = MPCConfig(num_machines=8, memory_words=4096)
        b = MPCConfig(num_machines=16, memory_words=4096)
        assert canonical_cache_params(
            DET, config=a
        ) != canonical_cache_params(DET, config=b)

    def test_regimes_fragment(self):
        assert canonical_cache_params(
            DET, regime="sublinear"
        ) != canonical_cache_params(DET, regime="near-linear")

    def test_alpha_mem_fragments(self):
        assert canonical_cache_params(
            DET, alpha_mem=(2, 3)
        ) != canonical_cache_params(DET, alpha_mem=(1, 2))

    def test_seed_ignored_for_seedless(self):
        assert canonical_cache_params(
            DET, seed=0
        ) == canonical_cache_params(DET, seed=123)

    def test_seed_kept_for_seeded(self):
        assert canonical_cache_params(
            RAND, seed=0
        ) != canonical_cache_params(RAND, seed=123)

    def test_beta_alpha_dropped_for_matching(self):
        params = canonical_cache_params(MATCH, beta=3, alpha=4)
        assert "beta" not in params
        assert "alpha" not in params
        assert params == canonical_cache_params(MATCH, beta=2, alpha=2)

    def test_beta_alpha_kept_for_ruling_set(self):
        assert canonical_cache_params(
            DET, beta=2
        ) != canonical_cache_params(DET, beta=3)
        assert canonical_cache_params(
            DET, alpha=2
        ) != canonical_cache_params(DET, alpha=3)

    def test_explicit_config_suppresses_regime(self):
        cfg = MPCConfig(num_machines=8, memory_words=4096)
        params = canonical_cache_params(DET, config=cfg, regime="sublinear")
        assert "regime" not in params
        assert params["config"] == {
            "num_machines": 8, "memory_words": 4096,
        }

    def test_json_safe(self):
        import json

        for spec in (DET, RAND, MATCH):
            params = canonical_cache_params(spec)
            assert json.loads(json.dumps(params)) == params


class TestCacheKey:
    def test_stable_across_calls(self):
        params = canonical_cache_params(DET)
        fp = gen.cycle_graph(16).fingerprint()
        assert cache_key(fp, params) == cache_key(fp, params)

    def test_is_hex_sha256(self):
        key = cache_key("fp", {"a": 1})
        assert len(key) == 64
        int(key, 16)

    def test_graph_content_fragments(self):
        params = canonical_cache_params(DET)
        a = gen.cycle_graph(16).fingerprint()
        b = gen.cycle_graph(17).fingerprint()
        assert cache_key(a, params) != cache_key(b, params)

    def test_params_fragment(self):
        fp = gen.cycle_graph(16).fingerprint()
        assert cache_key(
            fp, canonical_cache_params(DET, beta=2)
        ) != cache_key(fp, canonical_cache_params(DET, beta=3))

    def test_key_independent_of_dict_insertion_order(self):
        assert cache_key("fp", {"a": 1, "b": 2}) == cache_key(
            "fp", {"b": 2, "a": 1}
        )
