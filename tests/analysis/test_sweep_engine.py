"""The fault-tolerant sweep engine: determinism, isolation, resume.

The module-level cell runners are required: with ``jobs > 1`` (or a
``timeout``) cells execute in worker processes and must pickle by
qualified name.
"""

from __future__ import annotations

import json
import os
import time
from functools import partial

import pytest

from repro.analysis.records import RunRecord
from repro.analysis.sweep import (
    Cell,
    SweepSpec,
    build_cells,
    checkpoint_line,
    failures,
    load_checkpoint,
    load_records,
    run_cells,
    run_sweep,
)
from repro.errors import SweepError
from repro.graph import generators as gen

EXPERIMENT = "engine-test"


def tiny_spec(**overrides) -> SweepSpec:
    params = dict(
        experiment=EXPERIMENT,
        workloads={
            "cycle-12": lambda: gen.cycle_graph(12),
            "tree-20": lambda: gen.random_tree(20, seed=1),
            "star-9": lambda: gen.star_graph(9),
        },
        algorithms=["greedy-mis", "det-luby"],
        regime="near-linear",
    )
    params.update(overrides)
    return SweepSpec(**params)


def stream(records) -> list:
    """The deterministic record stream (meta excluded by design)."""
    return [r.to_json() for r in records]


def ok_cell(name: str) -> RunRecord:
    return RunRecord(EXPERIMENT, name, "alg", {"value": len(name)})


def boom_cell(name: str) -> RunRecord:
    raise RuntimeError(f"cell {name} exploded")


def slow_cell(name: str) -> RunRecord:
    time.sleep(30)
    return ok_cell(name)


def crash_cell(name: str) -> RunRecord:
    os._exit(17)


def flaky_cell(marker_dir: str, name: str) -> RunRecord:
    """Fails on the first attempt, succeeds on the second."""
    marker = os.path.join(marker_dir, f"{name}.attempted")
    if not os.path.exists(marker):
        with open(marker, "w", encoding="ascii") as handle:
            handle.write("1")
        raise RuntimeError("first attempt fails")
    return ok_cell(name)


def make_cells(names, runner=ok_cell, **kwargs):
    return [
        Cell(key=name, runner=runner, args=(name,), workload=name,
             algorithm="alg", **kwargs)
        for name in names
    ]


class TestDeterministicParallelism:
    def test_parallel_stream_identical_to_serial(self, tmp_path):
        """Pinned: run_sweep(jobs=N) is record-for-record identical to
        the serial sweep, including order."""
        spec = tiny_spec()
        serial = run_sweep(spec)
        parallel = run_sweep(spec, jobs=3)
        assert stream(parallel) == stream(serial)
        assert len(serial) == 6

    def test_parallel_checkpoint_file_matches_serial(self, tmp_path):
        spec = tiny_spec()
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        run_sweep(spec, checkpoint=serial_path)
        run_sweep(spec, jobs=3, checkpoint=parallel_path)
        assert _payloads(serial_path) == _payloads(parallel_path)

    def test_worker_attribution_lands_in_meta(self):
        spec = tiny_spec()
        records = run_sweep(spec, jobs=2)
        workers = {r.meta["worker"] for r in records}
        assert all(w.startswith("pid-") for w in workers)
        assert all(r.meta["cell_wall_s"] >= 0 for r in records)
        assert all(r.meta["attempt"] == 1 for r in records)
        serial = run_sweep(spec)
        assert {r.meta["worker"] for r in serial} == {"serial"}

    def test_grid_order_is_sorted_workloads_then_algorithms(self):
        records = run_sweep(tiny_spec())
        assert [(r.workload, r.algorithm) for r in records] == [
            ("cycle-12", "greedy-mis"), ("cycle-12", "det-luby"),
            ("star-9", "greedy-mis"), ("star-9", "det-luby"),
            ("tree-20", "greedy-mis"), ("tree-20", "det-luby"),
        ]

    def test_beta_and_regime_axes_widen_the_grid(self):
        spec = tiny_spec(
            workloads={"cycle-12": lambda: gen.cycle_graph(12)},
            algorithms=["greedy-ruling"],
            betas=[2, 3],
            regimes=["near-linear", ("single", "single", (1, 1))],
        )
        records = run_sweep(spec)
        assert [(r.get("beta"), r.get("regime")) for r in records] == [
            (2, "near-linear"), (2, "single"),
            (3, "near-linear"), (3, "single"),
        ]

    def test_duplicate_cell_keys_rejected(self):
        cells = make_cells(["a", "a"])
        with pytest.raises(SweepError, match="duplicate"):
            run_cells(EXPERIMENT, cells)


class TestFailureIsolation:
    def test_midsweep_failure_yields_record_and_rest_run(self):
        """A raising cell becomes a failure record; later cells run."""
        cells = make_cells(["a"]) + make_cells(["b"], runner=boom_cell) \
            + make_cells(["c"])
        records = run_cells(EXPERIMENT, cells)
        assert [r.get("status", "ok") for r in records] == \
            ["ok", "failed", "ok"]
        failed = failures(records)[0]
        assert failed.workload == "b"
        assert failed.get("cell") == "b"
        assert failed.get("error_type") == "RuntimeError"
        assert "exploded" in failed.get("error")
        assert failed.get("attempts") == 1

    def test_failure_isolation_in_worker_processes(self):
        cells = make_cells(["a"]) + make_cells(["b"], runner=boom_cell) \
            + make_cells(["c", "d"])
        records = run_cells(EXPERIMENT, cells, jobs=2)
        assert [r.get("status", "ok") for r in records] == \
            ["ok", "failed", "ok", "ok"]

    def test_worker_crash_becomes_failure_record(self):
        cells = make_cells(["k"], runner=crash_cell) + make_cells(["a"])
        records = run_cells(EXPERIMENT, cells, jobs=2)
        assert records[0].get("status") == "failed"
        assert records[0].get("error_type") == "WorkerCrash"
        assert records[1].get("value") == 1

    def test_send_then_exit_race_is_not_a_worker_crash(self, monkeypatch):
        """A result sent just before the worker exits must be collected.

        The scheduler polls the pipe and then checks the exitcode; a
        fast cell can complete its send and exit *between* those two
        steps, and the bytes stay readable after the process is gone.
        Forcing the first data-ready ``poll()`` per connection to claim
        "no data" reproduces that interleaving deterministically: the
        exitcode branch then sees a dead worker with an (apparently)
        silent pipe, which the engine used to misreport as a
        ``WorkerCrash``.
        """
        from multiprocessing.connection import Connection

        real_poll = Connection.poll
        lied_to = set()

        def first_ready_poll_lies(self, timeout=0.0):
            ready = real_poll(self, timeout)
            if ready and id(self) not in lied_to:
                lied_to.add(id(self))
                return False
            return ready

        monkeypatch.setattr(Connection, "poll", first_ready_poll_lies)
        for _ in range(5):
            lied_to.clear()
            cells = make_cells(["a", "b", "c", "d"])
            records = run_cells(EXPERIMENT, cells, jobs=2)
            assert failures(records) == []
            assert [r.get("value") for r in records] == [1, 1, 1, 1]

    def test_timeout_kills_the_cell_not_the_sweep(self):
        cells = make_cells(["s"], runner=slow_cell) + make_cells(["a"])
        start = time.monotonic()
        records = run_cells(EXPERIMENT, cells, jobs=2, timeout=1.0)
        assert time.monotonic() - start < 15
        assert records[0].get("status") == "failed"
        assert records[0].get("error_type") == "CellTimeout"
        assert records[1].get("status", "ok") == "ok"

    def test_retries_rescue_a_flaky_cell(self, tmp_path):
        cells = [
            Cell(
                key="f", runner=partial(flaky_cell, str(tmp_path)),
                args=("f",), workload="f", algorithm="alg",
            )
        ]
        records = run_cells(EXPERIMENT, cells, retries=1)
        assert records[0].get("status", "ok") == "ok"
        assert records[0].meta["attempt"] == 2


class TestCheckpointResume:
    def test_resume_skips_exactly_the_checkpointed_cells(
        self, tmp_path, monkeypatch
    ):
        """Interrupt after 2 cells; the resumed sweep runs only the rest
        and the merged output equals an uninterrupted run's."""
        spec = tiny_spec()
        path = tmp_path / "ck.jsonl"
        uninterrupted = run_sweep(spec, checkpoint=path)
        full_payloads = _payloads(path)

        # Simulate a crash after the first two cells: truncate the file.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")

        ran = []

        def counting_runner(graph, cell, extra):
            ran.append(cell.key)
            from repro.analysis.sweep import solve_cell
            return solve_cell(graph, cell, extra)

        resumed = run_sweep(
            tiny_spec(cell_runner=counting_runner),
            checkpoint=path, resume=True,
        )
        assert len(ran) == 4  # 6 cells, 2 checkpointed
        assert stream(resumed) == stream(uninterrupted)
        assert _payloads(path) == full_payloads

    def test_resume_tolerates_a_torn_final_line(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "ck.jsonl"
        uninterrupted = run_sweep(spec, checkpoint=path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])
        resumed = run_sweep(spec, checkpoint=path, resume=True)
        assert stream(resumed) == stream(uninterrupted)

    def test_resume_reruns_failed_cells(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        cells_bad = make_cells(["a"]) + make_cells(["b"], runner=boom_cell)
        first = run_cells(EXPERIMENT, cells_bad, checkpoint=path)
        assert len(failures(first)) == 1
        cells_good = make_cells(["a", "b"])
        second = run_cells(
            EXPERIMENT, cells_good, checkpoint=path, resume=True
        )
        assert failures(second) == []
        assert second[1].get("value") == 1
        # "a" was not re-run: its record came from the checkpoint.
        assert [key for key, _ in load_checkpoint(path)] == ["a", "b"]

    def test_resume_without_checkpoint_file_runs_everything(self, tmp_path):
        spec = tiny_spec()
        records = run_sweep(
            spec, checkpoint=tmp_path / "missing.jsonl", resume=True
        )
        assert len(records) == 6

    def test_checkpoint_compacted_in_grid_order(self, tmp_path):
        """Parallel completion order may differ; the final file must not."""
        spec = tiny_spec()
        path = tmp_path / "ck.jsonl"
        run_sweep(spec, jobs=3, checkpoint=path)
        keys = [key for key, _ in load_checkpoint(path)]
        assert keys == [cell.key for cell in build_cells(spec)]

    def test_load_records_roundtrip(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "ck.jsonl"
        records = run_sweep(spec, checkpoint=path)
        loaded = load_records(path)
        assert stream(loaded) == stream(records)
        assert loaded[0].meta["worker"] == "serial"

    def test_checkpoint_line_separates_meta_from_payload(self):
        record = RunRecord(EXPERIMENT, "w", "a", {"rounds": 3})
        record.meta = {"worker": "pid-1", "cell_wall_s": 0.5}
        payload = json.loads(checkpoint_line("w/a", record))
        assert payload["_cell"] == "w/a"
        assert payload["_meta"] == {"worker": "pid-1", "cell_wall_s": 0.5}
        assert payload["rounds"] == 3
        # The deterministic stream never contains meta.
        assert "_meta" not in json.loads(record.to_json())


def _payloads(path):
    """Checkpoint lines with the (non-deterministic) _meta key stripped."""
    out = []
    for line in path.read_text().splitlines():
        payload = json.loads(line)
        payload.pop("_meta", None)
        out.append(payload)
    return out
