"""The method of conditional expectations: guarantee and optimality checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.derand.conditional import (
    choose_multiplier,
    choose_seed,
    fix_offset_bits,
    scan_order_a,
)
from repro.derand.estimator import ThresholdEstimator
from repro.derand.family import Seed
from repro.errors import DerandomizationError

PRIMES = [5, 7, 11, 13, 17]


def random_estimator(draw, p, allow_empty=False):
    est = ThresholdEstimator(p)
    n_vertex = draw(st.integers(0 if allow_empty else 1, 4))
    for _ in range(n_vertex):
        est.add_vertex_term(
            draw(st.integers(0, p - 1)),
            draw(st.integers(0, p)),
            draw(st.integers(-5, 5)),
        )
    for _ in range(draw(st.integers(0, 3))):
        x1 = draw(st.integers(0, p - 1))
        x2 = draw(st.integers(0, p - 1).filter(lambda x: x != x1))
        est.add_pair_term(
            x1, draw(st.integers(0, p)), x2, draw(st.integers(0, p)),
            draw(st.integers(-5, 5)),
        )
    return est


class TestScanOrder:
    def test_covers_all_multipliers(self):
        assert sorted(scan_order_a(7)) == list(range(7))

    def test_zero_last(self):
        assert list(scan_order_a(5))[-1] == 0


class TestGuarantee:
    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(PRIMES), st.data())
    def test_chosen_seed_meets_family_average(self, p, data):
        est = random_estimator(data.draw, p)
        seed, stats = choose_seed(est)
        assert est.value(seed) * p * p >= stats.expectation_x_p2
        assert stats.achieved_value == est.value(seed)

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(PRIMES), st.data())
    def test_chosen_at_least_average_of_best_a(self, p, data):
        # The offset stage must not lose the multiplier's conditional value.
        est = random_estimator(data.draw, p)
        a, _, _ = choose_multiplier(est)
        b, _ = fix_offset_bits(est, a)
        assert est.value(Seed(a, b, p)) * p >= est.cond_a_x_p(a)

    def test_empty_estimator_rejected(self):
        with pytest.raises(DerandomizationError):
            choose_seed(ThresholdEstimator(7))

    def test_max_scan_respected(self):
        # A negatively-weighted pair term: a = 1 keeps the two intervals
        # overlapping in 5 points (score -65 < average -36), so the first
        # candidate is rejected and max_scan = 0 aborts the scan.
        est = ThresholdEstimator(13)
        est.add_pair_term(0, 6, 1, 6, -1)
        with pytest.raises(DerandomizationError):
            choose_multiplier(est, max_scan=0)


class TestScanAccounting:
    """``a_candidates_scanned`` means the same thing in both scan modes."""

    @staticmethod
    def _estimator(p=11):
        est = ThresholdEstimator(p)
        est.add_vertex_term(3, 4, 1)
        return est

    def test_bounded_scan_matches_exhaustive_on_success(self):
        exhaustive = choose_multiplier(self._estimator())
        for budget in (1, 5, 11):
            if budget >= exhaustive[1]:
                assert choose_multiplier(
                    self._estimator(), max_scan=budget
                ) == exhaustive

    @pytest.mark.parametrize("budget", [1, 2, 3])
    def test_bounded_failure_scans_exactly_the_budget(self, budget):
        # Every candidate fails for this estimator (negative pair weight
        # rejects the early multipliers), so the bounded scan evaluates
        # exactly ``budget`` candidates — and says so in the error.
        est = ThresholdEstimator(13)
        est.add_pair_term(0, 6, 1, 6, -1)
        with pytest.raises(DerandomizationError) as excinfo:
            choose_multiplier(est, max_scan=budget)
        message = str(excinfo.value)
        assert f"max_scan={budget}" in message
        assert f"{budget} of 13 candidates" in message

    def test_bounded_error_names_p_and_count(self):
        est = ThresholdEstimator(13)
        est.add_pair_term(0, 6, 1, 6, -1)
        with pytest.raises(DerandomizationError, match=r"Z_13"):
            choose_multiplier(est, max_scan=1)

    def test_exhaustive_error_names_p_and_count(self, monkeypatch):
        # Force the impossible case (no acceptable multiplier) by lying
        # about the family average; the exhaustive error must report the
        # field size and the full scan count, a = 0 included.
        est = self._estimator(p=11)
        target = est.expectation_x_p2()
        monkeypatch.setattr(
            est, "expectation_x_p2", lambda: target + 10**9
        )
        with pytest.raises(DerandomizationError) as excinfo:
            choose_multiplier(est)
        message = str(excinfo.value)
        assert "Z_11" in message
        assert "11 candidates scanned" in message

    def test_full_budget_equals_exhaustive(self):
        # max_scan = p admits every candidate (a = 0 included), so the
        # bounded scan must agree with the exhaustive one triple-for-triple.
        p = 5
        est = ThresholdEstimator(p)
        est.add_pair_term(0, p, 1, 1, 1)
        assert choose_multiplier(est, max_scan=p) == choose_multiplier(est)


class TestKnownInstances:
    def test_single_positive_term_maximized(self):
        # One term w=1, T=3 on x=2: best seeds achieve value 1; the family
        # average is 3/13 < 1, so the chosen seed must achieve exactly 1.
        est = ThresholdEstimator(13)
        est.add_vertex_term(2, 3, 1)
        seed, _ = choose_seed(est)
        assert est.value(seed) == 1

    def test_negative_weight_pushes_to_zero(self):
        # With weight -1 the best achievable is 0 (hash outside threshold).
        est = ThresholdEstimator(13)
        est.add_vertex_term(2, 3, -1)
        seed, _ = choose_seed(est)
        assert est.value(seed) == 0

    def test_conflicting_pair(self):
        # Reward x=1 below threshold, punish the pair (1, 2) both below:
        # optimum is h(1) < 5 with h(2) >= 5, achieving value 2.
        est = ThresholdEstimator(11)
        est.add_vertex_term(1, 5, 2)
        est.add_pair_term(1, 5, 2, 5, -10)
        seed, _ = choose_seed(est)
        assert est.value(seed) == 2

    def test_stats_fields(self):
        est = ThresholdEstimator(11)
        est.add_vertex_term(3, 4, 1)
        seed, stats = choose_seed(est)
        assert stats.bits_fixed == 11 .bit_length()
        assert stats.a_candidates_scanned >= 1
