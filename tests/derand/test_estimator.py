"""Estimator expectations vs brute force over the whole family."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.derand.estimator import ThresholdEstimator
from repro.derand.family import Seed
from repro.errors import DerandomizationError

PRIMES = [5, 7, 11, 13]


def random_estimator(draw, p):
    est = ThresholdEstimator(p)
    n_vertex = draw(st.integers(0, 4))
    for _ in range(n_vertex):
        est.add_vertex_term(
            draw(st.integers(0, p - 1)),
            draw(st.integers(0, p)),
            draw(st.integers(-5, 5)),
        )
    n_pair = draw(st.integers(0, 4))
    for _ in range(n_pair):
        x1 = draw(st.integers(0, p - 1))
        x2 = draw(st.integers(0, p - 1).filter(lambda x: x != x1))
        est.add_pair_term(
            x1,
            draw(st.integers(0, p)),
            x2,
            draw(st.integers(0, p)),
            draw(st.integers(-5, 5)),
        )
    return est


class TestConstruction:
    def test_rejects_equal_pair_points(self):
        est = ThresholdEstimator(7)
        with pytest.raises(DerandomizationError):
            est.add_pair_term(3, 2, 3, 2, 1)

    def test_rejects_equal_points_mod_p(self):
        est = ThresholdEstimator(7)
        with pytest.raises(DerandomizationError):
            est.add_pair_term(1, 2, 8, 2, 1)

    def test_rejects_bad_threshold(self):
        est = ThresholdEstimator(7)
        with pytest.raises(DerandomizationError):
            est.add_vertex_term(0, 8, 1)

    def test_rejects_tiny_modulus(self):
        with pytest.raises(DerandomizationError):
            ThresholdEstimator(1)

    def test_flat_roundtrip(self):
        est = ThresholdEstimator(11)
        est.add_vertex_term(1, 5, 2)
        est.add_pair_term(1, 5, 2, 6, -3)
        vflat, pflat = est.to_flat_terms()
        rebuilt = ThresholdEstimator.from_flat_terms(11, vflat, pflat)
        for a in range(11):
            for b in range(11):
                seed = Seed(a, b, 11)
                assert rebuilt.value(seed) == est.value(seed)


class TestExactness:
    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(PRIMES), st.data())
    def test_expectation_matches_brute(self, p, data):
        est = random_estimator(data.draw, p)
        brute = sum(
            est.value(Seed(a, b, p)) for a in range(p) for b in range(p)
        )
        assert est.expectation_x_p2() == brute

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(PRIMES), st.data())
    def test_cond_a_matches_brute(self, p, data):
        est = random_estimator(data.draw, p)
        for a in range(p):
            brute = sum(est.value(Seed(a, b, p)) for b in range(p))
            assert est.cond_a_x_p(a) == brute

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(PRIMES), st.data())
    def test_cond_range_matches_brute(self, p, data):
        est = random_estimator(data.draw, p)
        a = data.draw(st.integers(0, p - 1))
        lo = data.draw(st.integers(0, p))
        hi = data.draw(st.integers(lo, p))
        brute = sum(est.value(Seed(a, b, p)) for b in range(lo, hi))
        assert est.cond_ab_range(a, lo, hi) == brute

    def test_cond_range_rejects_bad_range(self):
        est = ThresholdEstimator(7)
        est.add_vertex_term(0, 3, 1)
        with pytest.raises(DerandomizationError):
            est.cond_ab_range(1, 5, 3)
        with pytest.raises(DerandomizationError):
            est.cond_ab_range(1, 0, 9)
