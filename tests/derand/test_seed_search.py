"""Distributed seed selection vs the sequential reference."""

import pytest

from repro.derand.conditional import choose_seed
from repro.derand.estimator import ThresholdEstimator
from repro.derand.family import Seed
from repro.derand.seed_search import (
    distributed_choose_seed,
    distributed_scan_seeds,
    flat_term_estimator,
)
from repro.errors import DerandomizationError
from repro.mpc.config import MPCConfig
from repro.mpc.simulator import Simulator
from repro.util.rng import SplitMix64


def sim_with(k=5, s=4096):
    return Simulator(MPCConfig(num_machines=k, memory_words=s))


def plant_random_terms(sim, p, seed=0):
    """Spread random estimator terms across machines; return global est."""
    rng = SplitMix64(seed=seed)
    global_est = ThresholdEstimator(p)
    for machine in sim.machines:
        vterms, pterms = [], []
        for _ in range(rng.next_below(4) + 1):
            x = rng.next_below(p)
            t = rng.next_below(p + 1)
            w = rng.next_below(9) - 4
            vterms.append((x, t, w))
            global_est.add_vertex_term(x, t, w)
        for _ in range(rng.next_below(3)):
            x1 = rng.next_below(p)
            x2 = rng.next_below(p)
            if x1 == x2:
                continue
            t1 = rng.next_below(p + 1)
            t2 = rng.next_below(p + 1)
            w = rng.next_below(9) - 4
            pterms.append((x1, t1, x2, t2, w))
            global_est.add_pair_term(x1, t1, x2, t2, w)
        machine.store["vt"] = vterms
        machine.store["pt"] = pterms
    return global_est


class TestDistributedChooseSeed:
    @pytest.mark.parametrize("trial", range(5))
    def test_meets_global_guarantee(self, trial):
        p = 31
        sim = sim_with()
        global_est = plant_random_terms(sim, p, seed=trial)
        seed, stats = distributed_choose_seed(
            sim, p, flat_term_estimator(p, "vt", "pt")
        )
        assert (
            global_est.value(seed) * p * p >= global_est.expectation_x_p2()
        )
        assert stats.candidates_scanned >= 1

    def test_matches_sequential_multiplier_guarantee(self):
        # Distributed and sequential select by the same acceptance rule,
        # so both must satisfy the same bound (seeds may differ because
        # the distributed version scans in fixed-size batches).
        p = 31
        sim = sim_with()
        global_est = plant_random_terms(sim, p, seed=9)
        dist_seed, _ = distributed_choose_seed(
            sim, p, flat_term_estimator(p, "vt", "pt")
        )
        seq_seed, _ = choose_seed(global_est)
        target = global_est.expectation_x_p2()
        assert global_est.value(dist_seed) * p * p >= target
        assert global_est.value(seq_seed) * p * p >= target

    def test_costs_rounds(self):
        sim = sim_with()
        plant_random_terms(sim, 31, seed=1)
        distributed_choose_seed(sim, 31, flat_term_estimator(31, "vt", "pt"))
        assert sim.metrics.rounds > 0

    def test_small_memory_shrinks_chunks_but_works(self):
        p = 31
        sim = sim_with(k=4, s=128)
        global_est = plant_random_terms(sim, p, seed=2)
        seed, _ = distributed_choose_seed(
            sim, p, flat_term_estimator(p, "vt", "pt"), chunk_bits=6
        )
        assert (
            global_est.value(seed) * p * p >= global_est.expectation_x_p2()
        )


class TestDistributedScanSeeds:
    def test_finds_accepting_seed(self):
        p = 31
        sim = sim_with()
        sim.local(lambda m: m.store.__setitem__("ids", [m.mid * 3 + 1]))

        def local_stats(machine, seed):
            return (
                sum(1 for x in machine.store["ids"] if seed.hash(x) < p // 2),
            )

        seed, stats, scan = distributed_scan_seeds(
            sim,
            p,
            local_stats,
            stat_width=1,
            accept=lambda s: s[0] <= 2,
        )
        total = sum(
            1
            for m in sim.machines
            for x in m.store["ids"]
            if seed.hash(x) < p // 2
        )
        assert total == stats[0] <= 2
        assert scan.candidates_scanned >= 1

    def test_impossible_target_raises(self):
        p = 11
        sim = sim_with(k=3)
        sim.local(lambda m: m.store.__setitem__("ids", [m.mid]))

        def local_stats(machine, seed):
            return (1,)

        with pytest.raises(DerandomizationError):
            distributed_scan_seeds(
                sim,
                p,
                local_stats,
                stat_width=1,
                accept=lambda s: False,
                batch=4,
                max_batches=3,
            )

    def test_stat_width_validated(self):
        sim = sim_with(k=2)
        with pytest.raises(DerandomizationError):
            distributed_scan_seeds(
                sim,
                11,
                lambda m, s: (1, 2),
                stat_width=1,
                accept=lambda s: True,
            )

    def test_broadcasts_winner(self):
        p = 11
        sim = sim_with(k=3)
        seed, _, _ = distributed_scan_seeds(
            sim,
            p,
            lambda m, s: (0,),
            stat_width=1,
            accept=lambda s: True,
        )
        for m in sim.machines:
            assert m.store["_derand_seed"] == (seed.a, seed.b)


class TestMaxABatchExhaustion:
    """Stage 1 must fail loudly when the batch allowance runs out.

    The planted instance is a single pair term over GF(11) whose
    acceptance set starts at multiplier a=4: with x1=0, T1=2, x2=3,
    T2=2 the offset must land in [0,2) ∩ [(-3a) mod 11, (-3a) mod 11+2),
    which is empty for a ∈ {1, 2, 3}.  With chunk_bits=1 the scan works
    in batches of two multipliers, so batch one {1, 2} fails and batch
    two {3, 4} accepts.
    """

    def plant(self, sim):
        sim.machines[0].store["vt"] = []
        sim.machines[0].store["pt"] = [(0, 2, 3, 2, 1)]
        for machine in sim.machines[1:]:
            machine.store["vt"] = []
            machine.store["pt"] = []

    def test_exhaustion_raises(self):
        sim = sim_with(k=3)
        self.plant(sim)
        with pytest.raises(DerandomizationError, match="batches"):
            distributed_choose_seed(
                sim,
                11,
                flat_term_estimator(11, "vt", "pt"),
                chunk_bits=1,
                max_a_batches=1,
            )

    def test_one_more_batch_succeeds(self):
        sim = sim_with(k=3)
        self.plant(sim)
        seed, stats = distributed_choose_seed(
            sim,
            11,
            flat_term_estimator(11, "vt", "pt"),
            chunk_bits=1,
            max_a_batches=2,
        )
        assert stats.batches == 2
        assert seed.a == 4


class TestEstimatorCaching:
    def test_cache_on_off_bit_identical(self):
        """Caching may only skip rebuild work, never change the run."""
        outcomes = []
        for cached in (True, False):
            sim = sim_with()
            plant_random_terms(sim, 31, seed=4)
            seed, stats = distributed_choose_seed(
                sim,
                31,
                flat_term_estimator(31, "vt", "pt"),
                cache_estimators=cached,
            )
            outcomes.append((seed, stats, sim.metrics.summary()))
        assert outcomes[0] == outcomes[1]

    def test_memoized_builder_builds_once_per_machine(self):
        from repro.derand.seed_search import MemoizedEstimatorBuilder

        calls = []

        def builder(machine):
            calls.append(machine.mid)
            return ThresholdEstimator(31)

        sim = sim_with(k=3)
        memo = MemoizedEstimatorBuilder(builder)
        for _ in range(4):
            for machine in sim.machines:
                memo(machine)
        assert sorted(calls) == [0, 1, 2]
