"""Tests for the affine hash family, including exact pairwise independence."""

import pytest
from hypothesis import given, strategies as st

from repro.derand.family import AffineFamily, Seed, threshold_for_rate
from repro.errors import DerandomizationError


class TestSeed:
    def test_hash(self):
        assert Seed(2, 3, 7).hash(5) == (2 * 5 + 3) % 7

    def test_validation(self):
        with pytest.raises(DerandomizationError):
            Seed(0, 0, 6)  # composite modulus
        with pytest.raises(DerandomizationError):
            Seed(7, 0, 7)  # a out of range

    def test_index(self):
        assert Seed(2, 3, 7).index() == 17


class TestFamily:
    def test_size(self):
        assert AffineFamily(11).size == 121

    def test_field_for_ids(self):
        fam = AffineFamily.field_for_ids(100)
        assert fam.p > 400

    def test_field_headroom_one(self):
        assert AffineFamily.field_for_ids(4, headroom=1).p >= 5

    def test_rejects_composite(self):
        with pytest.raises(DerandomizationError):
            AffineFamily(10)

    def test_enumeration_covers_family(self):
        fam = AffineFamily(5)
        seeds = {(s.a, s.b) for s in fam.enumerate_seeds()}
        assert seeds == {(a, b) for a in range(5) for b in range(5)}

    def test_enumeration_injective_first(self):
        fam = AffineFamily(5)
        first_block = [fam.seed_by_index(i) for i in range(5)]
        assert all(s.a == 1 for s in first_block)

    def test_pairwise_independence_exact(self):
        # For distinct x != y, (h(x), h(y)) is uniform over Z_p^2.
        p = 7
        fam = AffineFamily(p)
        x, y = 2, 5
        counts = {}
        for seed in fam.enumerate_seeds():
            pair = (seed.hash(x), seed.hash(y))
            counts[pair] = counts.get(pair, 0) + 1
        assert len(counts) == p * p
        assert set(counts.values()) == {1}

    @given(st.integers(0, 10), st.integers(0, 10))
    def test_marginal_uniformity(self, x, trial):
        p = 11
        fam = AffineFamily(p)
        counts = [0] * p
        for b in range(p):
            counts[fam.seed(trial % p, b).hash(x)] += 1
        assert set(counts) == {1}  # uniform over b for any fixed a


class TestThresholdForRate:
    def test_half(self):
        assert threshold_for_rate(101, 1, 2) == 51

    def test_never_zero(self):
        assert threshold_for_rate(101, 0, 5) == 1

    def test_capped_at_p(self):
        assert threshold_for_rate(101, 7, 2) == 101

    def test_rejects_bad_rate(self):
        with pytest.raises(DerandomizationError):
            threshold_for_rate(101, 1, 0)

    @given(st.integers(2, 500), st.integers(1, 10), st.integers(1, 10))
    def test_rate_at_least_requested(self, p_base, num, den):
        from repro.util.prime import next_prime

        p = next_prime(p_base)
        t = threshold_for_rate(p, num, den)
        if num <= den:
            assert t * den >= p * num  # Pr[h < T] = T/p >= num/den
