"""Bit-identity between the python and numpy kernels.

The hard contract of the kernel split (DESIGN.md §11): the numpy kernel
is an *implementation* of the reference semantics, not an approximation.
Every estimator query, every seed selection, and every end-to-end solve
must produce byte-for-byte identical results under both kernels — the
tests here compare them directly, including on the edge cases where
vectorized code most often diverges (empty machine partitions, isolated
vertices, single-vertex graphs, and moduli at/above the ``2**31``
vectorization bound).
"""

import random

import pytest

from repro.core.det_matching import solve_matching
from repro.core.pipeline import solve_ruling_set
from repro.derand.conditional import choose_seed, scan_order_a
from repro.derand.estimator import ThresholdEstimator
from repro.derand.family import AffineFamily, Seed
from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.mpc.config import MPCConfig
from repro.mpc.state_layout import (
    KERNEL_NUMPY,
    KERNEL_PYTHON,
    numpy_available,
)

if not numpy_available():
    pytest.skip(
        "numpy kernel unavailable (missing or REPRO_NO_NUMPY)",
        allow_module_level=True,
    )

# 2^31 - 1 is prime and exactly at the vectorization bound; the next
# prime above 2^31 must silently downgrade the estimator to python.
P_AT_BOUND = (1 << 31) - 1
P_ABOVE_BOUND = 2147483659


def build_random_estimator(p, kernel, rng_seed, n_vertex=6, n_pair=6):
    rng = random.Random(rng_seed)
    est = ThresholdEstimator(p, kernel=kernel)
    for _ in range(n_vertex):
        est.add_vertex_term(
            x=rng.randrange(p),
            threshold=rng.randrange(p + 1),
            weight=rng.randint(-7, 7),
        )
    for _ in range(n_pair):
        x1 = rng.randrange(p)
        x2 = (x1 + rng.randrange(1, p)) % p
        est.add_pair_term(
            x1=x1,
            t1=rng.randrange(p + 1),
            x2=x2,
            t2=rng.randrange(p + 1),
            weight=rng.randint(-7, 7),
        )
    return est


class TestEstimatorParity:
    @pytest.mark.parametrize("p", [5, 13, 101, 10007, P_AT_BOUND])
    def test_queries_identical(self, p):
        py = build_random_estimator(p, KERNEL_PYTHON, rng_seed=p)
        vec = build_random_estimator(p, KERNEL_NUMPY, rng_seed=p)
        assert vec.kernel == KERNEL_NUMPY
        rng = random.Random(p + 1)
        multipliers = [0, 1, p - 1] + [rng.randrange(p) for _ in range(5)]
        assert py.cond_a_x_p_many(multipliers) == vec.cond_a_x_p_many(
            multipliers
        )
        for a in multipliers[:4]:
            assert py.cond_a_x_p(a) == vec.cond_a_x_p(a)
            ranges = [
                (0, p),
                (0, 0),
                (p // 3, p // 2),
                (rng.randrange(p // 2), p // 2 + rng.randrange(p // 2)),
            ]
            got_many = vec.cond_ab_range_many(a, ranges)
            want_many = py.cond_ab_range_many(a, ranges)
            assert got_many == want_many
            assert all(type(v) is int for v in got_many)
            for lo, hi in ranges:
                assert py.cond_ab_range(a, lo, hi) == vec.cond_ab_range(
                    a, lo, hi
                )
        for _ in range(5):
            seed = Seed(rng.randrange(p), rng.randrange(p), p)
            assert py.value(seed) == vec.value(seed)

    @pytest.mark.parametrize("p", [7, 101, 10007])
    def test_choose_seed_identical(self, p):
        py = build_random_estimator(p, KERNEL_PYTHON, rng_seed=3 * p)
        vec = build_random_estimator(p, KERNEL_NUMPY, rng_seed=3 * p)
        seed_py, stats_py = choose_seed(py)
        seed_vec, stats_vec = choose_seed(vec)
        assert seed_py == seed_vec
        assert stats_py == stats_vec
        assert type(seed_vec.a) is int and type(seed_vec.b) is int

    def test_modulus_above_bound_downgrades(self):
        est = ThresholdEstimator(P_ABOVE_BOUND, kernel=KERNEL_NUMPY)
        assert est.kernel == KERNEL_PYTHON
        est.add_vertex_term(x=5, threshold=P_ABOVE_BOUND // 2, weight=3)
        ref = ThresholdEstimator(P_ABOVE_BOUND)
        ref.add_vertex_term(x=5, threshold=P_ABOVE_BOUND // 2, weight=3)
        a = P_ABOVE_BOUND - 2
        assert est.cond_a_x_p(a) == ref.cond_a_x_p(a)

    def test_kernel_survives_flat_roundtrip(self):
        src = build_random_estimator(101, KERNEL_PYTHON, rng_seed=9)
        vflat, pflat = src.to_flat_terms()
        vec = ThresholdEstimator.from_flat_terms(
            101, vflat, pflat, kernel=KERNEL_NUMPY
        )
        assert vec.kernel == KERNEL_NUMPY
        assert choose_seed(src) == choose_seed(vec)


class TestScanOrderRegression:
    """Satellite 3: multiplier enumeration must be one canonical order.

    ``choose_multiplier`` walks :func:`scan_order_a` while the
    distributed stage-1 scan enumerates ``seed_by_index(i * p).a``; if
    they ever disagree, the local and distributed selections return
    different (both individually valid) seeds and bit-identity across
    code paths breaks.  Pin the equivalence.
    """

    @pytest.mark.parametrize("p", [2, 3, 7, 13, 101])
    def test_scan_order_matches_family_enumeration(self, p):
        family = AffineFamily(p)
        by_index = [family.seed_by_index(i * p).a for i in range(p)]
        assert by_index == list(scan_order_a(p))
        assert by_index == [(i + 1) % p for i in range(p)]

    def test_interleaved_estimators_different_p(self):
        # The prepared-term / arc caches are keyed on (p, a); two live
        # estimators with different moduli queried in lockstep must not
        # cross-contaminate (a alone is an ambiguous key: a=3 means a
        # different affine map in Z_13 than in Z_101).
        for kernel_a in (KERNEL_PYTHON, KERNEL_NUMPY):
            for kernel_b in (KERNEL_PYTHON, KERNEL_NUMPY):
                e13 = build_random_estimator(13, kernel_a, rng_seed=4)
                e101 = build_random_estimator(101, kernel_b, rng_seed=4)
                ref13 = build_random_estimator(13, KERNEL_PYTHON, rng_seed=4)
                ref101 = build_random_estimator(
                    101, KERNEL_PYTHON, rng_seed=4
                )
                for a in (3, 7, 12):
                    assert e13.cond_a_x_p(a) == ref13.cond_a_x_p(a)
                    assert e101.cond_a_x_p(a) == ref101.cond_a_x_p(a)
                    assert e13.cond_ab_range(a, 2, 11) == ref13.cond_ab_range(
                        a, 2, 11
                    )
                    assert e101.cond_ab_range(
                        a, 2, 11
                    ) == ref101.cond_ab_range(a, 2, 11)


def _solve_both(graph, **kwargs):
    res_py = solve_ruling_set(graph, kernel="python", **kwargs)
    res_np = solve_ruling_set(graph, kernel="numpy", **kwargs)
    return res_py, res_np


class TestSolveParity:
    def test_gnp_graph(self):
        graph = gen.gnp_random_graph(48, 1, 6, seed=7)
        res_py, res_np = _solve_both(graph)
        assert res_py.members == res_np.members
        assert res_py.rounds == res_np.rounds
        assert res_py.metrics == res_np.metrics

    def test_luby_algorithm(self):
        graph = gen.regular_graph(36, 4)
        res_py, res_np = _solve_both(graph, algorithm="det-luby")
        assert res_py.members == res_np.members
        assert res_py.metrics == res_np.metrics

    def test_single_vertex_graph(self):
        res_py, res_np = _solve_both(Graph.empty(1))
        assert res_py.members == res_np.members == [0]

    def test_isolated_vertices(self):
        # Half the vertices have no edges at all.
        graph = Graph.from_edges(12, [(0, 1), (2, 3), (4, 5)])
        res_py, res_np = _solve_both(graph)
        assert res_py.members == res_np.members
        assert set(range(6, 12)) <= set(res_np.members)

    def test_empty_machine_partitions(self):
        # More machines than vertices: some machines own no vertex and
        # the numpy per-machine CSR is the empty array everywhere it
        # appears.
        graph = gen.path_graph(5)
        cfg = MPCConfig(num_machines=8, memory_words=4096)
        res_py = solve_ruling_set(
            graph, config=cfg.with_kernel("python"), regime="sublinear"
        )
        res_np = solve_ruling_set(
            graph, config=cfg.with_kernel("numpy"), regime="sublinear"
        )
        assert res_py.members == res_np.members
        assert res_py.metrics == res_np.metrics

    def test_matching_parity(self):
        graph = gen.cycle_graph(14)
        res_py = solve_matching(graph, kernel="python")
        res_np = solve_matching(graph, kernel="numpy")
        assert res_py.matching == res_np.matching
        assert res_py.metrics == res_np.metrics
