"""Exact k-wise independence of the polynomial family."""

import pytest

from repro.derand.family import AffineFamily, PolynomialFamily, PolynomialSeed
from repro.errors import DerandomizationError


class TestPolynomialSeed:
    def test_horner(self):
        seed = PolynomialSeed((3, 2, 1), 7)
        assert seed.hash(2) == (3 + 2 * 2 + 1 * 4) % 7

    def test_constant_polynomial(self):
        seed = PolynomialSeed((5,), 7)
        assert all(seed.hash(x) == 5 for x in range(7))

    def test_validation(self):
        with pytest.raises(DerandomizationError):
            PolynomialSeed((), 7)
        with pytest.raises(DerandomizationError):
            PolynomialSeed((8,), 7)
        with pytest.raises(DerandomizationError):
            PolynomialSeed((1,), 6)

    def test_independence_attribute(self):
        assert PolynomialSeed((1, 2, 3), 7).independence == 3


class TestPolynomialFamily:
    def test_size(self):
        assert PolynomialFamily(5, 3).size == 125

    def test_index_roundtrip(self):
        fam = PolynomialFamily(5, 2)
        seeds = {fam.seed_by_index(i).coefficients for i in range(fam.size)}
        assert len(seeds) == 25

    def test_matches_affine_for_k2(self):
        poly = PolynomialFamily(11, 2)
        seed = poly.seed_by_index(3 + 11 * 7)  # c0=3, c1=7
        affine = AffineFamily(11).seed(7, 3)
        for x in range(11):
            assert seed.hash(x) == affine.hash(x)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_exact_kwise_independence(self, k):
        # For k distinct points, (h(x1)..h(xk)) hits every value vector
        # exactly once across the family — the bijection of interpolation.
        p = 5
        fam = PolynomialFamily(p, k)
        points = list(range(k))
        counts = {}
        for i in range(fam.size):
            seed = fam.seed_by_index(i)
            key = tuple(seed.hash(x) for x in points)
            counts[key] = counts.get(key, 0) + 1
        assert len(counts) == p**k
        assert set(counts.values()) == {1}

    def test_beyond_k_not_uniform(self):
        # k+1 points cannot be uniform: the family is exactly k-wise.
        p = 5
        fam = PolynomialFamily(p, 2)
        counts = {}
        for i in range(fam.size):
            seed = fam.seed_by_index(i)
            key = tuple(seed.hash(x) for x in (0, 1, 2))
            counts[key] = counts.get(key, 0) + 1
        assert len(counts) < p**3  # many triples unreachable

    def test_scan_seed_deterministic(self):
        fam = PolynomialFamily(13, 3)
        assert fam.scan_seed(9) == fam.scan_seed(9)

    def test_validation(self):
        with pytest.raises(DerandomizationError):
            PolynomialFamily(6, 2)
        with pytest.raises(DerandomizationError):
            PolynomialFamily(7, 0)
