"""E15: daemon traffic replay — throughput and latency under admission.

The serve daemon's pitch is that queueing changes *when* a request is
answered, never *what* the answer is.  This experiment replays a fixed
two-tenant request trace (two graphs × three algorithms, every solve
requested twice) through an in-process :class:`ServeDaemon` twice:

* **sequential** — one request in flight at a time: nothing is ever
  refused, and every served record's deterministic part must be
  byte-identical to the same requests through ``BatchEngine.run`` (the
  ``repro-mpc batch`` path) — the daemon's central contract;
* **burst** — eight submitters against a deliberately tiny queue bound:
  admission control sheds load, and the contract under pressure is that
  *every* submission gets exactly one response — served or a structured
  refusal naming the limit hit, never a silent drop.

The quantities of record are the counts (served / refused / executed /
hits — all deterministic on the sequential replay); throughput and the
p50/p95/p99 latency percentiles ride along as timing quantities, wired
into the CI gate's drift-warning lane via :func:`ci_cell` exactly like
the E13 kernel speedup.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Tuple

from benchmarks.bench_common import emit
from repro.analysis.records import RunRecord
from repro.analysis.tables import format_table
from repro.core import registry
from repro.serve import (
    AdmissionPolicy,
    BatchEngine,
    ResultCache,
    ServeDaemon,
    drive_requests,
)

#: Two tenants interleaved round-robin across the trace, so per-tenant
#: fairness and latency attribution are both exercised by every replay.
TENANTS = ("alpha", "bravo")

GRAPHS = {
    "er-96": {"family": "gnp", "n": 96, "param": 8, "seed": 15},
    "tree-160": {"family": "tree", "n": 160, "seed": 15},
}
ALGORITHMS = (registry.DET_RULING, registry.DET_LUBY, registry.DET_MATCHING)

#: The burst replay's deliberately tiny admission bound: with eight
#: submitters and one worker, the queue saturates and refusals happen.
BURST_CONCURRENCY = 8
BURST_MAX_QUEUE = 3


def request_trace(copies: int = 2) -> List[dict]:
    """The fixed replay trace: graphs × algorithms × copies, two tenants."""
    requests: List[dict] = []
    for graph_name, source in sorted(GRAPHS.items()):
        for algorithm in ALGORITHMS:
            for copy in range(copies):
                tenant = TENANTS[len(requests) % len(TENANTS)]
                requests.append({
                    "id": f"{tenant}/{graph_name}/{algorithm}#{copy}",
                    "tenant": tenant,
                    "graph": dict(source),
                    "algorithm": algorithm,
                })
    return requests


def _strip_serve(records: List[dict]) -> List[dict]:
    return [
        {key: value for key, value in record.items() if key != "_serve"}
        for record in records
    ]


def _batch_records(requests: List[dict]) -> List[dict]:
    """The same trace through the batch path (tenant field stripped)."""
    batch_requests = [
        {key: value for key, value in request.items() if key != "tenant"}
        for request in requests
    ]
    return BatchEngine(ResultCache()).run(batch_requests)


def replay_once(
    label: str,
    *,
    concurrency: int,
    policy: Optional[AdmissionPolicy] = None,
    workers: int = 1,
) -> Tuple[List[dict], RunRecord, BatchEngine]:
    """One fresh-daemon replay of the trace; returns records + a row."""
    engine = BatchEngine(ResultCache())
    daemon = ServeDaemon(engine, policy=policy, workers=workers)
    requests = request_trace()
    start = time.perf_counter()
    records = asyncio.run(
        drive_requests(daemon, requests, concurrency=concurrency)
    )
    wall = time.perf_counter() - start
    counters = engine.trace.counters
    latency = engine.trace.latency_summary()
    total_ms = latency.get("total_ms", {})
    row = RunRecord(
        "e15_serve", label, "serve",
        {
            "requests": len(requests),
            "served_ok": sum(
                1 for r in records if r.get("status") == "ok"
            ),
            "refused": counters["refused"],
            "executed": counters["executed"],
            "hits": counters["cache_hit"],
            "graph_loads": counters.get("graph_load", 0),
        },
    )
    row.meta["wall_s"] = round(wall, 4)
    row.meta["throughput_rps"] = round(len(requests) / max(wall, 1e-9), 2)
    for percentile in ("p50", "p95", "p99"):
        row.meta[f"{percentile}_ms"] = total_ms.get(percentile, 0.0)
    return records, row, engine


def run_serve_experiment():
    requests = request_trace()
    unique = len(requests) // 2

    sequential_records, sequential, _ = replay_once(
        "sequential", concurrency=1
    )
    # The daemon's central contract, asserted on every bench run: the
    # sequential replay refuses nothing and its deterministic record
    # parts are byte-identical to the batch path over the same trace.
    assert sequential.get("refused") == 0
    assert sequential.get("served_ok") == len(requests)
    assert sequential.get("executed") == unique
    assert sequential.get("hits") == unique, (
        "every duplicate must be a warm cache hit, not a re-execution"
    )
    assert _strip_serve(sequential_records) == _strip_serve(
        _batch_records(requests)
    ), "served records must be bit-identical to the batch path"

    burst_records, burst, burst_engine = replay_once(
        "burst",
        concurrency=BURST_CONCURRENCY,
        policy=AdmissionPolicy(max_queue=BURST_MAX_QUEUE),
    )
    # Under pressure: every submission answered, refusals structured,
    # and the queue bound never exceeded at any admission decision.
    assert len(burst_records) == len(requests), (
        "every submission must get a response — served or refused"
    )
    assert all(
        record.get("status") in ("ok", "refused")
        for record in burst_records
    )
    for record in burst_records:
        if record.get("status") == "refused":
            assert record.get("error_type") == "ServeError"
            assert record["_serve"]["queue_depth"] <= BURST_MAX_QUEUE
    assert burst.get("refused") == burst_engine.trace.counters["refused"]
    assert burst.get("served_ok") + burst.get("refused") == len(requests)

    for row in (sequential, burst):
        for key in ("wall_s", "throughput_rps", "p50_ms", "p95_ms"):
            row.fields[key] = row.meta[key]
    return [sequential, burst]


def ci_cell() -> Tuple[Dict[str, float], float]:
    """The regression-gate cell: one sequential replay, batch-compared.

    Exact quantities pin the daemon's serving contract (counts, member
    checksum, bit-identity with the batch path); the latency
    percentiles and throughput ride along under the gate's timing keys
    (``serve_*``), drift-warned like ``kernel_speedup_x`` rather than
    exact-matched — they measure the machine, not the model.
    """
    requests = request_trace()
    records, row, engine = replay_once("ci", concurrency=1)
    exact = {
        "requests": len(requests),
        "served_ok": row.get("served_ok"),
        "refused": row.get("refused"),
        "executed": row.get("executed"),
        "hits": row.get("hits"),
        "graph_loads": row.get("graph_loads"),
        "size_checksum": sum(
            len(record.get("members", ())) for record in records
        ),
        "records_match_batch": int(
            _strip_serve(records)
            == _strip_serve(_batch_records(requests))
        ),
        "serve_throughput_rps": row.meta["throughput_rps"],
        "serve_p50_ms": row.meta["p50_ms"],
        "serve_p95_ms": row.meta["p95_ms"],
        "serve_p99_ms": row.meta["p99_ms"],
    }
    return exact, row.meta["wall_s"]


def test_e15_serve(benchmark):
    records = run_serve_experiment()
    table = format_table(
        records,
        columns=[
            "workload", "requests", "served_ok", "refused", "executed",
            "hits", "throughput_rps", "p50_ms", "p95_ms", "wall_s",
        ],
        title="E15: serve daemon — sequential vs burst replay of a "
        "two-tenant trace",
    )
    emit(
        "e15_serve",
        table + "\ncounts are the quantity of record; throughput and "
        "latency measure the simulator host",
    )

    # Time the daemon's steady state: a warm sequential replay.
    benchmark.pedantic(
        lambda: replay_once("bench", concurrency=1), rounds=1, iterations=1
    )


if __name__ == "__main__":
    run_serve_experiment()
