"""E8 (Table 4): LOCAL-model baselines vs the MPC algorithms.

Claims exhibited:

* Luby's MIS costs Θ(log n) LOCAL rounds, the bitwise ruling set costs
  exactly ceil(log2 n) rounds with an O(log n) domination radius, and the
  deterministic Linial-colouring MIS pays O(Δ² + log* n) rounds;
* the deterministic MPC 2-ruling set achieves a *constant* radius (2)
  where the deterministic LOCAL baseline only guarantees O(log n);
  raw MPC round counts at these toy scales exceed the LOCAL baselines'
  because every seed-search reduction is billed — the model-level
  claims (radius, determinism certificates) are the reproduction
  targets (see the honest note in EXPERIMENTS.md);
* graph exponentiation computes G^2 balls in O(log r) rounds where the
  memory budget permits (shown on bounded-degree graphs).
"""

from __future__ import annotations

from benchmarks.bench_common import emit, run_experiment
from repro.analysis.records import RunRecord, record_from_result
from repro.analysis.sweep import SweepCell, SweepSpec
from repro.analysis.tables import format_table
from repro.core.exponentiation import grow_balls
from repro.core.pipeline import solve_ruling_set
from repro.core.registry import (
    DET_LUBY,
    DET_RULING,
    LOCAL_BITWISE,
    LOCAL_COLORING_MIS,
    LOCAL_FAMILY,
    LOCAL_LUBY,
    get_algorithm,
)
from repro.core.verify import check_ruling_set
from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator

WORKLOADS = {
    "er-256": lambda: gen.gnp_random_graph(256, 12, 256, seed=8),
    "tree-256": lambda: gen.random_tree(256, seed=8),
    "grid-16x16": lambda: gen.grid_graph(16, 16),
}

ALGORITHMS = [
    LOCAL_LUBY, LOCAL_BITWISE, LOCAL_COLORING_MIS,
    DET_RULING, DET_LUBY,
]


def baseline_cell(graph: Graph, cell: SweepCell, extra) -> RunRecord:
    """Solve and attribute rounds to the model the algorithm runs in."""
    result = solve_ruling_set(
        graph, algorithm=cell.algorithm, regime=cell.regime, seed=cell.seed
    )
    measured = check_ruling_set(graph, result.members)
    fields = dict(extra)
    fields.update(
        {
            "model_rounds": result.metrics.get(
                "local_rounds", result.rounds
            ),
            "model": (
                "LOCAL"
                if get_algorithm(cell.algorithm).family == LOCAL_FAMILY
                else "MPC"
            ),
            "measured_beta": measured.measured_beta,
        }
    )
    return record_from_result(cell.experiment, cell.workload, result, fields)


def test_e8_local_baselines(benchmark):
    spec = SweepSpec(
        experiment="e8_local_baselines",
        workloads=WORKLOADS,
        algorithms=ALGORITHMS,
        regime="sublinear",
        cell_runner=baseline_cell,
    )
    records = run_experiment(spec)
    text = format_table(
        records,
        columns=[
            "workload", "algorithm", "model", "model_rounds",
            "beta_claimed", "measured_beta", "size",
        ],
        title="E8: LOCAL baselines vs MPC algorithms",
    )

    # Exponentiation demo: radius-4 balls on a bounded-degree graph in
    # O(log 4) doublings rather than 4 LOCAL rounds.
    grid = gen.grid_graph(12, 12)
    with Simulator(MPCConfig(num_machines=6, memory_words=60_000)) as sim:
        dg = DistributedGraph.load(sim, grid)
        doublings = grow_balls(dg, 4)
        rounds = sim.metrics.rounds
    text += (
        f"\n\nexponentiation: radius-4 balls on a 12x12 grid via "
        f"{doublings} doublings, {rounds} MPC rounds"
    )
    emit("e8_local_baselines", text)
    assert doublings == 2

    # The MPC ruling set's measured radius must beat the bitwise LOCAL
    # baseline's on every workload (2 vs Θ(log n)).
    by_key = {(r.workload, r.algorithm): r for r in records}
    for name in WORKLOADS:
        det = by_key[(name, DET_RULING)]
        agl = by_key[(name, LOCAL_BITWISE)]
        assert det.get("measured_beta") <= agl.get("beta_claimed")

    graph = WORKLOADS["er-256"]()
    benchmark.pedantic(
        lambda: solve_ruling_set(graph, algorithm=LOCAL_LUBY),
        rounds=1,
        iterations=1,
    )
