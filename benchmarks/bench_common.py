"""Shared plumbing for the experiment benchmarks.

Each ``bench_eN_*.py`` module regenerates one experiment from the
DESIGN.md index: it runs the sweep (every run budget-enforced and
verified), prints the experiment's table or series, saves it under
``benchmarks/results/``, and times a representative cell with
pytest-benchmark so regressions in simulation cost are visible too.

The printed quantity of record is always **MPC rounds** (and the other
model metrics) — wall-clock numbers measure the *simulator*, not the
algorithms, and are reported only as a convenience.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.records import RunRecord
from repro.analysis.sweep import (
    Cell,
    SweepSpec,
    failures,
    run_cells,
    run_sweep,
)
from repro.core import registry
from repro.mpc.metrics import RunMetrics
from repro.mpc.trace import TraceRecorder

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def algorithm_axis(
    family: Optional[str] = None, problem: Optional[str] = None
) -> List[str]:
    """The registry's algorithm names as a sweep axis.

    Benchmark drivers build their ``algorithms`` lists from this (or
    from the :mod:`repro.core.registry` name constants) so the bench
    suite tracks the registry automatically — the drift-guard test
    asserts no ``bench_e*`` module spells an algorithm name literal.
    """
    return list(registry.algorithm_names(family=family, problem=problem))


def sweep_options(
    jobs: Optional[int] = None,
    resume: Optional[bool] = None,
    retries: Optional[int] = None,
    timeout: Optional[float] = None,
) -> Dict[str, object]:
    """Sweep-engine execution options, overridable from the environment.

    ``REPRO_SWEEP_JOBS`` / ``REPRO_SWEEP_RESUME`` / ``REPRO_SWEEP_RETRIES``
    / ``REPRO_SWEEP_TIMEOUT`` parallelise or resume the whole E1–E11
    suite without touching any driver (e.g. ``REPRO_SWEEP_JOBS=8 pytest
    benchmarks/``).  Explicit keyword arguments win over the
    environment.  Results are identical for every setting — the engine
    emits records in deterministic grid order.
    """
    if jobs is None:
        jobs = int(os.environ.get("REPRO_SWEEP_JOBS", "1"))
    if resume is None:
        resume = os.environ.get("REPRO_SWEEP_RESUME", "") not in ("", "0")
    if retries is None:
        retries = int(os.environ.get("REPRO_SWEEP_RETRIES", "0"))
    if timeout is None:
        raw = os.environ.get("REPRO_SWEEP_TIMEOUT", "")
        timeout = float(raw) if raw else None
    return {
        "jobs": jobs, "resume": resume, "retries": retries,
        "timeout": timeout,
    }


def require_complete(records: Sequence[RunRecord]) -> Sequence[RunRecord]:
    """Raise if the sweep produced any structured failure records.

    The benchmarks' tables and shape assertions assume every cell
    succeeded; a failure record here means the experiment itself is
    broken and must surface loudly, not render as a half-empty table.
    """
    failed = failures(records)
    if failed:
        detail = "; ".join(
            f"{r.workload}/{r.algorithm}: {r.get('error_type')}: "
            f"{r.get('error')}"
            for r in failed
        )
        raise AssertionError(
            f"{len(failed)}/{len(records)} sweep cells failed: {detail}"
        )
    return records


def run_experiment(spec: SweepSpec, **overrides) -> List[RunRecord]:
    """Run one experiment's sweep through the fault-tolerant engine.

    Checkpoints incrementally to ``results/<experiment>.jsonl`` (the
    same file :func:`save_records` historically wrote; it is compacted
    to deterministic grid order when the sweep completes) and honours
    the ``REPRO_SWEEP_*`` environment knobs.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    records = run_sweep(
        spec,
        checkpoint=RESULTS_DIR / f"{spec.experiment}.jsonl",
        **sweep_options(**overrides),
    )
    require_complete(records)
    return records


def run_experiment_cells(
    experiment: str, cells: Sequence[Cell], **overrides
) -> List[RunRecord]:
    """:func:`run_experiment` for drivers with hand-built cells.

    The anatomy/ablation experiments (E3, E7, E9–E11) don't fit the
    workload × algorithm grid; they feed the same engine explicit
    :class:`Cell` lists and get identical checkpoint/parallel/isolation
    semantics.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    records = run_cells(
        experiment,
        cells,
        checkpoint=RESULTS_DIR / f"{experiment}.jsonl",
        **sweep_options(**overrides),
    )
    require_complete(records)
    return records


def timing_fields(metrics: RunMetrics) -> Dict[str, float]:
    """Flatten a run's wall-clock into record fields.

    Returns ``wall_time_s`` plus one ``time_<phase>_s`` per phase, all
    rounded to 0.1 ms.  Timing measures the *simulator* — it rides along
    so hot-path work (estimator caching, execution backends) shows up in
    the record stream, but rounds stay the quantity of record.
    """
    fields: Dict[str, float] = {"wall_time_s": round(metrics.wall_time_s, 4)}
    for phase, seconds in sorted(metrics.time_per_phase.items()):
        fields[f"time_{phase}_s"] = round(seconds, 4)
    return fields


def emit(experiment: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {experiment} =====\n"
    print(banner + text)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")


def save_records(experiment: str, records: Iterable[RunRecord]) -> None:
    """Persist raw records as JSON lines next to the formatted table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [record.to_json() for record in records]
    (RESULTS_DIR / f"{experiment}.jsonl").write_text("\n".join(lines) + "\n")


def save_trace(experiment: str, trace: TraceRecorder) -> Path:
    """Persist one run's superstep trace next to the experiment results.

    ``trace`` is the :class:`TraceRecorder` off a traced run (e.g.
    ``solve_ruling_set(..., trace=True).trace``).  Writes
    ``results/<experiment>.trace.jsonl`` and returns the path, so a
    bench can archive the per-round communication shape of one
    representative cell without touching its printed tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.trace.jsonl"
    trace.write_jsonl(path)
    return path
