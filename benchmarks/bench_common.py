"""Shared plumbing for the experiment benchmarks.

Each ``bench_eN_*.py`` module regenerates one experiment from the
DESIGN.md index: it runs the sweep (every run budget-enforced and
verified), prints the experiment's table or series, saves it under
``benchmarks/results/``, and times a representative cell with
pytest-benchmark so regressions in simulation cost are visible too.

The printed quantity of record is always **MPC rounds** (and the other
model metrics) — wall-clock numbers measure the *simulator*, not the
algorithms, and are reported only as a convenience.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable

from repro.analysis.records import RunRecord
from repro.mpc.metrics import RunMetrics
from repro.mpc.trace import TraceRecorder

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def timing_fields(metrics: RunMetrics) -> Dict[str, float]:
    """Flatten a run's wall-clock into record fields.

    Returns ``wall_time_s`` plus one ``time_<phase>_s`` per phase, all
    rounded to 0.1 ms.  Timing measures the *simulator* — it rides along
    so hot-path work (estimator caching, execution backends) shows up in
    the record stream, but rounds stay the quantity of record.
    """
    fields: Dict[str, float] = {"wall_time_s": round(metrics.wall_time_s, 4)}
    for phase, seconds in sorted(metrics.time_per_phase.items()):
        fields[f"time_{phase}_s"] = round(seconds, 4)
    return fields


def emit(experiment: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {experiment} =====\n"
    print(banner + text)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")


def save_records(experiment: str, records: Iterable[RunRecord]) -> None:
    """Persist raw records as JSON lines next to the formatted table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [record.to_json() for record in records]
    (RESULTS_DIR / f"{experiment}.jsonl").write_text("\n".join(lines) + "\n")


def save_trace(experiment: str, trace: TraceRecorder) -> Path:
    """Persist one run's superstep trace next to the experiment results.

    ``trace`` is the :class:`TraceRecorder` off a traced run (e.g.
    ``solve_ruling_set(..., trace=True).trace``).  Writes
    ``results/<experiment>.trace.jsonl`` and returns the path, so a
    bench can archive the per-round communication shape of one
    representative cell without touching its printed tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.trace.jsonl"
    trace.write_jsonl(path)
    return path
