"""CI check: the serve daemon end to end, against the batch path.

Exercises the persistent daemon's contract through the real CLI entry
points rather than in-process calls:

1. start ``repro-mpc serve`` as a subprocess on a unix socket;
2. replay a small two-tenant request trace over the socket (pipelined,
   duplicates included), bracketed by ``ping`` / ``stats`` / a clean
   ``shutdown``;
3. run the identical trace through ``repro-mpc batch`` (tenants
   stripped — the batch engine knows nothing of them) against a fresh
   cache;
4. assert every socket response is a served record, the daemon's
   counters account for every request, and each served record's
   deterministic part is **byte-identical** to the batch path's record
   for the same id once the ``_serve`` side channel is stripped — the
   daemon must only add queueing, never change an answer.

Exit code 0 on success, 1 on any violation.  Usage::

    PYTHONPATH=src python -m benchmarks.serve_smoke_check
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List

from repro.cli import main as cli_main
from repro.core.registry import DET_LUBY, DET_MATCHING, DET_RULING

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def requests() -> List[dict]:
    gnp = {"family": "gnp", "n": 96, "param": 8, "seed": 12}
    tree = {"family": "tree", "n": 80, "seed": 12}
    return [
        {"id": "r0", "tenant": "alpha", "graph": gnp,
         "algorithm": DET_RULING},
        {"id": "r1", "tenant": "bravo", "graph": gnp,
         "algorithm": DET_RULING},  # warm cache hit
        {"id": "r2", "tenant": "alpha", "graph": gnp,
         "algorithm": DET_LUBY},
        {"id": "r3", "tenant": "bravo", "graph": tree,
         "algorithm": DET_RULING, "beta": 3},
        {"id": "r4", "tenant": "alpha", "graph": tree,
         "algorithm": DET_MATCHING},
    ]


def strip_serve(record: dict) -> dict:
    return {k: v for k, v in record.items() if k != "_serve"}


def check(message: str, ok: bool) -> bool:
    print(("  OK  " if ok else "  FAIL") + f" {message}")
    return ok


def start_daemon(sock: Path, cache_dir: Path, trace: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--socket", str(sock),
            "--cache-dir", str(cache_dir),
            "--trace-out", str(trace),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while not sock.exists():
        if proc.poll() is not None or time.monotonic() > deadline:
            _, err = proc.communicate(timeout=10)
            raise RuntimeError(f"daemon failed to start: {err}")
        time.sleep(0.05)
    return proc


def talk(sock: Path, lines: List[dict], replies: int) -> List[dict]:
    """Send JSON lines over the socket; read ``replies`` response lines."""
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.settimeout(120.0)
    client.connect(str(sock))
    try:
        with client.makefile("rw", encoding="utf-8") as wire:
            for line in lines:
                wire.write(json.dumps(line) + "\n")
            wire.flush()
            return [json.loads(wire.readline()) for _ in range(replies)]
    finally:
        client.close()


def main() -> int:
    trace_requests = requests()
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        base = Path(tmp)
        sock = base / "repro.sock"
        trace = base / "serve-trace.jsonl"
        proc = start_daemon(sock, base / "serve-cache", trace)

        ping = talk(sock, [{"op": "ping"}], 1)[0]
        served = talk(sock, trace_requests, len(trace_requests))
        stats = talk(sock, [{"op": "stats"}], 1)[0]
        down = talk(sock, [{"op": "shutdown"}], 1)[0]
        code = proc.wait(timeout=60)
        out, err = proc.communicate(timeout=10)

        # The same trace through the batch CLI (tenants stripped).
        batch_requests = base / "requests.jsonl"
        batch_requests.write_text("\n".join(
            json.dumps({k: v for k, v in r.items() if k != "tenant"})
            for r in trace_requests
        ) + "\n")
        batch_out = base / "batch.jsonl"
        if cli_main([
            "batch",
            "--requests", str(batch_requests),
            "--cache-dir", str(base / "batch-cache"),
            "--out", str(batch_out),
        ]) != 0:
            print("batch run failed")
            return 1
        batch = {
            record["id"]: strip_serve(record)
            for record in map(
                json.loads, batch_out.read_text().splitlines()
            )
        }

        counters = stats["stats"]["counters"]
        ok = True
        ok &= check("daemon answers ping", ping.get("status") == "ok")
        ok &= check(
            f"every request served ok ({len(served)} responses)",
            len(served) == len(trace_requests)
            and all(r.get("status") == "ok" for r in served),
        )
        ok &= check(
            "stats account for every request "
            f"(served={stats['stats']['served']}, refused="
            f"{stats['stats']['refused']})",
            stats["stats"]["served"] == len(trace_requests)
            and stats["stats"]["refused"] == 0,
        )
        unique = len({
            json.dumps(
                {k: v for k, v in r.items() if k not in ("id", "tenant")},
                sort_keys=True,
            )
            for r in trace_requests
        })
        ok &= check(
            f"duplicates hit the warm cache (executed="
            f"{counters['executed']}/{unique}, hits="
            f"{counters['cache_hit']})",
            counters["executed"] == unique
            and counters["cache_hit"] == len(trace_requests) - unique,
        )
        ok &= check(
            "served records bit-identical to repro-mpc batch "
            "(modulo _serve)",
            {r["id"]: strip_serve(r) for r in served} == batch,
        )
        ok &= check(
            "latency attribution recorded for every served request",
            stats["stats"]["latency"].get("count")
            == len(trace_requests),
        )
        ok &= check(
            "clean shutdown (exit 0, socket removed, trace written)",
            down.get("status") == "ok" and code == 0
            and not sock.exists() and trace.exists(),
        )
        if not ok:
            print(f"daemon stderr:\n{err}")
            return 1
    print("serve smoke check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
