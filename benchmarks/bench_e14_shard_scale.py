"""E14: out-of-core scale — the shard backend on streamed inputs.

Every other experiment materializes its graph in the driver and keeps
all ``k`` simulated machines resident, so the largest single-process run
in the suite tops out at E1's n=2048.  E14 exercises the full
out-of-core path instead: the workload is *written straight to disk*
line by line (no ``Graph`` object ever exists), ingest shards it per
machine while reading (:func:`repro.graph.stream.shard_edge_list`), and
the solve executes on :class:`~repro.mpc.shard.ShardBackend` with one
machine shard resident at a time.

The workload is a deterministic circulant: the n-cycle plus stride
chords — sparse, connected, bounded degree ``2(1 + #strides)``, and
generated edge-by-edge with exact ``n``/``m`` known up front, so sizes
scale freely without a generator ever holding the edge set.

Quantities of record:

* ``rounds`` / ``size`` / ``total_words`` — model quantities, identical
  to an in-memory serial run under the same owner map (the shard-parity
  contract);
* ``resident_words`` — the backend's high-water mark of *actually
  resident* machine state, versus ``footprint_words``, the same run's
  all-shards total: their ratio is the memory the driver never had to
  hold.  This is the E14 acceptance quantity — resident stays ~flat per
  shard as n grows.

The default table runs n ∈ {512, 1024, 2048}; set ``REPRO_E14_FULL=1``
to append the n=20480 row (10× E1's largest single-process run, the
acceptance-criterion scale; several minutes of simulator time).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Sequence

from benchmarks.bench_common import emit
from repro.core.pipeline import solve_ruling_set_stream
from repro.core.registry import DET_RULING

SIZES = [512, 1024, 2048]
FULL_SIZE = 20480
STRIDES = (5,)
FULL_ENV = "REPRO_E14_FULL"


def write_streamed_workload(
    path, n: int, strides: Sequence[int] = STRIDES
) -> int:
    """Write the circulant C_n(1, *strides*) edge list without a Graph.

    Each stride ``s`` must satisfy ``1 < s < n/2`` so every chord class
    contributes exactly ``n`` distinct edges; with the cycle that makes
    ``m = n * (1 + len(strides))``, known before a single line is
    written.  Returns ``m``.
    """
    for s in strides:
        if not 1 < s < n / 2:
            raise ValueError(f"stride {s} must satisfy 1 < s < n/2 = {n / 2}")
    m = n * (1 + len(strides))
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"{n} {m}\n")
        for v in range(n):
            for s in (1,) + tuple(strides):
                u = (v + s) % n
                lo, hi = (v, u) if v < u else (u, v)
                handle.write(f"{lo} {hi}\n")
    return m


def run_cell(n: int, num_shards: int = 0) -> dict:
    """One streamed solve; returns the E14 row."""
    with tempfile.TemporaryDirectory(prefix="e14-") as tmp:
        path = Path(tmp) / f"circulant_{n}.txt"
        m = write_streamed_workload(path, n)
        result = solve_ruling_set_stream(
            path, algorithm=DET_RULING, num_shards=num_shards
        )
    resident = result.metrics["shard_max_resident_words"]
    return {
        "n": n,
        "m": m,
        "machines": result.metrics["num_machines"],
        "S": result.metrics["memory_words"],
        "rounds": result.rounds,
        "size": result.size,
        "total_words": result.metrics["total_words"],
        "resident_words": resident,
        "shards": result.metrics["shard_num_shards"],
    }


def format_table(rows) -> str:
    header = (
        f"{'n':>7} {'m':>8} {'k':>5} {'S':>7} {'rounds':>7} {'size':>7} "
        f"{'total_words':>12} {'resident_words':>15} {'shards':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['n']:>7} {row['m']:>8} {row['machines']:>5} "
            f"{row['S']:>7} {row['rounds']:>7} {row['size']:>7} "
            f"{row['total_words']:>12} {row['resident_words']:>15} "
            f"{row['shards']:>7}"
        )
    lines.append(
        "\nresident_words is the driver's high-water mark of loaded "
        "machine state\n(one shard at a time); the other k-1 shards "
        "live in spill files."
    )
    return "\n".join(lines)


def run_experiment() -> str:
    sizes = list(SIZES)
    if os.environ.get(FULL_ENV):
        sizes.append(FULL_SIZE)
    rows = [run_cell(n) for n in sizes]
    return format_table(rows)


def test_e14_shard_scale(benchmark):
    """Small-n representative cell + the scaling table."""
    row = benchmark.pedantic(
        lambda: run_cell(512), iterations=1, rounds=1
    )
    assert row["size"] > 0
    emit("e14_shard_scale", run_experiment())


if __name__ == "__main__":
    print(run_experiment())
