"""E17: dense-graph stress under the adaptive load governor.

Claim exhibited: on a workload whose α > 2 in-model exponentiation
*provably overflows* the per-round budget — the doubling step's
respond-round traffic grows with d(d+2) per machine while the stored
state stays linear — the ungoverned run faults with
:class:`~repro.errors.MPCViolationError`, and the *governed* run
(:mod:`repro.mpc.governor`) completes by windowing the exchange, with
**bit-identical members** to the ungoverned reference (budget
enforcement lifted) at the same config.  On a feasible sibling workload
the governor is a provable no-op: members, rounds, and words all equal
the ungoverned run's.

Workload math (the dense leg): circulant ``n = 240`` with offsets
``1..8`` (d = 16) on ``k = 12`` machines with ``S = 4096``.  The
doubling respond round receives ``(n/k) · d · (d + 2) = 5760 > S``
words on every machine, while resident state peaks well under ``S`` —
exactly the regime where windowed exponentiation (more rounds, same
words) rescues the run.  The feasible leg shrinks the offsets to
``1..3`` (d = 6), where the full window fits the governor's target and
the planner must return "no batching".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from benchmarks.bench_common import emit
from repro.analysis.tables import format_table
from repro.core.alpha_ruling import det_alpha_ruling_set
from repro.core.verify import verify_ruling_set
from repro.errors import MPCViolationError
from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator

ALPHA = 3
BETA = 2
IN_SET_KEY = "alpha_rs_in_set"

#: The stress regime: 12 machines × 4096 words.
CONFIG = MPCConfig(num_machines=12, memory_words=4096, label="e17-stress")


def dense_workload() -> Graph:
    """Circulant n=240, d=16 — the leg that overflows ungoverned."""
    return gen.circulant_graph(240, list(range(1, 9)))


def feasible_workload() -> Graph:
    """Circulant n=240, d=6 — the leg where the governor is a no-op."""
    return gen.circulant_graph(240, [1, 2, 3])


def run_alpha(
    graph: Graph, config: MPCConfig, enforce: bool = True
) -> Tuple[int, List[int], Dict[str, int]]:
    """One in-model α=3 solve (exponentiation included, no prebuilt
    power graph); returns ``(claimed_beta, members, model_metrics)``."""
    with Simulator(config, enforce=enforce) as sim:
        dg = DistributedGraph.load(sim, graph)
        claimed, _ = det_alpha_ruling_set(
            dg, alpha=ALPHA, beta=BETA, in_set_key=IN_SET_KEY
        )
        members = dg.collect_marked(IN_SET_KEY)
        metrics = {
            "rounds": sim.metrics.rounds,
            "total_words": sim.metrics.total_words,
        }
        wall = sim.metrics.wall_time_s
    metrics["wall_time_s"] = wall
    return claimed, members, metrics


def ci_cell():
    """The regression-gate cell: fault → governed rescue → parity.

    Everything exact is pinned by a determinism contract: the
    ungoverned fault (the workload math above), the governed members
    against the enforcement-lifted ungoverned reference (windowing is
    bit-identical in results), and the feasible leg's full equality
    (the governor's no-op contract, DESIGN.md section 15).
    """
    dense = dense_workload()

    # Leg 1: ungoverned at the stress config must fault.
    ungoverned_faults = 0
    try:
        run_alpha(dense, CONFIG)
    except MPCViolationError:
        ungoverned_faults = 1

    # Leg 2: governed completes; members must equal the ungoverned
    # reference with enforcement lifted (same config → same algorithm
    # parameters; windowing changes rounds, never results).
    claimed, members, governed_metrics = run_alpha(
        dense, CONFIG.with_governor()
    )
    verify_ruling_set(dense, members, alpha=ALPHA, beta=claimed)
    _, reference_members, reference_metrics = run_alpha(
        dense, CONFIG, enforce=False
    )

    # Leg 3: feasible sibling — governed must be a bit-identical no-op.
    feasible = feasible_workload()
    _, base_members, base_metrics = run_alpha(feasible, CONFIG)
    _, gov_members, gov_metrics = run_alpha(feasible, CONFIG.with_governor())

    exact = {
        "ungoverned_faults": ungoverned_faults,
        "governed_rounds": governed_metrics["rounds"],
        "governed_words": governed_metrics["total_words"],
        "size": len(members),
        "members_checksum": sum(
            (i + 1) * v for i, v in enumerate(sorted(members))
        ),
        "members_match_reference": int(members == reference_members),
        "words_match_reference": int(
            governed_metrics["total_words"]
            == reference_metrics["total_words"]
        ),
        "parity_members": int(base_members == gov_members),
        "parity_rounds": int(
            base_metrics["rounds"] == gov_metrics["rounds"]
        ),
        "parity_words": int(
            base_metrics["total_words"] == gov_metrics["total_words"]
        ),
    }
    return exact, governed_metrics["wall_time_s"]


def test_e17_dense_stress(benchmark):
    exact, _ = ci_cell()
    assert exact["ungoverned_faults"] == 1
    assert exact["members_match_reference"] == 1
    assert exact["words_match_reference"] == 1
    assert exact["parity_members"] == 1
    assert exact["parity_rounds"] == 1
    assert exact["parity_words"] == 1

    rows = [dict(exact, cell="e17_dense_stress")]
    table = format_table(
        rows,
        columns=[
            "cell", "ungoverned_faults", "governed_rounds",
            "governed_words", "size", "members_match_reference",
            "parity_members", "parity_rounds",
        ],
        title="E17: dense stress — ungoverned faults, governed completes "
        "bit-identically (alpha=3, k=12, S=4096)",
    )
    emit("e17_dense_stress", table)

    benchmark.pedantic(
        lambda: run_alpha(dense_workload(), CONFIG.with_governor()),
        rounds=1,
        iterations=1,
    )
