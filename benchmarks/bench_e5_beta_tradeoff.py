"""E5 (Figure 3): the β-vs-rounds trade-off of iterated sparsification.

Claim exhibited: allowing a larger domination radius β buys additional
sparsification levels, shrinking the subgraph that must be solved exactly
— the structural reason β-ruling sets beat MIS in MPC.  The series
reports rounds and the deepest-level solve method per β.

β is a first-class grid axis of the sweep engine (``SweepSpec.betas``),
so the three cells checkpoint, parallelise, and resume like any sweep.
"""

from __future__ import annotations

from benchmarks.bench_common import emit, run_experiment
from repro.analysis.sweep import SweepSpec
from repro.analysis.tables import format_series, format_table
from repro.core.pipeline import solve_ruling_set
from repro.core.registry import DET_RULING
from repro.graph import generators as gen

BETAS = [2, 3, 4]
N = 512


def test_e5_beta_tradeoff(benchmark):
    spec = SweepSpec(
        experiment="e5_beta_tradeoff",
        workloads={
            f"er-{N}": lambda: gen.gnp_random_graph(N, 24, N, seed=55)
        },
        algorithms=[DET_RULING],
        betas=BETAS,
        regime="sublinear",
    )
    records = run_experiment(spec)
    series = {
        f"{DET_RULING}-rounds": [
            (r.get("beta"), r.get("rounds")) for r in records
        ],
        "levels-built": [
            (r.get("beta"), r.get("alg_levels_built")) for r in records
        ],
    }
    text = format_table(
        records,
        columns=[
            "workload", "beta", "rounds", "size",
            "alg_levels_built", "alg_level_gathers",
            "alg_level_luby_solves", "alg_seed_candidates",
        ],
        title=f"E5: beta trade-off (ER n={records[0].get('n')}, "
        f"m={records[0].get('m')})",
    )
    text += "\n\n" + format_series(
        series, "beta", "value", title="E5 series (figure form)"
    )
    emit("e5_beta_tradeoff", text)

    # Larger beta must never *hurt* the number of levels available.
    levels = dict(series["levels-built"])
    assert levels[4] >= levels[2]

    graph = gen.gnp_random_graph(N, 24, N, seed=55)
    benchmark.pedantic(
        lambda: solve_ruling_set(
            graph, algorithm=DET_RULING, beta=3, regime="sublinear"
        ),
        rounds=1,
        iterations=1,
    )
