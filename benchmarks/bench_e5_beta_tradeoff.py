"""E5 (Figure 3): the β-vs-rounds trade-off of iterated sparsification.

Claim exhibited: allowing a larger domination radius β buys additional
sparsification levels, shrinking the subgraph that must be solved exactly
— the structural reason β-ruling sets beat MIS in MPC.  The series
reports rounds and the deepest-level solve method per β.
"""

from __future__ import annotations

from benchmarks.bench_common import emit, save_records
from repro.analysis.records import record_from_result
from repro.analysis.tables import format_series, format_table
from repro.core.pipeline import solve_ruling_set
from repro.graph import generators as gen

BETAS = [2, 3, 4]


def test_e5_beta_tradeoff(benchmark):
    graph = gen.gnp_random_graph(512, 24, 512, seed=55)
    records = []
    series = {"det-ruling-rounds": [], "levels-built": []}
    for beta in BETAS:
        result = solve_ruling_set(
            graph, algorithm="det-ruling", beta=beta, regime="sublinear"
        )
        records.append(
            record_from_result(
                "e5_beta_tradeoff", f"beta-{beta}", result,
                {"beta": beta, "n": graph.num_vertices},
            )
        )
        series["det-ruling-rounds"].append((beta, result.rounds))
        series["levels-built"].append(
            (beta, result.metrics["alg_levels_built"])
        )
    save_records("e5_beta_tradeoff", records)
    text = format_table(
        records,
        columns=[
            "workload", "beta", "rounds", "size",
            "alg_levels_built", "alg_level_gathers",
            "alg_level_luby_solves", "alg_seed_candidates",
        ],
        title=f"E5: beta trade-off (ER n={graph.num_vertices}, "
        f"m={graph.num_edges})",
    )
    text += "\n\n" + format_series(
        series, "beta", "value", title="E5 series (figure form)"
    )
    emit("e5_beta_tradeoff", text)

    # Larger beta must never *hurt* the number of levels available.
    levels = dict(series["levels-built"])
    assert levels[4] >= levels[2]

    benchmark.pedantic(
        lambda: solve_ruling_set(
            graph, algorithm="det-ruling", beta=3, regime="sublinear"
        ),
        rounds=1,
        iterations=1,
    )
