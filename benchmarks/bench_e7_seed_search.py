"""E7 (Figure 4): the cost anatomy of deterministic seed selection.

Claims exhibited (the ablation DESIGN.md calls out):

* the two-stage method of conditional expectations scans only a handful
  of multipliers and fixes ceil(log2 p) offset bits — per selection, not
  per vertex;
* the batched scan for sampling seeds commits within O(1) batches because
  a constant fraction of the pairwise-independent family meets the
  size+coverage targets;
* both mechanisms' committed seeds certify their bounds (re-checked here
  against the sequential estimator).
"""

from __future__ import annotations

from benchmarks.bench_common import emit
from repro.analysis.tables import format_series
from repro.core.det_luby import modulus_for
from repro.core.pipeline import solve_ruling_set
from repro.derand.conditional import choose_seed
from repro.derand.estimator import ThresholdEstimator
from repro.graph import generators as gen

SIZES = [64, 128, 256, 512]


def luby_estimator_for(graph):
    """The global phase-1 Luby estimator, built sequentially."""
    p = modulus_for(graph.num_vertices)
    est = ThresholdEstimator(p)
    degree = graph.degrees()
    for v in graph.vertices():
        d_v = degree[v]
        if d_v == 0:
            continue
        t_v = p // (2 * d_v)
        est.add_vertex_term(v, t_v, d_v)
        for u in graph.neighbors(v):
            if (degree[u], u) > (d_v, v):
                est.add_pair_term(
                    v, t_v, u, p // (2 * degree[u]), -d_v
                )
    return est, p


def test_e7_seed_search(benchmark):
    series = {
        "multipliers-scanned": [],
        "bits-fixed": [],
        "achieved-over-expectation-pct": [],
        "ruling-scan-candidates": [],
    }
    for n in SIZES:
        graph = gen.gnp_random_graph(n, 12, n, seed=n)
        est, p = luby_estimator_for(graph)
        seed, stats = choose_seed(est)
        series["multipliers-scanned"].append(
            (n, stats.a_candidates_scanned)
        )
        series["bits-fixed"].append((n, stats.bits_fixed))
        expectation = stats.expectation_x_p2 / (p * p)
        series["achieved-over-expectation-pct"].append(
            (n, round(100 * stats.achieved_value / max(1e-9, expectation)))
        )
        assert stats.achieved_value * p * p >= stats.expectation_x_p2

        result = solve_ruling_set(
            graph, algorithm="det-ruling", regime="sublinear"
        )
        series["ruling-scan-candidates"].append(
            (n, result.metrics["alg_seed_candidates"])
        )
    text = format_series(
        series, "n", "value",
        title="E7: seed-selection cost anatomy "
        "(conditional expectations + batched scan)",
    )
    emit("e7_seed_search", text)

    # Offset bits grow like log2(p) = log2(4n) — exactly, by construction.
    bits = dict(series["bits-fixed"])
    assert bits[512] == modulus_for(512).bit_length()

    graph = gen.gnp_random_graph(256, 12, 256, seed=256)
    est, _ = luby_estimator_for(graph)
    benchmark.pedantic(lambda: choose_seed(est), rounds=1, iterations=1)
