"""E7 (Figure 4): the cost anatomy of deterministic seed selection.

Claims exhibited (the ablation DESIGN.md calls out):

* the two-stage method of conditional expectations scans only a handful
  of multipliers and fixes ceil(log2 p) offset bits — per selection, not
  per vertex;
* the batched scan for sampling seeds commits within O(1) batches because
  a constant fraction of the pairwise-independent family meets the
  size+coverage targets;
* both mechanisms' committed seeds certify their bounds (re-checked here
  against the sequential estimator).

One cell per input size, driven through the sweep engine (isolation +
checkpointing), with the anatomy counters landing as record fields.
"""

from __future__ import annotations

from functools import partial

from benchmarks.bench_common import emit, run_experiment_cells
from repro.analysis.records import RunRecord
from repro.analysis.sweep import Cell
from repro.analysis.tables import format_series
from repro.core.det_luby import modulus_for
from repro.core.pipeline import solve_ruling_set
from repro.core.registry import DET_RULING
from repro.derand.conditional import choose_seed
from repro.derand.estimator import ThresholdEstimator
from repro.graph import generators as gen

SIZES = [64, 128, 256, 512]


def luby_estimator_for(graph):
    """The global phase-1 Luby estimator, built sequentially."""
    p = modulus_for(graph.num_vertices)
    est = ThresholdEstimator(p)
    degree = graph.degrees()
    for v in graph.vertices():
        d_v = degree[v]
        if d_v == 0:
            continue
        t_v = p // (2 * d_v)
        est.add_vertex_term(v, t_v, d_v)
        for u in graph.neighbors(v):
            if (degree[u], u) > (d_v, v):
                est.add_pair_term(
                    v, t_v, u, p // (2 * degree[u]), -d_v
                )
    return est, p


def anatomy_cell(n: int) -> RunRecord:
    """One pure cell: seed-selection anatomy at input size ``n``."""
    graph = gen.gnp_random_graph(n, 12, n, seed=n)
    est, p = luby_estimator_for(graph)
    seed, stats = choose_seed(est)
    assert stats.achieved_value * p * p >= stats.expectation_x_p2
    expectation = stats.expectation_x_p2 / (p * p)
    result = solve_ruling_set(
        graph, algorithm=DET_RULING, regime="sublinear"
    )
    return RunRecord(
        "e7_seed_search", f"er-{n:04d}", DET_RULING,
        {
            "n": n,
            "multipliers_scanned": stats.a_candidates_scanned,
            "bits_fixed": stats.bits_fixed,
            "achieved_over_expectation_pct": round(
                100 * stats.achieved_value / max(1e-9, expectation)
            ),
            "ruling_scan_candidates": result.metrics["alg_seed_candidates"],
        },
    )


def test_e7_seed_search(benchmark):
    records = run_experiment_cells(
        "e7_seed_search",
        [
            Cell(
                key=f"er-{n:04d}/{DET_RULING}",
                runner=partial(anatomy_cell, n),
                workload=f"er-{n:04d}", algorithm=DET_RULING,
            )
            for n in SIZES
        ],
    )
    series = {
        "multipliers-scanned": [
            (r.get("n"), r.get("multipliers_scanned")) for r in records
        ],
        "bits-fixed": [(r.get("n"), r.get("bits_fixed")) for r in records],
        "achieved-over-expectation-pct": [
            (r.get("n"), r.get("achieved_over_expectation_pct"))
            for r in records
        ],
        "ruling-scan-candidates": [
            (r.get("n"), r.get("ruling_scan_candidates")) for r in records
        ],
    }
    text = format_series(
        series, "n", "value",
        title="E7: seed-selection cost anatomy "
        "(conditional expectations + batched scan)",
    )
    emit("e7_seed_search", text)

    # Offset bits grow like log2(p) = log2(4n) — exactly, by construction.
    bits = dict(series["bits-fixed"])
    assert bits[512] == modulus_for(512).bit_length()

    graph = gen.gnp_random_graph(256, 12, 256, seed=256)
    est, _ = luby_estimator_for(graph)
    benchmark.pedantic(lambda: choose_seed(est), rounds=1, iterations=1)
