"""E10 (ablation): chunked bit-fixing in the distributed seed selection.

Design decision ablated (DESIGN.md §6.2): the method of conditional
expectations fixes the offset ``b`` in chunks of ``c`` bits by scoring
all ``2^c`` extensions per vector reduction.  Larger chunks trade wider
reduction vectors for fewer coordination rounds — with ``c = 1`` the
selection degenerates to one reduction per bit.

The table reports det-luby's total rounds and seed-search phase rounds
as the chunk width varies on a fixed workload.  One sweep-engine cell
per chunk width; the ``seed_search_time_s`` / ``wall_time_s`` fields are
wall-clock convenience numbers (non-model — they vary run to run, see
DESIGN.md's determinism contract).
"""

from __future__ import annotations

from functools import partial

from benchmarks.bench_common import emit, run_experiment_cells
from repro.analysis.records import RunRecord
from repro.analysis.sweep import Cell
from repro.analysis.tables import format_table
from repro.core.det_luby import (
    conditional_expectation_chooser,
    det_luby_mis,
)
from repro.core.registry import DET_LUBY
from repro.core.verify import verify_ruling_set
from repro.graph import generators as gen
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator

CHUNK_BITS = [1, 2, 4, 6]


def run_with_chunk(graph, chunk_bits):
    cfg = MPCConfig.sublinear(
        graph.num_vertices, graph.num_edges, max_degree=graph.max_degree()
    )
    with Simulator(cfg) as sim:
        dg = DistributedGraph.load(sim, graph)
        counters = det_luby_mis(
            dg,
            in_set_key="mis",
            chooser=conditional_expectation_chooser(chunk_bits=chunk_bits),
        )
        members = dg.collect_marked("mis")
    verify_ruling_set(graph, members, alpha=2, beta=1)
    return sim, counters


def chunk_cell(chunk: int) -> RunRecord:
    """One pure cell: det-luby with a fixed offset-fixing chunk width."""
    graph = gen.gnp_random_graph(384, 14, 384, seed=10)
    sim, counters = run_with_chunk(graph, chunk)
    phases = sim.metrics.phase_rounds()
    record = RunRecord(
        "e10_chunk_ablation",
        f"chunk-{chunk}",
        DET_LUBY,
        {
            "chunk_bits": chunk,
            "rounds": sim.metrics.rounds,
            "seed_search_rounds": phases.get("luby-seed-search", 0),
            "luby_phases": counters["phases"],
            "max_words_received": sim.metrics.max_words_received,
        },
    )
    record.meta.update(
        {
            "seed_search_time_s": round(
                sim.metrics.time_per_phase.get("luby-seed-search", 0.0), 4
            ),
            "wall_time_s": round(sim.metrics.wall_time_s, 4),
        }
    )
    return record


def test_e10_chunk_ablation(benchmark):
    records = run_experiment_cells(
        "e10_chunk_ablation",
        [
            Cell(
                key=f"chunk-{chunk}/{DET_LUBY}",
                runner=partial(chunk_cell, chunk),
                workload=f"chunk-{chunk}", algorithm=DET_LUBY,
            )
            for chunk in CHUNK_BITS
        ],
    )
    rounds_by_chunk = {
        r.get("chunk_bits"): r.get("rounds") for r in records
    }
    emit(
        "e10_chunk_ablation",
        format_table(
            records,
            columns=[
                "workload", "chunk_bits", "rounds", "seed_search_rounds",
                "luby_phases", "max_words_received",
            ],
            title="E10: offset-fixing chunk width ablation (ER n=384)",
        ),
    )

    # The ablation's point: 1-bit fixing must cost strictly more rounds
    # than the widest chunk (that is what chunking buys).
    assert rounds_by_chunk[1] > rounds_by_chunk[CHUNK_BITS[-1]]

    graph = gen.gnp_random_graph(384, 14, 384, seed=10)
    benchmark.pedantic(
        lambda: run_with_chunk(graph, 4), rounds=1, iterations=1
    )
