"""E16: solver-family head-to-head on the phase-program framework.

Claim exhibited: the degree-class-decomposition family reaches a
(2, 2)-ruling set in rounds governed by its doubly-logarithmic claimed
bound, staying flat where the per-level sparsify-and-gather engine's
round count tracks log Δ — and both families run as phase programs on
the same session machinery, so the comparison is apples-to-apples
(identical budget enforcement, identical metrics).

Workloads deliberately spread the maximum degree across three orders of
magnitude (grid ≈ 4 up to star ≈ n) because Δ, not n, is the axis the
new family's round bound improves on.
"""

from __future__ import annotations

from benchmarks.bench_common import algorithm_axis, emit, run_experiment
from repro.analysis.records import RunRecord, record_from_result
from repro.analysis.sweep import SweepCell, SweepSpec
from repro.analysis.tables import format_table
from repro.core import registry
from repro.core.pipeline import solve_ruling_set
from repro.core.registry import GP_RULING, MPC_FAMILY, RULING_SET
from repro.core.verify import check_ruling_set
from repro.graph import generators as gen
from repro.graph.graph import Graph

WORKLOADS = {
    "grid-16x16": lambda: gen.grid_graph(16, 16),
    "er-256": lambda: gen.gnp_random_graph(256, 16, 256, seed=16),
    "power-law-256": lambda: gen.chung_lu_power_law(256, seed=16),
    "regular-24": lambda: gen.regular_graph(256, 24),
    "star-256": lambda: gen.star_graph(256),
}

# Every MPC ruling-set family in the registry, the new one included.
ALGORITHMS = algorithm_axis(family=MPC_FAMILY, problem=RULING_SET)


def families_cell(graph: Graph, cell: SweepCell, extra) -> RunRecord:
    """One verified solve plus the family's claimed-round headroom."""
    result = solve_ruling_set(
        graph, algorithm=cell.algorithm, beta=cell.beta, regime=cell.regime,
        seed=cell.seed,
    )
    measured = check_ruling_set(graph, result.members)
    assert measured.measured_beta <= result.beta
    fields = dict(extra)
    fields["measured_beta"] = measured.measured_beta
    spec = registry.get_algorithm(cell.algorithm)
    if spec.claimed_rounds is not None:
        bound = spec.claimed_rounds(graph, 2, cell.beta)
        assert result.rounds <= bound, (
            f"{cell.algorithm} used {result.rounds} rounds, claimed "
            f"bound {bound}"
        )
        fields["claimed_round_bound"] = bound
    return record_from_result(cell.experiment, cell.workload, result, fields)


def ci_cell():
    """The regression-gate cell: the new family on the E16 ER workload.

    Everything returned is exact by the determinism contract: the round
    count, the communicated words, and the membership itself (as size +
    order-weighted checksum, so a permuted or substituted set with the
    same cardinality still trips the gate).
    """
    graph = WORKLOADS["er-256"]()
    result = solve_ruling_set(graph, algorithm=GP_RULING, regime="sublinear")
    measured = check_ruling_set(graph, result.members)
    exact = {
        "rounds": result.rounds,
        "total_words": result.metrics["total_words"],
        "total_messages": result.metrics["total_messages"],
        "size": result.size,
        "members_checksum": sum(
            (i + 1) * v for i, v in enumerate(sorted(result.members))
        ),
        "measured_beta": measured.measured_beta,
        "classes": result.metrics["alg_classes"],
    }
    return exact, result.wall_time_s


def test_e16_families(benchmark):
    spec = SweepSpec(
        experiment="e16_families",
        workloads=WORKLOADS,
        algorithms=ALGORITHMS,
        beta=2,
        regime="sublinear",
        cell_runner=families_cell,
    )
    records = run_experiment(spec)
    table = format_table(
        records,
        columns=[
            "workload", "algorithm", "n", "max_degree", "rounds",
            "claimed_round_bound", "size", "measured_beta",
        ],
        title="E16: solver families head-to-head "
        "(phase programs, sublinear regime, beta=2)",
    )
    emit("e16_families", table)

    # The new family's headline: its claimed (2, 2) holds everywhere.
    gp_rows = [r for r in records if r.algorithm == GP_RULING]
    assert gp_rows, "new family missing from the sweep axis"
    for row in gp_rows:
        assert row.get("beta_claimed") == 2
        assert row.get("measured_beta") <= 2

    graph = WORKLOADS["er-256"]()
    benchmark.pedantic(
        lambda: solve_ruling_set(graph, algorithm=GP_RULING),
        rounds=1,
        iterations=1,
    )
