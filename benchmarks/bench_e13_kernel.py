"""E13: python vs numpy kernel on the seed-selection hot path.

The numpy kernel (DESIGN.md §11) vectorizes the method of conditional
expectations — the inner loop of every deterministic solve.  This
experiment measures exactly that hot path on E10's workload: build the
phase-1 Luby estimator for the chunk-ablation graph and time
:func:`~repro.derand.conditional.choose_seed` under each kernel, fresh
estimator per repeat so the flat-array build cost is charged to the
kernel that incurs it.

Whole-run wall clock is deliberately *not* the quantity here: the
simulator's word-budget accounting dominates end-to-end timings and is
kernel-independent by design, so it would bury the effect being
measured.  The table reports per-kernel best-of-``REPEATS`` seconds and
the speedup; bit-identity of the selected seed and selection stats is
asserted, and the speedup floor (≥5×) is the E13 acceptance gate.
"""

from __future__ import annotations

import time
from typing import Tuple

import pytest

from benchmarks.bench_common import emit
from repro.core.det_luby import modulus_for
from repro.derand.conditional import choose_seed
from repro.derand.estimator import ThresholdEstimator
from repro.derand.family import Seed
from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.mpc.state_layout import (
    KERNEL_NUMPY,
    KERNEL_PYTHON,
    numpy_available,
)

# E10's regression-gate workload (the chunk-4 hot cell's graph).
N = 256
REPEATS = 5
SPEEDUP_FLOOR = 5.0


def e10_workload() -> Graph:
    return gen.gnp_random_graph(N, 12, N, seed=10)


def build_phase1_estimator(
    graph: Graph, p: int, kernel: str
) -> ThresholdEstimator:
    """The global phase-1 Luby estimator for ``graph``.

    The union of every machine's terms in ``det_luby_mis``'s first
    phase: vertex terms ``(v, p // 2d_v, d_v)`` and, for each neighbour
    ``u`` with ``(d_u, u) > (d_v, v)``, pair terms weighted ``-d_v`` —
    the exact shape the distributed seed search evaluates, in one local
    estimator so the kernels can be timed head to head.
    """
    est = ThresholdEstimator(p, kernel=kernel)
    degrees = list(graph.degrees())
    for v in graph.vertices():
        d_v = degrees[v]
        if d_v == 0:
            continue
        t_v = p // (2 * d_v)
        est.add_vertex_term(v, t_v, d_v)
        for u in graph.neighbors(v):
            d_u = degrees[u]
            if (d_u, u) > (d_v, v):
                est.add_pair_term(v, t_v, u, p // (2 * d_u), -d_v)
    return est


def time_kernel(
    graph: Graph, p: int, kernel: str, repeats: int = REPEATS
) -> Tuple[float, Seed, object]:
    """Best-of-``repeats`` seconds for one full seed selection.

    Term insertion happens outside the timer — it is shared
    workload-construction cost, identical under both kernels.  The
    estimator is rebuilt fresh per repeat all the same, so the numpy
    kernel's lazy flat-array construction (which happens inside the
    first query) *is* charged to it and nothing is amortized across
    repeats.
    """
    best = float("inf")
    seed = stats = None
    for _ in range(repeats):
        est = build_phase1_estimator(graph, p, kernel)
        start = time.perf_counter()
        seed, stats = choose_seed(est)
        best = min(best, time.perf_counter() - start)
    return best, seed, stats


def measure_speedup(
    graph: Graph, repeats: int = REPEATS
) -> Tuple[dict, float]:
    """Time both kernels; return (exact/reported fields, python seconds).

    Shared with the CI regression gate's ``e13_kernel_speedup`` cell:
    the selected seed and stats are exact model quantities (identical
    across kernels and runs by the bit-identity contract); the speedup
    is a timing quantity.  Without numpy the python kernel is measured
    alone and the speedup reported as 1.0 — the exact fields still gate.
    """
    p = modulus_for(graph.num_vertices)
    py_s, py_seed, py_stats = time_kernel(graph, p, KERNEL_PYTHON, repeats)
    if numpy_available():
        np_s, np_seed, np_stats = time_kernel(
            graph, p, KERNEL_NUMPY, repeats
        )
        if (py_seed, py_stats) != (np_seed, np_stats):
            raise AssertionError(
                f"kernel divergence: python chose {py_seed} {py_stats}, "
                f"numpy chose {np_seed} {np_stats}"
            )
        speedup = py_s / np_s
    else:
        np_s, speedup = float("nan"), 1.0
    est = build_phase1_estimator(graph, p, KERNEL_PYTHON)
    fields = {
        "modulus": p,
        "vertex_terms": len(est.vertex_terms),
        "pair_terms": len(est.pair_terms),
        "seed_a": py_seed.a,
        "seed_b": py_seed.b,
        "a_candidates_scanned": py_stats.a_candidates_scanned,
        "achieved_value": py_stats.achieved_value,
        "kernel_speedup_x": round(speedup, 2),
    }
    return fields, py_s


@pytest.mark.skipif(not numpy_available(), reason="numpy kernel unavailable")
def test_e13_kernel_speedup(benchmark):
    graph = e10_workload()
    p = modulus_for(graph.num_vertices)
    py_s, py_seed, py_stats = time_kernel(graph, p, KERNEL_PYTHON)
    np_s, np_seed, np_stats = time_kernel(graph, p, KERNEL_NUMPY)

    assert (py_seed, py_stats) == (np_seed, np_stats)
    speedup = py_s / np_s
    emit(
        "e13_kernel",
        "\n".join(
            [
                f"E13: seed-selection hot path, ER n={N} (p={p})",
                f"  python kernel: {py_s * 1000:8.2f} ms (best of {REPEATS})",
                f"  numpy  kernel: {np_s * 1000:8.2f} ms (best of {REPEATS})",
                f"  speedup:       {speedup:8.1f}x (floor {SPEEDUP_FLOOR}x)",
                f"  selected seed: a={py_seed.a} b={py_seed.b}, "
                f"scanned={py_stats.a_candidates_scanned}",
            ]
        ),
    )
    # The acceptance gate: vectorization must actually pay on the hot
    # path, not merely break even.
    assert speedup >= SPEEDUP_FLOOR, (
        f"numpy kernel only {speedup:.1f}x faster (floor {SPEEDUP_FLOOR}x)"
    )

    benchmark.pedantic(
        lambda: time_kernel(graph, p, KERNEL_NUMPY, repeats=1),
        rounds=1,
        iterations=1,
    )
