"""E2 (Figure 1): rounds grow with Δ (slowly), not with n.

Claim exhibited: for the deterministic 2-ruling set, the round count at
fixed n grows only mildly as the maximum degree Δ doubles (the sparsify
rate adapts as 4/√Δ), while holding n fixed isolates the degree axis.

Workload: circulant regular graphs, n = 512, Δ ∈ {8, 16, 32, 64, 128}.
"""

from __future__ import annotations

from benchmarks.bench_common import emit, run_experiment
from repro.analysis.sweep import SweepSpec
from repro.analysis.tables import format_series, format_table
from repro.core.pipeline import solve_ruling_set
from repro.core.registry import DET_LUBY, DET_RULING
from repro.graph import generators as gen

N = 512
DEGREES = [8, 16, 32, 64, 128]
ALGORITHMS = [DET_RULING, DET_LUBY]


def workload_grid():
    return {
        f"regular-{degree:03d}": (
            lambda degree=degree: gen.regular_graph(N, degree)
        )
        for degree in DEGREES
    }


def test_e2_delta_sweep(benchmark):
    spec = SweepSpec(
        experiment="e2_delta_sweep",
        workloads=workload_grid(),
        algorithms=ALGORITHMS,
        regime="sublinear",
    )
    records = run_experiment(spec)
    series = {
        algorithm: sorted(
            (r.get("max_degree"), r.get("rounds"))
            for r in records
            if r.algorithm == algorithm
        )
        for algorithm in ALGORITHMS
    }
    text = format_table(
        records,
        columns=["workload", "algorithm", "max_degree", "rounds", "size"],
        title=f"E2: rounds vs max degree (regular graphs, n={N})",
    )
    text += "\n\n" + format_series(
        series, "max_degree", "rounds",
        title="E2 series (figure form)",
    )
    emit("e2_delta_sweep", text)

    # Shape check: an 16x increase in Δ must not blow rounds up by 16x.
    det = dict(series[DET_RULING])
    assert det[DEGREES[-1]] <= 8 * max(1, det[DEGREES[0]])

    graph = gen.regular_graph(N, 32)
    benchmark.pedantic(
        lambda: solve_ruling_set(
            graph, algorithm=DET_RULING, regime="sublinear"
        ),
        rounds=1,
        iterations=1,
    )
