"""CI check: kill a parallel sweep mid-run, resume it, compare streams.

Exercises the sweep engine's crash-consistency contract end to end, the
way a real interrupted experiment would hit it:

1. run a serial baseline sweep to a checkpoint (the reference stream);
2. launch the same sweep with ``--jobs 2`` in a subprocess, wait until
   the first cell lands in its checkpoint, and SIGKILL the process;
3. resume the killed sweep with ``--resume``;
4. assert the resumed checkpoint's deterministic payloads (everything
   but the ``_meta`` wall-clock/worker keys) are byte-identical to the
   serial baseline's.

Exit code 0 on success, 1 on any mismatch.  Usage::

    PYTHONPATH=src python -m benchmarks.sweep_resume_check
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List

from repro.core.registry import DET_LUBY, DET_RULING

SWEEP_ARGS = [
    "--family", "gnp", "--param", "10",
    "--algorithms", f"{DET_RULING},{DET_LUBY}",
    "--regime", "sublinear",
]


def cli(extra: List[str]) -> List[str]:
    return [sys.executable, "-m", "repro.cli", "sweep"] + SWEEP_ARGS + extra


def payloads(path: Path) -> List[dict]:
    """Checkpoint lines minus the non-deterministic ``_meta`` keys."""
    rows = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail line from the kill
        payload.pop("_meta", None)
        rows.append(payload)
    return rows


def count_lines(path: Path) -> int:
    if not path.exists():
        return 0
    return len([ln for ln in path.read_text().splitlines() if ln.strip()])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Kill-and-resume consistency check for the sweep engine."
    )
    parser.add_argument(
        "--n", default="160,200,240,280",
        help="workload sizes (more/larger cells = more time to kill)",
    )
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--kill-after", type=int, default=1,
        help="SIGKILL the parallel sweep once this many cells are "
        "checkpointed",
    )
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args(argv)

    workdir = Path(tempfile.mkdtemp(prefix="sweep-resume-check-"))
    baseline = workdir / "baseline.jsonl"
    parallel = workdir / "parallel.jsonl"
    grid = ["--n", args.n]

    print(f"[1/4] serial baseline sweep -> {baseline}")
    subprocess.run(
        cli(grid + ["--checkpoint", str(baseline)]),
        check=True, stdout=subprocess.DEVNULL,
    )
    total = count_lines(baseline)
    print(f"      {total} cells")

    print(f"[2/4] parallel sweep (--jobs {args.jobs}), killing after "
          f"{args.kill_after} checkpointed cell(s)")
    proc = subprocess.Popen(
        cli(grid + [
            "--jobs", str(args.jobs), "--checkpoint", str(parallel),
        ]),
        stdout=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + args.timeout
    killed = False
    while time.monotonic() < deadline:
        if count_lines(parallel) >= args.kill_after and proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
            killed = True
            break
        if proc.poll() is not None:
            break
        time.sleep(0.02)
    if killed:
        print(f"      killed with {count_lines(parallel)} cells "
              "checkpointed")
    else:
        proc.wait()
        print("      WARNING: sweep finished before the kill landed; "
              "the resume below degenerates to a no-op check")

    print("[3/4] resuming the killed sweep")
    subprocess.run(
        cli(grid + [
            "--jobs", str(args.jobs), "--checkpoint", str(parallel),
            "--resume",
        ]),
        check=True, stdout=subprocess.DEVNULL,
    )

    print("[4/4] comparing resumed stream to the serial baseline")
    base_rows = payloads(baseline)
    resumed_rows = payloads(parallel)
    if base_rows != resumed_rows:
        print("MISMATCH: resumed sweep differs from the serial baseline")
        for i, (b, r) in enumerate(zip(base_rows, resumed_rows)):
            if b != r:
                print(f"  row {i}:\n    serial : {b}\n    resumed: {r}")
        if len(base_rows) != len(resumed_rows):
            print(f"  lengths differ: {len(base_rows)} vs "
                  f"{len(resumed_rows)}")
        return 1
    print(f"OK: {len(base_rows)} records identical "
          f"(kill {'landed' if killed else 'missed'})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
