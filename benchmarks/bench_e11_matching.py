"""E11 (extension): deterministic maximal matching on the line graph.

Extension exhibiting that the derandomization toolkit is
problem-agnostic: maximal matching = MIS on the line graph, so the
identical Luby engine (same estimator, same conditional expectations)
solves it once the line graph is materialised in-model.  The table
reports phases, rounds, matching sizes vs a sequential greedy matching,
and the quadratic line-graph footprint the regime must fund.

One sweep-engine cell per workload (the matching solver does not go
through ``solve_ruling_set``, so the cells are built explicitly).
"""

from __future__ import annotations

from functools import partial

from benchmarks.bench_common import emit, run_experiment_cells
from repro.analysis.records import RunRecord
from repro.analysis.sweep import Cell
from repro.analysis.tables import format_table
from repro.core.det_matching import (
    det_maximal_matching,
    line_graph_words,
    matching_config,
    verify_maximal_matching,
)
from repro.core.registry import DET_MATCHING
from repro.graph import generators as gen
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator

WORKLOADS = {
    "er-192": lambda: gen.gnp_random_graph(192, 8, 192, seed=11),
    "tree-256": lambda: gen.random_tree(256, seed=11),
    "grid-12x12": lambda: gen.grid_graph(12, 12),
    "regular-8": lambda: gen.regular_graph(128, 8),
}


def greedy_matching_size(graph) -> int:
    used = set()
    size = 0
    for u, v in graph.edges():
        if u not in used and v not in used:
            used.add(u)
            used.add(v)
            size += 1
    return size


def run_matching(graph):
    with Simulator(matching_config(graph)) as sim:
        dg = DistributedGraph.load(sim, graph)
        matching, counters = det_maximal_matching(dg)
    verify_maximal_matching(graph, matching)
    return matching, counters, sim


def matching_cell(name: str) -> RunRecord:
    """One pure cell: verified maximal matching on one workload."""
    graph = WORKLOADS[name]()
    matching, counters, sim = run_matching(graph)
    greedy = greedy_matching_size(graph)
    # Any maximal matching is at least half the maximum one, and the
    # greedy is maximal too, so sizes stay within a factor of two.
    assert 2 * len(matching) >= greedy
    return RunRecord(
        "e11_matching", name, DET_MATCHING,
        {
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "line_words": line_graph_words(graph),
            "matching_size": len(matching),
            "greedy_size": greedy,
            "rounds": sim.metrics.rounds,
            "luby_phases": counters["phases"],
            "memory_words": sim.config.memory_words,
            "peak_memory_words": sim.metrics.peak_memory_words,
        },
    )


def test_e11_matching(benchmark):
    records = run_experiment_cells(
        "e11_matching",
        [
            Cell(
                key=f"{name}/{DET_MATCHING}",
                runner=partial(matching_cell, name),
                workload=name, algorithm=DET_MATCHING,
            )
            for name in sorted(WORKLOADS)
        ],
    )
    emit(
        "e11_matching",
        format_table(
            records,
            columns=[
                "workload", "n", "m", "line_words", "matching_size",
                "greedy_size", "rounds", "luby_phases",
                "peak_memory_words", "memory_words",
            ],
            title="E11: deterministic maximal matching "
            "(Luby engine on the distributed line graph)",
        ),
    )

    graph = WORKLOADS["grid-12x12"]()
    benchmark.pedantic(
        lambda: run_matching(graph), rounds=1, iterations=1
    )
