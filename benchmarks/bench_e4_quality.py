"""E4 (Table 2): solution quality against the sequential oracle.

Claim exhibited: every algorithm's output is a genuine ruling set
(2-independent, within its claimed β — verified by BFS ground truth), and
the *measured* domination radius and set size stay within small constant
factors of greedy MIS across structurally diverse workloads.
"""

from __future__ import annotations

from benchmarks.bench_common import emit, save_records
from repro.analysis.records import record_from_result
from repro.analysis.tables import format_table
from repro.core.pipeline import solve_ruling_set
from repro.core.verify import check_ruling_set
from repro.graph import generators as gen

WORKLOADS = {
    "er-256": lambda: gen.gnp_random_graph(256, 16, 256, seed=4),
    "power-law-256": lambda: gen.chung_lu_power_law(256, seed=4),
    "tree-256": lambda: gen.random_tree(256, seed=4),
    "grid-16x16": lambda: gen.grid_graph(16, 16),
    "caterpillar": lambda: gen.caterpillar_graph(40, 5),
    "regular-24": lambda: gen.regular_graph(256, 24),
}

ALGORITHMS = ["greedy-mis", "det-ruling", "rand-ruling", "det-luby"]


def test_e4_quality(benchmark):
    records = []
    for name in sorted(WORKLOADS):
        graph = WORKLOADS[name]()
        greedy_size = None
        for algorithm in ALGORITHMS:
            result = solve_ruling_set(
                graph, algorithm=algorithm, regime="sublinear"
            )
            measured = check_ruling_set(graph, result.members)
            if algorithm == "greedy-mis":
                greedy_size = result.size
            record = record_from_result(
                "e4_quality", name, result,
                {
                    "n": graph.num_vertices,
                    "measured_beta": measured.measured_beta,
                    "size_vs_greedy": (
                        f"{result.size / greedy_size:.2f}"
                        if greedy_size
                        else "1.00"
                    ),
                },
            )
            records.append(record)
            assert measured.independent_at == 2
            assert measured.measured_beta <= result.beta
    save_records("e4_quality", records)
    emit(
        "e4_quality",
        format_table(
            records,
            columns=[
                "workload", "algorithm", "n", "size",
                "size_vs_greedy", "beta_claimed", "measured_beta",
            ],
            title="E4: verified quality vs the greedy oracle",
        ),
    )

    graph = WORKLOADS["er-256"]()
    benchmark.pedantic(
        lambda: check_ruling_set(
            graph, solve_ruling_set(graph, algorithm="det-ruling").members
        ),
        rounds=1,
        iterations=1,
    )
