"""E4 (Table 2): solution quality against the sequential oracle.

Claim exhibited: every algorithm's output is a genuine ruling set
(2-independent, within its claimed β — verified by BFS ground truth), and
the *measured* domination radius and set size stay within small constant
factors of greedy MIS across structurally diverse workloads.

Each cell recomputes the greedy-MIS baseline for its workload (cheap at
these sizes), keeping cells pure functions of their inputs so the sweep
engine can run them in any order on any worker.
"""

from __future__ import annotations

from benchmarks.bench_common import emit, run_experiment
from repro.analysis.records import RunRecord, record_from_result
from repro.analysis.sweep import SweepCell, SweepSpec
from repro.analysis.tables import format_table
from repro.core.greedy import greedy_mis
from repro.core.pipeline import solve_ruling_set
from repro.core.registry import DET_LUBY, DET_RULING, GREEDY_MIS, RAND_RULING
from repro.core.verify import check_ruling_set
from repro.graph import generators as gen
from repro.graph.graph import Graph

WORKLOADS = {
    "er-256": lambda: gen.gnp_random_graph(256, 16, 256, seed=4),
    "power-law-256": lambda: gen.chung_lu_power_law(256, seed=4),
    "tree-256": lambda: gen.random_tree(256, seed=4),
    "grid-16x16": lambda: gen.grid_graph(16, 16),
    "caterpillar": lambda: gen.caterpillar_graph(40, 5),
    "regular-24": lambda: gen.regular_graph(256, 24),
}

ALGORITHMS = [GREEDY_MIS, DET_RULING, RAND_RULING, DET_LUBY]


def quality_cell(graph: Graph, cell: SweepCell, extra) -> RunRecord:
    """Solve + measure the true radius and the size vs the greedy oracle."""
    result = solve_ruling_set(
        graph, algorithm=cell.algorithm, beta=cell.beta, regime=cell.regime,
        seed=cell.seed,
    )
    measured = check_ruling_set(graph, result.members)
    assert measured.independent_at == 2
    assert measured.measured_beta <= result.beta
    greedy_size = len(greedy_mis(graph))
    fields = dict(extra)
    fields.update(
        {
            "measured_beta": measured.measured_beta,
            "size_vs_greedy": (
                f"{result.size / greedy_size:.2f}" if greedy_size else "1.00"
            ),
        }
    )
    return record_from_result(cell.experiment, cell.workload, result, fields)


def test_e4_quality(benchmark):
    spec = SweepSpec(
        experiment="e4_quality",
        workloads=WORKLOADS,
        algorithms=ALGORITHMS,
        regime="sublinear",
        cell_runner=quality_cell,
    )
    records = run_experiment(spec)
    for record in records:
        assert record.get("measured_beta") <= record.get("beta_claimed")
    emit(
        "e4_quality",
        format_table(
            records,
            columns=[
                "workload", "algorithm", "n", "size",
                "size_vs_greedy", "beta_claimed", "measured_beta",
            ],
            title="E4: verified quality vs the greedy oracle",
        ),
    )

    graph = WORKLOADS["er-256"]()
    benchmark.pedantic(
        lambda: check_ruling_set(
            graph, solve_ruling_set(graph, algorithm=DET_RULING).members
        ),
        rounds=1,
        iterations=1,
    )
