"""E3 (Figure 2): derandomized Luby phases shrink the graph geometrically.

Claim exhibited: the seed committed by the method of conditional
expectations meets the estimator's family average every phase, so the
active edge count decays at a steady geometric rate — the derandomization
preserves randomized Luby's progress rather than merely terminating.

Workload: Erdős–Rényi n = 512 (expected degree 16); the series records
(phase, active vertices, active edges) until exhaustion.
"""

from __future__ import annotations

from benchmarks.bench_common import emit
from repro.analysis.tables import format_series
from repro.core.det_luby import det_luby_mis
from repro.core.verify import verify_ruling_set
from repro.graph import generators as gen
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator


def run_traced(graph):
    cfg = MPCConfig.sublinear(
        graph.num_vertices, graph.num_edges, max_degree=graph.max_degree()
    )
    sim = Simulator(cfg)
    dg = DistributedGraph.load(sim, graph)
    trace = []
    det_luby_mis(dg, in_set_key="mis", trace=trace)
    members = dg.collect_marked("mis")
    verify_ruling_set(graph, members, alpha=2, beta=1)
    return trace


def test_e3_residual_decay(benchmark):
    graph = gen.gnp_random_graph(512, 16, 512, seed=77)
    trace = run_traced(graph)
    series = {
        "active-vertices": [(phase, n) for phase, n, _ in trace],
        "active-edges": [(phase, m) for phase, _, m in trace],
    }
    text = format_series(
        series, "phase", "count",
        title="E3: residual graph per derandomized Luby phase "
        f"(ER n={graph.num_vertices}, m={graph.num_edges})",
    )

    # Measured decay factor per phase on the edge series.
    edges = [m for _, _, m in trace if m > 0]
    ratios = [b / a for a, b in zip(edges, edges[1:])]
    text += "\n\nper-phase edge ratios: " + "  ".join(
        f"{r:.3f}" for r in ratios
    )
    emit("e3_residual_decay", text)

    # Every phase with >= 8 edges must remove a nontrivial fraction; the
    # proven floor is n_act/8 endpoints, the empirical rate far stronger.
    for before, after in zip(edges, edges[1:]):
        if before >= 8:
            assert after < before

    benchmark.pedantic(
        lambda: run_traced(gen.gnp_random_graph(256, 16, 256, seed=7)),
        rounds=1,
        iterations=1,
    )
