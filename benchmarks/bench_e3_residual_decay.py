"""E3 (Figure 2): derandomized Luby phases shrink the graph geometrically.

Claim exhibited: the seed committed by the method of conditional
expectations meets the estimator's family average every phase, so the
active edge count decays at a steady geometric rate — the derandomization
preserves randomized Luby's progress rather than merely terminating.

Workload: Erdős–Rényi n = 512 (expected degree 16); the series records
(phase, active vertices, active edges) until exhaustion.  The per-phase
series is stored in the cell's record as JSON strings so the experiment
rides the checkpointing sweep engine like every grid sweep.
"""

from __future__ import annotations

import json

from benchmarks.bench_common import emit, run_experiment_cells
from repro.analysis.records import RunRecord
from repro.analysis.sweep import Cell
from repro.analysis.tables import format_series
from repro.core.det_luby import det_luby_mis
from repro.core.registry import DET_LUBY
from repro.core.verify import verify_ruling_set
from repro.graph import generators as gen
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator


def run_traced(graph):
    cfg = MPCConfig.sublinear(
        graph.num_vertices, graph.num_edges, max_degree=graph.max_degree()
    )
    with Simulator(cfg) as sim:
        dg = DistributedGraph.load(sim, graph)
        trace = []
        det_luby_mis(dg, in_set_key="mis", trace=trace)
        members = dg.collect_marked("mis")
    verify_ruling_set(graph, members, alpha=2, beta=1)
    return trace


def decay_cell(n: int, seed: int) -> RunRecord:
    """One pure cell: trace the phase-by-phase residual graph."""
    graph = gen.gnp_random_graph(n, 16, n, seed=seed)
    trace = run_traced(graph)
    return RunRecord(
        "e3_residual_decay", f"er-{n:04d}", DET_LUBY,
        {
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "phases": len(trace),
            "series_vertices": json.dumps(
                [[phase, n_act] for phase, n_act, _ in trace]
            ),
            "series_edges": json.dumps(
                [[phase, m_act] for phase, _, m_act in trace]
            ),
        },
    )


def test_e3_residual_decay(benchmark):
    records = run_experiment_cells(
        "e3_residual_decay",
        [
            Cell(
                key=f"er-0512/{DET_LUBY}", runner=decay_cell, args=(512, 77),
                workload="er-0512", algorithm=DET_LUBY,
            )
        ],
    )
    record = records[0]
    series = {
        "active-vertices": [
            tuple(point) for point in json.loads(record.get("series_vertices"))
        ],
        "active-edges": [
            tuple(point) for point in json.loads(record.get("series_edges"))
        ],
    }
    text = format_series(
        series, "phase", "count",
        title="E3: residual graph per derandomized Luby phase "
        f"(ER n={record.get('n')}, m={record.get('m')})",
    )

    # Measured decay factor per phase on the edge series.
    edges = [m for _, m in series["active-edges"] if m > 0]
    ratios = [b / a for a, b in zip(edges, edges[1:])]
    text += "\n\nper-phase edge ratios: " + "  ".join(
        f"{r:.3f}" for r in ratios
    )
    emit("e3_residual_decay", text)

    # Every phase with >= 8 edges must remove a nontrivial fraction; the
    # proven floor is n_act/8 endpoints, the empirical rate far stronger.
    for before, after in zip(edges, edges[1:]):
        if before >= 8:
            assert after < before

    benchmark.pedantic(
        lambda: run_traced(gen.gnp_random_graph(256, 16, 256, seed=7)),
        rounds=1,
        iterations=1,
    )
