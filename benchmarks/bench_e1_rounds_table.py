"""E1 (Table 1): MPC round complexity across algorithms and sizes.

Claim exhibited: the deterministic 2-ruling set needs far fewer rounds
than log-n-phase MIS as graphs grow, and the deterministic/randomized gap
is a bounded seed-search factor, not an asymptotic blowup.

Rows: n ∈ {128 … 2048} Erdős–Rényi (expected degree ≈ 16) and
power-law graphs; columns: rounds for det/rand × ruling/luby.
"""

from __future__ import annotations

from benchmarks.bench_common import algorithm_axis, emit, run_experiment
from repro.analysis.sweep import SweepSpec
from repro.analysis.tables import format_table
from repro.core.pipeline import solve_ruling_set
from repro.core.registry import DET_RULING, MPC_FAMILY, RULING_SET
from repro.graph import generators as gen

SIZES = [128, 256, 512, 1024, 2048]
# Every MPC ruling-set algorithm in the registry (det/rand × ruling/luby).
ALGORITHMS = algorithm_axis(family=MPC_FAMILY, problem=RULING_SET)


def workload_grid():
    grid = {}
    for n in SIZES:
        grid[f"er-{n:04d}"] = (
            lambda n=n: gen.gnp_random_graph(n, 16, n, seed=n)
        )
        grid[f"pl-{n:04d}"] = (
            lambda n=n: gen.chung_lu_power_law(n, seed=n)
        )
    return grid


def test_e1_rounds_table(benchmark):
    spec = SweepSpec(
        experiment="e1_rounds_table",
        workloads=workload_grid(),
        algorithms=ALGORITHMS,
        beta=2,
        regime="sublinear",
    )
    records = run_experiment(spec)
    table = format_table(
        records,
        columns=[
            "workload", "algorithm", "n", "m", "max_degree",
            "rounds", "size", "alg_seed_candidates",
        ],
        title="E1: MPC rounds by algorithm and input size "
        "(sublinear regime, beta=2 for ruling sets)",
    )
    emit("e1_rounds_table", table)

    # Sanity of the headline shape: deterministic ruling set rounds must
    # not explode with n the way a per-vertex-sequential algorithm would.
    det_ruling = {
        r.workload: r.get("rounds")
        for r in records
        if r.algorithm == DET_RULING and r.workload.startswith("er")
    }
    assert det_ruling[f"er-{SIZES[-1]:04d}"] <= 20 * max(
        1, det_ruling[f"er-{SIZES[0]:04d}"]
    )

    # Time one representative cell for regression tracking.
    graph = gen.gnp_random_graph(256, 16, 256, seed=256)
    benchmark.pedantic(
        lambda: solve_ruling_set(
            graph, algorithm=DET_RULING, regime="sublinear"
        ),
        rounds=1,
        iterations=1,
    )
