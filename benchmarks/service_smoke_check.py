"""CI check: batch the same request stream twice, assert the warm run.

Exercises the serve layer's cache contract end to end, through the real
CLI entry point rather than in-process calls:

1. write a JSONL request stream (ruling set + matching, duplicates
   included) and run ``repro-mpc batch`` against an empty disk cache;
2. run the identical command again with a fresh process-like engine
   state against the now-populated cache;
3. assert the second run executed **zero** solves (all unique requests
   were cache hits) and that its output records are byte-identical to
   the first run's once the ``_serve`` observability side channel is
   stripped — the serving analogue of the sweep engine's ``_meta``
   exclusion.

Exit code 0 on success, 1 on any violation.  Usage::

    PYTHONPATH=src python -m benchmarks.service_smoke_check
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path
from typing import List

from repro.cli import main as cli_main
from repro.core.registry import DET_LUBY, DET_MATCHING, DET_RULING


def requests() -> List[dict]:
    gnp = {"family": "gnp", "n": 96, "param": 8, "seed": 12}
    tree = {"family": "tree", "n": 80, "seed": 12}
    return [
        {"id": "r0", "graph": gnp, "algorithm": DET_RULING},
        {"id": "r1", "graph": gnp, "algorithm": DET_RULING},  # dedups
        {"id": "r2", "graph": gnp, "algorithm": DET_LUBY},
        {"id": "r3", "graph": tree, "algorithm": DET_RULING, "beta": 3},
        {"id": "r4", "graph": tree, "algorithm": DET_MATCHING},
    ]


def deterministic_records(path: Path) -> List[dict]:
    """Output records minus the non-deterministic ``_serve`` keys."""
    rows = []
    for line in path.read_text().splitlines():
        payload = json.loads(line)
        payload.pop("_serve", None)
        rows.append(payload)
    return rows


def check(message: str, ok: bool) -> bool:
    print(("  OK  " if ok else "  FAIL") + f" {message}")
    return ok


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        base = Path(tmp)
        request_path = base / "requests.jsonl"
        request_path.write_text(
            "\n".join(json.dumps(r) for r in requests()) + "\n"
        )
        outs = [base / "run1.jsonl", base / "run2.jsonl"]
        traces = [base / "trace1.jsonl", base / "trace2.jsonl"]
        for out, trace in zip(outs, traces):
            code = cli_main([
                "batch",
                "--requests", str(request_path),
                "--cache-dir", str(base / "cache"),
                "--out", str(out),
                "--trace-out", str(trace),
            ])
            if code != 0:
                print(f"batch run exited with {code}")
                return 1

        summaries = [
            json.loads(trace.read_text().splitlines()[-1])
            for trace in traces
        ]
        unique = len(requests()) - summaries[0]["dedup"]
        ok = True
        ok &= check(
            f"cold run executed every unique request "
            f"({summaries[0]['executed']}/{unique})",
            summaries[0]["executed"] == unique,
        )
        ok &= check(
            "warm run executed zero solves",
            summaries[1]["executed"] == 0,
        )
        ok &= check(
            f"warm run served every unique request from the cache "
            f"({summaries[1]['cache_hit']}/{unique})",
            summaries[1]["cache_hit"] == unique
            and summaries[1]["cache_miss"] == 0,
        )
        ok &= check(
            "warm records identical to cold records (modulo _serve)",
            deterministic_records(outs[0]) == deterministic_records(outs[1]),
        )
        ok &= check("no failure records", summaries[0]["failed"] == 0)
        if not ok:
            return 1
    print("service smoke check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
