"""CI benchmark-regression gate.

Runs a small fixed set of cells — the E1 smallest row, an E10-style
chunk ablation at n ≤ 512, the E12 service round-trip, the E13 kernel
head-to-head, the E14 streamed out-of-core solve, the E15 daemon
traffic replay, the E16 degree-class-family solve, and the E17 governed
dense-stress triplet — and compares
them against the checked-in baseline
``benchmarks/results/ci_baseline.json``:

* **model quantities** (rounds, words, sizes) must match the baseline
  *exactly* — the algorithms are deterministic, so any drift is a real
  behaviour change that needs a deliberate baseline update;
* **wall-clock** drift beyond the relative tolerance (default ±20%) is
  reported as a **visible warning**, not a failure: shared CI runners
  have noisy-neighbour wall-clock variance that would flake a hard
  gate, so timing regressions are surfaced for humans while only the
  deterministic model quantities can fail the job.  Wall-clock is
  measured as the best of ``--repeats`` runs to damp scheduler noise;
  ``--no-time`` skips the comparison entirely for machines unlike the
  one that wrote the baseline.

``--trace-out PATH`` additionally re-runs the first E1 cell with the
superstep trace enabled and writes its JSONL export, so CI can archive
a budget-headroom trace as a workflow artifact.

Usage::

    python -m benchmarks.ci_regression --check            # CI gate
    python -m benchmarks.ci_regression --write-baseline   # refresh

Updating the baseline is a reviewed action: rerun with
``--write-baseline`` and commit the new JSON alongside the change that
legitimately moved the numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
from functools import partial
from pathlib import Path
from typing import Dict, List, Tuple

from repro.analysis.records import RunRecord
from repro.analysis.sweep import Cell, failures, run_cells
from repro.core.det_luby import (
    conditional_expectation_chooser,
    det_luby_mis,
)
from repro.core.pipeline import solve_ruling_set
from repro.core.registry import DET_LUBY, DET_RULING
from repro.core.verify import verify_ruling_set
from repro.graph import generators as gen
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator

BASELINE_PATH = Path(__file__).resolve().parent / "results" / "ci_baseline.json"

Measurement = Tuple[Dict[str, int], float]  # (exact quantities, wall seconds)

# Timing-like row keys: compared with the relative drift tolerance (a
# warning, never a failure) instead of the exact-match rule, because
# they measure the machine, not the model.  Each maps to the aggregator
# that picks the *best* repeat — max for bigger-is-better quantities
# (speedup, throughput), min for latency — mirroring how the wall clock
# keeps its fastest repeat to damp scheduler noise.
TIMING_BEST = {
    "kernel_speedup_x": max,
    "serve_throughput_rps": max,
    "serve_p50_ms": min,
    "serve_p95_ms": min,
    "serve_p99_ms": min,
}
TIMING_KEYS = ("wall_time_s", *TIMING_BEST)


def run_e1_small(algorithm: str) -> Measurement:
    """E1's smallest row: one verified solve on ER n=256."""
    graph = gen.gnp_random_graph(256, 12, 256, seed=256)
    result = solve_ruling_set(
        graph, algorithm=algorithm, beta=2, regime="sublinear"
    )
    exact = {
        "rounds": result.rounds,
        "total_words": result.metrics["total_words"],
        "total_messages": result.metrics["total_messages"],
        "size": result.size,
    }
    return exact, result.wall_time_s


def run_e10_chunk(chunk_bits: int) -> Measurement:
    """E10's chunk ablation at n=256: det-luby with a fixed chunk width."""
    graph = gen.gnp_random_graph(256, 12, 256, seed=10)
    cfg = MPCConfig.sublinear(
        graph.num_vertices, graph.num_edges, max_degree=graph.max_degree()
    )
    with Simulator(cfg) as sim:
        dg = DistributedGraph.load(sim, graph)
        det_luby_mis(
            dg,
            in_set_key="mis",
            chooser=conditional_expectation_chooser(chunk_bits=chunk_bits),
        )
        members = dg.collect_marked("mis")
    verify_ruling_set(graph, members, alpha=2, beta=1)
    exact = {
        "rounds": sim.metrics.rounds,
        "total_words": sim.metrics.total_words,
        "seed_search_rounds": sim.metrics.phase_rounds().get(
            "luby-seed-search", 0
        ),
        "size": len(members),
    }
    return exact, sim.metrics.wall_time_s


def run_e12_service() -> Measurement:
    """E12's service round-trip: a cold batch then a warm batch.

    The exact quantities gate the serve layer's contract — unique
    requests executed once cold, zero executions warm, records
    identical across the two runs — while the reported wall-clock is
    the cold batch (the warm one is a cache read).
    """
    import tempfile
    import time

    from repro.serve import BatchEngine, ResultCache

    gnp = {"family": "gnp", "n": 128, "param": 8, "seed": 12}
    requests = [
        {"id": "r0", "graph": gnp, "algorithm": DET_RULING},
        {"id": "r1", "graph": gnp, "algorithm": DET_RULING},  # dedups
        {"id": "r2", "graph": gnp, "algorithm": DET_LUBY},
    ]

    def strip(records):
        return [
            {k: v for k, v in record.items() if k != "_serve"}
            for record in records
        ]

    with tempfile.TemporaryDirectory(prefix="ci-e12-") as tmp:
        cold_engine = BatchEngine(ResultCache(disk_dir=tmp))
        start = time.perf_counter()
        cold = cold_engine.run(requests)
        wall = time.perf_counter() - start
        warm_engine = BatchEngine(ResultCache(disk_dir=tmp))
        warm = warm_engine.run(requests)
    exact = {
        "cold_executed": cold_engine.trace.counters["executed"],
        "warm_executed": warm_engine.trace.counters["executed"],
        "warm_hits": warm_engine.trace.counters["cache_hit"],
        "dedup": cold_engine.trace.counters["dedup"],
        "size_checksum": sum(
            len(record.get("members", ())) for record in cold
        ),
        "records_match": int(strip(cold) == strip(warm)),
    }
    return exact, wall


def run_e14_shard() -> Measurement:
    """E14's smallest streamed cell: out-of-core solve on a circulant.

    The workload is written straight to disk and solved through the full
    shard pipeline (two-pass ingest + ShardBackend), so this cell gates
    the out-of-core path end to end.  Everything here is exact: the model
    quantities by the shard-parity contract, the ingest checksum because
    the workload generator is deterministic, and the residency high-water
    mark because exchange/spill scheduling is itself deterministic.
    """
    import tempfile

    from benchmarks.bench_e14_shard_scale import write_streamed_workload
    from repro.core.pipeline import solve_ruling_set_stream

    with tempfile.TemporaryDirectory(prefix="ci-e14-") as tmp:
        path = Path(tmp) / "circulant.txt"
        m = write_streamed_workload(path, 256)
        result = solve_ruling_set_stream(path, algorithm=DET_RULING)
    exact = {
        "rounds": result.rounds,
        "total_words": result.metrics["total_words"],
        "size": result.size,
        "ingest_edges": m,
        "ingest_checksum": result.metrics["ingest_checksum"],
        "resident_words": result.metrics["shard_max_resident_words"],
    }
    return exact, result.wall_time_s


def run_e13_kernel() -> Measurement:
    """E13's kernel head-to-head on the E10 hot cell's workload.

    The seed, selection stats, and term counts are exact (the
    bit-identity contract makes them kernel- and run-independent); the
    python/numpy speedup rides along as a timing quantity so a kernel
    performance regression surfaces as a visible drift warning.
    """
    from benchmarks.bench_e13_kernel import e10_workload, measure_speedup

    return measure_speedup(e10_workload(), repeats=2)


def run_e15_serve() -> Measurement:
    """E15's sequential daemon replay, batch-compared.

    The counts, member checksum, and the served-vs-batch bit-identity
    flag are exact (the daemon's determinism contract); throughput and
    the latency percentiles ride along as ``serve_*`` timing quantities
    so a serving-path performance regression surfaces as a visible
    drift warning, like the E13 kernel speedup.
    """
    from benchmarks.bench_e15_serve import ci_cell

    return ci_cell()


def run_e16_families() -> Measurement:
    """E16's gate cell: the degree-class family on the ER workload.

    Exact members (size + order-weighted checksum), rounds, and words —
    the new family is deterministic end to end, so any drift here is a
    real behaviour change in the family or the phase-program machinery
    underneath it.
    """
    from benchmarks.bench_e16_families import ci_cell

    return ci_cell()


def run_e17_dense_stress() -> Measurement:
    """E17's gate cell: the governor's fault-rescue-parity triplet.

    Exact: the ungoverned fault, the governed members (size + checksum)
    against the enforcement-lifted ungoverned reference, and full
    bit-identity (members, rounds, words) on the feasible leg — any
    drift is a real governor-contract violation (DESIGN.md section 15).
    """
    from benchmarks.bench_e17_dense_stress import ci_cell

    return ci_cell()


CELLS = {
    "e1_small_det_ruling": partial(run_e1_small, DET_RULING),
    "e1_small_det_luby": partial(run_e1_small, DET_LUBY),
    "e10_chunk1_n256": partial(run_e10_chunk, 1),
    "e10_chunk4_n256": partial(run_e10_chunk, 4),
    "e12_service_roundtrip": run_e12_service,
    "e13_kernel_speedup": run_e13_kernel,
    "e14_shard_scale": run_e14_shard,
    "e15_serve_replay": run_e15_serve,
    "e16_families": run_e16_families,
    "e17_dense_stress": run_e17_dense_stress,
}


def measure_cell(name: str) -> RunRecord:
    """One gate cell as a sweep-engine record (simulator wall in meta)."""
    exact, seconds = CELLS[name]()
    record = RunRecord("ci_regression", name, "gate", dict(exact))
    record.meta["sim_wall_s"] = seconds
    return record


def measure(repeats: int, jobs: int = 1) -> Dict[str, Dict[str, float]]:
    """Run every cell through the sweep engine.

    Each named cell runs ``repeats`` times (all repeats are independent
    engine cells, so ``--jobs`` parallelises across them); the exact
    model quantities must agree across repeats and the best simulator
    wall-clock is kept.
    """
    cells = [
        Cell(
            key=f"{name}#r{rep}",
            runner=measure_cell,
            args=(name,),
            workload=name,
            algorithm="gate",
        )
        for name in CELLS
        for rep in range(max(1, repeats))
    ]
    records = run_cells("ci_regression", cells, jobs=jobs)
    failed = failures(records)
    if failed:
        for record in failed:
            print(
                f"  CELL FAILED {record.workload}: "
                f"{record.get('error_type')}: {record.get('error')}"
            )
        raise SystemExit(1)
    results: Dict[str, Dict[str, float]] = {}
    for name in CELLS:
        repeats_for_name = [r for r in records if r.workload == name]

        def exact_of(record: RunRecord) -> Dict[str, float]:
            return {
                k: v for k, v in record.fields.items()
                if k not in TIMING_KEYS
            }

        exact_reference = exact_of(repeats_for_name[0])
        for record in repeats_for_name[1:]:
            if exact_of(record) != exact_reference:
                raise AssertionError(
                    f"cell {name} is not deterministic across repeats: "
                    f"{exact_of(record)} != {exact_reference}"
                )
        best_time = min(
            r.meta["sim_wall_s"] for r in repeats_for_name
        )
        row: Dict[str, float] = dict(exact_reference)
        # Keep the best repeat for every timing quantity, like the wall
        # clock: max for speedup/throughput, min for latency.
        for key, best in TIMING_BEST.items():
            values = [
                r.fields[key] for r in repeats_for_name
                if key in r.fields
            ]
            if values:
                row[key] = best(values)
        row["wall_time_s"] = round(best_time, 4)
        results[name] = row
        print(f"  measured {name}: {row}")
    return results


def check(
    measured: Dict[str, Dict[str, float]],
    baseline: Dict[str, Dict[str, float]],
    time_tolerance: float,
    compare_time: bool,
) -> Tuple[List[str], List[str]]:
    """Compare against the baseline.

    Returns ``(failures, warnings)``: exact model-quantity mismatches
    are failures; wall-clock drift beyond the tolerance is a warning —
    visible in the job log but non-fatal, because shared CI runners
    make hard wall-clock gates flaky.
    """
    failures: List[str] = []
    warnings: List[str] = []
    for name, base_row in baseline.items():
        if name not in measured:
            failures.append(f"{name}: cell missing from this run")
            continue
        row = measured[name]
        for key, base_value in base_row.items():
            if key in TIMING_KEYS:
                continue
            if row.get(key) != base_value:
                failures.append(
                    f"{name}.{key}: measured {row.get(key)}, "
                    f"baseline {base_value} (exact match required)"
                )
        if not compare_time:
            continue
        for key in TIMING_KEYS:
            if not base_row.get(key) or key not in row:
                continue
            base_time = float(base_row[key])
            this_time = float(row[key])
            drift = (this_time - base_time) / base_time
            if abs(drift) > time_tolerance:
                warnings.append(
                    f"{name}.{key}: measured {this_time:.4f} vs "
                    f"baseline {base_time:.4f} ({drift:+.0%}, tolerance "
                    f"±{time_tolerance:.0%})"
                )
    for name in measured:
        if name not in baseline:
            failures.append(
                f"{name}: new cell not present in baseline "
                "(rerun --write-baseline)"
            )
    return failures, warnings


def write_trace(path: Path) -> None:
    """Re-run the first E1 cell with tracing on; write the JSONL export.

    The traced run's model quantities are identical to the untraced
    cell (tracing is a pure observer — pinned by test), so this adds an
    inspectable budget-headroom artifact without perturbing the gate.
    """
    graph = gen.gnp_random_graph(256, 12, 256, seed=256)
    result = solve_ruling_set(
        graph, algorithm=DET_RULING, beta=2, regime="sublinear",
        trace=True,
    )
    result.trace.write_jsonl(path)
    print(
        f"trace written to {path} ({len(result.trace.events)} events, "
        f"{len(result.trace.warnings)} budget warnings, min headroom "
        f"{result.trace.min_headroom_words()} words)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark regression gate for CI."
    )
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE_PATH,
        help="baseline JSON path",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="measure and overwrite the baseline instead of checking",
    )
    parser.add_argument(
        "--time-tolerance", type=float, default=0.20,
        help="relative wall-clock tolerance before a drift warning "
        "(default 0.20 = ±20%%; drift warns, never fails)",
    )
    parser.add_argument(
        "--no-time", action="store_true",
        help="skip the wall-clock comparison (rounds/words stay exact)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per cell; best time is kept (default 3)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the measurement cells (wall-clock "
        "numbers from parallel runs are noisier; model quantities are "
        "identical by the sweep engine's determinism contract)",
    )
    parser.add_argument(
        "--trace-out", type=Path, default=None,
        help="also run one traced cell and write its JSONL trace here "
        "(uploaded as a CI artifact for budget-headroom inspection)",
    )
    args = parser.parse_args(argv)

    print(f"running {len(CELLS)} regression cells ...")
    measured = measure(args.repeats, jobs=args.jobs)

    if args.write_baseline:
        payload = {
            "note": (
                "CI benchmark baseline: exact model quantities + wall "
                "clock. Refresh with: python -m benchmarks.ci_regression "
                "--write-baseline"
            ),
            "repeats": args.repeats,
            "cells": measured,
        }
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline written to {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"error: no baseline at {args.baseline}; run --write-baseline")
        return 1
    baseline = json.loads(args.baseline.read_text())["cells"]
    failures, warnings = check(
        measured,
        baseline,
        time_tolerance=args.time_tolerance,
        compare_time=not args.no_time,
    )
    if args.trace_out is not None:
        write_trace(args.trace_out)
    if warnings:
        print("\nBENCHMARK WARNINGS (wall-clock drift; non-fatal):")
        for warning in warnings:
            print(f"  ~ {warning}")
    if failures:
        print("\nBENCHMARK REGRESSION:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nall cells match the baseline on exact model quantities"
          + ("" if warnings else
             f" (wall clock within ±{args.time_tolerance:.0%})"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
