"""E6 (Table 3): per-machine memory vs rounds across MPC regimes.

Claim exhibited: shrinking per-machine memory S (larger machine counts,
smaller gather thresholds) costs rounds — the gather endgame triggers
later, reductions get deeper trees, and seed searches take more chunks.
This is the regime lever the MPC literature's α parameter controls.

The regime axis is a first-class sweep dimension (``SweepSpec.regimes``
carries ``(label, regime, alpha_mem)`` triples), so the 8 cells ride the
checkpointing engine.
"""

from __future__ import annotations

from benchmarks.bench_common import emit, run_experiment
from repro.analysis.sweep import SweepSpec
from repro.analysis.tables import format_table
from repro.core.pipeline import solve_ruling_set
from repro.core.registry import DET_LUBY, DET_RULING
from repro.graph import generators as gen

REGIMES = [
    ("alpha-1/2", "sublinear", (1, 2)),
    ("alpha-2/3", "sublinear", (2, 3)),
    ("alpha-3/4", "sublinear", (3, 4)),
    ("near-linear", "near-linear", (1, 1)),
]

N = 1024


def test_e6_memory_regimes(benchmark):
    # Sparse and large so the α axis actually moves S: with a dense or
    # small graph the Ω(Δ) and k<=S/4 floors flatten the sweep.
    spec = SweepSpec(
        experiment="e6_memory_regimes",
        workloads={f"er-{N}": lambda: gen.gnp_random_graph(N, 8, N, seed=66)},
        algorithms=[DET_RULING, DET_LUBY],
        regimes=REGIMES,
    )
    records = run_experiment(spec)
    emit(
        "e6_memory_regimes",
        format_table(
            records,
            columns=[
                "regime", "algorithm", "memory_words", "num_machines",
                "rounds", "peak_memory_words", "alg_gather_finishes",
            ],
            title=f"E6: regime sweep (ER n={records[0].get('n')}, "
            f"m={records[0].get('m')})",
        ),
    )

    # Shape: more memory per machine must not increase det-ruling rounds
    # beyond noise — compare the extremes.
    det = {
        r.get("regime"): r.get("rounds")
        for r in records
        if r.algorithm == DET_RULING
    }
    assert det["near-linear"] <= 2 * det["alpha-1/2"]

    graph = gen.gnp_random_graph(N, 8, N, seed=66)
    benchmark.pedantic(
        lambda: solve_ruling_set(
            graph, algorithm=DET_RULING, regime="sublinear",
            alpha_mem=(1, 2),
        ),
        rounds=1,
        iterations=1,
    )
