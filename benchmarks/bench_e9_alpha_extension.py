"""E9 (extension): general (α, β)-ruling sets via graph exponentiation.

Extension beyond the brief announcement's α = 2 headline (DESIGN.md §6):
independence radius α is bought by running the same engine on
``G^{α-1}``.  The solver session builds that power graph exactly once —
sizing, the budget-charged install, and the ``power_edges`` metric all
share it, so this table reads the densification cost straight off the
result instead of recomputing ``G^{α-1}`` sequentially.  The table
verifies the guarantee chain — claimed domination ``β(α-1)``, measured
radius typically smaller — and prices the extension in rounds and
memory (the real cost: power graphs densify).

One sweep-engine cell per α (the independence radius is not a standard
grid axis, so the cells are built explicitly).
"""

from __future__ import annotations

from functools import partial

from benchmarks.bench_common import emit, run_experiment_cells
from repro.analysis.records import RunRecord, record_from_result
from repro.analysis.sweep import Cell
from repro.analysis.tables import format_table
from repro.core.pipeline import solve_ruling_set
from repro.core.registry import DET_RULING
from repro.core.verify import check_ruling_set
from repro.graph import generators as gen

ALPHAS = [2, 3, 4]
N = 300


def alpha_cell(alpha: int) -> RunRecord:
    """One pure cell: the (α, 2)-ruling set on the fixed tree workload."""
    graph = gen.random_tree(N, seed=9)
    result = solve_ruling_set(
        graph, algorithm=DET_RULING, alpha=alpha, beta=2,
        regime="near-linear",
    )
    measured = check_ruling_set(graph, result.members, alpha=alpha)
    assert measured.independent_at == alpha
    assert measured.measured_beta <= result.beta
    return record_from_result(
        "e9_alpha_extension", f"alpha-{alpha}", result,
        {
            "alpha": alpha,
            "n": graph.num_vertices,
            # G^1 = G, so α = 2 runs carry no power_edges metric.
            "power_edges": result.metrics.get(
                "power_edges", graph.num_edges
            ),
            "measured_beta": measured.measured_beta,
            "independent_at": measured.independent_at,
        },
    )


def test_e9_alpha_extension(benchmark):
    records = run_experiment_cells(
        "e9_alpha_extension",
        [
            Cell(
                key=f"alpha-{alpha}/{DET_RULING}",
                runner=partial(alpha_cell, alpha),
                workload=f"alpha-{alpha}", algorithm=DET_RULING,
            )
            for alpha in ALPHAS
        ],
    )
    emit(
        "e9_alpha_extension",
        format_table(
            records,
            columns=[
                "workload", "alpha", "size", "beta_claimed",
                "measured_beta", "rounds", "power_edges",
                "peak_memory_words", "memory_words",
            ],
            title=f"E9: alpha extension on a random tree (n={N})",
        ),
    )

    graph = gen.random_tree(N, seed=9)
    benchmark.pedantic(
        lambda: solve_ruling_set(
            graph, algorithm=DET_RULING, alpha=3, beta=2,
            regime="near-linear",
        ),
        rounds=1,
        iterations=1,
    )
