"""E9 (extension): general (α, β)-ruling sets via graph exponentiation.

Extension beyond the brief announcement's α = 2 headline (DESIGN.md §6):
independence radius α is bought by running the same engine on
``G^{α-1}``, materialised with O(log α) doubling rounds.  The table
verifies the guarantee chain — claimed domination ``β(α-1)``, measured
radius typically smaller — and prices the exponentiation in rounds and
memory (the real cost: power graphs densify).

One sweep-engine cell per α (the independence radius is not a standard
grid axis, so the cells are built explicitly).
"""

from __future__ import annotations

from functools import partial

from benchmarks.bench_common import emit, run_experiment_cells
from repro.analysis.records import RunRecord, record_from_result
from repro.analysis.sweep import Cell
from repro.analysis.tables import format_table
from repro.core.pipeline import solve_ruling_set
from repro.core.verify import check_ruling_set
from repro.graph import generators as gen
from repro.graph.ops import power_graph

ALPHAS = [2, 3, 4]
N = 300


def alpha_cell(alpha: int) -> RunRecord:
    """One pure cell: the (α, 2)-ruling set on the fixed tree workload."""
    graph = gen.random_tree(N, seed=9)
    result = solve_ruling_set(
        graph, algorithm="det-ruling", alpha=alpha, beta=2,
        regime="near-linear",
    )
    measured = check_ruling_set(graph, result.members, alpha=alpha)
    assert measured.independent_at == alpha
    assert measured.measured_beta <= result.beta
    power = power_graph(graph, alpha - 1)
    return record_from_result(
        "e9_alpha_extension", f"alpha-{alpha}", result,
        {
            "alpha": alpha,
            "n": graph.num_vertices,
            "power_edges": power.num_edges,
            "measured_beta": measured.measured_beta,
            "independent_at": measured.independent_at,
        },
    )


def test_e9_alpha_extension(benchmark):
    records = run_experiment_cells(
        "e9_alpha_extension",
        [
            Cell(
                key=f"alpha-{alpha}/det-ruling",
                runner=partial(alpha_cell, alpha),
                workload=f"alpha-{alpha}", algorithm="det-ruling",
            )
            for alpha in ALPHAS
        ],
    )
    emit(
        "e9_alpha_extension",
        format_table(
            records,
            columns=[
                "workload", "alpha", "size", "beta_claimed",
                "measured_beta", "rounds", "power_edges",
                "peak_memory_words", "memory_words",
            ],
            title=f"E9: alpha extension on a random tree (n={N})",
        ),
    )

    graph = gen.random_tree(N, seed=9)
    benchmark.pedantic(
        lambda: solve_ruling_set(
            graph, algorithm="det-ruling", alpha=3, beta=2,
            regime="near-linear",
        ),
        rounds=1,
        iterations=1,
    )
