"""E9 (extension): general (α, β)-ruling sets via graph exponentiation.

Extension beyond the brief announcement's α = 2 headline (DESIGN.md §6):
independence radius α is bought by running the same engine on
``G^{α-1}``, materialised with O(log α) doubling rounds.  The table
verifies the guarantee chain — claimed domination ``β(α-1)``, measured
radius typically smaller — and prices the exponentiation in rounds and
memory (the real cost: power graphs densify).
"""

from __future__ import annotations

from benchmarks.bench_common import emit, save_records
from repro.analysis.records import record_from_result
from repro.analysis.tables import format_table
from repro.core.pipeline import solve_ruling_set
from repro.core.verify import check_ruling_set
from repro.graph import generators as gen
from repro.graph.ops import power_graph

ALPHAS = [2, 3, 4]


def test_e9_alpha_extension(benchmark):
    graph = gen.random_tree(300, seed=9)
    records = []
    for alpha in ALPHAS:
        result = solve_ruling_set(
            graph, algorithm="det-ruling", alpha=alpha, beta=2,
            regime="near-linear",
        )
        measured = check_ruling_set(graph, result.members, alpha=alpha)
        power = power_graph(graph, alpha - 1)
        records.append(
            record_from_result(
                "e9_alpha_extension", f"alpha-{alpha}", result,
                {
                    "alpha": alpha,
                    "n": graph.num_vertices,
                    "power_edges": power.num_edges,
                    "measured_beta": measured.measured_beta,
                    "independent_at": measured.independent_at,
                },
            )
        )
        assert measured.independent_at == alpha
        assert measured.measured_beta <= result.beta
    save_records("e9_alpha_extension", records)
    emit(
        "e9_alpha_extension",
        format_table(
            records,
            columns=[
                "workload", "alpha", "size", "beta_claimed",
                "measured_beta", "rounds", "power_edges",
                "peak_memory_words", "memory_words",
            ],
            title=f"E9: alpha extension on a random tree "
            f"(n={graph.num_vertices}, m={graph.num_edges})",
        ),
    )

    benchmark.pedantic(
        lambda: solve_ruling_set(
            graph, algorithm="det-ruling", alpha=3, beta=2,
            regime="near-linear",
        ),
        rounds=1,
        iterations=1,
    )
