"""E12: serve-layer economics — cold vs warm latency and dedup ratio.

The serve layer's pitch is that determinism makes results *reusable*:
a content-addressed cache turns the second request for any solve into a
dictionary lookup, and in-batch dedup collapses identical in-flight
requests before anything runs.  This experiment quantifies both on a
request stream with deliberate redundancy (every solve requested twice,
two graphs shared across algorithms):

* **cold** — empty cache: every unique solve executes once, duplicates
  dedup onto it;
* **warm** — same stream, same disk cache, fresh engine/process-state:
  zero executions, everything served from the store.

The quantities of record are the *counts* (executed / hits / dedup — all
deterministic); the wall-clock speedup is reported as a convenience and
measures the simulator.  The warm run is asserted, not just reported:
``executed == 0`` and record-for-record identity with the cold run
(modulo the ``_serve`` observability side channel).
"""

from __future__ import annotations

import shutil
import time

from benchmarks.bench_common import RESULTS_DIR, emit
from repro.analysis.tables import format_table
from repro.analysis.records import RunRecord
from repro.core import registry
from repro.serve import BatchEngine, ResultCache

CACHE_DIR = RESULTS_DIR / "e12_cache"

#: Two graph sources shared by several algorithms, every request issued
#: twice — the redundancy profile a result cache is supposed to absorb.
GRAPHS = {
    "er-128": {"family": "gnp", "n": 128, "param": 8, "seed": 12},
    "tree-192": {"family": "tree", "n": 192, "seed": 12},
}
ALGORITHMS = (registry.DET_RULING, registry.DET_LUBY, registry.DET_MATCHING)


def request_stream():
    requests = []
    for graph_name, source in sorted(GRAPHS.items()):
        for algorithm in ALGORITHMS:
            for copy in range(2):
                requests.append({
                    "id": f"{graph_name}/{algorithm}#{copy}",
                    "graph": dict(source),
                    "algorithm": algorithm,
                })
    return requests


def _strip_serve(records):
    return [
        {key: value for key, value in record.items() if key != "_serve"}
        for record in records
    ]


def serve_once(label: str):
    """One batch over a fresh engine against the shared disk cache."""
    engine = BatchEngine(ResultCache(disk_dir=CACHE_DIR))
    requests = request_stream()
    start = time.perf_counter()
    records = engine.run(requests)
    wall = time.perf_counter() - start
    counters = engine.trace.counters
    row = RunRecord(
        "e12_service", label, "serve",
        {
            "requests": len(requests),
            "unique": len(requests) - counters["dedup"],
            "executed": counters["executed"],
            "hits": counters["cache_hit"],
            "dedup": counters["dedup"],
            "graph_loads": counters["graph_load"],
            "failed": counters["failed"],
        },
    )
    row.meta["wall_s"] = round(wall, 4)
    return records, row


def run_service_experiment():
    if CACHE_DIR.exists():
        shutil.rmtree(CACHE_DIR)  # the cold phase must really be cold
    cold_records, cold = serve_once("cold")
    warm_records, warm = serve_once("warm")

    # The serving contracts, asserted on every bench run:
    assert cold.get("failed") == 0 and warm.get("failed") == 0
    assert cold.get("dedup") == cold.get("requests") // 2
    assert warm.get("executed") == 0, "warm run must not solve anything"
    assert warm.get("hits") == warm.get("unique")
    assert _strip_serve(cold_records) == _strip_serve(warm_records), (
        "cached records must be bit-identical to executed ones"
    )
    for row in (cold, warm):
        row.fields["wall_s"] = row.meta["wall_s"]
    speedup = cold.meta["wall_s"] / max(warm.meta["wall_s"], 1e-9)
    return [cold, warm], speedup


def test_e12_service(benchmark):
    records, speedup = run_service_experiment()
    table = format_table(
        records,
        columns=[
            "workload", "requests", "unique", "executed", "hits",
            "dedup", "graph_loads", "wall_s",
        ],
        title="E12: serve layer — cold vs warm batch over the "
        "content-addressed cache",
    )
    emit(
        "e12_service",
        table + f"\nwarm speedup: {speedup:.0f}x "
        "(simulator wall clock; counts are the quantity of record)",
    )

    # Time the steady state the service actually runs in: warm batches.
    benchmark.pedantic(
        lambda: serve_once("bench"), rounds=1, iterations=1
    )


if __name__ == "__main__":
    run_service_experiment()
