"""Crossbar switch scheduling via deterministic maximal matching.

A network switch forwards packets by repeatedly picking a *matching*
between input and output ports: no port may appear twice in one cell
slot, and a maximal matching wastes no opportunistic slot.  Hardware
schedulers (iSLIP and friends) want determinism — no retry storms, no
unlucky slots — which is exactly what the derandomized Luby engine
provides when run on the line graph of the demand graph.

This example builds a bipartite demand graph (inputs × outputs with
queued traffic), computes a deterministic maximal matching in simulated
MPC, and drains the demand over successive slots.

Run with::

    python examples/switch_scheduling.py [ports]
"""

from __future__ import annotations

import sys

from repro import GraphBuilder
from repro.core.det_matching import solve_matching, verify_maximal_matching
from repro.util.rng import SplitMix64


def demand_graph(ports: int, flows: int, seed: int = 4):
    """Bipartite demand: inputs 0..ports-1, outputs ports..2*ports-1."""
    builder = GraphBuilder(2 * ports)
    rng = SplitMix64(seed=seed)
    while builder.num_edges < flows:
        src = rng.next_below(ports)
        dst = ports + rng.next_below(ports)
        builder.add_edge(src, dst)
    return builder.build()


def main(ports: int = 24) -> None:
    graph = demand_graph(ports, flows=3 * ports)
    print(
        f"demand graph: {ports} inputs x {ports} outputs, "
        f"{graph.num_edges} queued flows"
    )

    remaining = set(graph.edges())
    slot = 0
    total_rounds = 0
    while remaining:
        builder = GraphBuilder(2 * ports)
        builder.add_edges(remaining)
        current = builder.build()
        matching, metrics = solve_matching(current)
        if not matching:
            break
        verify_maximal_matching(current, matching)
        total_rounds += metrics["rounds"]
        remaining -= set(matching)
        slot += 1
        print(
            f"  slot {slot}: forwarded {len(matching)} flows "
            f"({metrics['rounds']} MPC rounds, "
            f"{len(remaining)} flows left)"
        )

    print(
        f"\ndrained {graph.num_edges} flows in {slot} slots "
        f"({total_rounds} MPC rounds total)"
    )
    print(
        "determinism matters here: every slot's schedule is a pure "
        "function of the\nqueue state — two line cards computing it "
        "independently always agree."
    )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:2]]
    main(*args)
