"""Landmark selection on a router network: the β-vs-rounds trade-off.

Ruling sets are a standard tool for picking *landmarks* (backbone nodes,
cache sites, monitoring points) in large networks: independence keeps
landmarks spread out, domination bounds every node's distance to one.
Raising β buys extra sparsification levels inside the MPC algorithm,
which shrinks both the subproblem that must be solved exactly and the
round bill — at the price of longer detours to the nearest landmark.

The workload is a router-level topology with bounded port counts (an
Erdős–Rényi graph with expected degree 24 — port limits keep real
router graphs far from power-law hubs, and a bounded Δ is exactly what
lets the MPC regime use genuinely small machines).

Run with::

    python examples/network_backbone.py [n]
"""

from __future__ import annotations

import sys

from repro import generators, solve_ruling_set
from repro.core.verify import check_ruling_set


def main(n: int = 512) -> None:
    graph = generators.gnp_random_graph(n, 24, n, seed=11)
    print(
        f"router network: {graph}, max degree {graph.max_degree()} "
        "(bounded port counts)"
    )
    print()
    header = (
        f"{'beta':>4}  {'landmarks':>9}  {'measured radius':>15}  "
        f"{'MPC rounds':>10}  {'sparsify levels':>15}"
    )
    print(header)
    print("-" * len(header))
    for beta in (2, 3, 4):
        result = solve_ruling_set(
            graph, algorithm="det-ruling", beta=beta, regime="sublinear"
        )
        measured = check_ruling_set(graph, result.members)
        print(
            f"{beta:>4}  {result.size:>9}  "
            f"{measured.measured_beta:>15}  {result.rounds:>10}  "
            f"{result.metrics['alg_levels_built']:>15}"
        )
    print()
    print(
        "Reading: each extra unit of beta adds a sparsification level; "
        "the deepest\nsubgraph shrinks geometrically, so it gathers onto "
        "one machine sooner and\nthe round bill drops — the worst-case "
        "detour to a landmark grows instead."
    )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:2]]
    main(*args)
