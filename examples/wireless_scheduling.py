"""Cluster-head election for wireless scheduling via 2-ruling sets.

The classic application the ruling-set literature motivates: in a radio
network, a ``(2, 2)``-ruling set is a set of *cluster heads* that never
interfere with each other (pairwise non-adjacent, so they can transmit
simultaneously) while every station is within two hops of a head (so
every station can be scheduled through a nearby coordinator).

This example models a sensor field as a grid-with-shortcuts topology
(a 2-D grid plus random long links — a standard proxy for unit-disk
deployments without geometric machinery), elects heads with the
deterministic MPC algorithm, and reports per-head cluster loads.

Run with::

    python examples/wireless_scheduling.py [rows] [cols]
"""

from __future__ import annotations

import sys
from collections import Counter

from repro import GraphBuilder, generators, solve_ruling_set
from repro.graph.properties import multi_source_distances
from repro.util.rng import SplitMix64


def sensor_field(rows: int, cols: int, shortcuts: int, seed: int = 3):
    """Grid deployment plus a few long radio links."""
    grid = generators.grid_graph(rows, cols)
    builder = GraphBuilder(grid.num_vertices)
    builder.add_edges(grid.edges())
    rng = SplitMix64(seed=seed)
    n = grid.num_vertices
    for _ in range(shortcuts):
        builder.add_edge(rng.next_below(n), rng.next_below(n))
    return builder.build()


def main(rows: int = 18, cols: int = 18) -> None:
    field = sensor_field(rows, cols, shortcuts=rows * cols // 10)
    print(f"sensor field: {field} ({rows}x{cols} grid + shortcuts)")

    result = solve_ruling_set(
        field, algorithm="det-ruling", beta=2, regime="sublinear"
    )
    heads = result.members
    print(f"elected {len(heads)} interference-free cluster heads "
          f"in {result.rounds} MPC rounds")

    # Assign every station to its nearest head and report cluster loads.
    dist = multi_source_distances(field, heads)
    assignment = {}
    for head in heads:
        assignment[head] = head
    frontier = list(heads)
    while frontier:
        nxt = []
        for v in frontier:
            for u in field.neighbors(v):
                if u not in assignment and dist[u] == dist[v] + 1:
                    assignment[u] = assignment[v]
                    nxt.append(u)
        frontier = nxt
    loads = Counter(assignment.values())

    print(f"max hops to a head: {max(dist)}")
    sizes = sorted(loads.values(), reverse=True)
    print(f"cluster sizes: max={sizes[0]}, min={sizes[-1]}, "
          f"mean={sum(sizes) / len(sizes):.1f}")
    print("largest clusters:", sizes[:8])

    # A schedule sanity check: heads must be pairwise non-adjacent, so a
    # single time slot serves all head transmissions.
    for head in heads:
        assert not any(other in heads for other in field.neighbors(head))
    print("verified: all heads can transmit in one shared slot")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
