"""Watching the method of conditional expectations pick a seed.

The deterministic algorithms' engine room: this example builds the Luby
phase-1 estimator for a small graph, walks the two-stage seed selection
(multiplier scan, then bit-by-bit offset fixing) with full commentary,
and contrasts the guaranteed seed against the spread of random seeds.

Run with::

    python examples/derandomization_demo.py [n]
"""

from __future__ import annotations

import sys

from repro import generators
from repro.core.det_luby import modulus_for
from repro.derand.conditional import choose_seed, scan_order_a
from repro.derand.estimator import ThresholdEstimator
from repro.derand.family import Seed
from repro.util.rng import SplitMix64


def build_luby_estimator(graph):
    """Phase-1 estimator: Psi(h) <= sum of degrees of Luby winners."""
    p = modulus_for(graph.num_vertices)
    est = ThresholdEstimator(p)
    degree = graph.degrees()
    for v in graph.vertices():
        d_v = degree[v]
        if d_v == 0:
            continue
        t_v = p // (2 * d_v)
        est.add_vertex_term(v, t_v, d_v)
        for u in graph.neighbors(v):
            if (degree[u], u) > (d_v, v):
                est.add_pair_term(v, t_v, u, p // (2 * degree[u]), -d_v)
    return est, p


def main(n: int = 60) -> None:
    graph = generators.gnp_random_graph(n, 10, n, seed=13)
    est, p = build_luby_estimator(graph)
    print(f"graph: {graph}; hash field GF({p}); "
          f"{est.num_terms} estimator terms")

    expectation = est.expectation_x_p2() / (p * p)
    print(f"family average E[Psi] = {expectation:.2f} "
          f"(proven floor: active/8 = {n / 8:.1f})")

    # Stage 1: scan multipliers until one meets the family average.
    print("\nstage 1 — multiplier scan:")
    for count, a in enumerate(scan_order_a(p), start=1):
        conditional = est.cond_a_x_p(a) / p
        verdict = "ACCEPT" if conditional >= expectation else "reject"
        print(f"  a = {a:>4}: E[Psi | a] = {conditional:8.2f}  {verdict}")
        if conditional >= expectation:
            break
        if count >= 8:
            print("  ... (scan continues)")
            break

    # Full two-stage selection with its certificate.
    seed, stats = choose_seed(est)
    print(f"\nstage 2 fixed {stats.bits_fixed} offset bits")
    print(
        f"committed seed h(x) = ({seed.a}*x + {seed.b}) mod {p}: "
        f"Psi = {stats.achieved_value} >= E[Psi] = {expectation:.2f}  ✔"
    )

    # Contrast: the distribution of Psi over random seeds.
    rng = SplitMix64(seed=1)
    draws = sorted(
        est.value(Seed(rng.next_below(p), rng.next_below(p), p))
        for _ in range(200)
    )
    below = sum(1 for v in draws if v < expectation)
    print(
        f"\n200 random seeds: min={draws[0]}, median={draws[100]}, "
        f"max={draws[-1]}; {below} fall below the family average"
    )
    print(
        "the deterministic selection never does — that inequality is the "
        "whole\npoint: progress per phase becomes a certainty instead of "
        "an expectation."
    )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:2]]
    main(*args)
