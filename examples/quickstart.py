"""Quickstart: compute a deterministic 2-ruling set in simulated MPC.

Run with::

    python examples/quickstart.py [n] [seed]

Builds an Erdős–Rényi graph, runs the deterministic sparsify-and-gather
2-ruling set in the sublinear-memory MPC regime, verifies the output
against BFS ground truth, and prints the model metrics that the paper's
claims are about (rounds, per-machine memory, communication).
"""

from __future__ import annotations

import sys

from repro import generators, solve_ruling_set
from repro.core.verify import check_ruling_set


def main(n: int = 300, seed: int = 7) -> None:
    graph = generators.gnp_random_graph(n, 12, n, seed=seed)
    print(f"input: {graph} (max degree {graph.max_degree()})")

    result = solve_ruling_set(
        graph, algorithm="det-ruling", beta=2, regime="sublinear"
    )
    measured = check_ruling_set(graph, result.members)

    print(f"algorithm:          {result.algorithm}")
    print(f"ruling set size:    {result.size}")
    print(f"claimed (α, β):     (2, {result.beta})")
    print(f"measured β:         {measured.measured_beta}")
    print(f"MPC rounds:         {result.rounds}")
    print(f"machines:           {result.metrics['num_machines']}")
    print(
        "memory per machine: "
        f"{result.metrics['peak_memory_words']} used "
        f"/ {result.metrics['memory_words']} budget (words)"
    )
    print(f"total words sent:   {result.metrics['total_words']}")
    print(f"seed candidates:    {result.metrics['alg_seed_candidates']}")
    print("\nrounds by phase:")
    for phase, rounds in sorted(result.phase_rounds.items()):
        print(f"  {phase:<24} {rounds}")
    print(f"\nfirst members: {result.members[:15]} ...")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
