"""The Massively Parallel Computation (MPC) simulator.

This package is the substitute for the cluster hardware the paper assumes:
a single-process, cycle-accurate simulator of the MPC model.

* :class:`MPCConfig` fixes the regime — ``k`` machines with ``S`` words of
  memory each (``sublinear`` ``S = n^α``, ``near-linear``, or explicit).
* :class:`Simulator` executes supersteps: a *local* step runs per-machine
  computation; a *communicate* step routes messages and advances the round
  counter.  Both enforce the model's budgets — exceeding per-machine memory
  or per-round I/O raises :class:`repro.errors.MPCViolationError` rather
  than silently continuing, so a completed run certifies model compliance.
* :class:`RunMetrics` records rounds, words, message counts, and peak
  memory — the paper's quantities — plus per-round / per-phase
  wall-clock so simulator performance work is measurable.
* :mod:`repro.mpc.backends` supplies pluggable superstep execution:
  :class:`SerialBackend` (default, bit-identical to the historical
  engine) and :class:`ProcessPoolBackend` (opt-in worker-process
  fan-out with the same deterministic results).
* :class:`TraceRecorder` (opt-in via ``MPCConfig.trace``) captures
  per-superstep, per-machine observability events — words, memory
  high-water, budget headroom vs ``S`` — with JSONL and Chrome-trace
  export plus a budget auditor that warns before the hard fault.
"""

from repro.mpc.backends import (
    ProcessPoolBackend,
    SerialBackend,
    SuperstepBackend,
    resolve_backend,
)
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.machine import Machine, words_of
from repro.mpc.message import Message
from repro.mpc.metrics import RunMetrics
from repro.mpc.simulator import Simulator
from repro.mpc.trace import TraceRecorder

__all__ = [
    "MPCConfig",
    "Machine",
    "words_of",
    "Message",
    "RunMetrics",
    "Simulator",
    "TraceRecorder",
    "DistributedGraph",
    "SuperstepBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "resolve_backend",
]
