"""The Massively Parallel Computation (MPC) simulator.

This package is the substitute for the cluster hardware the paper assumes:
a single-process, cycle-accurate simulator of the MPC model.

* :class:`MPCConfig` fixes the regime — ``k`` machines with ``S`` words of
  memory each (``sublinear`` ``S = n^α``, ``near-linear``, or explicit).
* :class:`Simulator` executes supersteps: a *local* step runs per-machine
  computation; a *communicate* step routes messages and advances the round
  counter.  Both enforce the model's budgets — exceeding per-machine memory
  or per-round I/O raises :class:`repro.errors.MPCViolationError` rather
  than silently continuing, so a completed run certifies model compliance.
* :class:`RunMetrics` records rounds, words, message counts, and peak
  memory; benchmarks report these, not wall-clock, because the paper's
  claims are round-complexity claims.
"""

from repro.mpc.config import MPCConfig
from repro.mpc.machine import Machine, words_of
from repro.mpc.message import Message
from repro.mpc.metrics import RunMetrics
from repro.mpc.simulator import Simulator
from repro.mpc.graph_store import DistributedGraph

__all__ = [
    "MPCConfig",
    "Machine",
    "words_of",
    "Message",
    "RunMetrics",
    "Simulator",
    "DistributedGraph",
]
