"""A simulated MPC machine: local store, inbox, and memory accounting.

A machine's state is a free-form ``store`` dict manipulated by algorithm
callbacks, plus the ``inbox`` of payload tuples delivered by the last
communication step.  Memory is measured in *words* by :func:`words_of`,
which deliberately supports only flat integer-bearing containers — if an
algorithm tries to stash an arbitrary object on a machine, accounting
raises instead of under-counting.
"""

from __future__ import annotations

from itertools import chain
from typing import Any, Dict, List, Tuple

#: Types that cost exactly one word each — the batched fast paths may
#: price a whole container by ``len`` only when every element's type is
#: in this set.  ``str`` is deliberately absent (it prices per-8-chars),
#: as is ``NoneType`` (prices 0).
_SCALARS = frozenset((int, bool, float))
_TUPLE_ONLY = frozenset((tuple,))


class Costed:
    """An opaque value with an explicitly declared word cost.

    Used by adapters (e.g. the LOCAL→MPC bridge) that must store state
    objects the accountant cannot introspect: the adapter *declares* the
    cost, making the charge explicit and auditable instead of silently
    zero.

    >>> words_of(Costed("anything", words=7))
    7
    """

    __slots__ = ("value", "words")

    def __init__(self, value: Any, words: int):
        if words < 0:
            raise ValueError("declared word cost must be non-negative")
        self.value = value
        self.words = words


def words_of(obj: Any) -> int:
    """Return the size of ``obj`` in machine words.

    Ints (arbitrary precision, by design — ids and counters) cost 1 word;
    containers cost the sum of their contents (dicts: keys + values);
    ``None`` costs 0 (absence of a value); strings cost one word per 8
    characters (they appear only in phase labels, never in hot state);
    :class:`Costed` wrappers cost their declared amount.

    The accountant runs after *every* superstep over every machine's full
    state, which makes it the simulator's hottest loop on seed-search
    workloads.  The dominant shapes — flat containers of plain ints, and
    adjacency dicts mapping int keys to int tuples — are priced *batched*:
    one C-level type sweep (``set(map(type, ...))``) decides whether the
    whole container can be charged by length, replacing the per-element
    Python loop.  Anything the sweep cannot prove flat falls back to the
    element-by-element walk with identical accounting (the priced-words
    contract is unchanged; only the loop moved below the interpreter).

    >>> words_of(5)
    1
    >>> words_of({1: (2, 3), 4: (5,)})
    5
    >>> words_of([(1, 2), (3,)])
    3
    """
    t = type(obj)
    if t is int:
        return 1
    if t is tuple or t is list or t is set or t is frozenset:
        if not obj:
            return 0
        kinds = set(map(type, obj))
        if kinds <= _SCALARS:
            # Flat container of one-word scalars: price by length.
            return len(obj)
        if kinds == _TUPLE_ONLY:
            # Container of tuples (adjacency rows, message payloads): if
            # every element of every row is a scalar, the whole structure
            # prices as the total element count — two C passes, zero
            # Python-level iterations.
            if set(map(type, chain.from_iterable(obj))) <= _SCALARS:
                return sum(map(len, obj))
        total = 0
        for item in obj:
            if type(item) is int:
                total += 1
            else:
                total += words_of(item)
        return total
    if t is dict:
        if not obj:
            return 0
        values = obj.values()
        if set(map(type, obj)) <= _SCALARS:
            vkinds = set(map(type, values))
            if vkinds <= _SCALARS:
                return 2 * len(obj)
            if vkinds == _TUPLE_ONLY and (
                set(map(type, chain.from_iterable(values))) <= _SCALARS
            ):
                # int → flat int tuple (the adjacency-store shape):
                # keys cost len, values cost their total element count.
                return len(obj) + sum(map(len, values))
        total = 0
        for k, v in obj.items():
            total += 1 if type(k) is int else words_of(k)
            total += 1 if type(v) is int else words_of(v)
        return total
    if obj is None:
        return 0
    if t is Costed:
        return obj.words
    if t is bool or t is float:
        return 1
    if t is str:
        return (len(obj) + 7) // 8
    return _words_of_slow(obj)


def _words_of_slow(obj: Any) -> int:
    """Subclass-tolerant fallback for :func:`words_of` (cold path)."""
    if isinstance(obj, Costed):
        return obj.words
    if isinstance(obj, (bool, int, float)):
        return 1
    if isinstance(obj, str):
        return (len(obj) + 7) // 8
    if isinstance(obj, (tuple, list, set, frozenset)):
        return sum(words_of(item) for item in obj)
    if isinstance(obj, dict):
        return sum(words_of(k) + words_of(v) for k, v in obj.items())
    raise TypeError(
        f"cannot account for object of type {type(obj).__name__}; machine "
        "state must be built from ints and flat containers"
    )


class Machine:
    """One simulated machine.

    Attributes
    ----------
    mid:
        The machine id in ``0..k-1``.
    store:
        Algorithm-managed local state (ints and containers of ints).
    inbox:
        Payload tuples delivered by the most recent communication round,
        sorted by (sender, payload) so iteration order is deterministic.
    """

    __slots__ = ("mid", "store", "inbox")

    def __init__(self, mid: int):
        self.mid = mid
        self.store: Dict[str, Any] = {}
        self.inbox: List[Tuple[int, ...]] = []

    def memory_words(self) -> int:
        """Current memory footprint: store plus inbox."""
        return words_of(self.store) + words_of(self.inbox)

    def clear_inbox(self) -> None:
        """Drop delivered messages (an algorithm does this once consumed)."""
        self.inbox = []

    def __repr__(self) -> str:
        return f"Machine(mid={self.mid}, words={self.memory_words()})"
