"""MPC regime configuration.

The MPC model is parameterised by the number of machines ``k`` and the
per-machine memory ``S`` (in words), with the standing requirement
``k * S = Ω(input size)``.  The interesting regimes for ruling sets:

* **sublinear** (``S = n^α, α < 1``) — the hard regime; algorithms must
  work on graph fragments and the paper's sparsify-and-gather shape
  exists precisely to cope with it;
* **near-linear** (``S = Θ(n)``) — a machine can hold all vertices but
  not all edges;
* **explicit** — any ``(k, S)`` pair, used by tests and the E6 sweep.

Factories take the graph's size (and ideally its max degree), because
honest sizing depends on the input representation: the input occupies
``2m + n`` words (adjacency plus one word per vertex) and must fit in
``k * S`` with the configured margin.  Two standing side conditions may
lift ``S`` above the requested regime value:

* ``S = Ω(Δ)`` — one vertex's adjacency (and per-round neighbour
  traffic) must fit one machine.  Splitting heavy vertices across
  machines is a known technique this implementation does not include
  (recorded as a substitution in DESIGN.md); instead the config makes
  the requirement explicit.
* ``k <= S / 8`` — a slightly strengthened form of the standard MPC
  assumption that the machine count does not exceed per-machine memory,
  needed so compact owner tables and single-round converge-casts fit
  alongside algorithm state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import MPCConfigError
from repro.util.mathx import ceil_div, ipow_ceil

# Multiplicative margin between aggregate memory and raw input size: a
# machine's input share is at most S / MARGIN.  Worst-case stacking on a
# machine is ~4.2x its adjacency share (adjacency + neighbour values +
# estimator terms, all-higher-neighbour case) + the owner table (<= S/8
# by the side condition below) + reduction buffers (<= S/4) + the Δ-heavy
# vertex the balanced partition cannot split — the margin and floors
# together keep that sum below S.
_MARGIN = 14

# Smallest machine memory the primitives support comfortably: fixed
# overheads (owner table, reduction buffers, seed-search vectors) do not
# shrink with the input, so tiny graphs need this floor.
_MIN_MEMORY = 256


@dataclass(frozen=True)
class MPCConfig:
    """A fixed MPC regime: ``num_machines`` machines of ``memory_words`` each.

    ``slack`` is the multiplicative headroom factor that was applied to the
    information-theoretic minimum when the config was derived (kept for
    reporting); ``label`` names the regime in benchmark output.

    ``backend`` selects how the simulator *executes* superstep callbacks
    (``"serial"`` or ``"process"``; see :mod:`repro.mpc.backends`) —
    execution strategy only, never semantics: every backend produces
    bit-identical runs.  ``backend_workers`` sizes the process pool
    (0 = one worker per CPU); ignored by the serial backend.

    ``trace`` enables the structured observability layer
    (:mod:`repro.mpc.trace`): per-superstep events, per-machine budget
    utilization, and JSONL / Chrome-trace export.  Pure observer — a
    traced run is bit-identical to an untraced one.
    ``trace_warn_utilization`` is the fraction of ``S`` at which the
    budget auditor starts warning (before the hard violation fault).

    ``kernel`` selects the *compute* kernel for machine-local hot loops
    (``"python"`` reference or ``"numpy"`` vectorized; see
    :mod:`repro.mpc.state_layout`).  ``None`` defers to the
    ``REPRO_KERNEL`` environment variable, then the reference kernel.
    Like ``backend``, this is an execution strategy, never semantics:
    both kernels are bit-identical by contract.

    ``governed`` enables the adaptive load governor
    (:mod:`repro.mpc.governor`): shard spool chunks and batched
    exponentiation windows throttle against a peak-hold estimate of the
    per-round budget utilization.  Execution strategy under the
    DESIGN.md section 15 contract — results (members, error texts) never
    change, and at feasible sizes (no throttling needed) the whole run
    is bit-identical to an ungoverned one.  ``governor_target_percent``
    is the per-round budget fraction planners aim at.
    """

    num_machines: int
    memory_words: int
    label: str = "explicit"
    slack: int = 1
    backend: str = "serial"
    backend_workers: int = 0
    trace: bool = False
    trace_warn_utilization: float = 0.9
    kernel: Optional[str] = None
    governed: bool = False
    governor_target_percent: int = 50

    def __post_init__(self) -> None:
        if self.num_machines < 1:
            raise MPCConfigError(
                f"need at least one machine, got {self.num_machines}"
            )
        if self.memory_words < 4:
            raise MPCConfigError(
                f"memory_words must be at least 4, got {self.memory_words}"
            )
        if self.backend_workers < 0:
            raise MPCConfigError(
                f"backend_workers must be >= 0, got {self.backend_workers}"
            )
        if not 0.0 < self.trace_warn_utilization <= 1.0:
            raise MPCConfigError(
                "trace_warn_utilization must lie in (0, 1], got "
                f"{self.trace_warn_utilization}"
            )
        if not 1 <= self.governor_target_percent <= 100:
            raise MPCConfigError(
                "governor_target_percent must lie in [1, 100], got "
                f"{self.governor_target_percent}"
            )
        if self.kernel is not None:
            from repro.mpc.state_layout import KERNELS

            if self.kernel not in KERNELS:
                raise MPCConfigError(
                    f"unknown kernel {self.kernel!r}; expected one of "
                    f"{KERNELS} (or None for the environment default)"
                )

    def with_backend(self, backend: str, workers: int = 0) -> "MPCConfig":
        """Copy of this config running on a different execution backend."""
        from dataclasses import replace

        return replace(self, backend=backend, backend_workers=workers)

    def with_kernel(self, kernel: Optional[str]) -> "MPCConfig":
        """Copy of this config using a different compute kernel."""
        from dataclasses import replace

        return replace(self, kernel=kernel)

    def with_trace(
        self, enabled: bool = True, warn_utilization: Optional[float] = None
    ) -> "MPCConfig":
        """Copy of this config with tracing toggled (observer only)."""
        from dataclasses import replace

        return replace(
            self,
            trace=enabled,
            trace_warn_utilization=(
                self.trace_warn_utilization
                if warn_utilization is None
                else warn_utilization
            ),
        )

    def with_governor(
        self, enabled: bool = True, target_percent: Optional[int] = None
    ) -> "MPCConfig":
        """Copy of this config with the load governor toggled."""
        from dataclasses import replace

        return replace(
            self,
            governed=enabled,
            governor_target_percent=(
                self.governor_target_percent
                if target_percent is None
                else target_percent
            ),
        )

    @property
    def total_memory(self) -> int:
        """Aggregate memory ``k * S`` in words."""
        return self.num_machines * self.memory_words

    def validate_input_size(self, input_words: int) -> None:
        """Raise unless the input fits in aggregate memory."""
        if input_words > self.total_memory:
            raise MPCConfigError(
                f"input of {input_words} words exceeds aggregate memory "
                f"{self.total_memory} (k={self.num_machines}, "
                f"S={self.memory_words})"
            )

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @staticmethod
    def input_words(num_vertices: int, num_edges: int) -> int:
        """Words needed to store the input graph: adjacency + vertex ids."""
        return 2 * num_edges + num_vertices

    @classmethod
    def _finish(
        cls,
        memory: int,
        need: int,
        label: str,
        slack: int,
        max_degree: int,
    ) -> "MPCConfig":
        """Apply the side conditions to a proposed ``S`` and derive ``k``."""
        # S = Ω(Δ) floor: the machine owning a degree-Δ vertex transiently
        # holds ~8 words per adjacency entry (adjacency + neighbour values
        # + estimator terms), and buffers may take up to S/2 more.
        import math

        memory = max(memory, _MIN_MEMORY, 16 * (max_degree + 1))
        floor_sq = 8 * _MARGIN * max(1, need)  # k <= S/8 with k = M*need/S
        if memory * memory < floor_sq:
            memory = math.isqrt(floor_sq - 1) + 1  # exact ceil(sqrt)
        machines = max(2, ceil_div(_MARGIN * need, memory))
        if machines > memory // 8:
            # ceil rounding can push k one past S/8; restore the invariant.
            memory = 8 * machines
        return cls(
            num_machines=machines,
            memory_words=memory,
            label=label,
            slack=slack,
        )

    @classmethod
    def sublinear(
        cls,
        num_vertices: int,
        num_edges: int,
        alpha_num: int = 2,
        alpha_den: int = 3,
        slack: int = 8,
        max_degree: int = 0,
    ) -> "MPCConfig":
        """Sublinear regime ``S ≈ slack * n^(alpha_num/alpha_den)``.

        ``slack`` provides headroom for algorithm state beyond the raw
        input share.  Pass the graph's Δ as ``max_degree`` so ``S`` is
        lifted to Ω(Δ) where needed (heavy vertices are not split across
        machines here).  Dense inputs may also lift ``S`` via the
        ``k <= S/8`` side condition.

        >>> cfg = MPCConfig.sublinear(1000, 5000, 2, 3)
        >>> cfg.memory_words >= 800
        True
        """
        if not 0 < alpha_num <= alpha_den:
            raise MPCConfigError("alpha must lie in (0, 1]")
        base = max(num_vertices, 2)
        memory = slack * ipow_ceil(base, alpha_num, alpha_den)
        need = cls.input_words(num_vertices, num_edges)
        label = f"sublinear(α={alpha_num}/{alpha_den})"
        return cls._finish(memory, need, label, slack, max_degree)

    @classmethod
    def near_linear(
        cls,
        num_vertices: int,
        num_edges: int,
        slack: int = 4,
        max_degree: int = 0,
    ) -> "MPCConfig":
        """Near-linear regime: ``S ≈ slack * n`` words per machine."""
        memory = slack * max(num_vertices, 2)
        need = cls.input_words(num_vertices, num_edges)
        return cls._finish(memory, need, "near-linear", slack, max_degree)

    @classmethod
    def single_machine(
        cls, num_vertices: int, num_edges: int, slack: int = 4
    ) -> "MPCConfig":
        """Degenerate one-machine config (sequential oracle runs)."""
        need = cls.input_words(num_vertices, num_edges)
        return cls(
            num_machines=1,
            memory_words=max(_MIN_MEMORY, slack * need),
            label="single",
            slack=slack,
        )
