"""Simulating LOCAL algorithms in MPC, one superstep per LOCAL round.

The standard fact "MPC with `S = Ω(Δ)` simulates one LOCAL round in O(1)
MPC rounds" made executable: :class:`LocalBridge` runs any
:class:`repro.local.network.VertexAlgorithm` on a
:class:`~repro.mpc.graph_store.DistributedGraph`.  Per LOCAL round it
spends exactly two MPC rounds — one message-exchange superstep and one
halting-consensus reduction — so a T-round LOCAL algorithm costs 2T MPC
rounds, which is the honest price the round-compression results (E8)
improve upon.

Payload encoding
----------------
MPC messages are integer tuples, so LOCAL payloads must be encodable:
plain ints, tuples of ints, and ``(tag, ...)`` pairs whose string tag
appears in the bridge's ``tags`` list (encoded as an index).  A tagged
payload decodes as ``(tag, tuple_of_remaining_words)``.

State accounting
----------------
Vertex states are arbitrary Python objects; the bridge stores them in a
:class:`~repro.mpc.machine.Costed` wrapper charged at
``algorithm.state_words`` words per vertex (default 8) — an explicit,
auditable declaration instead of silent under-counting.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import AlgorithmError
from repro.local.network import VertexAlgorithm
from repro.mpc.graph_store import ADJ, DistributedGraph
from repro.mpc.machine import Costed, Machine
from repro.mpc.message import Message
from repro.mpc.primitives.aggregate import reduce_scalar

STATES = "lb_states"


def encode_payload(payload: Any, tags: Sequence[str]) -> Tuple[int, ...]:
    """Encode a LOCAL payload into integer words.

    >>> encode_payload(("prio", (9, 2)), tags=("prio",))
    (2, 9, 2)
    >>> encode_payload(7, tags=())
    (0, 7)
    """
    if isinstance(payload, bool):
        return (0, int(payload))
    if isinstance(payload, int):
        return (0, payload)
    if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
        try:
            index = tags.index(payload[0])
        except ValueError:
            raise AlgorithmError(
                f"payload tag {payload[0]!r} not registered with the bridge"
            )
        words: List[int] = []
        for part in payload[1:]:
            if isinstance(part, tuple):
                words.extend(int(x) for x in part)
            else:
                words.append(int(part))
        return (2 + index, *words)
    if isinstance(payload, tuple):
        return (1, *(int(x) for x in payload))
    raise AlgorithmError(
        f"cannot encode payload of type {type(payload).__name__}"
    )


def decode_payload(words: Tuple[int, ...], tags: Sequence[str]) -> Any:
    """Inverse of :func:`encode_payload` (tagged payloads normalise to
    ``(tag, tuple_of_words)``).

    >>> decode_payload((2, 9, 2), tags=("prio",))
    ('prio', (9, 2))
    """
    kind = words[0]
    if kind == 0:
        return words[1]
    if kind == 1:
        return tuple(words[1:])
    index = kind - 2
    if not 0 <= index < len(tags):
        raise AlgorithmError(f"unknown payload tag index {index}")
    return (tags[index], tuple(words[1:]))


class LocalBridge:
    """Runs a LOCAL vertex algorithm on a distributed graph."""

    def __init__(
        self,
        dg: DistributedGraph,
        algorithm: VertexAlgorithm,
        tags: Sequence[str] = (),
        adj_key: str = ADJ,
    ):
        self.dg = dg
        self.algorithm = algorithm
        self.tags = tuple(tags)
        self.adj_key = adj_key
        self.state_words = getattr(algorithm, "state_words", 8)

    def run(self, max_rounds: int = 10_000) -> Tuple[int, bool]:
        """Execute until all vertices halt; return (LOCAL rounds, done).

        States remain on the machines under ``store["lb_states"]``; read
        them with :meth:`collect_states`.
        """
        dg, sim, algorithm = self.dg, self.dg.sim, self.algorithm

        def init_states(machine: Machine) -> None:
            adj = machine.store[self.adj_key]
            states = {
                v: algorithm.init(v, len(nbrs)) for v, nbrs in adj.items()
            }
            machine.store[STATES] = Costed(
                states, words=self.state_words * len(states)
            )

        sim.local(init_states)

        for local_round in range(max_rounds):
            halted_all = reduce_scalar(
                sim,
                lambda m: int(
                    all(
                        algorithm.halted(v, state)
                        for v, state in m.store[STATES].value.items()
                    )
                ),
                lambda a, b: a & b,
            )
            if halted_all:
                return local_round, True

            def exchange(machine: Machine) -> List[Message]:
                adj = machine.store[self.adj_key]
                states = machine.store[STATES].value
                out = []
                for v, state in states.items():
                    if algorithm.halted(v, state):
                        continue
                    payload = algorithm.message(v, state, local_round)
                    if payload is None:
                        continue
                    encoded = encode_payload(payload, self.tags)
                    for u in adj[v]:
                        out.append(
                            Message(dg.owner_of(u), (u, v) + encoded)
                        )
                return out

            sim.communicate(exchange)

            def deliver(machine: Machine) -> None:
                states = machine.store[STATES].value
                inboxes: Dict[int, List[Tuple[int, Any]]] = {
                    v: [] for v in states
                }
                for payload in machine.inbox:
                    u, v = payload[0], payload[1]
                    if u in inboxes:
                        inboxes[u].append(
                            (v, decode_payload(tuple(payload[2:]), self.tags))
                        )
                machine.clear_inbox()
                for v, state in states.items():
                    if algorithm.halted(v, state):
                        continue
                    inboxes[v].sort(key=lambda item: item[0])
                    states[v] = algorithm.update(
                        v, state, inboxes[v], local_round
                    )

            sim.local(deliver)
        return max_rounds, False

    def collect_states(self) -> Dict[int, Any]:
        """Driver-side readout of every vertex's final state."""
        states: Dict[int, Any] = {}
        for chunk in self.dg.sim.harvest(
            lambda m: dict(m.store[STATES].value)
            if STATES in m.store
            else {}
        ):
            states.update(chunk)
        return states
