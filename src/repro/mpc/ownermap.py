"""Compact, computable vertex→machine ownership maps.

A low-space machine cannot store the full ``owner[v]`` table (that is
``n`` words).  Ownership must instead be *computable* from O(k) words of
shared metadata.  Three implementations:

* :class:`RangeOwnerMap` — contiguous vertex ranges given by ``k + 1``
  boundary values (produced from a balanced edge partition);
* :class:`ModOwnerMap` — ``v mod k`` (O(1) words);
* :class:`HashOwnerMap` — SplitMix64 of the id (O(1) words), used to check
  partition-independence of algorithms.

Every map exposes ``owner_of(v)``, its metadata footprint in words, and a
``serialize()/deserialize()`` pair so the metadata can be shipped to
machines as plain integer tuples.

Edges are addressed by a symmetric 64-bit id — ``edge_id(u, v) ==
edge_id(v, u)`` — so both endpoints' owners agree on the name of a shared
edge without coordination.  ``edge_owner_of`` hashes that id onto a
machine, giving edge-sharded layouts the same computable-ownership
discipline as vertices.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Tuple

from repro.errors import MPCConfigError
from repro.graph.graph import Graph
from repro.util.rng import splitmix64

_KIND_RANGE = 0
_KIND_MOD = 1
_KIND_HASH = 2

_GOLDEN = 0x9E3779B97F4A7C15


def _check_vertex(v: int, num_vertices: int) -> None:
    """Shared bounds check: every map rejects out-of-range ids the same way."""
    if not 0 <= v < num_vertices:
        raise MPCConfigError(f"vertex {v} out of range")


def _check_sizes(num_vertices: int, num_machines: int) -> None:
    """Shared constructor validation for the computable (mod/hash) maps."""
    if num_vertices < 0:
        raise MPCConfigError(f"num_vertices must be >= 0, got {num_vertices}")
    if num_machines < 1:
        raise MPCConfigError(f"num_machines must be >= 1, got {num_machines}")


def edge_id(u: int, v: int) -> int:
    """Symmetric 64-bit edge id: ``edge_id(u, v) == edge_id(v, u)``.

    The canonical orientation ``(min, max)`` is mixed through SplitMix64
    twice so adjacent ids do not collide under small moduli.

    >>> edge_id(3, 7) == edge_id(7, 3)
    True
    >>> edge_id(0, 1) != edge_id(0, 2)
    True
    """
    lo, hi = (u, v) if u <= v else (v, u)
    if lo < 0:
        raise MPCConfigError(f"vertex {lo} out of range")
    return splitmix64(splitmix64(lo) ^ ((hi * _GOLDEN) & ((1 << 64) - 1)))


def edge_owner_of(eid: int, num_machines: int) -> int:
    """Hash a symmetric edge id onto one of ``num_machines`` machines."""
    if num_machines < 1:
        raise MPCConfigError(f"num_machines must be >= 1, got {num_machines}")
    return splitmix64(eid) % num_machines


@dataclass(frozen=True)
class RangeOwnerMap:
    """Contiguous ranges: machine ``i`` owns ``[bounds[i], bounds[i+1])``."""

    bounds: Tuple[int, ...]  # length k + 1, bounds[0] == 0

    def __post_init__(self) -> None:
        if len(self.bounds) < 2 or self.bounds[0] != 0:
            raise MPCConfigError("bounds must start at 0 with length k+1")
        for a, b in zip(self.bounds, self.bounds[1:]):
            if b < a:
                raise MPCConfigError("bounds must be non-decreasing")

    @property
    def num_machines(self) -> int:
        return len(self.bounds) - 1

    @property
    def num_vertices(self) -> int:
        return self.bounds[-1]

    def owner_of(self, v: int) -> int:
        """Return the owner of vertex ``v``.

        >>> RangeOwnerMap((0, 2, 5)).owner_of(3)
        1
        """
        _check_vertex(v, self.num_vertices)
        return bisect.bisect_right(self.bounds, v) - 1

    def owned_by(self, machine: int) -> range:
        """Vertices owned by ``machine``."""
        return range(self.bounds[machine], self.bounds[machine + 1])

    def table_words(self) -> int:
        return len(self.bounds)

    def serialize(self) -> Tuple[int, ...]:
        return (_KIND_RANGE,) + self.bounds


@dataclass(frozen=True)
class ModOwnerMap:
    """Round-robin ownership ``owner(v) = v mod k``."""

    num_vertices: int
    num_machines: int

    def __post_init__(self) -> None:
        _check_sizes(self.num_vertices, self.num_machines)

    def owner_of(self, v: int) -> int:
        _check_vertex(v, self.num_vertices)
        return v % self.num_machines

    def owned_by(self, machine: int) -> range:
        return range(machine, self.num_vertices, self.num_machines)

    def table_words(self) -> int:
        return 2

    def serialize(self) -> Tuple[int, ...]:
        return (_KIND_MOD, self.num_vertices, self.num_machines)


@dataclass(frozen=True)
class HashOwnerMap:
    """Pseudo-random ownership via SplitMix64 of the vertex id."""

    num_vertices: int
    num_machines: int
    seed: int = 0

    def __post_init__(self) -> None:
        _check_sizes(self.num_vertices, self.num_machines)

    def owner_of(self, v: int) -> int:
        _check_vertex(v, self.num_vertices)
        return splitmix64(v ^ (self.seed * _GOLDEN)) % self.num_machines

    def owned_by(self, machine: int) -> list:
        return [
            v for v in range(self.num_vertices) if self.owner_of(v) == machine
        ]

    def table_words(self) -> int:
        return 3

    def serialize(self) -> Tuple[int, ...]:
        return (_KIND_HASH, self.num_vertices, self.num_machines, self.seed)


def balanced_range_map(graph: Graph, num_machines: int) -> RangeOwnerMap:
    """Contiguous ranges balancing adjacency words per machine.

    Same greedy sweep as
    :func:`repro.graph.partition.balanced_edge_partition`, expressed as
    compact boundaries.

    >>> g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    >>> balanced_range_map(g, 2).num_machines
    2
    """
    if num_machines < 1:
        raise MPCConfigError("need at least one machine")
    n = graph.num_vertices
    total = max(1, 2 * graph.num_edges + n)
    # Ideal-boundary assignment: vertex v goes to the machine whose ideal
    # cost interval contains v's prefix cost.  Every machine's load is at
    # most total/k + (Δ + 1): no leftover pile-up on the last machine.
    bounds = [0]
    prefix = 0
    current = 0
    for v in range(n):
        machine = prefix * num_machines // total
        machine = min(machine, num_machines - 1)
        while current < machine:
            bounds.append(v)
            current += 1
        prefix += graph.degree(v) + 1
    while len(bounds) < num_machines:
        bounds.append(n)
    bounds.append(n)
    return RangeOwnerMap(tuple(bounds))


def deserialize_owner_map(data: Tuple[int, ...]):
    """Inverse of each map's ``serialize``.

    Hostile payloads (wrong arity, non-integer fields, unknown kinds)
    raise :class:`MPCConfigError` instead of ``IndexError``/``TypeError``
    — the metadata travels between machines as a plain tuple, so this is
    an input-validation boundary, not an internal invariant.
    """
    if not isinstance(data, (tuple, list)) or not data:
        raise MPCConfigError(f"owner-map payload must be a non-empty tuple, got {data!r}")
    if not all(isinstance(x, int) and not isinstance(x, bool) for x in data):
        raise MPCConfigError(f"owner-map payload must be all ints, got {data!r}")
    kind = data[0]
    if kind == _KIND_RANGE:
        if len(data) < 3:
            raise MPCConfigError(f"range owner-map payload too short: {data!r}")
        return RangeOwnerMap(tuple(data[1:]))
    if kind == _KIND_MOD:
        if len(data) != 3:
            raise MPCConfigError(f"mod owner-map payload needs 3 fields, got {data!r}")
        return ModOwnerMap(num_vertices=data[1], num_machines=data[2])
    if kind == _KIND_HASH:
        if len(data) != 4:
            raise MPCConfigError(f"hash owner-map payload needs 4 fields, got {data!r}")
        return HashOwnerMap(
            num_vertices=data[1], num_machines=data[2], seed=data[3]
        )
    raise MPCConfigError(f"unknown owner-map kind {kind}")
