"""Run metrics: the quantities the paper's theorems are *about*.

A theory paper's "cost" of an MPC algorithm is its round count, with
per-round communication and per-machine memory as side constraints.  The
simulator therefore records:

* ``rounds`` — number of communication supersteps;
* ``total_messages`` / ``total_words`` — global communication volume;
* ``max_words_sent`` / ``max_words_received`` — worst per-machine,
  per-round I/O observed (must stay ≤ S; the simulator enforces it);
* ``peak_memory_words`` — worst per-machine residency observed;
* ``words_per_round`` — the per-round communication series (sums to
  ``total_words``; the trace layer's per-round events are cross-checked
  against it);
* ``phases`` — named round ranges, so benches can attribute rounds to
  algorithm stages (sparsify vs gather vs cleanup, seed search vs commit).

Alongside the model quantities the accumulator keeps **wall-clock
timing**: ``time_per_round`` (seconds per communication superstep,
including the callback execution that produced its messages) and
``time_per_phase`` (seconds attributed to the phase active when the
work ran, local steps included).  Wall-clock measures the *simulator*,
not a cluster — it exists so performance work on the simulator's hot
paths (estimator caching, execution backends) is measured rather than
asserted.  Timing never feeds back into any algorithmic decision, so
runs stay bit-for-bit deterministic in members/rounds/words.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class PhaseMark:
    """A named phase beginning at ``start_round``."""

    name: str
    start_round: int


@dataclass
class RunMetrics:
    """Mutable accumulator owned by a :class:`repro.mpc.Simulator`."""

    rounds: int = 0
    total_messages: int = 0
    total_words: int = 0
    max_words_sent: int = 0
    max_words_received: int = 0
    peak_memory_words: int = 0
    phases: List[PhaseMark] = field(default_factory=list)
    wall_time_s: float = 0.0
    time_per_round: List[float] = field(default_factory=list)
    time_per_phase: Dict[str, float] = field(default_factory=dict)
    words_per_round: List[int] = field(default_factory=list)

    UNPHASED = "(unphased)"

    def begin_phase(self, name: str) -> None:
        """Mark the start of a named phase at the current round."""
        self.phases.append(PhaseMark(name=name, start_round=self.rounds))

    def current_phase(self) -> str:
        """Name of the phase subsequent work is attributed to."""
        return self.phases[-1].name if self.phases else self.UNPHASED

    def record_round(
        self,
        messages: int,
        words: int,
        max_sent: int,
        max_received: int,
    ) -> None:
        """Record one communication superstep."""
        self.rounds += 1
        self.total_messages += messages
        self.total_words += words
        self.max_words_sent = max(self.max_words_sent, max_sent)
        self.max_words_received = max(self.max_words_received, max_received)
        self.words_per_round.append(words)

    def record_elapsed(self, seconds: float, is_round: bool = False) -> None:
        """Attribute ``seconds`` of wall clock to the current phase.

        ``is_round`` additionally appends to ``time_per_round`` (called
        once per communication superstep, after ``record_round``).
        """
        self.wall_time_s += seconds
        phase = self.current_phase()
        self.time_per_phase[phase] = (
            self.time_per_phase.get(phase, 0.0) + seconds
        )
        if is_round:
            self.time_per_round.append(seconds)

    def record_memory(self, words: int) -> None:
        """Record an observed per-machine memory footprint."""
        self.peak_memory_words = max(self.peak_memory_words, words)

    def phase_rounds(self) -> Dict[str, int]:
        """Rounds spent in each phase (later marks close earlier ones).

        Repeated phase names accumulate, so per-iteration phases like
        ``"luby-step"`` sum across iterations.
        """
        spans: Dict[str, int] = {}
        for i, mark in enumerate(self.phases):
            end = (
                self.phases[i + 1].start_round
                if i + 1 < len(self.phases)
                else self.rounds
            )
            spans[mark.name] = spans.get(mark.name, 0) + (
                end - mark.start_round
            )
        return spans

    def summary(self) -> Dict[str, int]:
        """Flat dict for table output (model quantities only — ints).

        Wall-clock is deliberately excluded: the summary participates in
        determinism assertions (identical runs must compare equal), which
        timing would break.  Use :meth:`timing_summary` for wall-clock.
        """
        return {
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "total_words": self.total_words,
            "max_words_sent": self.max_words_sent,
            "max_words_received": self.max_words_received,
            "peak_memory_words": self.peak_memory_words,
        }

    def timing_summary(self) -> Dict[str, float]:
        """Wall-clock totals: overall seconds plus per-phase seconds.

        Per-phase keys are prefixed ``time_`` so the dict can be merged
        into a flat record without colliding with round counts.
        """
        out: Dict[str, float] = {"wall_time_s": round(self.wall_time_s, 6)}
        for phase, seconds in self.time_per_phase.items():
            out[f"time_{phase}"] = round(seconds, 6)
        return out
