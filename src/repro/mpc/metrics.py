"""Run metrics: the quantities the paper's theorems are *about*.

A theory paper's "cost" of an MPC algorithm is its round count, with
per-round communication and per-machine memory as side constraints.  The
simulator therefore records:

* ``rounds`` — number of communication supersteps;
* ``total_messages`` / ``total_words`` — global communication volume;
* ``max_words_sent`` / ``max_words_received`` — worst per-machine,
  per-round I/O observed (must stay ≤ S; the simulator enforces it);
* ``peak_memory_words`` — worst per-machine residency observed;
* ``phases`` — named round ranges, so benches can attribute rounds to
  algorithm stages (sparsify vs gather vs cleanup, seed search vs commit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class PhaseMark:
    """A named phase beginning at ``start_round``."""

    name: str
    start_round: int


@dataclass
class RunMetrics:
    """Mutable accumulator owned by a :class:`repro.mpc.Simulator`."""

    rounds: int = 0
    total_messages: int = 0
    total_words: int = 0
    max_words_sent: int = 0
    max_words_received: int = 0
    peak_memory_words: int = 0
    phases: List[PhaseMark] = field(default_factory=list)

    def begin_phase(self, name: str) -> None:
        """Mark the start of a named phase at the current round."""
        self.phases.append(PhaseMark(name=name, start_round=self.rounds))

    def record_round(
        self,
        messages: int,
        words: int,
        max_sent: int,
        max_received: int,
    ) -> None:
        """Record one communication superstep."""
        self.rounds += 1
        self.total_messages += messages
        self.total_words += words
        self.max_words_sent = max(self.max_words_sent, max_sent)
        self.max_words_received = max(self.max_words_received, max_received)

    def record_memory(self, words: int) -> None:
        """Record an observed per-machine memory footprint."""
        self.peak_memory_words = max(self.peak_memory_words, words)

    def phase_rounds(self) -> Dict[str, int]:
        """Rounds spent in each phase (later marks close earlier ones).

        Repeated phase names accumulate, so per-iteration phases like
        ``"luby-step"`` sum across iterations.
        """
        spans: Dict[str, int] = {}
        for i, mark in enumerate(self.phases):
            end = (
                self.phases[i + 1].start_round
                if i + 1 < len(self.phases)
                else self.rounds
            )
            spans[mark.name] = spans.get(mark.name, 0) + (
                end - mark.start_round
            )
        return spans

    def summary(self) -> Dict[str, int]:
        """Flat dict for table output."""
        return {
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "total_words": self.total_words,
            "max_words_sent": self.max_words_sent,
            "max_words_received": self.max_words_received,
            "peak_memory_words": self.peak_memory_words,
        }
