"""The distributed graph: vertex-partitioned adjacency across machines.

``DistributedGraph`` is the layer every MPC graph algorithm talks to.  A
machine owns a set of vertices (per a compact
:mod:`~repro.mpc.ownermap` map) and stores their adjacency lists under
``store["g_adj"]``.  Algorithms that operate on *derived* subgraphs (the
induced sample graphs of sparsify-and-gather) pass an alternative
``adj_key``; all operations below take the adjacency key to act on.

Bulk operations (each a stated number of MPC rounds):

* ``push_values`` — every vertex sends a value to all neighbours
  (one round; this is how one LOCAL round is simulated);
* ``push_flags`` — flagged vertices ping their neighbours (one round;
  the step of a removal wave);
* ``deactivate`` — remove vertices and scrub them from neighbours'
  adjacency lists (one round);
* ``gather_flagged_to_zero`` — ship the subgraph induced by flagged
  vertices to machine 0 (two rounds) — the "gather" half of
  sparsify-and-gather;
* reductions: active-vertex count, edge count, max degree.

All payloads are integer tuples and all state is integer containers, so
the simulator's budget enforcement sees every word.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.errors import AlgorithmError
from repro.graph.graph import Graph
from repro.mpc.machine import Machine
from repro.mpc.message import Message
from repro.mpc.ownermap import balanced_range_map
from repro.mpc.primitives.aggregate import reduce_scalar
from repro.mpc.simulator import Simulator

ADJ = "g_adj"
OWNER = "g_owner"
NBR_VALUES = "g_nbr_values"


class DistributedGraph:
    """A graph partitioned across the machines of a :class:`Simulator`."""

    def __init__(self, sim: Simulator, owner_map, num_vertices: int):
        self.sim = sim
        self.owner_map = owner_map
        self.num_vertices = num_vertices

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def load(
        cls, sim: Simulator, graph: Graph, owner_map=None
    ) -> "DistributedGraph":
        """Distribute ``graph`` over the simulator's machines.

        Loading is free (it models the input's initial distribution), but
        the loaded state immediately counts against each machine's memory
        budget — an input too large for the configuration faults here.
        """
        if owner_map is None:
            owner_map = balanced_range_map(graph, sim.num_machines)
        serialized = owner_map.serialize()

        def plant(machine: Machine) -> None:
            adj: Dict[int, Tuple[int, ...]] = {}
            for v in owner_map.owned_by(machine.mid):
                adj[v] = tuple(graph.neighbors(v))
            machine.store[ADJ] = adj
            machine.store[OWNER] = tuple(serialized)

        sim.local(plant)
        return cls(sim, owner_map, graph.num_vertices)

    @classmethod
    def load_sharded(cls, sim: Simulator, sharded) -> "DistributedGraph":
        """Distribute a pre-sharded on-disk graph (streaming ingest).

        ``sharded`` is a :class:`~repro.graph.stream.ShardedGraph`: the
        ingest already bucketed each machine's adjacency into its own
        spill file, so *no process ever materializes the full edge list*
        — each machine callback reads only its own shard.  The planted
        state is bit-identical to :meth:`load` under the same owner map
        (same keys in the same ``owned_by`` order, isolated vertices
        included as empty rows), which is what makes streamed and
        in-memory runs interchangeable.
        """
        owner_map = sharded.owner_map
        serialized = owner_map.serialize()

        def plant(machine: Machine) -> None:
            rows = sharded.read_shard(machine.mid)
            adj: Dict[int, Tuple[int, ...]] = {}
            for v in owner_map.owned_by(machine.mid):
                adj[v] = rows.get(v, ())
            machine.store[ADJ] = adj
            machine.store[OWNER] = tuple(serialized)

        sim.local(plant)
        return cls(sim, owner_map, sharded.num_vertices)

    # ------------------------------------------------------------------
    # Local accessors (used inside machine callbacks)
    # ------------------------------------------------------------------
    @staticmethod
    def local_adj(
        machine: Machine, adj_key: str = ADJ
    ) -> Dict[int, Tuple[int, ...]]:
        """The machine's adjacency map under ``adj_key``."""
        return machine.store[adj_key]

    def owner_of(self, v: int) -> int:
        """Machine owning vertex ``v`` (O(1) from compact metadata)."""
        return self.owner_map.owner_of(v)

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    def push_values(
        self,
        values_key: str,
        out_key: str = NBR_VALUES,
        adj_key: str = ADJ,
    ) -> None:
        """Send each active vertex's value to all its neighbours (1 round).

        ``store[values_key]`` must map every active owned vertex to an int
        or tuple of ints.  Afterwards ``store[out_key]`` maps each active
        owned vertex ``u`` to the sorted list of ``(v, *value)`` tuples
        received from its neighbours ``v``.
        """

        def send(machine: Machine) -> List[Message]:
            adj = machine.store[adj_key]
            values = machine.store[values_key]
            out = []
            for v, neighbors in adj.items():
                value = values[v]
                payload_tail = (
                    tuple(value) if isinstance(value, tuple) else (int(value),)
                )
                for u in neighbors:
                    out.append(
                        Message(self.owner_of(u), (u, v) + payload_tail)
                    )
            return out

        self.sim.communicate(send)

        def receive(machine: Machine) -> None:
            adj = machine.store[adj_key]
            grouped: Dict[int, List[Tuple[int, ...]]] = {u: [] for u in adj}
            for payload in machine.inbox:
                u = payload[0]
                if u not in grouped:
                    raise AlgorithmError(
                        f"value pushed to non-active vertex {u}"
                    )
                grouped[u].append(tuple(payload[1:]))
            machine.clear_inbox()
            for u in grouped:
                grouped[u].sort()
            machine.store[out_key] = grouped

        self.sim.local(receive)

    def push_flags(
        self, flag_key: str, out_key: str, adj_key: str = ADJ
    ) -> None:
        """Flagged vertices ping all neighbours (1 round).

        ``store[flag_key]`` holds each machine's flagged owned vertices.
        Afterwards ``store[out_key]`` is the set of owned active vertices
        that received at least one ping.
        """

        def send(machine: Machine) -> List[Message]:
            adj = machine.store[adj_key]
            out = []
            for v in machine.store.get(flag_key, ()):
                for u in adj.get(v, ()):
                    out.append(Message(self.owner_of(u), (u,)))
            return out

        self.sim.communicate(send)

        def receive(machine: Machine) -> None:
            adj = machine.store[adj_key]
            pinged = {
                payload[0]
                for payload in machine.inbox
                if payload[0] in adj
            }
            machine.clear_inbox()
            machine.store[out_key] = set(sorted(pinged))

        self.sim.local(receive)

    def deactivate(self, removed_key: str, adj_key: str = ADJ) -> None:
        """Remove vertices and scrub them from neighbours (1 round).

        ``store[removed_key]`` holds, per machine, the set of its *owned*
        vertices to remove.  The key is consumed.
        """

        def announce(machine: Machine) -> List[Message]:
            adj = machine.store[adj_key]
            removed: Set[int] = set(machine.store.pop(removed_key, ()))
            out = []
            for v in removed:
                if v not in adj:
                    continue
                for u in adj[v]:
                    out.append(Message(self.owner_of(u), (u, v)))
            machine.store["_g_removing"] = sorted(removed)
            return out

        self.sim.communicate(announce)

        def scrub(machine: Machine) -> None:
            adj = machine.store[adj_key]
            for v in machine.store.pop("_g_removing"):
                adj.pop(v, None)
            gone: Dict[int, Set[int]] = {}
            for u, v in machine.inbox:
                gone.setdefault(u, set()).add(v)
            machine.clear_inbox()
            for u, dropped in gone.items():
                if u in adj:
                    adj[u] = tuple(x for x in adj[u] if x not in dropped)

        self.sim.local(scrub)

    def count_active(self, adj_key: str = ADJ) -> int:
        """Number of active vertices (one reduction)."""
        return reduce_scalar(
            self.sim,
            lambda machine: len(machine.store[adj_key]),
            lambda a, b: a + b,
        )

    def count_active_edges(self, adj_key: str = ADJ) -> int:
        """Number of active edges (one reduction)."""
        half = reduce_scalar(
            self.sim,
            lambda machine: sum(
                len(neighbors)
                for neighbors in machine.store[adj_key].values()
            ),
            lambda a, b: a + b,
        )
        return half // 2

    def max_active_degree(self, adj_key: str = ADJ) -> int:
        """Maximum active degree (one reduction)."""
        return reduce_scalar(
            self.sim,
            lambda machine: max(
                (len(nbrs) for nbrs in machine.store[adj_key].values()),
                default=0,
            ),
            max,
        )

    def gather_flagged_to_zero(
        self,
        flag_key: str,
        out_vertices: str,
        out_edges: str,
        adj_key: str = ADJ,
    ) -> None:
        """Ship the subgraph induced by flagged vertices to machine 0.

        ``store[flag_key]`` holds each machine's set of flagged owned
        vertices.  Two rounds: flags are first pushed to neighbours, then
        machine 0 receives every flagged vertex id and every induced edge
        once (from the owner of its smaller endpoint).  Machine 0 ends up
        with sorted lists under ``out_vertices`` / ``out_edges``.

        The caller is responsible for flagging few enough vertices that
        the induced subgraph fits machine 0's budget — the simulator
        faults otherwise, which is the model-honest behaviour.
        """

        def send_flags(machine: Machine) -> List[Message]:
            adj = machine.store[adj_key]
            flagged: Set[int] = set(machine.store[flag_key])
            out = []
            for v in flagged:
                if v not in adj:
                    continue
                for u in adj[v]:
                    out.append(Message(self.owner_of(u), (u, v)))
            return out

        self.sim.communicate(send_flags)

        def send_subgraph(machine: Machine) -> List[Message]:
            adj = machine.store[adj_key]
            flagged: Set[int] = set(machine.store[flag_key])
            flagged_neighbors: Dict[int, Set[int]] = {}
            for u, v in machine.inbox:
                flagged_neighbors.setdefault(u, set()).add(v)
            machine.clear_inbox()
            out = []
            for v in sorted(flagged):
                if v not in adj:
                    continue
                out.append(Message(0, (v,)))
                for u in flagged_neighbors.get(v, ()):
                    if v < u:
                        out.append(Message(0, (v, u)))
            return out

        self.sim.communicate(send_subgraph)

        def collect(machine: Machine) -> None:
            if machine.mid != 0:
                machine.clear_inbox()
                return
            vertices = sorted(
                payload[0] for payload in machine.inbox if len(payload) == 1
            )
            edges = sorted(
                (payload[0], payload[1])
                for payload in machine.inbox
                if len(payload) == 2
            )
            machine.clear_inbox()
            machine.store[out_vertices] = vertices
            machine.store[out_edges] = edges

        self.sim.local(collect)

    # ------------------------------------------------------------------
    # Driver-side readout (free: outside the model, used for verification)
    # ------------------------------------------------------------------
    def snapshot_active(
        self, adj_key: str = ADJ
    ) -> Tuple[List[int], List[Tuple[int, int]]]:
        """Return (active vertices, active edges) read off the machines."""

        def read(machine: Machine):
            adj = machine.store[adj_key]
            local_vertices = list(adj)
            local_edges = [
                (v, u)
                for v, neighbors in adj.items()
                for u in neighbors
                if v < u
            ]
            return local_vertices, local_edges

        vertices: List[int] = []
        edges: List[Tuple[int, int]] = []
        for local_vertices, local_edges in self.sim.harvest(read):
            vertices.extend(local_vertices)
            edges.extend(local_edges)
        return sorted(vertices), sorted(edges)

    def collect_marked(self, key: str) -> List[int]:
        """Union of per-machine vertex sets stored under ``key`` (readout)."""
        marked: List[int] = []
        for chunk in self.sim.harvest(
            lambda machine: list(machine.store.get(key, ()))
        ):
            marked.extend(chunk)
        return sorted(set(marked))
