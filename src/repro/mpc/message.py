"""Messages exchanged between simulated MPC machines.

Payloads are tuples of machine words (Python ints); the word count of a
message is simply the tuple length.  Restricting payloads to flat integer
tuples keeps the simulator's communication accounting honest — there is no
way to smuggle an unbounded object across the network in "one word".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import MPCRoutingError


@dataclass(frozen=True)
class Message:
    """A message addressed to machine ``dst`` carrying integer words.

    >>> Message(2, (7, 8, 9)).words
    3
    """

    dst: int
    payload: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.dst < 0:
            raise MPCRoutingError(f"invalid destination {self.dst}")
        if not isinstance(self.payload, tuple):
            raise TypeError(
                f"payload must be a tuple of ints, got {type(self.payload).__name__}"
            )
        for word in self.payload:
            if not isinstance(word, int) or isinstance(word, bool):
                raise TypeError(
                    f"payload words must be plain ints, got {word!r}"
                )

    @property
    def words(self) -> int:
        """Size of the message in machine words."""
        return len(self.payload)
