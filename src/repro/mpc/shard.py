"""Sharded, out-of-core superstep execution — graphs bigger than RAM.

Every other backend keeps all ``k`` simulated machines resident in the
driver process, so the "low-space" MPC regimes are simulated with O(full
graph) real memory.  :class:`ShardBackend` honours the memory constraint
at the *simulator* level: machines are grouped into contiguous id-ordered
shards, each shard's ``(store, inbox)`` state lives pickled in a spill
directory, and only **one shard is resident at a time**.

Determinism is preserved by construction, not by luck:

* Supersteps process shards in ascending order and machines in ascending
  id within a shard — the global visitation order is exactly the serial
  backend's.
* The exchange spools messages to per-destination-shard chunk files in
  the order senders produce them (sender id ascending, then send order),
  so concatenating a spool file reproduces the serial arrival order
  bit-for-bit.  No process ever buffers a full round's traffic: spool
  buffers flush every ``chunk_messages`` messages.
* Budget violations and routing errors are raised with the identical
  type, message text, and machine-id order as the serial routing loop in
  :meth:`~repro.mpc.simulator.Simulator.communicate` — the shard-parity
  CI gate pins this.

Driver-side code must not touch ``machines[i].store`` directly while this
backend owns state (the resident copy is usually a cleared husk); reads
and plants go through :meth:`run_harvest`, which the simulator exposes as
:meth:`~repro.mpc.simulator.Simulator.harvest`.

Knobs: ``REPRO_SHARD_DIR`` overrides the spill directory,
``REPRO_SHARD_CHUNK`` the messages-per-flush chunk size.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MPCConfigError, MPCRoutingError, MPCViolationError
from repro.mpc.backends import (
    ExchangeStats,
    MachineFn,
    SuperstepBackend,
    _chunk_ranges,
)
from repro.mpc.machine import Machine, words_of

DEFAULT_NUM_SHARDS = 4
DEFAULT_CHUNK_MESSAGES = 4096

SPILL_DIR_ENV = "REPRO_SHARD_DIR"
CHUNK_ENV = "REPRO_SHARD_CHUNK"


class ShardBackend(SuperstepBackend):
    """Out-of-core execution: one machine shard resident at a time.

    ``num_shards=0`` picks :data:`DEFAULT_NUM_SHARDS`; the count is
    clamped to the machine count on attach.  ``chunk_messages`` bounds
    the in-memory spool buffer per destination shard during an exchange.
    ``spill_dir`` (or ``REPRO_SHARD_DIR``) roots the spill files; by
    default a private temporary directory is created and removed on
    :meth:`shutdown`.
    """

    name = "shard"
    owns_state = True
    routes_messages = True

    def __init__(
        self,
        num_shards: int = 0,
        chunk_messages: int = 0,
        spill_dir: Optional[str] = None,
    ):
        if num_shards < 0:
            raise MPCConfigError(f"num_shards must be >= 0, got {num_shards}")
        if chunk_messages < 0:
            raise MPCConfigError(
                f"chunk_messages must be >= 0, got {chunk_messages}"
            )
        self.num_shards = num_shards or DEFAULT_NUM_SHARDS
        env_chunk = int(os.environ.get(CHUNK_ENV, "0") or "0")
        self.chunk_messages = (
            chunk_messages or env_chunk or DEFAULT_CHUNK_MESSAGES
        )
        self._spill_root = spill_dir or os.environ.get(SPILL_DIR_ENV)
        self._dir: Optional[str] = None
        self._own_dir = False
        self._shards: List[range] = []
        self._shard_of: List[int] = []
        self._words: List[int] = []
        self._attached = False
        self._governor = None
        self._stats = {
            "local_steps": 0,
            "exchange_steps": 0,
            "harvests": 0,
            "shard_loads": 0,
            "shard_spills": 0,
            "chunks_spooled": 0,
            "max_resident_words": 0,
            "max_resident_machines": 0,
            "governed_exchanges": 0,
            "min_chunk_messages": 0,
        }

    def attach_governor(self, governor) -> None:
        """Let a :class:`~repro.mpc.governor.LoadGovernor` throttle spools.

        Under a governor the per-exchange flush threshold shrinks with
        the observed budget headroom (dense rounds -> smaller resident
        spool buffers).  Driver memory only: flush boundaries never
        appear in any model quantity, so governed and ungoverned
        exchanges deliver bit-identical rounds.
        """
        self._governor = governor

    # -- lifecycle ------------------------------------------------------
    def _ensure_dir(self) -> str:
        if self._dir is None:
            if self._spill_root is not None:
                os.makedirs(self._spill_root, exist_ok=True)
            self._dir = tempfile.mkdtemp(
                prefix="repro-shard-", dir=self._spill_root
            )
            self._own_dir = True
        return self._dir

    def _attach(self, machines: Sequence[Machine]) -> None:
        """First contact: partition machines into shards and spill them all.

        Whatever state the machines hold at this point (normally nothing;
        the graph is planted through ``local``) becomes shard 0..p-1 on
        disk, and the in-driver ``Machine`` objects are cleared — from
        here on the spill files are the source of truth.
        """
        if self._attached:
            return
        self._ensure_dir()
        k = len(machines)
        self._shards = _chunk_ranges(k, self.num_shards)
        self._shard_of = [0] * k
        for sid, rng in enumerate(self._shards):
            for mid in rng:
                self._shard_of[mid] = sid
        self._words = [0] * k
        for sid in range(len(self._shards)):
            self._spill(machines, sid)
        self._attached = True

    def _state_path(self, sid: int) -> str:
        return os.path.join(self._ensure_dir(), f"shard_{sid}.pkl")

    def _spool_path(self, sid: int) -> str:
        return os.path.join(self._ensure_dir(), f"spool_{sid}.pkl")

    def _load(self, machines: Sequence[Machine], sid: int) -> None:
        with open(self._state_path(sid), "rb") as handle:
            states: List[Tuple[dict, list]] = pickle.load(handle)
        for offset, mid in enumerate(self._shards[sid]):
            store, inbox = states[offset]
            machines[mid].store = store
            machines[mid].inbox = inbox
        self._stats["shard_loads"] += 1

    def _spill(self, machines: Sequence[Machine], sid: int) -> None:
        rng = self._shards[sid]
        states = []
        resident = 0
        for mid in rng:
            machine = machines[mid]
            states.append((machine.store, machine.inbox))
            words = words_of(machine.store) + words_of(machine.inbox)
            self._words[mid] = words
            resident += words
        with open(self._state_path(sid), "wb") as handle:
            pickle.dump(states, handle, protocol=pickle.HIGHEST_PROTOCOL)
        for mid in rng:
            machines[mid].store = {}
            machines[mid].inbox = []
        self._stats["shard_spills"] += 1
        if resident > self._stats["max_resident_words"]:
            self._stats["max_resident_words"] = resident
        if len(rng) > self._stats["max_resident_machines"]:
            self._stats["max_resident_machines"] = len(rng)

    def shutdown(self) -> None:
        if self._own_dir and self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
        self._dir = None
        self._own_dir = False
        self._attached = False
        self._shards = []
        self._shard_of = []
        self._words = []

    def stats(self) -> Dict[str, int]:
        out = dict(self._stats)
        out["num_shards"] = self.num_shards
        return out

    # -- contract queries -----------------------------------------------
    def memory_snapshot(self) -> Optional[List[int]]:
        if not self._attached:
            return None
        return list(self._words)

    def resident_machines_hint(self) -> Optional[int]:
        if not self._shards:
            return None
        return max(len(rng) for rng in self._shards)

    # -- supersteps -----------------------------------------------------
    def run_local(self, machines: Sequence[Machine], fn: MachineFn) -> None:
        self._attach(machines)
        self._stats["local_steps"] += 1
        for sid in range(len(self._shards)):
            self._load(machines, sid)
            for mid in self._shards[sid]:
                fn(machines[mid])
            self._spill(machines, sid)

    def run_exchange(
        self,
        machines: Sequence[Machine],
        fn: MachineFn,
        *,
        memory_words: int,
        enforce: bool = True,
        want_sent_per_machine: bool = False,
    ) -> ExchangeStats:
        self._attach(machines)
        self._stats["exchange_steps"] += 1
        chunk_messages = self.chunk_messages
        if self._governor is not None:
            chunk_messages = self._governor.scale_chunk(self.chunk_messages)
            if chunk_messages != self.chunk_messages:
                self._stats["governed_exchanges"] += 1
            if (
                self._stats["min_chunk_messages"] == 0
                or chunk_messages < self._stats["min_chunk_messages"]
            ):
                self._stats["min_chunk_messages"] = chunk_messages
        k = len(machines)
        num_shards = len(self._shards)
        received_words = [0] * k
        sent_per_machine = [0] * k if want_sent_per_machine else None
        total_messages = 0
        total_words = 0
        max_sent = 0

        # Phase A: run senders shard by shard (ascending mid = serial
        # order) and spool each message toward its destination shard.
        # Buffers flush every ``chunk_messages`` messages, so the driver
        # holds O(chunk · shards) payloads, never the full round.
        buffers: List[List[Tuple[int, Tuple[int, ...]]]] = [
            [] for _ in range(num_shards)
        ]
        spools: List[Optional[object]] = [None] * num_shards

        def _flush(dst_sid: int) -> None:
            if not buffers[dst_sid]:
                return
            if spools[dst_sid] is None:
                spools[dst_sid] = open(self._spool_path(dst_sid), "wb")
            pickle.dump(
                buffers[dst_sid],
                spools[dst_sid],
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            self._stats["chunks_spooled"] += 1
            buffers[dst_sid] = []

        try:
            for sid in range(num_shards):
                self._load(machines, sid)
                for sender in self._shards[sid]:
                    outbox = fn(machines[sender])
                    sent_words = 0
                    for message in outbox if outbox is not None else ():
                        if not 0 <= message.dst < k:
                            raise MPCRoutingError(
                                f"machine {sender} sent to nonexistent "
                                f"machine {message.dst} (k={k})"
                            )
                        sent_words += message.words
                        received_words[message.dst] += message.words
                        dst_sid = self._shard_of[message.dst]
                        buffers[dst_sid].append(
                            (message.dst, message.payload)
                        )
                        if len(buffers[dst_sid]) >= chunk_messages:
                            _flush(dst_sid)
                        total_messages += 1
                    total_words += sent_words
                    if sent_words > max_sent:
                        max_sent = sent_words
                    if sent_per_machine is not None:
                        sent_per_machine[sender] = sent_words
                    if enforce and sent_words > memory_words:
                        raise MPCViolationError(
                            f"machine {sender} sent {sent_words} words in "
                            f"one round, budget S={memory_words}"
                        )
                self._spill(machines, sid)
            for dst_sid in range(num_shards):
                _flush(dst_sid)
        finally:
            for spool in spools:
                if spool is not None:
                    spool.close()

        max_received = max(received_words, default=0)
        if enforce:
            for mid, words in enumerate(received_words):
                if words > memory_words:
                    raise MPCViolationError(
                        f"machine {mid} received {words} words in one "
                        f"round, budget S={memory_words}"
                    )

        # Phase B: deliver.  Each shard's spool is replayed in write
        # order — sender id ascending, then send order — which is the
        # serial arrival order.  Every machine gets a fresh inbox (an
        # empty one if nothing arrived), exactly like the serial path.
        for sid in range(num_shards):
            self._load(machines, sid)
            for mid in self._shards[sid]:
                machines[mid].inbox = []
            spool_path = self._spool_path(sid)
            if os.path.exists(spool_path):
                with open(spool_path, "rb") as handle:
                    while True:
                        try:
                            chunk = pickle.load(handle)
                        except EOFError:
                            break
                        for dst, payload in chunk:
                            machines[dst].inbox.append(payload)
                os.unlink(spool_path)
            self._spill(machines, sid)

        return ExchangeStats(
            total_messages=total_messages,
            total_words=total_words,
            max_sent=max_sent,
            max_received=max_received,
            received_per_machine=received_words,
            sent_per_machine=sent_per_machine,
        )

    # -- driver access --------------------------------------------------
    def run_harvest(
        self,
        machines: Sequence[Machine],
        fn: MachineFn,
        only: Optional[Sequence[int]] = None,
    ) -> List[object]:
        self._attach(machines)
        self._stats["harvests"] += 1
        if only is None:
            target_ids = list(range(len(machines)))
        else:
            target_ids = list(only)
        by_shard: Dict[int, List[int]] = {}
        for mid in target_ids:
            by_shard.setdefault(self._shard_of[mid], []).append(mid)
        results: Dict[int, object] = {}
        for sid in sorted(by_shard):
            self._load(machines, sid)
            for mid in sorted(by_shard[sid]):
                results[mid] = fn(machines[mid])
            # fn may have mutated (popped a staging key, planted a
            # value): the spill persists it.
            self._spill(machines, sid)
        return [results[mid] for mid in target_ids]
