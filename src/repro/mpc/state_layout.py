"""Flat machine-local state: CSR adjacency, id maps, and kernel choice.

The simulator's machine stores hold adjacency as ``{v: (neighbours,)}``
dicts — the representation the word accountant audits and the message
layer serialises.  The hot *compute* loops (hash-threshold marking,
conditional-expectation scans) do not need that flexibility: they need
every id and every edge endpoint as a flat integer array so one NumPy
expression replaces a per-vertex/per-edge Python loop.

This module is that bridge, plus the kernel-selection contract:

``resolve_kernel`` / ``kernel_of``
    Map a requested kernel name to the one that will actually run.
    Resolution order: explicit value (``MPCConfig.kernel``, CLI
    ``--kernel``) > the ``REPRO_KERNEL`` environment variable > the
    pure-Python reference kernel.  Requesting ``numpy`` where NumPy is
    not importable silently falls back to ``python`` — NumPy is an
    optional dependency and the fallback is a first-class path (CI runs
    the whole tier-1 suite without it).

``MachineCSR``
    One machine's adjacency layer as flat arrays: ``ids`` (row order =
    the store dict's insertion order, so rebuilt dicts iterate
    identically), ``indptr``/``indices`` (CSR neighbour storage — the
    flat-ball layout of the GMM reference implementation), ``degrees``,
    and an ``id_to_index`` map.  Built once per superstep from the dict
    and discarded — arrays never land in a machine store, so the word
    accountant and the budget enforcement see exactly the state they
    always saw.

``hash_ids``
    The affine family ``(a*x + b) mod p`` evaluated over an id array in
    one vectorized expression.  Exactness guard: the int64 product
    ``a * x`` is exact only for ``p <= 2**31`` (``a, x < p`` gives
    ``a*x < 2**62 < 2**63``); :func:`supports_modulus` gates every
    vectorized path and callers fall back to the Python kernel above it,
    so a larger field can never silently wrap.

**Bit-identity is the contract.**  Every array path must produce the
same Python objects the reference kernel produces — same dict contents
in the same insertion order, same sorted lists, plain ``int``s (never
``numpy.int64``, which the word accountant rejects by design).  The
dual-kernel parity gate in CI replays the refactor-parity oracle under
both kernels and fails on any record diff.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import MPCConfigError

KERNEL_PYTHON = "python"
KERNEL_NUMPY = "numpy"
KERNELS = (KERNEL_PYTHON, KERNEL_NUMPY)

# Environment override consumed when a config leaves the kernel unset.
KERNEL_ENV = "REPRO_KERNEL"
# Test hook: pretend NumPy is not installed (exercises the fallback
# without uninstalling anything).
NO_NUMPY_ENV = "REPRO_NO_NUMPY"

# Largest modulus the int64 hash product is exact for (see module doc).
MAX_VECTOR_MODULUS = 1 << 31

_numpy_cache: List[object] = []  # [module-or-None] once probed


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when unavailable (memoized).

    ``REPRO_NO_NUMPY`` (any non-empty value) forces ``None`` — it is
    checked on every call, not memoized, so tests can flip it.
    """
    if os.environ.get(NO_NUMPY_ENV):
        return None
    if not _numpy_cache:
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy_cache.append(numpy)
    return _numpy_cache[0]


def numpy_available() -> bool:
    """True when the numpy kernel can actually run."""
    return numpy_or_none() is not None


def resolve_kernel(requested: Optional[str] = None) -> str:
    """Resolve a kernel request to the kernel that will run.

    ``requested`` is an explicit choice (``MPCConfig.kernel``, CLI
    ``--kernel``) and wins when set; otherwise the ``REPRO_KERNEL``
    environment variable is consulted; otherwise the pure-Python
    reference kernel runs.  ``numpy`` degrades to ``python``
    automatically when NumPy is not importable.

    >>> resolve_kernel("python")
    'python'
    """
    name = requested
    if name is None or name == "":
        name = os.environ.get(KERNEL_ENV) or KERNEL_PYTHON
    if name not in KERNELS:
        raise MPCConfigError(
            f"unknown kernel {name!r}; expected one of {KERNELS}"
        )
    if name == KERNEL_NUMPY and not numpy_available():
        return KERNEL_PYTHON
    return name


def kernel_of(sim) -> str:
    """The resolved kernel for a simulator's configuration."""
    return resolve_kernel(getattr(sim.config, "kernel", None))


def supports_modulus(p: int) -> bool:
    """True when the vectorized hash is exact for field modulus ``p``."""
    return 2 <= p <= MAX_VECTOR_MODULUS


def hash_ids(np, ids, a: int, b: int, p: int):
    """Vectorized affine hash ``(a*ids + b) mod p`` (int64, exact).

    ``ids`` is an int64 array with every entry in ``[0, p)``; callers
    must have checked :func:`supports_modulus` first.
    """
    return (a * ids + b) % p


class MachineCSR:
    """One adjacency layer of one machine, as flat arrays.

    Row order is the adjacency dict's insertion order — the same order
    every Python-kernel loop iterates — so array paths that rebuild
    dicts or emit per-vertex lists reproduce the reference kernel's
    output bit for bit.  Transient by design: build inside a superstep
    callback, compute, drop.  Never store one (the word accountant
    rejects arrays, deliberately).
    """

    __slots__ = ("np", "ids", "indptr", "indices", "degrees", "_id_to_index")

    def __init__(self, np, ids, indptr, indices, degrees):
        self.np = np
        self.ids = ids
        self.indptr = indptr
        self.indices = indices
        self.degrees = degrees
        self._id_to_index: Optional[Dict[int, int]] = None

    @classmethod
    def from_adjacency(
        cls, adj: Dict[int, Sequence[int]], np=None
    ) -> "MachineCSR":
        """Build from a machine's ``{v: (neighbours,)}`` store entry."""
        if np is None:
            np = numpy_or_none()
        if np is None:  # pragma: no cover - callers gate on the kernel
            raise MPCConfigError("MachineCSR requires numpy")
        ids = np.fromiter(adj.keys(), dtype=np.int64, count=len(adj))
        degrees = np.fromiter(
            (len(nbrs) for nbrs in adj.values()),
            dtype=np.int64,
            count=len(adj),
        )
        indptr = np.zeros(len(adj) + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        total = int(indptr[-1]) if len(adj) else 0
        indices = np.fromiter(
            (u for nbrs in adj.values() for u in nbrs),
            dtype=np.int64,
            count=total,
        )
        return cls(np, ids, indptr, indices, degrees)

    @property
    def num_vertices(self) -> int:
        return int(self.ids.shape[0])

    @property
    def id_to_index(self) -> Dict[int, int]:
        """Global id -> row index (built lazily, once per superstep)."""
        if self._id_to_index is None:
            self._id_to_index = {
                int(v): i for i, v in enumerate(self.ids.tolist())
            }
        return self._id_to_index

    def hash_ids(self, seed):
        """``h(v)`` for every row id, in row order."""
        return hash_ids(self.np, self.ids, seed.a, seed.b, seed.p)

    def hash_indices(self, seed):
        """``h(u)`` for every CSR neighbour entry, in storage order."""
        return hash_ids(self.np, self.indices, seed.a, seed.b, seed.p)

    def row_any(self, entry_mask):
        """Per-row "any neighbour entry satisfies ``entry_mask``".

        ``entry_mask`` is a boolean array over ``indices``.  Rows with
        no entries report ``False`` (``np.add.reduceat`` is undefined on
        empty rows, so they are routed around explicitly).
        """
        np = self.np
        out = np.zeros(self.num_vertices, dtype=bool)
        nonempty = self.degrees > 0
        if bool(nonempty.any()):
            starts = self.indptr[:-1][nonempty]
            # Between two consecutive non-empty rows only empty rows
            # occur, which occupy no entries — each reduceat segment is
            # exactly one row's slice.
            sums = np.add.reduceat(
                entry_mask.astype(np.int64), starts
            )
            out[nonempty] = sums > 0
        return out

    def sampled_subgraph(
        self, seed, threshold: int
    ) -> Dict[int, Tuple[int, ...]]:
        """``{v: (u for u in N(v) if h(u) < T)}`` for sampled rows.

        The induced-level construction of sparsify-and-gather: keep rows
        whose id hashes below ``threshold`` and filter each kept row's
        neighbour entries by the same predicate.  Dict insertion order
        equals row order, matching the reference kernel's comprehension.
        """
        np = self.np
        row_hash = self.hash_ids(seed)
        entry_keep = self.hash_indices(seed) < threshold
        out: Dict[int, Tuple[int, ...]] = {}
        keep_rows = np.nonzero(row_hash < threshold)[0].tolist()
        indptr = self.indptr
        indices = self.indices
        ids = self.ids.tolist()
        for i in keep_rows:
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            out[ids[i]] = tuple(indices[lo:hi][entry_keep[lo:hi]].tolist())
        return out


def flatten_groups(
    groups: Iterable[Sequence[int]], np=None
) -> Tuple[object, object]:
    """Flatten variable-length integer groups to ``(indptr, values)``.

    The generic flat-ball layout: ``values[indptr[i]:indptr[i+1]]`` is
    group ``i``.  Used wherever per-vertex lists (winner sets, incident
    edges) need array treatment without per-group Python loops.
    """
    if np is None:
        np = numpy_or_none()
    if np is None:  # pragma: no cover - callers gate on the kernel
        raise MPCConfigError("flatten_groups requires numpy")
    groups = list(groups)
    lengths = np.fromiter(
        (len(g) for g in groups), dtype=np.int64, count=len(groups)
    )
    indptr = np.zeros(len(groups) + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    values = np.fromiter(
        (x for g in groups for x in g),
        dtype=np.int64,
        count=int(indptr[-1]) if len(groups) else 0,
    )
    return indptr, values


class BoundedCache:
    """A tiny LRU for driver-side per-machine caches.

    ``capacity=None`` means unbounded — correct when every machine stays
    resident (serial/process backends).  Out-of-core backends report how
    many machines are resident at once
    (:meth:`~repro.mpc.backends.SuperstepBackend.resident_machines_hint`);
    sizing per-machine caches to that bound keeps the driver's footprint
    O(shard) instead of silently rebuilding O(all machines) state the
    backend just spilled.

    >>> c = BoundedCache(2)
    >>> c.put(1, "a"); c.put(2, "b"); c.put(3, "c")
    >>> c.get(1) is None
    True
    >>> c.get(3)
    'c'
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise MPCConfigError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._entries: "OrderedDict" = OrderedDict()

    def get(self, key):
        entry = self._entries.get(key)
        if entry is not None or key in self._entries:
            self._entries.move_to_end(key)
        return entry

    def put(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)
