"""The MPC superstep engine.

An algorithm drives the simulator through two verbs:

``local(fn)``
    Run ``fn(machine)`` on every machine.  Free (no round consumed) —
    in the MPC model local computation within a round is unbounded — but
    memory budgets are still enforced afterwards.

``communicate(fn)``
    Run ``fn(machine) -> iterable[Message]`` on every machine, route the
    messages, enforce the per-machine send/receive budget ``S``, deliver
    inboxes, and advance the round counter.

Determinism: machines are processed in id order and each inbox is sorted by
``(sender id, arrival index)``, so a simulated run is a pure function of
(algorithm, input, config).

*Execution* of the machine callbacks is delegated to a pluggable
:class:`~repro.mpc.backends.SuperstepBackend` (serial by default; an
opt-in process pool fans callbacks across workers).  Backends change
wall-clock only: results are merged in machine-id order before routing,
so every backend yields the identical run.  Each superstep's wall-clock
is recorded into :class:`~repro.mpc.metrics.RunMetrics` (per round and
per phase) so simulator performance is measured, never asserted.

Budget enforcement is strict by default: a machine exceeding its memory
budget, or sending/receiving more than ``S`` words in one superstep, aborts
the run with :class:`~repro.errors.MPCViolationError`.  Benchmarks run
strict, certifying that measured round counts come from model-legal
executions.

When tracing is enabled (``MPCConfig.trace`` or an injected
:class:`~repro.mpc.trace.TraceRecorder`), each superstep additionally
emits a structured event — per-machine words sent/received, memory
high-water, budget headroom, active phase, backend counters — and the
budget auditor warns when utilization crosses the configured fraction of
``S`` *before* the hard fault would fire.  Tracing is a pure observer:
every hook is gated on ``self.trace is not None`` (zero cost when
disabled) and nothing recorded ever feeds back into routing,
enforcement, or algorithm state, so traced runs stay bit-identical.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import MPCRoutingError, MPCViolationError
from repro.mpc.backends import SuperstepBackend, resolve_backend
from repro.mpc.config import MPCConfig
from repro.mpc.governor import GovernorPolicy, LoadGovernor
from repro.mpc.machine import Machine
from repro.mpc.message import Message
from repro.mpc.metrics import RunMetrics
from repro.mpc.trace import TraceRecorder

MachineFn = Callable[[Machine], Optional[Iterable[Message]]]

#: Environment override for the execution backend, mirroring
#: ``REPRO_KERNEL``: applied only when neither an explicit backend object
#: nor a non-default ``config.backend`` was chosen, so programmatic
#: choices always win.  This is how the shard-parity CI gate replays the
#: whole refactor-parity oracle under ``--backend shard`` without
#: touching the frozen oracle cells.
BACKEND_ENV = "REPRO_BACKEND"

#: Environment override enabling the load governor, mirroring the
#: backend/kernel overrides: applied only when the config did not opt in
#: itself, so programmatic choices win.  This is how CI replays the
#: refactor-parity oracle governed — the oracle's cells are feasible, so
#: under the DESIGN.md section 15 contract a governed replay must stay
#: bit-identical.
GOVERNED_ENV = "REPRO_GOVERNED"


class Simulator:
    """Executes MPC supersteps under a fixed :class:`MPCConfig`.

    ``backend`` overrides the execution backend named by
    ``config.backend`` (useful for injecting a pre-built or instrumented
    backend in tests); both select *how* callbacks run, never what they
    compute.  ``trace`` likewise overrides ``config.trace``: pass a
    :class:`TraceRecorder` to observe a run regardless of config.
    """

    def __init__(
        self,
        config: MPCConfig,
        enforce: bool = True,
        backend: Optional[SuperstepBackend] = None,
        trace: Optional[TraceRecorder] = None,
        governor: Optional[LoadGovernor] = None,
    ):
        self.config = config
        self.enforce = enforce
        self.machines: List[Machine] = [
            Machine(mid) for mid in range(config.num_machines)
        ]
        self.metrics = RunMetrics()
        if backend is not None:
            self.backend: SuperstepBackend = backend
        else:
            name = config.backend
            if name == "serial":
                name = os.environ.get(BACKEND_ENV) or name
            self.backend = resolve_backend(name, config.backend_workers)
        if trace is not None:
            self.trace: Optional[TraceRecorder] = trace
        elif config.trace:
            self.trace = TraceRecorder(config, config.trace_warn_utilization)
        else:
            self.trace = None
        if governor is not None:
            self.governor: Optional[LoadGovernor] = governor
        elif config.governed or os.environ.get(GOVERNED_ENV, "") not in (
            "", "0", "false",
        ):
            self.governor = LoadGovernor(
                config.memory_words,
                GovernorPolicy(
                    target_num=config.governor_target_percent,
                    target_den=100,
                ),
            )
        else:
            self.governor = None
        if self.governor is not None:
            attach = getattr(self.backend, "attach_governor", None)
            if attach is not None:
                attach(self.governor)

    # ------------------------------------------------------------------
    # Supersteps
    # ------------------------------------------------------------------
    def local(self, fn: Callable[[Machine], None]) -> None:
        """Apply a local computation to every machine (no round cost)."""
        started = time.perf_counter()
        self.backend.run_local(self.machines, fn)
        elapsed = time.perf_counter() - started
        self.metrics.record_elapsed(elapsed)
        if self.trace is not None:
            self.trace.record_local(
                round_index=self.metrics.rounds,
                phase=self.metrics.current_phase(),
                elapsed_s=elapsed,
                backend_stats=self.backend.stats(),
            )
        self._check_memory()

    def communicate(self, fn: MachineFn) -> None:
        """One communication superstep.

        ``fn`` runs on each machine and returns the messages it sends this
        round (or None).  All messages are then routed simultaneously —
        synchronous semantics: nothing sent this round is visible until the
        round completes.
        """
        started = time.perf_counter()
        if self.backend.routes_messages:
            # A state-owning backend performs the whole route-validate-
            # deliver cycle itself (it cannot hand us all outboxes at
            # once without materializing the round's traffic) and reports
            # back the aggregates this loop would have produced.
            stats = self.backend.run_exchange(
                self.machines,
                fn,
                memory_words=self.config.memory_words,
                enforce=self.enforce,
                want_sent_per_machine=self.trace is not None,
            )
            self.metrics.record_round(
                messages=stats.total_messages,
                words=stats.total_words,
                max_sent=stats.max_sent,
                max_received=stats.max_received,
            )
            if self.governor is not None:
                # Same model quantities the trace records — wall clock
                # never reaches the governor.
                self.governor.observe_round(
                    words=stats.total_words,
                    max_sent=stats.max_sent,
                    max_received=stats.max_received,
                )
            elapsed = time.perf_counter() - started
            self.metrics.record_elapsed(elapsed, is_round=True)
            if self.trace is not None:
                self.trace.record_round(
                    round_index=self.metrics.rounds,
                    phase=self.metrics.current_phase(),
                    elapsed_s=elapsed,
                    messages=stats.total_messages,
                    words=stats.total_words,
                    max_sent=stats.max_sent,
                    max_received=stats.max_received,
                    sent_per_machine=stats.sent_per_machine,
                    received_per_machine=stats.received_per_machine,
                    backend_stats=self.backend.stats(),
                )
            self._check_memory()
            return
        outboxes = self.backend.run_communicate(self.machines, fn)

        inboxes: List[List[Tuple[int, ...]]] = [
            [] for _ in self.machines
        ]
        received_words = [0] * len(self.machines)
        sent_per_machine = [0] * len(self.machines) if self.trace else None
        total_messages = 0
        total_words = 0
        max_sent = 0

        for sender, outbox in enumerate(outboxes):
            sent_words = 0
            for message in outbox:
                # Both bounds matter: a negative dst would silently wrap
                # via Python list indexing and deliver to machine k+dst.
                if not 0 <= message.dst < len(self.machines):
                    raise MPCRoutingError(
                        f"machine {sender} sent to nonexistent machine "
                        f"{message.dst} (k={len(self.machines)})"
                    )
                sent_words += message.words
                received_words[message.dst] += message.words
                inboxes[message.dst].append(message.payload)
                total_messages += 1
            total_words += sent_words
            max_sent = max(max_sent, sent_words)
            if sent_per_machine is not None:
                sent_per_machine[sender] = sent_words
            if self.enforce and sent_words > self.config.memory_words:
                raise MPCViolationError(
                    f"machine {sender} sent {sent_words} words in one round, "
                    f"budget S={self.config.memory_words}"
                )

        max_received = max(received_words, default=0)
        if self.enforce:
            for mid, words in enumerate(received_words):
                if words > self.config.memory_words:
                    raise MPCViolationError(
                        f"machine {mid} received {words} words in one "
                        f"round, budget S={self.config.memory_words}"
                    )

        for machine, inbox in zip(self.machines, inboxes):
            machine.inbox = inbox  # arrival order: sender id, then send order

        self.metrics.record_round(
            messages=total_messages,
            words=total_words,
            max_sent=max_sent,
            max_received=max_received,
        )
        if self.governor is not None:
            self.governor.observe_round(
                words=total_words,
                max_sent=max_sent,
                max_received=max_received,
            )
        elapsed = time.perf_counter() - started
        self.metrics.record_elapsed(elapsed, is_round=True)
        if self.trace is not None:
            self.trace.record_round(
                round_index=self.metrics.rounds,
                phase=self.metrics.current_phase(),
                elapsed_s=elapsed,
                messages=total_messages,
                words=total_words,
                max_sent=max_sent,
                max_received=max_received,
                sent_per_machine=sent_per_machine,
                received_per_machine=received_words,
                backend_stats=self.backend.stats(),
            )
        self._check_memory()

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def begin_phase(self, name: str) -> None:
        """Label subsequent rounds with a phase name (for metrics)."""
        self.metrics.begin_phase(name)
        if self.trace is not None:
            self.trace.record_phase(name, self.metrics.rounds)

    def machine(self, mid: int) -> Machine:
        """Return machine ``mid``.

        Under a state-owning backend the returned object's store may be a
        cleared husk (the real state is spilled); driver-side reads must
        go through :meth:`harvest` instead.
        """
        return self.machines[mid]

    def harvest(
        self,
        fn: Callable[[Machine], object],
        only: Optional[Sequence[int]] = None,
    ) -> List[object]:
        """Driver-side read (or plant) against live machine state.

        Applies ``fn`` to the selected machines (all of them, in id
        order, when ``only`` is None) and returns the results in the
        order requested.  This is the only sanctioned way for driver code
        to touch machine stores between supersteps: state-owning backends
        page the right shard in, persist any mutation ``fn`` made, and
        keep their memory accounting coherent.  On in-memory backends it
        degenerates to a plain loop.
        """
        return self.backend.run_harvest(self.machines, fn, only)

    def shutdown(self) -> None:
        """Release backend resources (worker pools); safe to call twice."""
        self.backend.shutdown()

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    @property
    def num_machines(self) -> int:
        """Machine count ``k``."""
        return len(self.machines)

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    def _check_memory(self) -> None:
        snapshot = self.backend.memory_snapshot()
        if snapshot is not None:
            # State-owning backend: audit the words it priced at spill
            # time (same words_of contract, same id order, same fault).
            for mid, words in enumerate(snapshot):
                self.metrics.record_memory(words)
                if self.trace is not None:
                    self.trace.record_memory(mid, words, self.metrics.rounds)
                if self.governor is not None:
                    self.governor.observe_memory(words)
                if self.enforce and words > self.config.memory_words:
                    raise MPCViolationError(
                        f"machine {mid} holds {words} words, budget "
                        f"S={self.config.memory_words}"
                    )
            return
        for machine in self.machines:
            words = machine.memory_words()
            self.metrics.record_memory(words)
            if self.trace is not None:
                self.trace.record_memory(
                    machine.mid, words, self.metrics.rounds
                )
            if self.governor is not None:
                self.governor.observe_memory(words)
            if self.enforce and words > self.config.memory_words:
                raise MPCViolationError(
                    f"machine {machine.mid} holds {words} words, budget "
                    f"S={self.config.memory_words}"
                )
