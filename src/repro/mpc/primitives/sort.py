"""Deterministic sample sort — the classic O(1)-round MPC primitive.

Items are fixed-width integer tuples held per machine under
``store[items_key]``.  The algorithm is sample sort with *regular
sampling* (deterministic: every machine contributes its evenly spaced
local order statistics, so no randomness is involved):

1. each machine sorts locally and sends ``k-1`` evenly spaced samples to
   machine 0                                                   (1 round)
2. machine 0 sorts the ``k(k-1)`` samples and broadcasts ``k-1``
   splitters                                       (``ceil(log_f k)`` rounds)
3. every machine routes each item to its splitter bucket       (1 round)
4. buckets sort locally — the items are now globally sorted by
   (machine id, local index).

With regular sampling no bucket exceeds ``2 * total / k`` items (plus
duplicates of a single value), the textbook guarantee.
"""

from __future__ import annotations

import bisect
from typing import List, Tuple

from repro.mpc.message import Message
from repro.mpc.primitives.broadcast import broadcast_value
from repro.mpc.simulator import Simulator

_SPLITTERS = "_prim_splitters"


def sample_sort(sim: Simulator, items_key: str, width: int) -> None:
    """Globally sort the ``width``-tuples stored under ``items_key``.

    Afterwards machine ``i`` holds a sorted run and all items on machine
    ``i`` precede all items on machine ``i + 1``.
    """
    k = sim.num_machines
    if k == 1:
        def sort_single(machine) -> None:
            machine.store[items_key] = sorted(
                tuple(item) for item in machine.store.get(items_key, [])
            )
        sim.local(sort_single)
        return

    def sort_and_sample(machine) -> List[Message]:
        items = sorted(tuple(item) for item in machine.store.get(items_key, []))
        machine.store[items_key] = items
        if not items:
            return []
        samples = []
        for j in range(1, k):
            idx = (j * len(items)) // k
            if idx < len(items):
                samples.append(items[idx])
        return [Message(0, sample) for sample in samples]

    sim.communicate(sort_and_sample)

    def pick_splitters(machine) -> None:
        if machine.mid != 0:
            return
        samples = sorted(tuple(s) for s in machine.inbox)
        machine.clear_inbox()
        splitters: List[Tuple[int, ...]] = []
        if samples:
            for j in range(1, k):
                idx = (j * len(samples)) // k
                if idx < len(samples):
                    splitters.append(samples[idx])
        # Flatten for broadcast: count followed by concatenated tuples.
        flat = [len(splitters)]
        for splitter in splitters:
            flat.extend(splitter)
        machine.store["_prim_flat_splitters"] = tuple(flat)

    sim.local(pick_splitters)

    def read_splitters(machine):
        return machine.store.pop("_prim_flat_splitters")

    flat = sim.harvest(read_splitters, only=(0,))[0]
    broadcast_value(sim, flat, _SPLITTERS)

    def route(machine) -> List[Message]:
        flat_local = machine.store.pop(_SPLITTERS)
        count = flat_local[0]
        splitters = [
            tuple(flat_local[1 + i * width : 1 + (i + 1) * width])
            for i in range(count)
        ]
        items = machine.store.pop(items_key)
        out = []
        for item in items:
            bucket = bisect.bisect_right(splitters, tuple(item))
            out.append(Message(min(bucket, k - 1), tuple(item)))
        return out

    sim.communicate(route)

    def collect(machine) -> None:
        machine.store[items_key] = sorted(
            tuple(item) for item in machine.inbox
        )
        machine.clear_inbox()

    sim.local(collect)
