"""Fanout-tree broadcast from machine 0.

After ``broadcast_value(sim, value, key)`` every machine holds ``value``
(a tuple of words) under ``store[key]``.  With per-value width ``L`` and
send budget ``S``, the fanout is ``f = max(2, S // L)`` and the cost is
``ceil(log_f k)`` rounds — one round in the common case ``S >= k * L``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.mpc.message import Message
from repro.mpc.simulator import Simulator


def broadcast_value(
    sim: Simulator, value: Tuple[int, ...], store_key: str
) -> None:
    """Broadcast ``value`` from machine 0 to all machines.

    The value is planted at machine 0 (it is produced there by a
    reduction; planting is free because machine 0 already computed it) and
    propagated along the tree.
    """
    value = tuple(value)
    width = max(1, len(value))
    # Senders pay (fanout - 1) * width words on top of live state; keep
    # the broadcast buffer within a quarter of the memory budget.
    budget = max(2, (sim.config.memory_words // 4) // width)
    fanout = min(max(2, budget), max(2, sim.num_machines))

    def plant_root(machine) -> None:
        machine.store[store_key] = value

    sim.harvest(plant_root, only=(0,))

    covered = 1
    k = sim.num_machines
    while covered < k:
        level_covered = covered

        def send_level(machine) -> List[Message]:
            mid = machine.mid
            if mid >= level_covered:
                return []
            payload = machine.store[store_key]
            out = []
            for j in range(1, fanout):
                target = mid + j * level_covered
                if level_covered <= 0:
                    break
                if target < min(k, level_covered * fanout):
                    out.append(Message(target, tuple(payload)))
            return out

        sim.communicate(send_level)

        def install(machine) -> None:
            if machine.inbox:
                machine.store[store_key] = tuple(machine.inbox[0])
                machine.clear_inbox()

        sim.local(install)
        covered = min(k, covered * fanout)
