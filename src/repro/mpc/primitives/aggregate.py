"""Converge-cast reductions.

``reduce_scalar`` / ``reduce_vector`` combine one value per machine into a
single value at machine 0 along a fanout-``f`` tree, where ``f`` is chosen
as large as the receive budget allows — with ``S >= k`` the tree is a star
and the reduction costs exactly one round; in general
``ceil(log_f k)`` rounds.

The reduction operator must be associative and commutative (sums, min,
max, elementwise tuple sums); partial combination order is deterministic
but unspecified.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.mpc.message import Message
from repro.mpc.simulator import Simulator

_PARTIAL = "_prim_partial"


def _fanout(sim: Simulator, value_words: int) -> int:
    # A tree leader buffers (fanout - 1) * value_words inbox words on top
    # of its live state, so only a quarter of the memory budget is spent
    # on the reduction buffer.
    budget = max(2, (sim.config.memory_words // 4) // max(1, value_words))
    return min(max(2, budget), max(2, sim.num_machines))


def reduce_vector(
    sim: Simulator,
    extract: Callable,
    combine: Callable[[Tuple[int, ...], Tuple[int, ...]], Tuple[int, ...]],
    width: int,
) -> Tuple[int, ...]:
    """Reduce one ``width``-tuple per machine to machine 0; return it.

    ``extract(machine)`` supplies each machine's local tuple.  Costs
    ``ceil(log_f k)`` rounds with ``f = max(2, S // width)``.
    """
    fanout = _fanout(sim, width)

    def plant(machine) -> None:
        value = tuple(extract(machine))
        if len(value) != width:
            raise ValueError(
                f"extract returned {len(value)} words, expected {width}"
            )
        machine.store[_PARTIAL] = value

    sim.local(plant)

    stride = 1
    k = sim.num_machines
    while stride < k:
        level_stride = stride

        def send_level(machine) -> List[Message]:
            mid = machine.mid
            if mid % level_stride != 0:
                return []
            if mid % (level_stride * fanout) == 0:
                return []
            leader = mid - (mid % (level_stride * fanout))
            payload = machine.store.pop(_PARTIAL)
            return [Message(leader, tuple(payload))]

        sim.communicate(send_level)

        def merge(machine) -> None:
            if _PARTIAL not in machine.store:
                machine.clear_inbox()
                return
            value = machine.store[_PARTIAL]
            for payload in machine.inbox:
                value = tuple(combine(value, payload))
            machine.store[_PARTIAL] = value
            machine.clear_inbox()

        sim.local(merge)
        stride *= fanout

    def read_root(machine):
        return machine.store.pop(_PARTIAL)

    return tuple(sim.harvest(read_root, only=(0,))[0])


def reduce_scalar(
    sim: Simulator,
    extract: Callable,
    combine: Callable[[int, int], int],
) -> int:
    """Reduce one integer per machine to machine 0; return it.

    >>> # doctest-free: exercised in tests/mpc/test_primitives.py
    """

    def extract_tuple(machine):
        return (int(extract(machine)),)

    def combine_tuple(a, b):
        return (combine(a[0], b[0]),)

    return reduce_vector(sim, extract_tuple, combine_tuple, width=1)[0]


def all_reduce_scalar(
    sim: Simulator,
    extract: Callable,
    combine: Callable[[int, int], int],
    store_key: str,
) -> int:
    """Reduce to machine 0, then broadcast the result to every machine.

    Afterwards every machine holds the value under ``store[store_key]``.
    Returns the value.  Costs one reduction plus one broadcast.
    """
    from repro.mpc.primitives.broadcast import broadcast_value

    total = reduce_scalar(sim, extract, combine)
    broadcast_value(sim, (total,), store_key)

    def unwrap(machine) -> None:
        machine.store[store_key] = machine.store[store_key][0]

    sim.local(unwrap)
    return total
