"""Deterministic MPC building blocks.

Each primitive is expressed as supersteps on a :class:`repro.mpc.Simulator`
and costs the round count its docstring states.  They are the vocabulary
the ruling-set algorithms are written in:

* ``aggregate`` — converge-cast reduction trees (scalar and fixed-width
  vector), plus all-reduce;
* ``broadcast`` — fanout-tree broadcast from machine 0;
* ``shuffle`` — one-round keyed redistribution (the MapReduce shuffle);
* ``prefix`` — exclusive prefix sums over per-machine item counts;
* ``sort`` — deterministic sample sort (regular sampling), the classic
  O(1)-round MPC sorting primitive;
* ``dedup`` — duplicate elimination via shuffle-by-value.
"""

from repro.mpc.primitives.aggregate import (
    all_reduce_scalar,
    reduce_scalar,
    reduce_vector,
)
from repro.mpc.primitives.broadcast import broadcast_value
from repro.mpc.primitives.shuffle import shuffle
from repro.mpc.primitives.prefix import exclusive_prefix_counts
from repro.mpc.primitives.sort import sample_sort
from repro.mpc.primitives.dedup import dedup_items

__all__ = [
    "all_reduce_scalar",
    "reduce_scalar",
    "reduce_vector",
    "broadcast_value",
    "shuffle",
    "exclusive_prefix_counts",
    "sample_sort",
    "dedup_items",
]
