"""Distributed duplicate elimination.

Items (fixed-width integer tuples) are shuffled by a deterministic hash of
their value, so all copies of an item land on one machine, which keeps one
of each.  One round; afterwards ``store[items_key]`` holds the machine's
share of the distinct items, sorted.
"""

from __future__ import annotations

from typing import List

from repro.mpc.message import Message
from repro.mpc.simulator import Simulator
from repro.util.rng import splitmix64


def _item_home(item: tuple, num_machines: int) -> int:
    acc = 0x243F6A8885A308D3
    for word in item:
        acc = splitmix64(acc ^ word)
    return acc % num_machines


def dedup_items(sim: Simulator, items_key: str) -> None:
    """Remove duplicate tuples across all machines (one round)."""
    k = sim.num_machines

    def route(machine) -> List[Message]:
        items = machine.store.pop(items_key, [])
        return [
            Message(_item_home(tuple(item), k), tuple(item))
            for item in items
        ]

    sim.communicate(route)

    def keep_distinct(machine) -> None:
        machine.store[items_key] = sorted(
            {tuple(item) for item in machine.inbox}
        )
        machine.clear_inbox()

    sim.local(keep_distinct)
