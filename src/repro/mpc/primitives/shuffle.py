"""One-round keyed redistribution (the MapReduce shuffle).

``shuffle(sim, items_fn)`` runs ``items_fn`` on each machine to produce
messages, routes them, and leaves payloads in each machine's inbox.  The
helpers turn inboxes into grouped dictionaries, the form every
vertex-centric step consumes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from repro.mpc.machine import Machine
from repro.mpc.message import Message
from repro.mpc.simulator import Simulator


def shuffle(
    sim: Simulator, items_fn: Callable[[Machine], Iterable[Message]]
) -> None:
    """Route the messages produced by ``items_fn``; costs one round."""
    sim.communicate(items_fn)


def inbox_grouped_by_first(
    machine: Machine, clear: bool = True
) -> Dict[int, List[Tuple[int, ...]]]:
    """Group inbox payloads by their first word (usually a vertex id).

    Payload ``(v, rest...)`` lands under key ``v`` as ``(rest...)``.
    Groups and group members are sorted so iteration is deterministic.
    """
    groups: Dict[int, List[Tuple[int, ...]]] = {}
    for payload in machine.inbox:
        groups.setdefault(payload[0], []).append(tuple(payload[1:]))
    if clear:
        machine.clear_inbox()
    for key in groups:
        groups[key].sort()
    return dict(sorted(groups.items()))
