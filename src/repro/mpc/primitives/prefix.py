"""Exclusive prefix sums across machines.

Used to assign globally unique, dense ranks to distributed items: machine
``i`` learns the total item count on machines ``0..i-1``.  Costs two
rounds (gather counts at machine 0, scatter offsets), assuming ``k <= S/2``
— true in every supported configuration and enforced by the simulator's
I/O budget if not.
"""

from __future__ import annotations

from typing import Callable, List

from repro.mpc.machine import Machine
from repro.mpc.message import Message
from repro.mpc.simulator import Simulator

_COUNT = "_prim_count"


def exclusive_prefix_counts(
    sim: Simulator,
    count_fn: Callable[[Machine], int],
    store_key: str = "_prim_offset",
) -> int:
    """Store each machine's exclusive prefix of ``count_fn`` totals.

    After the call, ``machine.store[store_key]`` holds the sum of counts
    over all lower-id machines; the grand total is returned.
    """

    def send_count(machine) -> List[Message]:
        count = int(count_fn(machine))
        machine.store[_COUNT] = count
        return [Message(0, (machine.mid, count))]

    sim.communicate(send_count)

    def scatter(machine) -> List[Message]:
        if machine.mid != 0:
            return []
        counts = [0] * sim.num_machines
        for mid, count in machine.inbox:
            counts[mid] = count
        machine.clear_inbox()
        out = []
        running = 0
        for mid, count in enumerate(counts):
            out.append(Message(mid, (running,)))
            running += count
        machine.store["_prim_total"] = running
        return out

    sim.communicate(scatter)

    def install(machine) -> None:
        machine.store[store_key] = machine.inbox[0][0]
        machine.clear_inbox()
        machine.store.pop(_COUNT, None)

    sim.local(install)

    def read_total(machine):
        return machine.store.pop("_prim_total")

    return sim.harvest(read_total, only=(0,))[0]
