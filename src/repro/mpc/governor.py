"""Adaptive load governing: peak-hold estimation and throttle planning.

ROADMAP item 5: the related repo's fixed sampling rate violated the
per-round communication cap by ~500x on dense graphs until it was
throttled against a peak-hold ball-size estimate.  This module is our
analogue.  A :class:`LoadGovernor` watches the same per-round
words/memory signals the PR 2 trace layer records and answers three
questions for the execution layer:

* how large may the shard backend's spool-flush chunks be right now
  (:meth:`LoadGovernor.scale_chunk`),
* how many vertices may one batched exponentiation window contain
  without blowing the per-round budget
  (:meth:`LoadGovernor.plan_batch`),
* what should an unpriceable serve request be assumed to cost
  (:class:`PeakHold`, consulted by the serve daemon's admission
  estimator).

Governor contract (DESIGN.md section 15)
----------------------------------------

The governor may adapt *execution strategy* only — spool flush
thresholds (driver memory), exponentiation window sizes (round
structure), admission prices (scheduling).  It must never change
*results*: solver members, message payloads, or error texts.  Two rules
make that composable:

* **Deterministic inputs only.**  Every signal feeding a governor is a
  model quantity (words against the budget ``S``) — never wall clock —
  so a governed run is a pure function of (algorithm, input, config),
  exactly like an ungoverned one.  Repeating a governed run repeats
  every throttling decision bit-for-bit.
* **No-op at feasible sizes.**  Planners return the ungoverned value
  whenever their conservative bound fits the budget target, so governed
  and ungoverned runs are bit-identical (members *and* rounds) on
  workloads that never needed throttling.  Only a workload that would
  fault the budget ungoverned diverges — by completing in more,
  smaller rounds.

The governor is **fed by the simulator**, not by the trace: the
simulator reports the identical quantities to both, so tracing stays a
pure observer.  :meth:`LoadGovernor.feed_trace` additionally lets a
governor be primed offline from a recorded :class:`TraceRecorder` —
e.g. to warm a serve daemon from a previous run's trace — without ever
closing a feedback loop through a live recorder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import MPCConfigError

__all__ = ["GovernorPolicy", "LoadGovernor", "PeakHold"]


class PeakHold:
    """Peak-hold of a non-negative word signal, with optional decay.

    The estimator only moves up instantly: any observation at least as
    large as the held peak replaces it.  Between such observations the
    peak decays multiplicatively by ``decay_num / decay_den`` per
    observation (default 1/1 = strict peak hold, the related repo's
    ball-size estimator).  Integer arithmetic throughout: the held value
    is a deterministic function of the observation sequence on every
    platform.

    >>> ph = PeakHold()
    >>> for words in (10, 80, 30):
    ...     ph.observe(words)
    >>> ph.peak
    80
    """

    __slots__ = ("peak", "observations", "decay_num", "decay_den")

    def __init__(self, decay_num: int = 1, decay_den: int = 1):
        if decay_den <= 0 or not 0 < decay_num <= decay_den:
            raise MPCConfigError(
                "peak-hold decay must satisfy 0 < num <= den, got "
                f"{decay_num}/{decay_den}"
            )
        self.peak = 0
        self.observations = 0
        self.decay_num = decay_num
        self.decay_den = decay_den

    def observe(self, value: int) -> None:
        """Fold one observation (negative values clamp to zero)."""
        value = max(0, int(value))
        decayed = self.peak * self.decay_num // self.decay_den
        self.peak = max(value, decayed)
        self.observations += 1


@dataclass(frozen=True)
class GovernorPolicy:
    """Tuning knobs for a :class:`LoadGovernor` (all deterministic).

    ``target_num / target_den`` is the fraction of the budget ``S`` a
    planner aims at — the margin below it absorbs the traffic a
    conservative bound cannot see (request-round overhead, skewed
    responder fan-out).  ``chunk_floor`` and ``window_floor`` are the
    hard minimums throttling may reach; past them the model-honest
    behaviour is to fault, not to subdivide further.  ``decay_num /
    decay_den`` is the per-observation peak decay (1/1 = strict hold).
    """

    target_num: int = 1
    target_den: int = 2
    chunk_floor: int = 32
    window_floor: int = 1
    decay_num: int = 1
    decay_den: int = 1

    def __post_init__(self) -> None:
        if self.target_den <= 0 or not 0 < self.target_num <= self.target_den:
            raise MPCConfigError(
                "governor target must satisfy 0 < num <= den, got "
                f"{self.target_num}/{self.target_den}"
            )
        if self.chunk_floor < 1:
            raise MPCConfigError(
                f"chunk_floor must be >= 1, got {self.chunk_floor}"
            )
        if self.window_floor < 1:
            raise MPCConfigError(
                f"window_floor must be >= 1, got {self.window_floor}"
            )
        if self.decay_den <= 0 or not 0 < self.decay_num <= self.decay_den:
            raise MPCConfigError(
                "governor decay must satisfy 0 < num <= den, got "
                f"{self.decay_num}/{self.decay_den}"
            )


class LoadGovernor:
    """Peak-hold load estimator + deterministic throttle planner.

    One governor instance per run, scoped to a budget ``S``
    (``budget_words``).  The simulator feeds it every communication
    round (:meth:`observe_round`) and every memory audit
    (:meth:`observe_memory`); consumers query it between supersteps.
    All queries are pure functions of the feed history, so two runs
    with identical model behaviour make identical throttling decisions.
    """

    def __init__(
        self, budget_words: int, policy: Optional[GovernorPolicy] = None
    ):
        if budget_words < 1:
            raise MPCConfigError(
                f"budget_words must be >= 1, got {budget_words}"
            )
        self.budget_words = budget_words
        self.policy = policy if policy is not None else GovernorPolicy()
        self._round_peak = PeakHold(
            self.policy.decay_num, self.policy.decay_den
        )
        self._memory_peak = PeakHold(
            self.policy.decay_num, self.policy.decay_den
        )
        self._chunk_scalings = 0
        self._batched_steps = 0
        self._planned_steps = 0

    # -- feeding --------------------------------------------------------
    def observe_round(
        self, *, words: int, max_sent: int, max_received: int
    ) -> None:
        """Fold one communication round's traffic (model words)."""
        del words  # totals are reported for symmetry; peaks drive decisions
        self._round_peak.observe(max(max_sent, max_received))

    def observe_memory(self, words: int) -> None:
        """Fold one machine's post-superstep residency."""
        self._memory_peak.observe(words)

    def feed_trace(self, recorder: Any) -> None:
        """Prime the estimator from a recorded trace (offline feeding).

        Replays a :class:`~repro.mpc.trace.TraceRecorder`'s round events
        and machine memory peaks into the peak-hold state.  This is the
        sanctioned trace/governor coupling: the trace stays a pure
        observer during a run; a *finished* trace may seed the next
        run's governor.
        """
        for event in recorder.round_events():
            self.observe_round(
                words=event["words"],
                max_sent=event["max_sent"],
                max_received=event["max_received"],
            )
        for words in recorder.machine_peak_words.values():
            self.observe_memory(words)

    # -- queries --------------------------------------------------------
    @property
    def target_words(self) -> int:
        """The per-round word level planners aim at (a fraction of S)."""
        policy = self.policy
        return max(1, self.budget_words * policy.target_num // policy.target_den)

    def peak_round_words(self) -> int:
        """Peak-hold of per-round ``max(max_sent, max_received)``."""
        return self._round_peak.peak

    def peak_memory_words(self) -> int:
        """Peak-hold of per-machine residency."""
        return self._memory_peak.peak

    def headroom_words(self) -> int:
        """Budget minus the held round peak, clamped to >= 0."""
        return max(0, self.budget_words - self._round_peak.peak)

    def scale_chunk(self, base: int) -> int:
        """Scale a driver-side buffer size by the observed headroom.

        Returns ``base`` until the first round is observed, then shrinks
        proportionally to the remaining budget headroom, never below
        ``chunk_floor`` (or ``base`` itself when smaller).  Driver
        memory only — chunk size never appears in any model quantity, so
        this is always safe to adapt.
        """
        if base < 1:
            raise MPCConfigError(f"chunk base must be >= 1, got {base}")
        if self._round_peak.observations == 0:
            return base
        floor = min(base, self.policy.chunk_floor)
        scaled = base * self.headroom_words() // self.budget_words
        scaled = max(floor, min(base, scaled))
        if scaled != base:
            self._chunk_scalings += 1
        return scaled

    def plan_batch(
        self,
        num_vertices: int,
        per_vertex_words: Dict[int, int],
        owner_of: Callable[[int], int],
    ) -> Optional[int]:
        """Choose a batched-growth window size for one superstep.

        ``per_vertex_words[v]`` is a conservative bound on the round
        traffic vertex ``v`` contributes to its owner if ``v`` is in the
        active window; ``owner_of`` maps vertices to machines.  Returns
        ``None`` (run unbatched — bit-identical to the ungoverned step)
        when every machine's full-window load fits :attr:`target_words`;
        otherwise the largest halving of ``num_vertices`` whose worst
        per-machine per-window load fits, floored at
        ``policy.window_floor``.  Windows are contiguous global-id
        ranges, matching ``repro.core.exponentiation._batch_windows``,
        so the plan is a pure function of (sizes, owners, budget).
        """
        self._planned_steps += 1
        if num_vertices <= 0 or not per_vertex_words:
            return None
        target = self.target_words
        if self._fits(num_vertices, num_vertices, per_vertex_words, owner_of, target):
            return None
        batch = num_vertices // 2
        floor = self.policy.window_floor
        while batch > floor and not self._fits(
            num_vertices, batch, per_vertex_words, owner_of, target
        ):
            batch //= 2
        batch = max(floor, batch)
        self._batched_steps += 1
        return batch

    @staticmethod
    def _fits(
        num_vertices: int,
        batch: int,
        per_vertex_words: Dict[int, int],
        owner_of: Callable[[int], int],
        target: int,
    ) -> bool:
        """Does every machine's load in every window stay under target?"""
        for lo in range(0, num_vertices, batch):
            loads: Dict[int, int] = {}
            for v in range(lo, min(lo + batch, num_vertices)):
                cost = per_vertex_words.get(v)
                if not cost:
                    continue
                machine = owner_of(v)
                load = loads.get(machine, 0) + cost
                if load > target:
                    return False
                loads[machine] = load
        return True

    # -- reporting ------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Counters for benchmarks and traces (reporting only)."""
        return {
            "budget_words": self.budget_words,
            "target_words": self.target_words,
            "peak_round_words": self._round_peak.peak,
            "peak_memory_words": self._memory_peak.peak,
            "rounds_observed": self._round_peak.observations,
            "chunk_scalings": self._chunk_scalings,
            "planned_steps": self._planned_steps,
            "batched_steps": self._batched_steps,
        }
