"""Structured superstep tracing and budget auditing.

The paper's claims are round/communication/memory claims, which makes
the simulator a measurement instrument — and :class:`RunMetrics` only
reports end-of-run aggregates.  :class:`TraceRecorder` captures *where
inside a run* the budget pressure and wall-clock go: one structured
event per superstep (local and communication), per-machine send/receive
words, per-machine memory high-water marks, and the execution backend's
chunk/fallback counters, all labelled with the active phase.

Two exports ship:

* **JSONL** (:meth:`TraceRecorder.write_jsonl`) — one JSON object per
  line: a ``meta`` header, ``phase`` marks, ``local`` / ``round``
  events, ``budget_warning`` records, and a closing ``summary``.  The
  per-round ``words`` fields sum exactly to ``RunMetrics.total_words``
  (pinned by test), so the trace is an audit trail for the aggregate
  numbers, not a parallel bookkeeping that can drift.
* **Chrome trace format** (:meth:`TraceRecorder.write_chrome_trace`) —
  loadable in ``chrome://tracing`` or Perfetto: supersteps as duration
  events on one simulator track, phases as instant marks, and counter
  tracks for words sent and budget headroom per round.

A **budget auditor** rides along: whenever a machine's per-round send,
per-round receive, or post-superstep memory reaches the configured
fraction of the budget ``S`` (``warn_utilization``, default 0.9), a
``budget_warning`` record is emitted — early visibility *before* the
hard :class:`~repro.errors.MPCViolationError` fault would fire.

Tracing is strictly an observer: the recorder is only consulted when
enabled (``MPCConfig.trace`` / an injected recorder), never feeds a
value back into the simulator or an algorithm, and stores wall-clock
only in trace events — so traced and untraced runs are bit-identical in
members, rounds, and words (pinned by test).
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Sequence

SCHEMA_VERSION = 1


def _nearest_rank(sorted_values: List[float], quantile: float) -> float:
    """Nearest-rank percentile over an already-sorted, non-empty list."""
    rank = max(1, math.ceil(quantile * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


# Chrome trace events need strictly positive durations to render; a
# superstep faster than the clock's resolution gets this floor (µs).
_MIN_DURATION_US = 0.001


class TraceRecorder:
    """Collects structured per-superstep events for one simulator run.

    The simulator calls the ``record_*`` hooks; everything else is
    read-side (export / inspection).  ``config`` is the run's
    :class:`~repro.mpc.config.MPCConfig` (only ``memory_words``,
    ``num_machines``, and ``backend`` are read).

    Attributes
    ----------
    events:
        Superstep / phase events in emission order.  Every event dict
        carries ``type`` (``"phase"``, ``"local"``, or ``"round"``),
        ``ts_us`` / ``dur_us`` (monotone simulator-relative wall clock,
        microseconds), and ``phase``.
    warnings:
        Budget-audit records (``kind`` in ``sent`` / ``received`` /
        ``memory``) for every machine-superstep at or above
        ``warn_utilization * S``.
    machine_peak_words:
        Per-machine memory high-water marks observed so far.
    """

    def __init__(self, config: Any, warn_utilization: float = 0.9):
        if not 0.0 < warn_utilization <= 1.0:
            raise ValueError(
                f"warn_utilization must lie in (0, 1], got {warn_utilization}"
            )
        self.config = config
        self.warn_utilization = warn_utilization
        self.events: List[Dict[str, Any]] = []
        self.warnings: List[Dict[str, Any]] = []
        self.machine_peak_words: Dict[int, int] = {}
        self._clock_us = 0.0
        self._warned: set = set()  # (kind, machine, round) dedup

    # ------------------------------------------------------------------
    # Hooks (called by the simulator; order defines the trace clock)
    # ------------------------------------------------------------------
    def record_phase(self, name: str, round_index: int) -> None:
        """Mark the start of a named phase (instant event)."""
        self.events.append(
            {
                "type": "phase",
                "phase": name,
                "round": round_index,
                "ts_us": self._clock_us,
                "dur_us": 0.0,
            }
        )

    def record_local(
        self,
        *,
        round_index: int,
        phase: str,
        elapsed_s: float,
        backend_stats: Dict[str, int],
    ) -> None:
        """Record one local superstep (no round consumed)."""
        self.events.append(
            {
                "type": "local",
                "phase": phase,
                "round": round_index,
                **self._advance(elapsed_s),
                "backend": dict(backend_stats),
            }
        )

    def record_round(
        self,
        *,
        round_index: int,
        phase: str,
        elapsed_s: float,
        messages: int,
        words: int,
        max_sent: int,
        max_received: int,
        sent_per_machine: Sequence[int],
        received_per_machine: Sequence[int],
        backend_stats: Dict[str, int],
    ) -> None:
        """Record one communication superstep and audit its budgets."""
        budget = self.config.memory_words
        # Headroom is clamped at zero: a round past budget (possible
        # when the simulator runs with enforcement off, e.g. trace-only
        # probes) is *flagged* with its overshoot rather than silently
        # reported as negative headroom no auditor ever warns on.
        raw_headroom = budget - max(max_sent, max_received)
        event = {
            "type": "round",
            "phase": phase,
            "round": round_index,
            **self._advance(elapsed_s),
            "messages": messages,
            "words": words,
            "max_sent": max_sent,
            "max_received": max_received,
            "headroom_words": max(0, raw_headroom),
            "sent_per_machine": list(sent_per_machine),
            "received_per_machine": list(received_per_machine),
            "backend": dict(backend_stats),
        }
        if raw_headroom < 0:
            event["over_budget_words"] = -raw_headroom
            self._warn_over_budget(round_index, -raw_headroom, budget)
        self.events.append(event)
        for mid, sent in enumerate(sent_per_machine):
            self._audit("sent", mid, round_index, sent)
        for mid, received in enumerate(received_per_machine):
            self._audit("received", mid, round_index, received)

    def record_memory(self, mid: int, words: int, round_index: int) -> None:
        """Record a machine's post-superstep residency; audit vs ``S``."""
        if words > self.machine_peak_words.get(mid, -1):
            self.machine_peak_words[mid] = words
        self._audit("memory", mid, round_index, words)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def round_events(self) -> List[Dict[str, Any]]:
        """The communication-superstep events, in round order."""
        return [ev for ev in self.events if ev["type"] == "round"]

    def total_words(self) -> int:
        """Sum of per-round words (must equal ``RunMetrics.total_words``)."""
        return sum(ev["words"] for ev in self.round_events())

    def min_headroom_words(self) -> int:
        """Worst per-round headroom seen (``S`` when no round ran).

        Never negative: rounds past budget report zero headroom and are
        counted by :meth:`over_budget_rounds` instead.
        """
        rounds = self.round_events()
        if not rounds:
            return self.config.memory_words
        return min(ev["headroom_words"] for ev in rounds)

    def over_budget_rounds(self) -> int:
        """How many recorded rounds exceeded the per-round budget."""
        return sum(
            1 for ev in self.round_events() if "over_budget_words" in ev
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def jsonl_lines(self) -> List[str]:
        """The trace as JSON lines: meta, events, warnings, summary."""
        meta = {
            "type": "meta",
            "schema": SCHEMA_VERSION,
            "num_machines": self.config.num_machines,
            "memory_words": self.config.memory_words,
            "backend": self.config.backend,
            "warn_utilization": self.warn_utilization,
        }
        summary = {
            "type": "summary",
            "rounds": len(self.round_events()),
            "total_words": self.total_words(),
            "min_headroom_words": self.min_headroom_words(),
            "over_budget_rounds": self.over_budget_rounds(),
            "peak_memory_words": max(
                self.machine_peak_words.values(), default=0
            ),
            "budget_warnings": len(self.warnings),
        }
        records = [meta, *self.events, *self.warnings, summary]
        return [json.dumps(record, sort_keys=True) for record in records]

    def write_jsonl(self, path) -> None:
        """Write the JSONL export to ``path``."""
        with open(path, "w") as handle:
            handle.write("\n".join(self.jsonl_lines()) + "\n")

    def chrome_trace_events(self) -> List[Dict[str, Any]]:
        """The trace in Chrome trace format (``chrome://tracing``).

        Supersteps become duration (``ph: "X"``) events on one
        "simulator" track; phase marks become instant events; words and
        budget headroom become counter tracks.  Timestamps are the
        monotone trace clock, in microseconds.
        """
        out: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "args": {"name": "mpc-simulator"},
            }
        ]
        for ev in self.events:
            if ev["type"] == "phase":
                out.append(
                    {
                        "name": ev["phase"],
                        "cat": "phase",
                        "ph": "i",
                        "s": "g",
                        "ts": ev["ts_us"],
                        "pid": 0,
                        "tid": 0,
                    }
                )
                continue
            name = (
                f"round {ev['round']}"
                if ev["type"] == "round"
                else "local"
            )
            args: Dict[str, Any] = {"phase": ev["phase"]}
            if ev["type"] == "round":
                args.update(
                    words=ev["words"],
                    messages=ev["messages"],
                    max_sent=ev["max_sent"],
                    max_received=ev["max_received"],
                    headroom_words=ev["headroom_words"],
                )
            out.append(
                {
                    "name": name,
                    "cat": ev["type"],
                    "ph": "X",
                    "ts": ev["ts_us"],
                    "dur": ev["dur_us"],
                    "pid": 0,
                    "tid": 0,
                    "args": args,
                }
            )
            if ev["type"] == "round":
                for counter, value in (
                    ("words sent", ev["words"]),
                    ("budget headroom", ev["headroom_words"]),
                ):
                    out.append(
                        {
                            "name": counter,
                            "ph": "C",
                            "ts": ev["ts_us"],
                            "pid": 0,
                            "args": {counter: value},
                        }
                    )
        return out

    def write_chrome_trace(self, path) -> None:
        """Write the Chrome-trace export (one JSON object) to ``path``."""
        payload = {
            "traceEvents": self.chrome_trace_events(),
            "displayTimeUnit": "ms",
        }
        with open(path, "w") as handle:
            json.dump(payload, handle)
            handle.write("\n")

    def format_warnings(self) -> List[str]:
        """Human-readable budget-audit lines (for CLI / CI output)."""
        lines = []
        for w in self.warnings:
            lines.append(
                f"round {w['round']}: machine {w['machine']} "
                f"{w['kind']} {w['words']}/{w['budget']} words "
                f"({100.0 * w['utilization']:.1f}% of S)"
            )
        return lines

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    def _advance(self, elapsed_s: float) -> Dict[str, float]:
        """Allocate a monotone [ts, ts+dur) slot on the trace clock."""
        dur_us = max(elapsed_s * 1e6, _MIN_DURATION_US)
        slot = {
            "ts_us": round(self._clock_us, 3),
            "dur_us": round(dur_us, 3),
        }
        self._clock_us = round(self._clock_us + dur_us, 3)
        return slot

    def _warn_over_budget(
        self, round_index: int, overshoot: int, budget: int
    ) -> None:
        """Warn that a whole round ran past S (enforcement was off)."""
        key = ("round-over-budget", -1, round_index)
        if key in self._warned:
            return
        self._warned.add(key)
        self.warnings.append(
            {
                "type": "budget_warning",
                "kind": "round-over-budget",
                "machine": -1,
                "round": round_index,
                "words": budget + overshoot,
                "budget": budget,
                "utilization": round((budget + overshoot) / budget, 4),
            }
        )

    def _audit(self, kind: str, mid: int, round_index: int, words: int) -> None:
        budget = self.config.memory_words
        if words < self.warn_utilization * budget:
            return
        key = (kind, mid, round_index)
        if key in self._warned:
            return
        self._warned.add(key)
        self.warnings.append(
            {
                "type": "budget_warning",
                "kind": kind,
                "machine": mid,
                "round": round_index,
                "words": words,
                "budget": budget,
                "utilization": round(words / budget, 4),
            }
        )


class ServiceTrace:
    """Structured observability for the serve layer (:mod:`repro.serve`).

    Where :class:`TraceRecorder` watches one simulator run from the
    inside, ``ServiceTrace`` watches the layer *above* it: cache hits /
    misses / stores / evictions, request dedup, and per-request
    execution outcomes in the batch engine.  Same design contract as the
    superstep trace — a pure observer with a JSONL export (``meta``
    header, one event per record, closing ``summary``), never a value
    fed back into a solve — so traced and untraced service runs produce
    bit-identical output records.

    Events carry a monotone sequence number instead of wall clock: the
    export participates in record-for-record comparisons between serial
    and parallel engine runs, which timing would break.

    The serve *daemon* additionally needs per-request latency
    attribution — how long a request sat in the admission queue versus
    how long its solve ran — which is wall clock by definition.  Those
    records live in a separate ``latencies`` list (exported as
    ``type: "latency"`` lines between the events and the summary), so
    the deterministic event stream stays byte-comparable while the
    timing side channel rides alongside, mirroring the ``_serve`` /
    ``_meta`` split the output records use.
    """

    #: Counter keys every summary reports (zero-initialised so the
    #: summary shape is stable whether or not an event kind occurred).
    COUNTER_KINDS = (
        "cache_hit",
        "cache_miss",
        "cache_store",
        "cache_eviction",
        "dedup",
        "executed",
        "failed",
        "refused",
    )

    #: The per-request latency stages the daemon attributes: time spent
    #: queued behind admission control, time executing the solve, and
    #: the end-to-end total (queue + execute + scheduling overhead).
    LATENCY_STAGES = ("queue_s", "execute_s", "total_s")

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self.latencies: List[Dict[str, Any]] = []
        self.counters: Dict[str, int] = {
            kind: 0 for kind in self.COUNTER_KINDS
        }
        self._seq = 0

    def record(self, kind: str, **fields: Any) -> None:
        """Append one service event and bump its counter."""
        self._seq += 1
        self.counters[kind] = self.counters.get(kind, 0) + 1
        self.events.append({"type": kind, "seq": self._seq, **fields})

    def record_latency(
        self,
        *,
        id: object,
        outcome: str,
        queue_s: float,
        execute_s: float,
        total_s: float,
        tenant: Optional[str] = None,
    ) -> None:
        """Attribute one served request's wall clock to its stages.

        ``queue_s`` is admission-to-execution-start, ``execute_s`` the
        solve itself, ``total_s`` admission-to-response.  Latency
        records are kept apart from the deterministic event stream (see
        the class docstring); ``outcome`` is the response status
        (``ok`` / ``failed`` / ``invalid``), so percentiles can be
        read per outcome.  Refusals are *not* latency records — they
        are counted under ``refused`` and answered inline.
        """
        entry: Dict[str, Any] = {
            "type": "latency",
            "id": id,
            "outcome": outcome,
            "queue_s": round(queue_s, 6),
            "execute_s": round(execute_s, 6),
            "total_s": round(total_s, 6),
        }
        if tenant is not None:
            entry["tenant"] = tenant
        self.latencies.append(entry)

    def latency_summary(self) -> Dict[str, Any]:
        """Per-stage p50/p95/p99 latency (milliseconds) over all requests.

        Percentiles use the nearest-rank method, so every reported
        number is a latency that actually occurred.  Returns
        ``{"count": 0}`` when nothing has been served yet.
        """
        summary: Dict[str, Any] = {"count": len(self.latencies)}
        if not self.latencies:
            return summary
        for stage in self.LATENCY_STAGES:
            values = sorted(entry[stage] for entry in self.latencies)
            summary[stage.replace("_s", "_ms")] = {
                f"p{percent}": round(
                    1000.0 * _nearest_rank(values, percent / 100.0), 3
                )
                for percent in (50, 95, 99)
            }
        return summary

    def merge_counters(self, counters: Dict[str, int]) -> None:
        """Fold an external counter dict in (e.g. a cache's totals)."""
        for key, value in counters.items():
            self.counters[key] = self.counters.get(key, 0) + value

    def summary(self) -> Dict[str, Any]:
        """The closing summary record (also useful without an export)."""
        summary = {"type": "summary", "events": len(self.events),
                   **dict(sorted(self.counters.items()))}
        if self.latencies:
            summary["latency_ms"] = self.latency_summary()
        return summary

    def jsonl_lines(self) -> List[str]:
        """The service trace as JSON lines: meta, events, latencies, summary."""
        meta = {"type": "meta", "schema": SCHEMA_VERSION, "layer": "serve"}
        records = [meta, *self.events, *self.latencies, self.summary()]
        return [json.dumps(record, sort_keys=True) for record in records]

    def write_jsonl(self, path) -> None:
        """Write the JSONL export to ``path``."""
        with open(path, "w") as handle:
            handle.write("\n".join(self.jsonl_lines()) + "\n")
