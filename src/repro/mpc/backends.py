"""Pluggable execution backends for the MPC superstep engine.

The :class:`~repro.mpc.simulator.Simulator` delegates the *execution* of
machine callbacks to a backend; routing, budget enforcement, and metrics
stay in the simulator.  Two backends ship:

``SerialBackend``
    Runs every callback in machine-id order in the calling process —
    bit-identical to the historical simulator behaviour and the default.

``ProcessPoolBackend``
    Fans machine callbacks across a pool of worker processes.  Machines
    are partitioned into contiguous id-ordered chunks; each worker runs
    the callback on its chunk and ships the mutated stores (and, for
    communication steps, the outboxes) back.  Results are merged in
    machine-id order, so message routing sees exactly the sequence the
    serial backend produces — **determinism is preserved by
    construction**, only wall-clock changes.

    Callbacks are serialized with ``cloudpickle`` when available (which
    handles the closures the algorithms use); with plain ``pickle`` only
    module-level functions survive.  A callback that cannot be
    serialized falls back to in-process serial execution for that call
    (counted in :meth:`ProcessPoolBackend.stats`), so the backend is
    always safe to enable.

Backend contract: a callback may read and mutate *only the machine it is
given*.  Every callback in this repository honours that (machine state is
the sole side channel), which is what makes process isolation sound.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import MPCConfigError
from repro.mpc.machine import Machine
from repro.mpc.message import Message

try:  # cloudpickle serializes closures; optional, never required.
    import cloudpickle as _fn_pickle
except ImportError:  # pragma: no cover - environment without cloudpickle
    _fn_pickle = pickle

MachineFn = Callable[[Machine], object]

LOCAL_STEP = "local"
COMMUNICATE_STEP = "communicate"


@dataclass
class ExchangeStats:
    """What the simulator needs to know about a routed exchange.

    A state-owning backend (``routes_messages = True``) performs the
    whole route-validate-deliver cycle itself, because the driver process
    never holds all machines at once.  It reports back exactly the
    aggregates the simulator's own routing loop would have produced, so
    metrics and traces are bit-identical across backends.
    """

    total_messages: int = 0
    total_words: int = 0
    max_sent: int = 0
    max_received: int = 0
    received_per_machine: List[int] = field(default_factory=list)
    #: Populated only when the simulator is tracing (per-machine sent
    #: words are O(k) per round; skipped otherwise).
    sent_per_machine: Optional[List[int]] = None


class SuperstepBackend:
    """How one superstep's machine callbacks get executed.

    Subclasses implement :meth:`run_local` and :meth:`run_communicate`;
    both must process machines in id order (or merge results as if they
    had), because routing determinism depends on it.

    Two capability flags extend the contract for out-of-core backends:

    ``owns_state``
        The backend spills machine state out of the driver process
        between supersteps; driver-side code must read machine stores
        through :meth:`run_harvest` (never ``machines[i].store``
        directly) and memory audits come from :meth:`memory_snapshot`.

    ``routes_messages``
        The backend performs the inter-machine exchange itself via
        :meth:`run_exchange` (validation, budget enforcement, delivery),
        instead of returning outboxes for the simulator to route.
    """

    name = "abstract"
    owns_state = False
    routes_messages = False

    def run_local(self, machines: Sequence[Machine], fn: MachineFn) -> None:
        """Apply ``fn`` to every machine, mutating stores in place."""
        raise NotImplementedError

    def run_communicate(
        self, machines: Sequence[Machine], fn: MachineFn
    ) -> List[List[Message]]:
        """Apply ``fn`` to every machine; return outboxes in id order."""
        raise NotImplementedError

    def run_exchange(
        self,
        machines: Sequence[Machine],
        fn: MachineFn,
        *,
        memory_words: int,
        enforce: bool = True,
        want_sent_per_machine: bool = False,
    ) -> ExchangeStats:
        """Route one full exchange (``routes_messages`` backends only).

        Must raise exactly the errors the simulator's serial routing loop
        raises — same types, same messages, same machine-id order — and
        deliver payloads in arrival order (sender id ascending, then send
        order within a sender).
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not route messages"
        )

    def run_harvest(
        self,
        machines: Sequence[Machine],
        fn: MachineFn,
        only: Optional[Sequence[int]] = None,
    ) -> List[object]:
        """Apply a driver-side read (or plant) to machines, keeping state.

        ``only`` selects machine ids; results come back in the order
        requested (id order when ``only`` is None).  ``fn`` may mutate the
        machine (pop a staging key, plant a value) — state-owning
        backends persist the mutation to the spilled shard.
        """
        targets = machines if only is None else [machines[i] for i in only]
        return [fn(machine) for machine in targets]

    def memory_snapshot(self) -> Optional[List[int]]:
        """Per-machine word counts as of the last superstep, or None.

        State-owning backends return the words each machine held when its
        shard was spilled (priced by the same :func:`~repro.mpc.machine.words_of`
        contract); ``None`` means "measure the live machines directly".
        """
        return None

    def resident_machines_hint(self) -> Optional[int]:
        """How many machines are resident at once, or None for "all".

        Driver-side per-machine caches (memoized estimators, CSR views)
        use this to bound themselves: holding cache entries for machines
        whose state is spilled to disk would silently rebuild the O(full
        graph) driver footprint the backend exists to avoid.
        """
        return None

    def shutdown(self) -> None:
        """Release any worker resources (idempotent)."""

    def stats(self) -> Dict[str, int]:
        """Execution counters (integer-valued, cheap to snapshot).

        The trace layer (:mod:`repro.mpc.trace`) snapshots this dict on
        every superstep for backend/worker attribution, so implementations
        must keep it small and allocation-light.
        """
        return {}


class SerialBackend(SuperstepBackend):
    """In-process execution in machine-id order (the historical path)."""

    name = "serial"

    def __init__(self):
        self._stats = {"local_steps": 0, "communicate_steps": 0}

    def run_local(self, machines: Sequence[Machine], fn: MachineFn) -> None:
        self._stats["local_steps"] += 1
        for machine in machines:
            fn(machine)

    def run_communicate(
        self, machines: Sequence[Machine], fn: MachineFn
    ) -> List[List[Message]]:
        self._stats["communicate_steps"] += 1
        outboxes: List[List[Message]] = []
        for machine in machines:
            sent = fn(machine)
            outboxes.append(list(sent) if sent is not None else [])
        return outboxes

    def stats(self) -> Dict[str, int]:
        return dict(self._stats)


def _chunk_ranges(count: int, parts: int) -> List[range]:
    """Split ``range(count)`` into ``parts`` contiguous, balanced ranges."""
    parts = max(1, min(parts, count))
    base, extra = divmod(count, parts)
    ranges = []
    lo = 0
    for i in range(parts):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append(range(lo, hi))
        lo = hi
    return ranges


def _run_chunk(fn_blob: bytes, step: str, state_blob: bytes) -> bytes:
    """Worker entry point: run one callback over one machine chunk.

    Receives the callback (cloudpickle) and the chunk's machine states
    (plain pickle: stores are flat integer containers), returns the
    mutated states plus — for communication steps — the outbox payloads.
    """
    fn = _fn_pickle.loads(fn_blob)
    machines: List[Machine] = pickle.loads(state_blob)
    if step == LOCAL_STEP:
        for machine in machines:
            fn(machine)
        outboxes: Optional[List[List[Message]]] = None
    else:
        outboxes = []
        for machine in machines:
            sent = fn(machine)
            outboxes.append(list(sent) if sent is not None else [])
    states = [(m.store, m.inbox) for m in machines]
    return pickle.dumps((states, outboxes))


class ProcessPoolBackend(SuperstepBackend):
    """Fan machine callbacks across worker processes, deterministically.

    ``workers=0`` means one worker per CPU.  ``min_machines`` gates the
    fan-out: chunks smaller than it are not worth the serialization
    round-trip and run serially.  The pool is created lazily on first
    use and torn down by :meth:`shutdown` (the simulator calls it when
    the run ends, and it is safe to call repeatedly).

    **Broken-pool recovery.**  A worker that dies mid-superstep (OOM
    kill, stray signal) poisons the whole ``ProcessPoolExecutor``: every
    in-flight and future submission raises ``BrokenProcessPool``, and the
    executor never recovers on its own.  The backend treats that as a
    transient fault, not a fatal one: the dead pool is torn down, the
    superstep re-runs on the in-process serial path, and the *next*
    parallel step lazily builds a fresh pool.  Recovery is sound because
    worker results are only applied to the machines after **every** chunk
    has come back — a step that fails anywhere leaves the machines
    untouched, so the serial re-run applies the callback exactly once.
    Occurrences are counted in :meth:`stats` as ``broken_pool_recoveries``.
    """

    name = "process"

    def __init__(self, workers: int = 0, min_machines: int = 2):
        if workers < 0:
            raise MPCConfigError(f"workers must be >= 0, got {workers}")
        self.workers = workers or (os.cpu_count() or 1)
        self.min_machines = max(1, min_machines)
        self._executor = None
        self._serial = SerialBackend()
        self._stats = {
            "parallel_steps": 0,
            "serial_fallbacks": 0,
            "unpicklable_fallbacks": 0,
            "broken_pool_recoveries": 0,
            "chunks_dispatched": 0,
            "machines_shipped": 0,
        }

    # -- lifecycle ------------------------------------------------------
    def _pool(self):
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def stats(self) -> Dict[str, int]:
        out = dict(self._stats)
        out["workers"] = self.workers
        # Fold in the fallback path's counters so serial execution of
        # unpicklable or tiny steps stays attributed in traces.
        for key, value in self._serial.stats().items():
            out[f"fallback_{key}"] = value
        return out

    # -- execution ------------------------------------------------------
    def _serialize_fn(self, fn: MachineFn) -> Optional[bytes]:
        try:
            return _fn_pickle.dumps(fn)
        except Exception:
            return None

    def _dispatch(
        self, machines: Sequence[Machine], fn: MachineFn, step: str
    ) -> Optional[List[Optional[List[Message]]]]:
        """Run a superstep on the pool; None means "caller must go serial"."""
        if len(machines) < self.min_machines or self.workers < 2:
            self._stats["serial_fallbacks"] += 1
            return None
        fn_blob = self._serialize_fn(fn)
        if fn_blob is None:
            self._stats["unpicklable_fallbacks"] += 1
            return None
        chunks = _chunk_ranges(len(machines), self.workers)
        try:
            blobs = [
                pickle.dumps([machines[i] for i in chunk]) for chunk in chunks
            ]
        except Exception:
            self._stats["unpicklable_fallbacks"] += 1
            return None
        try:
            futures = [
                self._pool().submit(_run_chunk, fn_blob, step, blob)
                for blob in blobs
            ]
            # Collect *every* chunk before touching any machine: a pool
            # that breaks after some chunks returned must not leave a
            # half-applied superstep behind, or the serial re-run would
            # apply the callback twice to the already-mutated machines.
            payloads = [pickle.loads(future.result()) for future in futures]
        except BrokenProcessPool:
            self._recover_broken_pool()
            return None
        merged: List[Optional[List[Message]]] = [None] * len(machines)
        # Apply in submission (= id) order: completion order is
        # irrelevant to the result, so scheduling jitter cannot leak in.
        for chunk, (states, outboxes) in zip(chunks, payloads):
            for offset, mid in enumerate(chunk):
                store, inbox = states[offset]
                machines[mid].store = store
                machines[mid].inbox = inbox
                if outboxes is not None:
                    merged[mid] = outboxes[offset]
        self._stats["parallel_steps"] += 1
        self._stats["chunks_dispatched"] += len(chunks)
        self._stats["machines_shipped"] += len(machines)
        return merged

    def _recover_broken_pool(self) -> None:
        """Discard a poisoned executor; the next step rebuilds it lazily."""
        self._stats["broken_pool_recoveries"] += 1
        executor = self._executor
        self._executor = None
        if executor is not None:
            # The pool is already dead; don't block on its corpse.
            executor.shutdown(wait=False, cancel_futures=True)

    def run_local(self, machines: Sequence[Machine], fn: MachineFn) -> None:
        if self._dispatch(machines, fn, LOCAL_STEP) is None:
            self._serial.run_local(machines, fn)

    def run_communicate(
        self, machines: Sequence[Machine], fn: MachineFn
    ) -> List[List[Message]]:
        merged = self._dispatch(machines, fn, COMMUNICATE_STEP)
        if merged is None:
            return self._serial.run_communicate(machines, fn)
        return [outbox if outbox is not None else [] for outbox in merged]


def _make_shard_backend(workers: int) -> SuperstepBackend:
    # Imported lazily: repro.mpc.shard depends on this module.
    from repro.mpc.shard import ShardBackend

    return ShardBackend(num_shards=workers)


SHARD_BACKEND_NAME = "shard"

#: name → factory(workers).  ``workers`` means pool size for ``process``
#: and shard count for ``shard`` (0 → each backend's default).
BACKENDS = {
    SerialBackend.name: lambda workers: SerialBackend(),
    ProcessPoolBackend.name: lambda workers: ProcessPoolBackend(
        workers=workers
    ),
    SHARD_BACKEND_NAME: _make_shard_backend,
}


def resolve_backend(
    name: str, workers: int = 0
) -> SuperstepBackend:
    """Instantiate a backend by registry name.

    >>> resolve_backend("serial").name
    'serial'
    """
    if name not in BACKENDS:
        raise MPCConfigError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        )
    return BACKENDS[name](workers)
