"""Benchmark harness support: run records, sweeps, and table formatting.

Benchmarks in ``benchmarks/`` use this package to run algorithm × workload
grids (:mod:`~repro.analysis.sweep`), collect
:class:`~repro.analysis.records.RunRecord` rows, and print the tables and
series that EXPERIMENTS.md reports (:mod:`~repro.analysis.tables`).
"""

from repro.analysis.records import RunRecord, record_from_result
from repro.analysis.sweep import (
    Cell,
    SweepCell,
    SweepSpec,
    failures,
    load_checkpoint,
    load_records,
    run_cells,
    run_sweep,
)
from repro.analysis.tables import format_series, format_table

__all__ = [
    "RunRecord",
    "record_from_result",
    "Cell",
    "SweepCell",
    "SweepSpec",
    "failures",
    "load_checkpoint",
    "load_records",
    "run_cells",
    "run_sweep",
    "format_table",
    "format_series",
]
