"""Fault-tolerant parallel sweep engine.

Every number EXPERIMENTS.md reports flows through this one driver, so it
carries the measurement methodology for the whole suite:

* **Deterministic grid order.**  A :class:`SweepSpec` names a grid of
  workloads × algorithms (× betas × regimes); the grid enumerates in a
  fixed sorted order and results are emitted in that order *regardless
  of completion order*, so serial and parallel sweeps produce identical
  record streams (pinned by test).
* **Parallel execution.**  ``run_sweep(spec, jobs=N)`` executes cells
  in up to ``N`` worker processes.  Each cell is a pure function of its
  inputs (graph, algorithm, beta, regime, seed), which is what makes
  process fan-out safe.
* **Per-cell isolation.**  A cell that raises produces a *structured
  failure record* (``status="failed"`` plus the exception type/message
  and the cell key) instead of killing the sweep; the remaining cells
  still run.  ``retries`` re-runs flaky cells, ``timeout`` bounds a
  cell's wall-clock (enforced by running cells in killable worker
  processes).
* **Checkpoint / resume.**  With ``checkpoint=<path>`` every finished
  cell is appended to the JSONL file (flushed and fsynced, so a killed
  sweep loses at most the in-flight cells).  ``resume=True`` loads the
  completed cells from the checkpoint and skips them; failed cells are
  re-run.  When the sweep completes, the checkpoint is compacted into
  deterministic grid order, so a kill-and-resume run converges to the
  exact file an uninterrupted run writes (modulo the ``_meta``
  observability keys, which carry wall-clock and worker attribution
  and are excluded from the determinism contract — see DESIGN.md).

The lower-level :func:`run_cells` drives arbitrary cells (anything that
returns a :class:`~repro.analysis.records.RunRecord`) through the same
scheduler; the anatomy/ablation benchmarks and the CI regression gate
use it directly.  For ``jobs > 1`` (or a ``timeout``) cell runners must
be picklable — module-level functions or :func:`functools.partial` of
them.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.records import RunRecord, record_from_result
from repro.core.pipeline import solve_ruling_set
from repro.errors import SweepError
from repro.graph.graph import Graph

GraphFactory = Callable[[], Graph]

#: A regime axis entry: either a plain regime name, or a
#: ``(label, regime, (p, q))`` triple carrying the memory exponent
#: ``alpha = p/q`` (E6 sweeps these).
RegimeSpec = Union[str, Tuple[str, str, Tuple[int, int]]]

FAILED = "failed"

_ERROR_CHARS = 500  # failure records stay one readable JSONL line


@dataclass(frozen=True)
class SweepCell:
    """The pure inputs of one grid cell (everything but the graph)."""

    experiment: str
    workload: str
    algorithm: str
    beta: int
    regime: str
    regime_label: str
    alpha_mem: Tuple[int, int]
    seed: int

    @property
    def key(self) -> str:
        """Stable identity used for checkpointing and resume."""
        return (
            f"{self.workload}/{self.algorithm}/beta={self.beta}"
            f"/regime={self.regime_label}/seed={self.seed}"
        )


#: A cell runner maps ``(graph, cell, extra_fields)`` to one record.
CellRunner = Callable[[Graph, SweepCell, Dict], RunRecord]


@dataclass
class SweepSpec:
    """A grid of workloads × algorithms (× betas × regimes) cells.

    ``betas`` / ``regimes`` widen the grid beyond the single
    ``beta`` / ``regime`` default; ``cell_runner`` replaces the default
    :func:`solve_cell` (it must be a module-level callable to survive
    pickling when ``jobs > 1``).  ``extra_fields`` runs in the parent
    process (once per workload), so closures are fine there.
    """

    experiment: str
    workloads: Dict[str, GraphFactory]
    algorithms: List[str]
    beta: int = 2
    regime: str = "sublinear"
    seed: int = 0
    betas: Optional[Sequence[int]] = None
    regimes: Optional[Sequence[RegimeSpec]] = None
    alpha_mem: Tuple[int, int] = (2, 3)
    extra_fields: Optional[Callable[[str, Graph], Dict]] = None
    cell_runner: Optional[CellRunner] = None


@dataclass(frozen=True)
class Cell:
    """One schedulable unit of work: a keyed, picklable thunk.

    ``runner(*args)`` must return a :class:`RunRecord`.  ``workload`` and
    ``algorithm`` label the failure record when the runner raises.
    """

    key: str
    runner: Callable[..., RunRecord]
    args: Tuple = ()
    workload: str = ""
    algorithm: str = ""


def solve_cell(graph: Graph, cell: SweepCell, extra: Dict) -> RunRecord:
    """Default cell runner: one verified :func:`solve_ruling_set` call."""
    result = solve_ruling_set(
        graph,
        algorithm=cell.algorithm,
        beta=cell.beta,
        regime=cell.regime,
        alpha_mem=cell.alpha_mem,
        seed=cell.seed,
        verify=True,
    )
    fields = dict(extra)
    fields.update(
        {
            "beta": cell.beta,
            "regime": cell.regime_label,
            "seed": cell.seed,
        }
    )
    return record_from_result(cell.experiment, cell.workload, result, fields)


def _normalize_regimes(spec: SweepSpec) -> List[Tuple[str, str, Tuple[int, int]]]:
    entries: Sequence[RegimeSpec] = (
        spec.regimes if spec.regimes is not None else [spec.regime]
    )
    normalized = []
    for entry in entries:
        if isinstance(entry, str):
            normalized.append((entry, entry, tuple(spec.alpha_mem)))
        else:
            label, regime, alpha_mem = entry
            normalized.append((label, regime, tuple(alpha_mem)))
    return normalized


def build_cells(spec: SweepSpec) -> List[Cell]:
    """Enumerate the spec's grid in deterministic order.

    Order: workloads sorted by name, then the ``algorithms`` list, then
    ``betas``, then ``regimes`` — the emission order of every sweep,
    serial or parallel.

    The algorithm axis is validated against :mod:`repro.core.registry`
    up front, so a typo fails the sweep immediately (with the real
    algorithm list) instead of producing a grid of failure records.
    """
    from repro.core import registry

    unknown = [a for a in spec.algorithms if not registry.is_registered(a)]
    if unknown:
        raise SweepError(
            f"unknown algorithms in sweep spec: {unknown}; "
            "registered algorithms: "
            + ", ".join(registry.algorithm_names())
        )
    betas = list(spec.betas) if spec.betas is not None else [spec.beta]
    regimes = _normalize_regimes(spec)
    runner = spec.cell_runner if spec.cell_runner is not None else solve_cell
    cells: List[Cell] = []
    for workload_name in sorted(spec.workloads):
        graph = spec.workloads[workload_name]()
        extra = {
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "max_degree": graph.max_degree(),
        }
        if spec.extra_fields is not None:
            extra.update(spec.extra_fields(workload_name, graph))
        for algorithm in spec.algorithms:
            for beta in betas:
                for label, regime, alpha_mem in regimes:
                    cell = SweepCell(
                        experiment=spec.experiment,
                        workload=workload_name,
                        algorithm=algorithm,
                        beta=beta,
                        regime=regime,
                        regime_label=label,
                        alpha_mem=alpha_mem,
                        seed=spec.seed,
                    )
                    cells.append(
                        Cell(
                            key=cell.key,
                            runner=runner,
                            args=(graph, cell, extra),
                            workload=workload_name,
                            algorithm=algorithm,
                        )
                    )
    return cells


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = False,
    retries: int = 0,
    timeout: Optional[float] = None,
) -> List[RunRecord]:
    """Execute the sweep; every run is verified before being recorded.

    Returns one record per grid cell, in deterministic grid order.  A
    failing cell contributes a failure record (``status="failed"``)
    rather than raising; callers that need an all-green sweep should
    check :func:`failures`.
    """
    return run_cells(
        spec.experiment,
        build_cells(spec),
        jobs=jobs,
        checkpoint=checkpoint,
        resume=resume,
        retries=retries,
        timeout=timeout,
    )


def failures(records: Iterable[RunRecord]) -> List[RunRecord]:
    """The subset of ``records`` that are structured failure records."""
    return [r for r in records if r.get("status") == FAILED]


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------


def run_cells(
    experiment: str,
    cells: Sequence[Cell],
    *,
    jobs: int = 1,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = False,
    retries: int = 0,
    timeout: Optional[float] = None,
) -> List[RunRecord]:
    """Run ``cells`` with isolation, checkpointing, and bounded fan-out.

    ``jobs <= 1`` with no ``timeout`` runs cells in-process (exceptions
    still become failure records); otherwise each cell runs in its own
    worker process so it can be retried, timed out, or crash without
    taking the sweep down.
    """
    cells = list(cells)
    keys = [cell.key for cell in cells]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise SweepError(f"duplicate cell keys in sweep: {dupes}")
    if jobs < 0:
        raise SweepError(f"jobs must be >= 0, got {jobs}")
    if timeout is not None and timeout <= 0:
        raise SweepError(f"timeout must be positive, got {timeout}")

    path = Path(checkpoint) if checkpoint is not None else None
    results: Dict[int, RunRecord] = {}
    if path is not None and resume and path.exists():
        key_set = set(keys)
        completed: Dict[str, RunRecord] = {}
        for key, record in load_checkpoint(path):
            if key in key_set and record.get("status") != FAILED:
                completed[key] = record
        for index, cell in enumerate(cells):
            if cell.key in completed:
                results[index] = completed[cell.key]

    handle = None
    if path is not None:
        path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if results else "w"
        handle = path.open(mode, encoding="utf-8")
    try:
        pending = [
            (index, cell)
            for index, cell in enumerate(cells)
            if index not in results
        ]

        def finish(index: int, cell: Cell, record: RunRecord) -> None:
            results[index] = record
            _append_checkpoint(handle, cell.key, record)

        if jobs <= 1 and timeout is None:
            for index, cell in pending:
                finish(index, cell, _run_in_process(experiment, cell, retries))
        else:
            _run_isolated(
                experiment, pending, finish,
                jobs=max(1, jobs), retries=retries, timeout=timeout,
            )
        ordered = [results[index] for index in range(len(cells))]
        if handle is not None:
            handle.close()
            handle = None
            _compact_checkpoint(path, cells, ordered)
        return ordered
    finally:
        if handle is not None:
            handle.close()


def _failure_record(
    experiment: str,
    cell: Cell,
    error_type: str,
    message: str,
    attempts: int,
) -> RunRecord:
    return RunRecord(
        experiment=experiment,
        workload=cell.workload,
        algorithm=cell.algorithm,
        fields={
            "status": FAILED,
            "cell": cell.key,
            "error_type": error_type,
            "error": message[:_ERROR_CHARS],
            "attempts": attempts,
        },
    )


def _run_in_process(experiment: str, cell: Cell, retries: int) -> RunRecord:
    last: Optional[Tuple[str, str]] = None
    for attempt in range(1, retries + 2):
        start = time.perf_counter()
        try:
            record = cell.runner(*cell.args)
        except Exception as exc:  # noqa: BLE001 - isolation is the point
            last = (type(exc).__name__, str(exc) or repr(exc))
            continue
        record.meta.update(
            {
                "worker": "serial",
                "attempt": attempt,
                "cell_wall_s": round(time.perf_counter() - start, 6),
            }
        )
        return record
    error_type, message = last
    return _failure_record(experiment, cell, error_type, message, retries + 1)


def _cell_worker(conn, runner, args) -> None:
    """Worker-process entry: run one cell, ship the outcome back."""
    start = time.perf_counter()
    try:
        record = runner(*args)
        outcome = ("ok", record, time.perf_counter() - start)
    except Exception as exc:  # noqa: BLE001 - shipped back as a failure
        detail = traceback.format_exc(limit=4)
        outcome = (
            "error",
            (type(exc).__name__, str(exc) or detail),
            time.perf_counter() - start,
        )
    try:
        conn.send(outcome)
    finally:
        conn.close()


@dataclass
class _Live:
    proc: "mp.process.BaseProcess"
    conn: "mp.connection.Connection"
    start: float
    attempt: int
    cell: Cell


def _run_isolated(
    experiment: str,
    pending: List[Tuple[int, Cell]],
    finish: Callable[[int, Cell, RunRecord], None],
    *,
    jobs: int,
    retries: int,
    timeout: Optional[float],
) -> None:
    """Process-per-cell scheduler with bounded concurrency.

    One worker process per cell attempt (not a long-lived pool): a hung
    or crashed cell can be killed and retried without poisoning other
    cells, which is the isolation contract the failure records rely on.
    """
    ctx = mp.get_context()
    queue = deque(pending)
    attempts: Dict[int, int] = {}
    live: Dict[int, _Live] = {}

    def launch(index: int, cell: Cell) -> None:
        attempts[index] = attempts.get(index, 0) + 1
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_cell_worker,
            args=(child_conn, cell.runner, cell.args),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        live[index] = _Live(
            proc=proc, conn=parent_conn, start=time.monotonic(),
            attempt=attempts[index], cell=cell,
        )

    def retire(index: int) -> _Live:
        entry = live.pop(index)
        entry.proc.join()
        entry.conn.close()
        return entry

    def fail_or_retry(
        index: int, entry: _Live, error_type: str, message: str
    ) -> None:
        if entry.attempt <= retries:
            queue.appendleft((index, entry.cell))
            return
        record = _failure_record(
            experiment, entry.cell, error_type, message, entry.attempt
        )
        record.meta.update(
            {
                "worker": f"pid-{entry.proc.pid}",
                "attempt": entry.attempt,
                "cell_wall_s": round(time.monotonic() - entry.start, 6),
            }
        )
        finish(index, entry.cell, record)

    while queue or live:
        while queue and len(live) < jobs:
            index, cell = queue.popleft()
            launch(index, cell)
        conns = [entry.conn for entry in live.values()]
        mp.connection.wait(conns, timeout=0.05)
        now = time.monotonic()
        for index in list(live):
            entry = live[index]
            if entry.conn.poll():
                try:
                    outcome = entry.conn.recv()
                except EOFError:
                    outcome = None
                retire(index)
                if outcome is None:
                    fail_or_retry(
                        index, entry, "WorkerCrash",
                        "worker pipe closed before a result arrived",
                    )
                    continue
                status, payload, wall = outcome
                if status == "ok":
                    record = payload
                    record.meta.update(
                        {
                            "worker": f"pid-{entry.proc.pid}",
                            "attempt": entry.attempt,
                            "cell_wall_s": round(wall, 6),
                        }
                    )
                    finish(index, entry.cell, record)
                else:
                    error_type, message = payload
                    fail_or_retry(index, entry, error_type, message)
            elif entry.proc.exitcode is not None:
                # The worker has exited.  Its send can complete between
                # the poll above and this exitcode check (the worker
                # sends, closes, and exits within microseconds), and a
                # completed send stays readable after the process is
                # gone — so re-poll before calling this a crash, and let
                # the next iteration collect a late-arriving result.
                if entry.conn.poll():
                    continue
                retire(index)
                fail_or_retry(
                    index, entry, "WorkerCrash",
                    f"worker exited with code {entry.proc.exitcode}",
                )
            elif timeout is not None and now - entry.start > timeout:
                entry.proc.terminate()
                retire(index)
                fail_or_retry(
                    index, entry, "CellTimeout",
                    f"cell exceeded the per-cell timeout of {timeout}s",
                )


# ---------------------------------------------------------------------------
# Checkpoint persistence
# ---------------------------------------------------------------------------


def checkpoint_line(key: str, record: RunRecord) -> str:
    """Serialise one finished cell as a checkpoint JSONL line.

    The line is the record's deterministic payload plus two underscore
    keys: ``_cell`` (the cell's stable key, used by resume) and
    ``_meta`` (wall-clock + worker attribution — observability only,
    excluded from the determinism contract).
    """
    payload = json.loads(record.to_json())
    payload["_cell"] = key
    if record.meta:
        payload["_meta"] = record.meta
    return json.dumps(payload, sort_keys=True)


def _append_checkpoint(handle, key: str, record: RunRecord) -> None:
    if handle is None:
        return
    handle.write(checkpoint_line(key, record) + "\n")
    handle.flush()
    os.fsync(handle.fileno())


def _compact_checkpoint(
    path: Path, cells: Sequence[Cell], ordered: Sequence[RunRecord]
) -> None:
    """Rewrite a completed checkpoint in deterministic grid order."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        for cell, record in zip(cells, ordered):
            handle.write(checkpoint_line(cell.key, record) + "\n")
    tmp.replace(path)


def load_checkpoint(
    path: Union[str, Path]
) -> List[Tuple[str, RunRecord]]:
    """Parse a checkpoint file into ``(cell key, record)`` pairs.

    Tolerates a truncated final line (a killed sweep can die mid-write).
    When the same key appears twice (append-mode retries), the later
    line wins.
    """
    pairs: Dict[str, RunRecord] = {}
    order: List[str] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail write from a killed run
        if not isinstance(payload, dict):
            continue
        key = payload.pop("_cell", None)
        meta = payload.pop("_meta", {})
        record = RunRecord(
            experiment=payload.pop("experiment", ""),
            workload=payload.pop("workload", ""),
            algorithm=payload.pop("algorithm", ""),
            fields=payload,
        )
        record.meta = dict(meta)
        if key is None:
            key = f"{record.workload}/{record.algorithm}"
        if key not in pairs:
            order.append(key)
        pairs[key] = record
    return [(key, pairs[key]) for key in order]


def load_records(path: Union[str, Path]) -> List[RunRecord]:
    """The records of a checkpoint file, in file order."""
    return [record for _, record in load_checkpoint(path)]
