"""Parameter sweep driver.

A :class:`SweepSpec` names the workload grid (graph factories keyed by
label) and the algorithm/regime list; :func:`run_sweep` executes the full
product, verifying every output, and returns the records.  All benchmark
tables are produced by this one driver so the measurement methodology is
identical across experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.analysis.records import RunRecord, record_from_result
from repro.core.pipeline import solve_ruling_set
from repro.graph.graph import Graph

GraphFactory = Callable[[], Graph]


@dataclass
class SweepSpec:
    """A grid of workloads × (algorithm, beta, regime) cells."""

    experiment: str
    workloads: Dict[str, GraphFactory]
    algorithms: List[str]
    beta: int = 2
    regime: str = "sublinear"
    seed: int = 0
    extra_fields: Callable[[str, Graph], Dict] = None


def run_sweep(spec: SweepSpec) -> List[RunRecord]:
    """Execute the sweep; every run is verified before being recorded."""
    records: List[RunRecord] = []
    for workload_name in sorted(spec.workloads):
        graph = spec.workloads[workload_name]()
        base_extra = {
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "max_degree": graph.max_degree(),
        }
        if spec.extra_fields is not None:
            base_extra.update(spec.extra_fields(workload_name, graph))
        for algorithm in spec.algorithms:
            result = solve_ruling_set(
                graph,
                algorithm=algorithm,
                beta=spec.beta,
                regime=spec.regime,
                seed=spec.seed,
                verify=True,
            )
            records.append(
                record_from_result(
                    spec.experiment, workload_name, result, dict(base_extra)
                )
            )
    return records
