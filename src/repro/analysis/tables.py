"""Plain-text table and series formatting for benchmark output.

Benchmarks print their tables through these helpers so every experiment's
output has one look: a header row, aligned columns, and a trailing note
naming the experiment.  (No plotting dependencies — the "figures" are
printed as aligned series, which is what a terminal benchmark run can
honestly deliver.)
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.records import RunRecord


def format_table(
    records: Sequence[RunRecord],
    columns: Sequence[str],
    title: str = "",
) -> str:
    """Render records as an aligned text table.

    ``columns`` may name record fields or the identifying attributes
    (``workload`` / ``algorithm``).
    """
    header = list(columns)
    rows: List[List[str]] = []
    for record in records:
        row = []
        for column in header:
            if column == "workload":
                row.append(record.workload)
            elif column == "algorithm":
                row.append(record.algorithm)
            elif column == "experiment":
                row.append(record.experiment)
            else:
                row.append(str(record.get(column, "")))
        rows.append(row)
    widths = [
        max(len(header[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    points: Dict[str, List], x_label: str, y_label: str, title: str = ""
) -> str:
    """Render named (x, y) series as aligned text (the "figure" format).

    ``points`` maps a series name to a list of ``(x, y)`` pairs.
    """
    lines = []
    if title:
        lines.append(title)
    lines.append(f"series: {x_label} -> {y_label}")
    for name in sorted(points):
        pairs = "  ".join(f"({x}, {y})" for x, y in points[name])
        lines.append(f"  {name}: {pairs}")
    return "\n".join(lines)
