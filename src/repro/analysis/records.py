"""Flat run records for benchmark output.

A :class:`RunRecord` is one row of an experiment table: workload
parameters, algorithm, and every measured quantity, all plain
ints/strings so records serialise to TSV/JSON without ceremony.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Union

from repro.core.spec import RulingSetResult

Value = Union[int, float, str]


@dataclass
class RunRecord:
    """One experiment row: identifying fields plus measurements.

    ``fields`` holds the deterministic (model) quantities and is what
    :meth:`to_json` serialises.  ``meta`` holds run observability —
    per-cell wall-clock, worker attribution, attempt count — which the
    sweep engine stamps on; it is excluded from equality and from
    :meth:`to_json` because identical cells must compare equal across
    serial, parallel, and resumed sweeps (see DESIGN.md).
    """

    experiment: str
    workload: str
    algorithm: str
    fields: Dict[str, Value] = field(default_factory=dict)
    meta: Dict[str, Value] = field(default_factory=dict, compare=False)

    def get(self, key: str, default: Value = 0) -> Value:
        """Measurement accessor with default."""
        return self.fields.get(key, default)

    def to_json(self) -> str:
        """Serialise to one JSON line."""
        payload = {
            "experiment": self.experiment,
            "workload": self.workload,
            "algorithm": self.algorithm,
        }
        payload.update(self.fields)
        return json.dumps(payload, sort_keys=True)


def record_from_result(
    experiment: str,
    workload: str,
    result: RulingSetResult,
    extra: Dict[str, Value] = None,
) -> RunRecord:
    """Build a record from a :class:`RulingSetResult`."""
    fields: Dict[str, Value] = {
        "size": result.size,
        "beta_claimed": result.beta,
        "rounds": result.rounds,
    }
    fields.update(result.metrics)
    for phase, rounds in result.phase_rounds.items():
        fields[f"phase_{phase}"] = rounds
    if extra:
        fields.update(extra)
    return RunRecord(
        experiment=experiment,
        workload=workload,
        algorithm=result.algorithm,
        fields=fields,
    )
