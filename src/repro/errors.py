"""Exception hierarchy for the mpc-ruling-sets library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause.  Errors that
indicate a *model violation* (an algorithm exceeding the MPC memory or
per-round I/O budget) are deliberately separate from ordinary usage errors:
a model violation means a simulated algorithm is not a valid MPC algorithm
for the configured regime, which benchmarks must surface, never swallow.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Invalid graph construction or graph operation."""


class VertexError(GraphError):
    """A vertex id is out of range or otherwise invalid."""


class MPCError(ReproError):
    """Base class for MPC simulator errors."""


class MPCConfigError(MPCError):
    """The MPC configuration is inconsistent (e.g. k*S smaller than input)."""


class MPCViolationError(MPCError):
    """An algorithm exceeded an MPC resource bound.

    Raised when a machine's memory exceeds its budget, or a machine sends or
    receives more words in one round than its memory allows.  This is a
    *correctness* error for the simulated algorithm: the run does not
    correspond to a legal execution in the MPC model.
    """


class MPCRoutingError(MPCError):
    """A message was addressed to a machine id that does not exist."""


class DerandomizationError(ReproError):
    """Seed selection failed to meet its guaranteed bound.

    The method of conditional expectations guarantees the chosen seed scores
    at least the family average; if internal invariants are broken this is
    raised rather than silently returning a bad seed.
    """


class AlgorithmError(ReproError):
    """An algorithm produced an invalid intermediate or final state."""


class CongestViolationError(ReproError):
    """A LOCAL-model message exceeded the CONGEST bandwidth bound.

    Raised by :class:`repro.local.LocalNetwork` when run in CONGEST mode
    and a vertex broadcasts a payload wider than the configured number of
    words (the model's O(log n)-bit messages).
    """


class SweepError(ReproError):
    """The sweep engine was misconfigured (duplicate cell keys, bad
    jobs/timeout values) — distinct from a *cell* failure, which is
    captured as a structured failure record, never raised."""


class ServeError(ReproError):
    """The serve layer was misconfigured or fed an invalid request.

    Raised for malformed request files, unusable cache directories, and
    out-of-bounds engine options — distinct from a per-request solve
    failure, which the batch engine captures as a structured failure
    record in the output stream, never raised."""


class VerificationError(ReproError):
    """A claimed ruling set failed verification."""
