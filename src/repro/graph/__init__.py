"""Graph substrate: immutable CSR graphs, generators, operations, analysis.

The whole library works with one concrete graph type, :class:`Graph`:
vertices are the integers ``0..n-1`` and edges are undirected, simple and
unweighted — exactly the setting of the ruling-set problem.  Everything else
(generators, induced subgraphs, power graphs, BFS-based verification,
machine partitions) is built on it.
"""

from repro.graph.graph import Graph
from repro.graph.builder import GraphBuilder
from repro.graph import generators
from repro.graph.ops import (
    induced_subgraph,
    power_graph,
    relabel_dense,
    remove_vertices,
    union_disjoint,
)
from repro.graph.properties import (
    connected_components,
    degeneracy_ordering,
    degree_histogram,
    domination_radius,
    eccentricity,
    is_independent_set,
    multi_source_distances,
)
from repro.graph.partition import (
    PartitionPlan,
    balanced_edge_partition,
    hash_partition,
)
from repro.graph.io import read_edge_list, write_edge_list

__all__ = [
    "Graph",
    "GraphBuilder",
    "generators",
    "induced_subgraph",
    "power_graph",
    "relabel_dense",
    "remove_vertices",
    "union_disjoint",
    "connected_components",
    "degeneracy_ordering",
    "degree_histogram",
    "domination_radius",
    "eccentricity",
    "is_independent_set",
    "multi_source_distances",
    "PartitionPlan",
    "balanced_edge_partition",
    "hash_partition",
    "read_edge_list",
    "write_edge_list",
]
