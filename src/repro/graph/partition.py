"""Assigning vertices to MPC machines.

The MPC simulator needs a *partition plan*: which machine owns each vertex
(and with it that vertex's adjacency list).  Two strategies are provided:

``balanced_edge_partition``
    Contiguous vertex ranges chosen so each machine's total adjacency size
    is as even as a greedy sweep can make it — the default, because
    per-machine memory in the model is charged for adjacency storage.

``hash_partition``
    Multiplicative-hash assignment — adversarial-input resistant, used by
    tests to confirm algorithms are partition-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import MPCConfigError
from repro.graph.graph import Graph
from repro.util.rng import splitmix64


@dataclass(frozen=True)
class PartitionPlan:
    """Maps each vertex to its owning machine.

    ``owner[v]`` is the machine id of vertex ``v``; ``num_machines`` is the
    machine count (machines may own zero vertices).
    """

    owner: List[int]
    num_machines: int

    def __post_init__(self) -> None:
        if self.num_machines < 1:
            raise MPCConfigError("need at least one machine")
        for v, machine in enumerate(self.owner):
            if not 0 <= machine < self.num_machines:
                raise MPCConfigError(
                    f"vertex {v} assigned to invalid machine {machine}"
                )

    def vertices_of(self, machine: int) -> List[int]:
        """Return the vertices owned by ``machine`` in increasing order."""
        return [v for v, m in enumerate(self.owner) if m == machine]

    def machine_loads(self, graph: Graph) -> List[int]:
        """Adjacency words stored per machine (degree sums)."""
        loads = [0] * self.num_machines
        for v in graph.vertices():
            loads[self.owner[v]] += graph.degree(v)
        return loads


def balanced_edge_partition(graph: Graph, num_machines: int) -> PartitionPlan:
    """Contiguous ranges balancing adjacency load across machines.

    Ideal-boundary sweep: vertex ``v`` goes to the machine whose ideal
    cost interval ``[i*total/k, (i+1)*total/k)`` contains ``v``'s prefix
    cost.  Every machine's load is at most ``total/k + (Δ + 1)`` — a
    single vertex is never split and nothing piles onto the last machine.

    >>> g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    >>> plan = balanced_edge_partition(g, 2)
    >>> plan.num_machines
    2
    """
    if num_machines < 1:
        raise MPCConfigError("need at least one machine")
    n = graph.num_vertices
    owner = [0] * n
    total = max(1, 2 * graph.num_edges + n)
    prefix = 0
    for v in range(n):
        owner[v] = min(prefix * num_machines // total, num_machines - 1)
        prefix += graph.degree(v) + 1
    return PartitionPlan(owner=owner, num_machines=num_machines)


def hash_partition(
    graph: Graph, num_machines: int, seed: int = 0
) -> PartitionPlan:
    """Pseudo-random vertex assignment via SplitMix64 of the vertex id."""
    if num_machines < 1:
        raise MPCConfigError("need at least one machine")
    owner = [
        splitmix64(v ^ (seed * 0x9E3779B97F4A7C15)) % num_machines
        for v in range(graph.num_vertices)
    ]
    return PartitionPlan(owner=owner, num_machines=num_machines)


def plan_from_owner_map(owner_map) -> PartitionPlan:
    """Materialize a compact :mod:`~repro.mpc.ownermap` map into a plan.

    The owner maps are the computable O(k)-word form used on the
    machines; a :class:`PartitionPlan` is the explicit O(n) driver-side
    form — useful for balance reporting (:meth:`PartitionPlan.machine_loads`)
    and for cross-checking the two representations agree.
    """
    owner = [
        owner_map.owner_of(v) for v in range(owner_map.num_vertices)
    ]
    if not owner:
        return PartitionPlan(owner=[], num_machines=owner_map.num_machines)
    return PartitionPlan(owner=owner, num_machines=owner_map.num_machines)


def round_robin_partition(num_vertices: int, num_machines: int) -> PartitionPlan:
    """Vertex ``v`` to machine ``v mod k`` — simplest deterministic plan."""
    if num_machines < 1:
        raise MPCConfigError("need at least one machine")
    owner = [v % num_machines for v in range(num_vertices)]
    return PartitionPlan(owner=owner, num_machines=num_machines)
