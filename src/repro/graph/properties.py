"""Graph analysis: distances, components, independence, domination.

These routines are the *sequential ground truth* against which every
distributed algorithm in the library is verified — in particular
:func:`is_independent_set` and :func:`domination_radius` together decide
whether a claimed ``(2, β)``-ruling set is genuine.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List

from repro.errors import GraphError, VertexError
from repro.graph.graph import Graph

UNREACHED = -1


def multi_source_distances(graph: Graph, sources: Iterable[int]) -> List[int]:
    """BFS distance from the nearest source for every vertex.

    Unreached vertices get :data:`UNREACHED` (-1).

    >>> g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    >>> multi_source_distances(g, [0])
    [0, 1, 2, 3]
    """
    dist = [UNREACHED] * graph.num_vertices
    queue: deque = deque()
    for s in set(sources):
        if not 0 <= s < graph.num_vertices:
            raise VertexError(f"source {s} out of range")
        dist[s] = 0
        queue.append(s)
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if dist[v] == UNREACHED:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def is_independent_set(graph: Graph, candidate: Iterable[int]) -> bool:
    """Return True iff no two candidate vertices are adjacent.

    >>> g = Graph.from_edges(3, [(0, 1), (1, 2)])
    >>> is_independent_set(g, [0, 2])
    True
    >>> is_independent_set(g, [0, 1])
    False
    """
    members = set(candidate)
    for v in members:
        if not 0 <= v < graph.num_vertices:
            raise VertexError(f"vertex {v} out of range")
    for v in members:
        for u in graph.neighbors(v):
            if u in members:
                return False
    return True


def domination_radius(graph: Graph, dominators: Iterable[int]) -> int:
    """Return ``max_v dist(v, dominators)``; vertices must all be reached.

    Raises :class:`GraphError` if some vertex is unreachable from every
    dominator (the set does not dominate the graph at any radius), or if
    the dominator set is empty on a non-empty graph.

    >>> g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    >>> domination_radius(g, [1])
    2
    """
    if graph.num_vertices == 0:
        return 0
    dominator_list = list(dominators)
    if not dominator_list:
        raise GraphError("empty dominator set cannot dominate a graph")
    dist = multi_source_distances(graph, dominator_list)
    radius = 0
    for v, d in enumerate(dist):
        if d == UNREACHED:
            raise GraphError(f"vertex {v} unreachable from dominator set")
        radius = max(radius, d)
    return radius


def connected_components(graph: Graph) -> List[List[int]]:
    """Return components as sorted vertex lists, ordered by minimum vertex.

    >>> g = Graph.from_edges(4, [(0, 1), (2, 3)])
    >>> connected_components(g)
    [[0, 1], [2, 3]]
    """
    seen = [False] * graph.num_vertices
    components = []
    for root in graph.vertices():
        if seen[root]:
            continue
        seen[root] = True
        component = [root]
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    component.append(v)
                    queue.append(v)
        components.append(sorted(component))
    return components


def eccentricity(graph: Graph, v: int) -> int:
    """Max distance from ``v`` to any vertex in its component."""
    dist = multi_source_distances(graph, [v])
    return max((d for d in dist if d != UNREACHED), default=0)


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map degree -> number of vertices with that degree.

    >>> degree_histogram(Graph.from_edges(3, [(0, 1)]))
    {0: 1, 1: 2}
    """
    hist: Dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return dict(sorted(hist.items()))


def degeneracy_ordering(graph: Graph) -> List[int]:
    """Return a degeneracy (smallest-last) ordering of the vertices.

    Repeatedly removes a minimum-degree vertex; ties break by smallest id
    so the ordering is canonical.  The *degeneracy* itself is the maximum
    degree seen at removal time; see :func:`degeneracy`.
    """
    n = graph.num_vertices
    degree = graph.degrees()
    removed = [False] * n
    buckets: Dict[int, set] = {}
    for v in range(n):
        buckets.setdefault(degree[v], set()).add(v)
    order = []
    for _ in range(n):
        d = 0
        while d not in buckets or not buckets[d]:
            d += 1
        v = min(buckets[d])
        buckets[d].remove(v)
        removed[v] = True
        order.append(v)
        for u in graph.neighbors(v):
            if not removed[u]:
                buckets[degree[u]].remove(u)
                degree[u] -= 1
                buckets.setdefault(degree[u], set()).add(u)
    return order


def degeneracy(graph: Graph) -> int:
    """Return the degeneracy (max min-degree over subgraphs)."""
    n = graph.num_vertices
    if n == 0:
        return 0
    degree = graph.degrees()
    removed = [False] * n
    buckets: Dict[int, set] = {}
    for v in range(n):
        buckets.setdefault(degree[v], set()).add(v)
    best = 0
    for _ in range(n):
        d = 0
        while d not in buckets or not buckets[d]:
            d += 1
        best = max(best, d)
        v = min(buckets[d])
        buckets[d].remove(v)
        removed[v] = True
        for u in graph.neighbors(v):
            if not removed[u]:
                buckets[degree[u]].remove(u)
                degree[u] -= 1
                buckets.setdefault(degree[u], set()).add(u)
    return best
