"""The core immutable graph type.

``Graph`` stores an undirected simple graph in compressed-sparse-row form:
one flat adjacency array plus per-vertex offsets.  Adjacency lists are kept
sorted, which makes neighbourhood queries, equality checks, and the
deterministic algorithms' iteration orders canonical — two graphs built from
the same edge set compare equal and every traversal order is reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import GraphError, VertexError

Edge = Tuple[int, int]


def _csr_digest(indptr: Sequence[int], indices: Sequence[int]) -> str:
    """SHA-256 hex digest of a CSR pair.

    The digest is a pure function of the adjacency structure (indptr and
    indices are canonical: sorted lists, fixed construction order), so it
    is stable across processes and Python hash randomization — which is
    what lets the serve layer use it as an on-disk cache key.
    """
    h = hashlib.sha256()
    h.update(len(indptr).to_bytes(8, "little"))
    for value in indptr:
        h.update(value.to_bytes(8, "little"))
    for value in indices:
        h.update(value.to_bytes(8, "little"))
    return h.hexdigest()


class Graph:
    """An immutable, undirected, simple graph on vertices ``0..n-1``.

    Construct via :meth:`from_edges`, :class:`repro.graph.GraphBuilder`, or a
    generator from :mod:`repro.graph.generators`.

    >>> g = Graph.from_edges(3, [(0, 1), (1, 2)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> list(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_indptr", "_indices", "_num_edges", "_digest")

    def __init__(self, indptr: Sequence[int], indices: Sequence[int]):
        """Build from CSR arrays directly (advanced; prefer ``from_edges``).

        ``indptr`` has length ``n + 1``; the neighbours of ``v`` are
        ``indices[indptr[v]:indptr[v+1]]`` and must be sorted, in-range,
        self-loop free, duplicate free, and symmetric.
        """
        self._indptr: List[int] = list(indptr)
        self._indices: List[int] = list(indices)
        if not self._indptr or self._indptr[0] != 0:
            raise GraphError("indptr must start with 0")
        if self._indptr[-1] != len(self._indices):
            raise GraphError("indptr must end at len(indices)")
        if len(self._indices) % 2 != 0:
            raise GraphError("undirected CSR must have even index count")
        self._num_edges = len(self._indices) // 2
        self._digest: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, num_vertices: int, edges: Iterable[Edge]) -> "Graph":
        """Build a graph from an edge iterable.

        Duplicate edges (in either orientation) are rejected, as are
        self-loops and out-of-range endpoints.

        >>> Graph.from_edges(2, [(0, 1)]).num_edges
        1
        """
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        adjacency: List[List[int]] = [[] for _ in range(num_vertices)]
        seen = set()
        for u, v in edges:
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise VertexError(
                    f"edge ({u}, {v}) out of range for n={num_vertices}"
                )
            if u == v:
                raise GraphError(f"self-loop at vertex {u} is not allowed")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise GraphError(f"duplicate edge {key}")
            seen.add(key)
            adjacency[u].append(v)
            adjacency[v].append(u)
        indptr = [0]
        indices: List[int] = []
        for neighbors in adjacency:
            neighbors.sort()
            indices.extend(neighbors)
            indptr.append(len(indices))
        return cls(indptr, indices)

    @classmethod
    def empty(cls, num_vertices: int) -> "Graph":
        """Return the edgeless graph on ``num_vertices`` vertices."""
        return cls.from_edges(num_vertices, [])

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._num_edges

    def vertices(self) -> range:
        """Return ``range(n)``."""
        return range(self.num_vertices)

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise VertexError(f"vertex {v} out of range for n={self.num_vertices}")

    def degree(self, v: int) -> int:
        """Return the degree of ``v``.

        >>> Graph.from_edges(3, [(0, 1), (0, 2)]).degree(0)
        2
        """
        self._check_vertex(v)
        return self._indptr[v + 1] - self._indptr[v]

    def neighbors(self, v: int) -> Sequence[int]:
        """Return the sorted neighbour list of ``v`` (read-only view)."""
        self._check_vertex(v)
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Return True if ``{u, v}`` is an edge (binary search, O(log d)).

        >>> g = Graph.from_edges(3, [(0, 1)])
        >>> g.has_edge(1, 0)
        True
        >>> g.has_edge(1, 2)
        False
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return False
        lo, hi = self._indptr[u], self._indptr[u + 1]
        while lo < hi:
            mid = (lo + hi) // 2
            if self._indices[mid] < v:
                lo = mid + 1
            else:
                hi = mid
        return lo < self._indptr[u + 1] and self._indices[lo] == v

    def edges(self) -> Iterator[Edge]:
        """Yield each undirected edge once as ``(u, v)`` with ``u < v``."""
        for u in self.vertices():
            for v in self.neighbors(u):
                if u < v:
                    yield (u, v)

    def max_degree(self) -> int:
        """Return the maximum degree Δ (0 for the empty graph)."""
        if self.num_vertices == 0:
            return 0
        return max(
            self._indptr[v + 1] - self._indptr[v] for v in self.vertices()
        )

    def degrees(self) -> List[int]:
        """Return the degree sequence indexed by vertex."""
        return [
            self._indptr[v + 1] - self._indptr[v] for v in self.vertices()
        ]

    def fingerprint(self) -> str:
        """Content-addressed identity: SHA-256 hex digest of the CSR.

        Computed once and cached on the instance (the graph is immutable),
        so repeated calls — and :meth:`__hash__`, which reuses it — are
        O(1) after the first.  Equal graphs have equal fingerprints, and
        the digest is stable across processes, which makes it the cache
        key of the serve layer (:mod:`repro.serve`).
        """
        if self._digest is None:
            self._digest = _csr_digest(self._indptr, self._indices)
        return self._digest

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._indptr == other._indptr and self._indices == other._indices
        )

    def __hash__(self) -> int:
        # Hashing used to rebuild tuple(indptr)/tuple(indices) on every
        # call — O(n+m) each time a Graph keyed a dict, quadratic in any
        # lookup loop.  The cached fingerprint makes every hash after the
        # first O(1).
        return hash(self.fingerprint())

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"
