"""Incremental graph construction with duplicate tolerance.

:class:`repro.graph.Graph` rejects duplicate edges so that CSR invariants
are airtight, but workload generators and file readers naturally produce
duplicates (e.g. an edge sampled twice, or both orientations present in a
file).  ``GraphBuilder`` absorbs those: it deduplicates, drops self-loops,
and grows the vertex set on demand.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from repro.errors import GraphError
from repro.graph.graph import Graph


class GraphBuilder:
    """Mutable accumulator that finalises into an immutable :class:`Graph`.

    Simple-graph semantics are enforced silently: adding an edge twice (in
    either orientation) is a no-op, and self-loops are dropped, because that
    is what every generator and file reader wants.

    >>> b = GraphBuilder()
    >>> b.add_edge(0, 3)
    >>> b.add_edge(3, 0)          # duplicate orientation: absorbed
    >>> b.add_edge(2, 2)          # self-loop: dropped
    >>> g = b.build()
    >>> g.num_vertices, g.num_edges
    (4, 1)
    """

    def __init__(self, num_vertices: int = 0):
        if num_vertices < 0:
            raise GraphError("num_vertices must be >= 0")
        self._num_vertices = num_vertices
        self._edges: Set[Tuple[int, int]] = set()

    @property
    def num_vertices(self) -> int:
        """Current vertex-set size (grows as edges are added)."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of distinct edges accumulated so far."""
        return len(self._edges)

    def ensure_vertex(self, v: int) -> None:
        """Grow the vertex set to include ``v``."""
        if v < 0:
            raise GraphError(f"vertex ids must be non-negative, got {v}")
        if v >= self._num_vertices:
            self._num_vertices = v + 1

    def add_edge(self, u: int, v: int) -> None:
        """Add edge ``{u, v}``; duplicates and self-loops are absorbed."""
        self.ensure_vertex(u)
        self.ensure_vertex(v)
        if u == v:
            return
        self._edges.add((u, v) if u < v else (v, u))

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Add every edge in ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """Return True if the edge has been added already."""
        key = (u, v) if u < v else (v, u)
        return key in self._edges

    def build(self) -> Graph:
        """Finalise into an immutable :class:`Graph`."""
        return Graph.from_edges(self._num_vertices, sorted(self._edges))
