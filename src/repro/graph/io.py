"""Plain-text edge-list persistence.

Format: a header line ``n m`` followed by ``m`` lines ``u v`` with
``u < v``.  Lines starting with ``#`` are comments.  The format is chosen
for interoperability: it round-trips through this module and loads directly
into networkx / SNAP-style tooling.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

PathLike = Union[str, Path]


def _parse_int(token: str, kind: str, line: str) -> int:
    """Parse one numeric token; all format failures report uniformly.

    Without this wrapper a malformed token (e.g. ``"3 x"``) escapes as a
    bare ``ValueError`` from ``int()`` instead of the :class:`GraphError`
    every other file-format problem raises.
    """
    try:
        return int(token)
    except ValueError:
        raise GraphError(
            f"bad {kind} token {token!r} in line: {line!r}"
        ) from None


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in header + edge-list format."""
    target = Path(path)
    with target.open("w", encoding="ascii") as handle:
        handle.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def read_edge_list(path: PathLike) -> Graph:
    """Read a graph written by :func:`write_edge_list`.

    Tolerates comment lines and both edge orientations; validates the
    header's vertex count and edge count.
    """
    source = Path(path)
    header = None
    builder = None
    declared_edges = 0
    with source.open("r", encoding="ascii") as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if header is None:
                if len(parts) != 2:
                    raise GraphError(f"bad header line: {line!r}")
                header = (
                    _parse_int(parts[0], "header", line),
                    _parse_int(parts[1], "header", line),
                )
                declared_edges = header[1]
                builder = GraphBuilder(header[0])
                continue
            if len(parts) != 2:
                raise GraphError(f"bad edge line: {line!r}")
            builder.add_edge(
                _parse_int(parts[0], "edge", line),
                _parse_int(parts[1], "edge", line),
            )
    if header is None or builder is None:
        raise GraphError(f"no header found in {source}")
    graph = builder.build()
    if graph.num_vertices > header[0]:
        raise GraphError(
            f"edge endpoints exceed declared n={header[0]} in {source}"
        )
    if graph.num_edges != declared_edges:
        raise GraphError(
            f"declared m={declared_edges} but read {graph.num_edges} edges"
        )
    # Pad isolated vertices lost by the builder if header n is larger.
    if graph.num_vertices < header[0]:
        graph = Graph.from_edges(header[0], list(graph.edges()))
    return graph
