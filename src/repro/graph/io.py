"""Plain-text edge-list persistence.

Format: a header line ``n m`` followed by ``m`` lines ``u v`` with
``u < v``.  Lines starting with ``#`` are comments.  The format is chosen
for interoperability: it round-trips through this module and loads directly
into networkx / SNAP-style tooling.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Tuple, Union

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

PathLike = Union[str, Path]


def _parse_int(token: str, kind: str, line: str) -> int:
    """Parse one numeric token; all format failures report uniformly.

    Without this wrapper a malformed token (e.g. ``"3 x"``) escapes as a
    bare ``ValueError`` from ``int()`` instead of the :class:`GraphError`
    every other file-format problem raises.
    """
    try:
        return int(token)
    except ValueError:
        raise GraphError(
            f"bad {kind} token {token!r} in line: {line!r}"
        ) from None


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in header + edge-list format."""
    target = Path(path)
    with target.open("w", encoding="ascii") as handle:
        handle.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def stream_edge_list(path: PathLike) -> Iterator[Tuple[int, int]]:
    """Stream a graph file in constant memory.

    Yields the header ``(n, m)`` first, then one ``(u, v)`` pair per edge
    line, as written — duplicates and both orientations included, because
    deduplication requires memory and belongs to the consumer (the
    in-memory builder, or the per-shard finalize of
    :func:`repro.graph.stream.shard_edge_list`).  Validation happens as
    lines are read: malformed headers/edges and out-of-range endpoints
    raise :class:`GraphError` with the same messages as the in-memory
    reader, and a file without a header raises once the stream is
    consumed.
    """
    source = Path(path)
    header = None
    with source.open("r", encoding="ascii") as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if header is None:
                if len(parts) != 2:
                    raise GraphError(f"bad header line: {line!r}")
                header = (
                    _parse_int(parts[0], "header", line),
                    _parse_int(parts[1], "header", line),
                )
                yield header
                continue
            if len(parts) != 2:
                raise GraphError(f"bad edge line: {line!r}")
            u = _parse_int(parts[0], "edge", line)
            v = _parse_int(parts[1], "edge", line)
            for endpoint in (u, v):
                if endpoint < 0:
                    raise GraphError(
                        f"vertex ids must be non-negative, got {endpoint}"
                    )
            if u >= header[0] or v >= header[0]:
                raise GraphError(
                    f"edge endpoints exceed declared n={header[0]} in {source}"
                )
            yield (u, v)
    if header is None:
        raise GraphError(f"no header found in {source}")


def read_edge_list(path: PathLike) -> Graph:
    """Read a graph written by :func:`write_edge_list`.

    Tolerates comment lines and both edge orientations; validates the
    header's vertex count and edge count.  Built on
    :func:`stream_edge_list`, and materializes exactly one :class:`Graph`:
    the builder is seeded with the header's ``n``, so isolated vertices
    survive without the old rebuild-via-``Graph.from_edges`` pass that
    doubled peak memory.
    """
    stream = stream_edge_list(path)
    num_vertices, declared_edges = next(stream)
    builder = GraphBuilder(num_vertices)
    for u, v in stream:
        builder.add_edge(u, v)
    graph = builder.build()
    if graph.num_edges != declared_edges:
        raise GraphError(
            f"declared m={declared_edges} but read {graph.num_edges} edges"
        )
    return graph
