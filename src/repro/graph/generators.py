"""Deterministic workload generators.

Every generator is a pure function of its arguments (including an explicit
``seed`` for the randomized families), so benchmark workloads are
reproducible bit-for-bit.  The suite spans the axes that ruling-set round
complexity depends on: size ``n``, maximum degree Δ, degree *skew*
(power-law vs regular), and structure (trees, grids, bipartite, planted).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.util.rng import SplitMix64


# ----------------------------------------------------------------------
# Deterministic structured families
# ----------------------------------------------------------------------
def path_graph(n: int) -> Graph:
    """Path on ``n`` vertices: ``0 - 1 - ... - (n-1)``.

    >>> path_graph(4).num_edges
    3
    """
    return Graph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise GraphError(f"cycle needs n >= 3, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph.from_edges(n, edges)


def complete_graph(n: int) -> Graph:
    """Clique on ``n`` vertices."""
    return Graph.from_edges(
        n, [(i, j) for i in range(n) for j in range(i + 1, n)]
    )


def star_graph(n: int) -> Graph:
    """Star: centre 0 joined to ``n - 1`` leaves."""
    if n < 1:
        raise GraphError(f"star needs n >= 1, got {n}")
    return Graph.from_edges(n, [(0, i) for i in range(1, n)])


def grid_graph(rows: int, cols: int) -> Graph:
    """2-D grid on ``rows * cols`` vertices, row-major ids.

    >>> grid_graph(2, 3).num_edges
    7
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid needs rows, cols >= 1")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph.from_edges(rows * cols, edges)


def complete_binary_tree(n: int) -> Graph:
    """Heap-shaped binary tree: vertex ``i`` has children ``2i+1, 2i+2``."""
    edges = []
    for child in range(1, n):
        edges.append(((child - 1) // 2, child))
    return Graph.from_edges(n, edges)


def caterpillar_graph(spine: int, legs_per_vertex: int) -> Graph:
    """Caterpillar: a path of ``spine`` vertices each with pendant legs.

    Caterpillars are a classic adversarial family for greedy ruling-set
    heuristics because the spine forces long domination chains.
    """
    if spine < 1 or legs_per_vertex < 0:
        raise GraphError("need spine >= 1 and legs_per_vertex >= 0")
    builder = GraphBuilder(spine)
    for i in range(spine - 1):
        builder.add_edge(i, i + 1)
    next_id = spine
    for i in range(spine):
        for _ in range(legs_per_vertex):
            builder.add_edge(i, next_id)
            next_id += 1
    return builder.build()


def circulant_graph(n: int, offsets: List[int]) -> Graph:
    """Circulant graph: ``i ~ i ± d (mod n)`` for each offset ``d``.

    Deterministic regular graphs with tunable degree — the workhorse of the
    Δ-sweep experiment (E2).

    >>> circulant_graph(6, [1]).num_edges   # the 6-cycle
    6
    """
    if n < 3:
        raise GraphError(f"circulant needs n >= 3, got {n}")
    builder = GraphBuilder(n)
    for d in offsets:
        if not 1 <= d <= n // 2:
            raise GraphError(f"offset {d} out of range [1, {n // 2}]")
        for i in range(n):
            builder.add_edge(i, (i + d) % n)
    return builder.build()


def regular_graph(n: int, degree: int) -> Graph:
    """Deterministic ``degree``-regular graph via circulant offsets.

    Requires ``n > degree`` and ``n * degree`` even.  Odd degree uses the
    antipodal offset ``n/2`` (hence even ``n`` in that case).
    """
    if degree < 0 or degree >= n:
        raise GraphError(f"need 0 <= degree < n, got degree={degree}, n={n}")
    if (n * degree) % 2 != 0:
        raise GraphError("n * degree must be even for a regular graph")
    if degree == 0:
        return Graph.empty(n)
    offsets = list(range(1, degree // 2 + 1))
    if degree % 2 == 1:
        offsets.append(n // 2)
    return circulant_graph(n, offsets)


# ----------------------------------------------------------------------
# Seeded random families
# ----------------------------------------------------------------------
def gnp_random_graph(n: int, p_num: int, p_den: int, seed: int = 0) -> Graph:
    """Erdős–Rényi ``G(n, p)`` with exact rational edge probability.

    The probability is ``p_num / p_den`` so two runs with equal arguments
    produce the identical graph on every platform.

    >>> g = gnp_random_graph(50, 1, 10, seed=1)
    >>> g == gnp_random_graph(50, 1, 10, seed=1)
    True
    """
    if n < 0:
        raise GraphError("n must be >= 0")
    if p_den <= 0:
        raise GraphError(
            f"edge probability denominator must be positive, got p_den={p_den}"
        )
    if p_num < 0:
        raise GraphError(
            f"edge probability numerator must be >= 0, got p_num={p_num}"
        )
    if p_num > p_den:
        raise GraphError(
            f"edge probability p_num/p_den must be <= 1, got {p_num}/{p_den}"
        )
    rng = SplitMix64(seed=seed)
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if rng.bernoulli(p_num, p_den):
                edges.append((u, v))
    return Graph.from_edges(n, edges)


def gnm_random_graph(n: int, m: int, seed: int = 0) -> Graph:
    """Uniform random graph with exactly ``m`` edges.

    Uses rejection sampling over vertex pairs; requires
    ``0 <= m <= n*(n-1)/2``.
    """
    if n < 0:
        raise GraphError(f"n must be >= 0, got n={n}")
    if m < 0:
        raise GraphError(f"m must be >= 0, got m={m}")
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise GraphError(
            f"m={m} exceeds the simple-graph maximum {max_edges} for n={n}"
        )
    rng = SplitMix64(seed=seed)
    builder = GraphBuilder(n)
    while builder.num_edges < m:
        u = rng.next_below(n)
        v = rng.next_below(n)
        if u != v:
            builder.add_edge(u, v)
    return builder.build()


def random_tree(n: int, seed: int = 0) -> Graph:
    """Uniform-ish random tree: each vertex attaches to a random earlier one.

    (A random recursive tree — not uniform over all labelled trees, but a
    standard sparse benchmark family with logarithmic expected depth.)
    """
    if n < 0:
        raise GraphError("n must be >= 0")
    rng = SplitMix64(seed=seed)
    edges = []
    for v in range(1, n):
        edges.append((rng.next_below(v), v))
    return Graph.from_edges(n, edges)


def chung_lu_power_law(
    n: int, exponent_tenths: int = 25, max_weight: Optional[int] = None,
    seed: int = 0,
) -> Graph:
    """Chung–Lu graph with power-law expected degrees.

    Vertex ``i`` gets expected degree ``w_i ∝ (i + 1)^(-1/(gamma-1))``
    where ``gamma = exponent_tenths / 10`` (default 2.5), scaled so the
    heaviest vertex has expected degree ``≈ 2·sqrt(n)`` (``max_weight``
    overrides).  Edge ``{u, v}`` appears with probability
    ``min(1, w_u * w_v / W)`` — the standard skewed-degree benchmark.
    With ``w_max <= sqrt(W)`` the probabilities are genuine, so expected
    degrees really follow the power law (rather than saturating into a
    near-clique).
    """
    if n < 0:
        raise GraphError("n must be >= 0")
    if exponent_tenths <= 10:
        raise GraphError("exponent must exceed 1.0 (10 tenths)")
    gamma_minus_one = exponent_tenths - 10  # (gamma - 1) in tenths
    import math

    head = max_weight if max_weight is not None else 2 * math.isqrt(max(1, n))
    # w_i = head / (i+1)^(10/gm1), computed with exact integer roots.
    weights: List[int] = []
    for i in range(n):
        base = i + 1
        root = _int_nth_root(base**10, gamma_minus_one)
        weights.append(max(1, head // max(1, root)))
    total = sum(weights)
    rng = SplitMix64(seed=seed)
    builder = GraphBuilder(n)
    for u in range(n):
        for v in range(u + 1, n):
            num = weights[u] * weights[v]
            if rng.bernoulli(min(num, total), total):
                builder.add_edge(u, v)
    return builder.build()


def _int_nth_root(x: int, n: int) -> int:
    """floor(x**(1/n)) — local import-free copy to keep generators standalone."""
    from repro.util.mathx import int_nth_root_floor

    return int_nth_root_floor(x, n)


def random_bipartite(
    left: int, right: int, p_num: int, p_den: int, seed: int = 0
) -> Graph:
    """Random bipartite graph: left ids ``0..left-1``, right ids follow."""
    rng = SplitMix64(seed=seed)
    edges = []
    for u in range(left):
        for v in range(right):
            if rng.bernoulli(p_num, p_den):
                edges.append((u, left + v))
    return Graph.from_edges(left + right, edges)


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    quadrants: Tuple[int, int, int, int] = (57, 19, 19, 5),
    seed: int = 0,
) -> Graph:
    """R-MAT / Kronecker graph: the standard big-graph benchmark family.

    ``n = 2^scale`` vertices; ``edge_factor * n`` edge samples, each
    placed by recursively descending the adjacency matrix with quadrant
    probabilities ``quadrants`` (percentages summing to 100; the default
    is the Graph500 (0.57, 0.19, 0.19, 0.05)).  Duplicates and
    self-loops are absorbed, so the final edge count is slightly below
    ``edge_factor * n``.  Produces the skewed, community-ish degree
    structure real web/social graphs have.

    >>> g = rmat_graph(6, edge_factor=4, seed=1)
    >>> g.num_vertices
    64
    """
    if scale < 1:
        raise GraphError(f"scale must be >= 1, got {scale}")
    if sum(quadrants) != 100 or any(q < 0 for q in quadrants):
        raise GraphError("quadrant percentages must be >= 0 and sum to 100")
    n = 1 << scale
    rng = SplitMix64(seed=seed)
    a, b, c, _ = quadrants
    builder = GraphBuilder(n)
    for _ in range(edge_factor * n):
        u = v = 0
        for _ in range(scale):
            roll = rng.next_below(100)
            u <<= 1
            v <<= 1
            if roll < a:
                pass  # top-left
            elif roll < a + b:
                v |= 1  # top-right
            elif roll < a + b + c:
                u |= 1  # bottom-left
            else:
                u |= 1
                v |= 1  # bottom-right
        builder.add_edge(u, v)
    return builder.build()


def barbell_graph(clique_size: int, path_length: int) -> Graph:
    """Two cliques joined by a path — a classic bottleneck topology.

    >>> g = barbell_graph(4, 2)
    >>> g.num_vertices
    10
    """
    if clique_size < 2 or path_length < 0:
        raise GraphError("need clique_size >= 2 and path_length >= 0")
    builder = GraphBuilder(2 * clique_size + path_length)
    for i in range(clique_size):
        for j in range(i + 1, clique_size):
            builder.add_edge(i, j)
            builder.add_edge(clique_size + path_length + i,
                             clique_size + path_length + j)
    chain = (
        [clique_size - 1]
        + list(range(clique_size, clique_size + path_length))
        + [clique_size + path_length]
    )
    for x, y in zip(chain, chain[1:]):
        builder.add_edge(x, y)
    return builder.build()


# ----------------------------------------------------------------------
# Hostile families (ROADMAP item 5)
# ----------------------------------------------------------------------
def components_then_giant(
    num_small: int,
    small_size: int,
    giant_size: int,
    extra_edges: int = 0,
    seed: int = 0,
) -> Graph:
    """Many small components first, one giant component last (by id).

    The adversarial *ordering* family from the related repo's hostile
    suite: vertex ids ``0 .. num_small*small_size - 1`` form
    ``num_small`` disjoint small cliques, and the giant component — a
    random recursive tree plus ``extra_edges`` random chords — occupies
    the highest ids.  Id-contiguous partitioners (owner maps, batch
    windows) see a long quiet prefix and then all the load at once,
    which is exactly what peak-hold throttling has to survive.
    """
    if num_small < 0 or small_size < 1 or giant_size < 1 or extra_edges < 0:
        raise GraphError(
            "need num_small >= 0, small_size >= 1, giant_size >= 1, "
            f"extra_edges >= 0, got num_small={num_small}, "
            f"small_size={small_size}, giant_size={giant_size}, "
            f"extra_edges={extra_edges}"
        )
    n = num_small * small_size + giant_size
    builder = GraphBuilder(n)
    for c in range(num_small):
        base = c * small_size
        for i in range(small_size):
            for j in range(i + 1, small_size):
                builder.add_edge(base + i, base + j)
    rng = SplitMix64(seed=seed)
    giant_base = num_small * small_size
    for offset in range(1, giant_size):
        builder.add_edge(
            giant_base + rng.next_below(offset), giant_base + offset
        )
    added = 0
    while added < extra_edges and giant_size >= 2:
        u = giant_base + rng.next_below(giant_size)
        v = giant_base + rng.next_below(giant_size)
        if u != v:
            builder.add_edge(u, v)
            added += 1
    return builder.build()


def relabeled_graph(graph: Graph, seed: int = 0) -> Graph:
    """The same graph under a seeded random permutation of vertex ids.

    Structure-preserving but order-hostile: any assumption that vertex
    ids correlate with structure (id-contiguous owner maps, id-windowed
    batching, id-ordered tie breaks) faces a different adversary on the
    relabeled twin.  Deterministic per ``(graph, seed)``.
    """
    n = graph.num_vertices
    perm = list(range(n))
    SplitMix64(seed=seed).shuffle(perm)
    return Graph.from_edges(
        n, [(perm[u], perm[v]) for u, v in graph.edges()]
    )


def hostile_suite(scale: int = 1, seed: int = 0) -> List[Tuple[str, Graph]]:
    """The named hostile workloads the fuzzing harness replays.

    Deterministic per ``(scale, seed)``: degree skew (power-law, RMAT,
    star), density (near-clique G(n, 1/2)), bottlenecks (barbell),
    domination chains (caterpillar), adversarial component orderings
    (small components before a giant one), and an id-permuted twin of
    the ordering family.  ``scale`` multiplies the sizes; scale 1 keeps
    every cell small enough for exhaustive all-solver replay in CI.
    """
    if scale < 1:
        raise GraphError(f"scale must be >= 1, got {scale}")
    ctg = components_then_giant(
        num_small=4 * scale,
        small_size=3,
        giant_size=24 * scale,
        extra_edges=12 * scale,
        seed=seed,
    )
    rmat_scale = 5 + max(0, scale - 1).bit_length()
    return [
        ("powerlaw", chung_lu_power_law(48 * scale, seed=seed)),
        ("rmat", rmat_graph(rmat_scale, edge_factor=4, seed=seed)),
        ("dense-gnp", gnp_random_graph(20 * scale, 1, 2, seed=seed)),
        ("star", star_graph(32 * scale)),
        ("caterpillar", caterpillar_graph(10 * scale, 3)),
        ("barbell", barbell_graph(6 * scale, 4)),
        ("components-then-giant", ctg),
        ("components-then-giant-relabeled", relabeled_graph(ctg, seed=seed + 1)),
    ]


def planted_ruling_set_graph(
    num_centers: int, spokes: int, chain: int, seed: int = 0
) -> Tuple[Graph, List[int]]:
    """Graph with a *planted* ``(2, chain)``-ruling set, plus the plant.

    Each of ``num_centers`` centres grows ``spokes`` paths of length
    ``chain``; centres are pairwise non-adjacent, and every vertex is within
    ``chain`` hops of its centre.  Returns ``(graph, centers)`` — used by
    tests and E4 to validate verifier and quality metrics against ground
    truth.

    >>> g, centers = planted_ruling_set_graph(3, 2, 2)
    >>> len(centers)
    3
    """
    if num_centers < 1 or spokes < 0 or chain < 1:
        raise GraphError("need num_centers >= 1, spokes >= 0, chain >= 1")
    builder = GraphBuilder()
    centers = []
    next_id = 0
    rng = SplitMix64(seed=seed)
    tails: List[int] = []
    for _ in range(num_centers):
        center = next_id
        next_id += 1
        builder.ensure_vertex(center)
        centers.append(center)
        for _ in range(spokes):
            prev = center
            for _ in range(chain):
                builder.add_edge(prev, next_id)
                prev = next_id
                next_id += 1
            tails.append(prev)
    # Join random pairs of tails from different centres so the graph is
    # connected-ish without shrinking any centre's domination radius.
    if len(tails) >= 2:
        for _ in range(len(tails) // 2):
            a = tails[rng.next_below(len(tails))]
            b = tails[rng.next_below(len(tails))]
            if a != b:
                builder.add_edge(a, b)
    return builder.build(), centers
