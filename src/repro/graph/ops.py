"""Graph transformations: subgraphs, removals, powers, unions, relabelling.

These are the structural operations the ruling-set pipeline needs:
*residual* graphs after removing dominated vertices, *power graphs* for
graph exponentiation, and dense relabelling so recursive calls always see
vertex ids ``0..n'-1``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import GraphError, VertexError
from repro.graph.graph import Graph


def induced_subgraph(
    graph: Graph, keep: Iterable[int]
) -> Tuple[Graph, List[int]]:
    """Return the subgraph induced by ``keep`` plus the old-id map.

    Vertices are relabelled densely in increasing old-id order; element
    ``i`` of the returned list is the original id of new vertex ``i``.

    >>> g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    >>> sub, old_ids = induced_subgraph(g, [1, 2, 3])
    >>> sub.num_vertices, sub.num_edges, old_ids
    (3, 2, [1, 2, 3])
    """
    keep_sorted = sorted(set(keep))
    for v in keep_sorted:
        if not 0 <= v < graph.num_vertices:
            raise VertexError(f"vertex {v} out of range")
    new_id: Dict[int, int] = {old: new for new, old in enumerate(keep_sorted)}
    edges = []
    for u in keep_sorted:
        for v in graph.neighbors(u):
            if u < v and v in new_id:
                edges.append((new_id[u], new_id[v]))
    return Graph.from_edges(len(keep_sorted), edges), keep_sorted


def remove_vertices(
    graph: Graph, removed: Iterable[int]
) -> Tuple[Graph, List[int]]:
    """Return the graph minus ``removed`` plus the old-id map."""
    removed_set = set(removed)
    keep = [v for v in graph.vertices() if v not in removed_set]
    return induced_subgraph(graph, keep)


def relabel_dense(
    num_vertices: int, edges: Sequence[Tuple[int, int]]
) -> Tuple[Graph, List[int]]:
    """Build a graph from edges over sparse ids, relabelled densely.

    Isolated vertices are dropped (only ids that appear in an edge
    survive); returns ``(graph, old_ids)``.
    """
    ids = sorted({u for e in edges for u in e})
    for v in ids:
        if not 0 <= v < num_vertices:
            raise VertexError(f"vertex {v} out of range")
    new_id = {old: new for new, old in enumerate(ids)}
    relabelled = [(new_id[u], new_id[v]) for u, v in edges]
    return Graph.from_edges(len(ids), relabelled), ids


def power_graph(graph: Graph, k: int) -> Graph:
    """Return ``G^k``: same vertices, edges between all pairs at distance ≤ k.

    Implemented as a depth-bounded BFS from each vertex — O(n * (n + m))
    worst case, intended for the moderate sizes the simulator handles.
    ``G^1`` is ``G`` itself (a copy).

    >>> g = power_graph(Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)]), 2)
    >>> sorted(g.neighbors(0))
    [1, 2]
    """
    if k < 1:
        raise GraphError(f"power must be >= 1, got {k}")
    edges = []
    for src in graph.vertices():
        dist = {src: 0}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            if dist[u] == k:
                continue
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        for v in dist:
            if src < v:
                edges.append((src, v))
    return Graph.from_edges(graph.num_vertices, edges)


def union_disjoint(graphs: Sequence[Graph]) -> Graph:
    """Disjoint union; vertex ids of graph ``i`` are shifted past graph ``i-1``.

    >>> g = union_disjoint([Graph.from_edges(2, [(0, 1)])] * 2)
    >>> g.num_vertices, g.num_edges
    (4, 2)
    """
    edges = []
    offset = 0
    for graph in graphs:
        for u, v in graph.edges():
            edges.append((u + offset, v + offset))
        offset += graph.num_vertices
    return Graph.from_edges(offset, edges)


def complement_graph(graph: Graph) -> Graph:
    """Return the complement (use only on small graphs: O(n^2) edges)."""
    n = graph.num_vertices
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if not graph.has_edge(u, v)
    ]
    return Graph.from_edges(n, edges)
