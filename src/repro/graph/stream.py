"""Streaming edge-list ingest: shard while reading, never hold all of m.

The in-memory loader (:func:`repro.graph.io.read_edge_list`) materializes
the whole graph in the driver — exactly what the shard backend exists to
avoid.  This module provides the out-of-core path:

:func:`scan_edge_list_stats`
    Pass 1 — stream the file once, accumulating an O(n) degree array.
    Yields the global quantities regime sizing needs (``n``, declared
    ``m``, ``Δ``) before any edge is stored anywhere.

:func:`shard_edge_list`
    Pass 2 — stream the file again, bucketing *both orientations* of
    each edge toward the owner machine of its endpoint (per a computable
    :mod:`~repro.mpc.ownermap` map).  Buckets flush to per-machine spool
    files in bounded chunks, then each machine's spool is finalized
    independently — deduplicated, sorted, counted, checksummed — holding
    only that one machine's adjacency in memory.  Peak driver memory is
    O(chunk + largest shard), never O(m).

The resulting :class:`ShardedGraph` plugs into
:meth:`repro.mpc.graph_store.DistributedGraph.load_sharded`, whose
planted stores are bit-identical to an in-memory load under the same
owner map — streamed and in-memory runs are interchangeable, which the
ingest-parity tests pin.

The two-pass shape resolves a sizing cycle: the owner map needs the
machine count ``k``, ``k`` comes from the regime config, and the config's
memory floor needs ``Δ`` — which only a read of the file can produce.
Pass 1 breaks the cycle with O(n) memory.  On files containing duplicate
edge lines the pass-1 degree estimate over-counts (dedup needs memory),
which can only make the sized memory budget *larger* — never unsound;
pass 2 reports the exact deduplicated ``m`` and ``Δ``.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.io import PathLike, stream_edge_list
from repro.mpc.ownermap import edge_id

DEFAULT_CHUNK_EDGES = 65536

SPILL_DIR_ENV = "REPRO_SHARD_DIR"


@dataclass(frozen=True)
class EdgeListStats:
    """Pass-1 global quantities of a streamed edge list.

    ``max_degree`` counts every edge line (duplicates included): exact
    for files written by :func:`~repro.graph.io.write_edge_list`, an
    upper bound otherwise — safe for memory sizing either way.
    """

    num_vertices: int
    declared_edges: int
    max_degree: int


def scan_edge_list_stats(path: PathLike) -> EdgeListStats:
    """Stream ``path`` once; return (n, declared m, Δ) with O(n) memory."""
    stream = stream_edge_list(path)
    num_vertices, declared_edges = next(stream)
    degrees = [0] * num_vertices
    for u, v in stream:
        if u == v:
            continue
        degrees[u] += 1
        degrees[v] += 1
    return EdgeListStats(
        num_vertices=num_vertices,
        declared_edges=declared_edges,
        max_degree=max(degrees, default=0),
    )


@dataclass
class ShardedGraph:
    """An on-disk, owner-map-partitioned adjacency, ready to plant.

    Each machine's shard file holds ``{v: sorted neighbor tuple}`` for
    the vertices it owns (isolated owned vertices are absent — the plant
    fills them from ``owned_by``).  ``checksum`` is the XOR of the
    symmetric :func:`~repro.mpc.ownermap.edge_id` over all distinct
    edges: two ingests of the same graph agree on it regardless of line
    order or duplicated orientations.
    """

    num_vertices: int
    num_edges: int
    max_degree: int
    owner_map: object
    shard_dir: str
    checksum: int
    _owns_dir: bool = field(default=True, repr=False)

    def shard_path(self, mid: int) -> str:
        return os.path.join(self.shard_dir, f"adj_{mid}.pkl")

    def read_shard(self, mid: int) -> Dict[int, Tuple[int, ...]]:
        """Load one machine's adjacency rows (empty dict if none)."""
        path = self.shard_path(mid)
        if not os.path.exists(path):
            return {}
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def cleanup(self) -> None:
        """Remove the shard files (idempotent)."""
        if self._owns_dir and os.path.isdir(self.shard_dir):
            shutil.rmtree(self.shard_dir, ignore_errors=True)

    def __enter__(self) -> "ShardedGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()


def shard_edge_list(
    path: PathLike,
    owner_map,
    spill_dir: Optional[str] = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> ShardedGraph:
    """Stream ``path`` into per-machine adjacency shards.

    ``owner_map`` must cover the file's vertex range (its ``num_vertices``
    is trusted as the ingest's ``n``).  Every edge is spooled toward both
    endpoints' owners in bounded chunks; the per-machine finalize then
    deduplicates and sorts one shard at a time.  The declared edge count
    is validated against the exact post-dedup count, matching the
    in-memory reader's error.
    """
    if chunk_edges < 1:
        raise GraphError(f"chunk_edges must be >= 1, got {chunk_edges}")
    stream = stream_edge_list(path)
    num_vertices, declared_edges = next(stream)
    if owner_map.num_vertices != num_vertices:
        raise GraphError(
            f"owner map covers {owner_map.num_vertices} vertices but "
            f"{path} declares n={num_vertices}"
        )
    k = owner_map.num_machines
    root = spill_dir or os.environ.get(SPILL_DIR_ENV)
    if root is not None:
        os.makedirs(root, exist_ok=True)
    shard_dir = tempfile.mkdtemp(prefix="repro-ingest-", dir=root)
    try:
        return _ingest_into(
            shard_dir, stream, owner_map, chunk_edges,
            num_vertices, declared_edges,
        )
    except BaseException:
        # Anything that aborts the ingest — a malformed line mid-file,
        # a declared-count mismatch, a full disk, an interrupt — must
        # not leak the spill directory we just created.  Success hands
        # ownership to the returned ShardedGraph (whose cleanup() /
        # context manager removes it).
        shutil.rmtree(shard_dir, ignore_errors=True)
        raise


def _ingest_into(
    shard_dir: str,
    stream,
    owner_map,
    chunk_edges: int,
    num_vertices: int,
    declared_edges: int,
) -> ShardedGraph:
    """The ingest body; ``shard_edge_list`` owns spill-dir lifecycle."""
    k = owner_map.num_machines
    spool_paths = [os.path.join(shard_dir, f"spool_{mid}.pkl") for mid in range(k)]
    spools: List[Optional[object]] = [None] * k
    buffers: List[List[Tuple[int, int]]] = [[] for _ in range(k)]
    buffered = 0

    def _flush_all() -> None:
        nonlocal buffered
        for mid in range(k):
            if not buffers[mid]:
                continue
            if spools[mid] is None:
                spools[mid] = open(spool_paths[mid], "wb")
            pickle.dump(
                buffers[mid], spools[mid], protocol=pickle.HIGHEST_PROTOCOL
            )
            buffers[mid] = []
        buffered = 0

    try:
        for u, v in stream:
            if u == v:
                continue  # builder semantics: self-loops are absorbed
            buffers[owner_map.owner_of(u)].append((u, v))
            buffers[owner_map.owner_of(v)].append((v, u))
            buffered += 2
            if buffered >= chunk_edges:
                _flush_all()
        _flush_all()
    finally:
        for spool in spools:
            if spool is not None:
                spool.close()

    # Finalize one shard at a time: dedup, sort, count, checksum.  A
    # distinct edge (v, u) with v < u contributes to the canonical count
    # at the owner of v exactly once, so the shard totals sum to m.
    total_edges = 0
    max_degree = 0
    checksum = 0
    for mid in range(k):
        rows: Dict[int, set] = {}
        if os.path.exists(spool_paths[mid]):
            with open(spool_paths[mid], "rb") as handle:
                while True:
                    try:
                        chunk = pickle.load(handle)
                    except EOFError:
                        break
                    for v, u in chunk:
                        rows.setdefault(v, set()).add(u)
            os.unlink(spool_paths[mid])
        if not rows:
            continue
        adj: Dict[int, Tuple[int, ...]] = {}
        for v in sorted(rows):
            neighbors = tuple(sorted(rows[v]))
            adj[v] = neighbors
            if len(neighbors) > max_degree:
                max_degree = len(neighbors)
            for u in neighbors:
                if v < u:
                    total_edges += 1
                    checksum ^= edge_id(v, u)
        with open(os.path.join(shard_dir, f"adj_{mid}.pkl"), "wb") as handle:
            pickle.dump(adj, handle, protocol=pickle.HIGHEST_PROTOCOL)

    if total_edges != declared_edges:
        raise GraphError(
            f"declared m={declared_edges} but read {total_edges} edges"
        )
    return ShardedGraph(
        num_vertices=num_vertices,
        num_edges=total_edges,
        max_degree=max_degree,
        owner_map=owner_map,
        shard_dir=shard_dir,
        checksum=checksum,
    )
