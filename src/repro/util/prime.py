"""Deterministic primality testing and prime search.

The derandomization machinery hashes vertex ids with affine maps over a
prime field ``GF(p)``; ``p`` must exceed every vertex id and is found with
:func:`next_prime`.  Primality uses the Miller–Rabin test with a witness set
that is *proven deterministic* for all 64-bit integers (Sorenson & Webster,
2015), so no randomness and no false positives for every size this library
produces.
"""

from __future__ import annotations

# Witnesses sufficient for deterministic Miller-Rabin below 3.3 * 10^24,
# which covers all 64-bit (and somewhat larger) moduli this library uses.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)


def _miller_rabin_witness(n: int, a: int, d: int, r: int) -> bool:
    """Return True if witness ``a`` proves ``n`` composite."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_prime(n: int) -> bool:
    """Deterministically decide primality of ``n`` (exact for n < 3.3e24).

    >>> is_prime(2)
    True
    >>> is_prime(1)
    False
    >>> is_prime(2**31 - 1)
    True
    >>> is_prime(2**32 + 1)
    False
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        if a % n == 0:
            continue
        if _miller_rabin_witness(n, a, d, r):
            return False
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime ``>= n``.

    >>> next_prime(0)
    2
    >>> next_prime(14)
    17
    >>> next_prime(17)
    17
    """
    if n <= 2:
        return 2
    candidate = n | 1  # first odd >= n
    while not is_prime(candidate):
        candidate += 2
    return candidate


def prime_field_for(max_value: int) -> int:
    """Return a prime strictly greater than ``max_value``.

    This is the modulus used by the affine hash family: for a vertex set
    ``{0, ..., n-1}`` the field must contain every id as a distinct element,
    hence ``p > max_value``.

    >>> prime_field_for(10)
    11
    >>> prime_field_for(0)
    2
    """
    if max_value < 0:
        raise ValueError("max_value must be non-negative")
    return next_prime(max_value + 1)
