"""Exact cyclic-interval arithmetic in ``Z_p``.

The derandomization in :mod:`repro.derand` works with the affine hash family
``h_{a,b}(x) = (a*x + b) mod p``.  Every event it cares about has the form
``h(x) < T`` — equivalently ``b`` lies in a *cyclic interval* of length ``T``
starting at ``(-a*x) mod p``.  Conditional expectations therefore reduce to
measuring intersections of cyclic intervals with each other and with the
contiguous ranges of ``b`` produced by fixing its bits most-significant
first.  This module provides that arithmetic, exactly and in O(1) per
operation.

A cyclic interval is represented as ``(start, length)`` with
``0 <= start < p`` and ``0 <= length <= p``; it denotes the set
``{(start + i) mod p : 0 <= i < length}``.  Internally intervals are
normalised into at most two *linear segments* ``[lo, hi)`` with
``0 <= lo < hi <= p``, which compose under intersection by plain min/max.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

Segment = Tuple[int, int]  # half-open [lo, hi), 0 <= lo < hi <= p


@dataclass(frozen=True)
class CyclicInterval:
    """A half-open cyclic interval ``[start, start+length) mod p``."""

    start: int
    length: int
    modulus: int

    def __post_init__(self) -> None:
        if self.modulus <= 0:
            raise ValueError(f"modulus must be positive, got {self.modulus}")
        if not 0 <= self.start < self.modulus:
            raise ValueError(
                f"start must lie in [0, {self.modulus}), got {self.start}"
            )
        if not 0 <= self.length <= self.modulus:
            raise ValueError(
                f"length must lie in [0, {self.modulus}], got {self.length}"
            )

    def contains(self, x: int) -> bool:
        """Return True if ``x mod p`` lies in the interval.

        >>> CyclicInterval(5, 4, 7).contains(1)   # wraps: {5, 6, 0, 1}
        True
        >>> CyclicInterval(5, 4, 7).contains(2)
        False
        """
        offset = (x - self.start) % self.modulus
        return offset < self.length

    def segments(self) -> List[Segment]:
        """Return the interval as at most two linear segments."""
        return interval_to_segments(self.start, self.length, self.modulus)


def interval_to_segments(start: int, length: int, p: int) -> List[Segment]:
    """Split cyclic ``[start, start+length) mod p`` into linear segments.

    >>> interval_to_segments(2, 3, 10)
    [(2, 5)]
    >>> interval_to_segments(8, 4, 10)   # wraps past p
    [(0, 2), (8, 10)]
    >>> interval_to_segments(3, 0, 10)
    []
    """
    if length <= 0:
        return []
    if length >= p:
        return [(0, p)]
    end = start + length
    if end <= p:
        return [(start, end)]
    return [(0, end - p), (start, p)]


def intersect_segments(
    first: Sequence[Segment], second: Sequence[Segment]
) -> List[Segment]:
    """Return the intersection of two segment lists.

    Each input is a list of disjoint half-open segments; the output is the
    (disjoint) pairwise intersection.  Inputs here always have at most two
    segments, so the quadratic pairing is O(1).

    >>> intersect_segments([(0, 5)], [(3, 8)])
    [(3, 5)]
    >>> intersect_segments([(0, 2), (8, 10)], [(1, 9)])
    [(1, 2), (8, 9)]
    """
    out: List[Segment] = []
    for lo1, hi1 in first:
        for lo2, hi2 in second:
            lo = max(lo1, lo2)
            hi = min(hi1, hi2)
            if lo < hi:
                out.append((lo, hi))
    out.sort()
    return out


def segments_length(segments: Iterable[Segment]) -> int:
    """Total number of integers covered by disjoint segments.

    >>> segments_length([(0, 2), (8, 10)])
    4
    """
    return sum(hi - lo for lo, hi in segments)


def segments_overlap_range(
    segments: Sequence[Segment], lo: int, hi: int
) -> int:
    """Return ``|segments ∩ [lo, hi)|`` for disjoint segments.

    This is the inner loop of bit-fixing: ``[lo, hi)`` is the set of values
    of ``b`` consistent with the bits committed so far.

    >>> segments_overlap_range([(0, 2), (8, 10)], 1, 9)
    2
    """
    if lo >= hi:
        return 0
    total = 0
    for seg_lo, seg_hi in segments:
        inter_lo = max(seg_lo, lo)
        inter_hi = min(seg_hi, hi)
        if inter_lo < inter_hi:
            total += inter_hi - inter_lo
    return total


def cyclic_overlap(first: CyclicInterval, second: CyclicInterval) -> int:
    """Return the exact size of the intersection of two cyclic intervals.

    Both intervals must share a modulus.

    >>> a = CyclicInterval(8, 4, 10)   # {8, 9, 0, 1}
    >>> b = CyclicInterval(9, 3, 10)   # {9, 0, 1}
    >>> cyclic_overlap(a, b)
    3
    """
    if first.modulus != second.modulus:
        raise ValueError("intervals must share a modulus")
    return segments_length(
        intersect_segments(first.segments(), second.segments())
    )
