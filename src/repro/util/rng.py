"""SplitMix64: a tiny, fast, counter-based deterministic PRG.

The *deterministic* algorithms in this library consume no random bits.  The
*randomized baselines* (Luby's MIS, sample-and-gather) do, and for honest
benchmarking those runs must be reproducible bit-for-bit.  SplitMix64 is a
stateless mixing function of a 64-bit counter, so a ``(seed, stream, index)``
triple fully determines every draw — there is no hidden global state and
independent logical streams never interact.
"""

from __future__ import annotations

from dataclasses import dataclass

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def splitmix64(x: int) -> int:
    """Return the SplitMix64 mix of a 64-bit value.

    >>> splitmix64(0) == splitmix64(0)
    True
    >>> 0 <= splitmix64(12345) < 2**64
    True
    """
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


@dataclass
class SplitMix64:
    """A counter-based PRG stream.

    Parameters
    ----------
    seed:
        Stream seed; two streams with different seeds are independent for
        every practical purpose.
    counter:
        Starting counter, exposed so a stream can be reconstructed at any
        point (useful for replaying a simulated machine's draws).
    """

    seed: int = 0
    counter: int = 0

    def next_u64(self) -> int:
        """Return the next 64-bit draw and advance the counter."""
        value = splitmix64((self.seed * 0x632BE59BD9B4E019 + self.counter) & _MASK64)
        self.counter += 1
        return value

    def next_below(self, bound: int) -> int:
        """Return a draw uniform on ``[0, bound)`` (rejection sampling).

        >>> rng = SplitMix64(seed=7)
        >>> all(0 <= rng.next_below(10) < 10 for _ in range(100))
        True
        """
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        if bound > (1 << 64):
            # With bound > 2**64 the rejection limit below is 0 and the
            # loop would never terminate (no 64-bit draw can be uniform
            # on a wider range anyway).
            raise ValueError(f"bound must be <= 2**64, got {bound}")
        # Rejection sampling removes modulo bias; at most one extra draw in
        # expectation because bound <= 2**64.
        limit = (1 << 64) - ((1 << 64) % bound)
        while True:
            draw = self.next_u64()
            if draw < limit:
                return draw % bound

    def next_unit(self) -> float:
        """Return a float uniform on ``[0, 1)`` with 53 bits of precision."""
        return (self.next_u64() >> 11) / float(1 << 53)

    def bernoulli(self, num: int, den: int) -> bool:
        """Return True with probability exactly ``num/den`` (integers).

        Exact rational Bernoulli draws keep the randomized baselines free of
        floating-point threshold artifacts.

        >>> rng = SplitMix64(seed=1)
        >>> isinstance(rng.bernoulli(1, 2), bool)
        True
        """
        if den <= 0:
            raise ValueError("den must be positive")
        if num <= 0:
            return False
        if num >= den:
            return True
        return self.next_below(den) < num

    def fork(self, stream: int) -> "SplitMix64":
        """Return an independent child stream labelled ``stream``.

        Used to hand every simulated machine / vertex its own stream so the
        schedule of draws cannot depend on machine interleaving.
        """
        child_seed = splitmix64((self.seed ^ (stream * _GOLDEN)) & _MASK64)
        return SplitMix64(seed=child_seed, counter=0)

    def shuffle(self, items: list) -> None:
        """Fisher–Yates shuffle of ``items`` in place using this stream."""
        for i in range(len(items) - 1, 0, -1):
            j = self.next_below(i + 1)
            items[i], items[j] = items[j], items[i]
