"""Deterministic low-level utilities shared by all subsystems.

Submodules
----------
``mathx``
    Integer helpers (ceil-div, integer logs, powers of two).
``prime``
    Deterministic Miller–Rabin primality and ``next_prime`` for building
    hash-family moduli.
``rng``
    SplitMix64, a counter-based deterministic PRG used by the *randomized*
    baselines (the deterministic algorithms use no randomness at all).
``intervals``
    Exact cyclic-interval arithmetic in ``Z_p``; the basis of the
    conditional-expectation computations in :mod:`repro.derand`.
"""

from repro.util.mathx import ceil_div, ilog2_ceil, ilog2_floor, next_pow2
from repro.util.prime import is_prime, next_prime
from repro.util.rng import SplitMix64
from repro.util.intervals import (
    CyclicInterval,
    interval_to_segments,
    intersect_segments,
    segments_length,
    segments_overlap_range,
)

__all__ = [
    "ceil_div",
    "ilog2_ceil",
    "ilog2_floor",
    "next_pow2",
    "is_prime",
    "next_prime",
    "SplitMix64",
    "CyclicInterval",
    "interval_to_segments",
    "intersect_segments",
    "segments_length",
    "segments_overlap_range",
]
