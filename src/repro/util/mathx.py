"""Small exact integer helpers.

Everything here is pure integer arithmetic; nothing depends on floats, so
results are identical across platforms — a requirement for a library whose
headline feature is determinism.
"""

from __future__ import annotations


def ceil_div(a: int, b: int) -> int:
    """Return ``ceil(a / b)`` for integers with ``b > 0``.

    >>> ceil_div(7, 3)
    3
    >>> ceil_div(6, 3)
    2
    >>> ceil_div(0, 5)
    0
    """
    if b <= 0:
        raise ValueError(f"ceil_div requires b > 0, got {b}")
    return -(-a // b)


def ilog2_floor(x: int) -> int:
    """Return ``floor(log2(x))`` for ``x >= 1``.

    >>> ilog2_floor(1)
    0
    >>> ilog2_floor(8)
    3
    >>> ilog2_floor(9)
    3
    """
    if x < 1:
        raise ValueError(f"ilog2_floor requires x >= 1, got {x}")
    return x.bit_length() - 1


def ilog2_ceil(x: int) -> int:
    """Return ``ceil(log2(x))`` for ``x >= 1``.

    >>> ilog2_ceil(1)
    0
    >>> ilog2_ceil(8)
    3
    >>> ilog2_ceil(9)
    4
    """
    if x < 1:
        raise ValueError(f"ilog2_ceil requires x >= 1, got {x}")
    return (x - 1).bit_length()


def next_pow2(x: int) -> int:
    """Return the smallest power of two that is ``>= x`` (and ``>= 1``).

    >>> next_pow2(0)
    1
    >>> next_pow2(5)
    8
    >>> next_pow2(8)
    8
    """
    if x <= 1:
        return 1
    return 1 << ilog2_ceil(x)


def int_nth_root_floor(x: int, n: int) -> int:
    """Return ``floor(x ** (1/n))`` using exact integer Newton iteration.

    >>> int_nth_root_floor(26, 3)
    2
    >>> int_nth_root_floor(27, 3)
    3
    """
    if x < 0:
        raise ValueError("x must be non-negative")
    if n < 1:
        raise ValueError("n must be >= 1")
    if x in (0, 1) or n == 1:
        return x
    # Initial guess from bit length, then monotone Newton descent.
    guess = 1 << ceil_div(x.bit_length(), n)
    while True:
        nxt = ((n - 1) * guess + x // guess ** (n - 1)) // n
        if nxt >= guess:
            break
        guess = nxt
    while guess**n > x:
        guess -= 1
    return guess


def ipow_ceil(base_num: int, alpha_num: int, alpha_den: int) -> int:
    """Return ``ceil(base_num ** (alpha_num / alpha_den))`` exactly.

    Used to size per-machine memory ``S = n^alpha`` with rational ``alpha``
    without floating-point drift.

    >>> ipow_ceil(100, 1, 2)   # ceil(sqrt(100))
    10
    >>> ipow_ceil(10, 2, 3)    # ceil(10^(2/3)) = ceil(4.64...)
    5
    """
    if base_num < 0 or alpha_num < 0 or alpha_den <= 0:
        raise ValueError("arguments must be non-negative with alpha_den > 0")
    if base_num == 0:
        return 0
    powered = base_num**alpha_num
    root = int_nth_root_floor(powered, alpha_den)
    if root**alpha_den < powered:
        root += 1
    return root
