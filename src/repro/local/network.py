"""Synchronous LOCAL / CONGEST round simulator.

A :class:`VertexAlgorithm` defines per-vertex behaviour; the network runs
rounds until every vertex halts or a round limit is hit.  Per round every
non-halted vertex may broadcast one payload to all neighbours (the LOCAL
model allows distinct per-neighbour messages; broadcast suffices for every
algorithm here and keeps the interface small), then updates its state from
the received payloads.

**CONGEST mode.**  Pass ``bandwidth_words`` to bound message sizes: each
broadcast payload is measured in machine words (ints and flat containers,
same accounting as the MPC simulator) and a payload exceeding the bound
raises :class:`~repro.errors.CongestViolationError`.  The classic setting
is O(log n) bits = O(1) words; both baselines in this package fit in 3
words, which their tests assert.

Determinism: vertices are processed in id order, inboxes are sorted by
sender id, and any randomness must come through the algorithm's own seeded
streams — the network itself draws no random bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import AlgorithmError, CongestViolationError


def payload_words(payload: Any) -> int:
    """Size of a LOCAL message payload in words (ints + flat containers).

    Strings of up to 8 characters cost one word (they appear only as
    small message tags).

    >>> payload_words(("prio", (12345, 6)))
    3
    """
    if payload is None:
        return 0
    if isinstance(payload, (bool, int, float)):
        return 1
    if isinstance(payload, str):
        return (len(payload) + 7) // 8
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(payload_words(item) for item in payload)
    if isinstance(payload, dict):
        return sum(
            payload_words(k) + payload_words(v) for k, v in payload.items()
        )
    raise TypeError(
        f"cannot account for payload of type {type(payload).__name__}"
    )


class VertexAlgorithm:
    """Base class for LOCAL-model vertex programs.

    Subclasses override the four hooks; states may be any mutable object
    (LOCAL does not meter memory).
    """

    def init(self, v: int, degree: int) -> Any:
        """Return vertex ``v``'s initial state."""
        raise NotImplementedError

    def message(self, v: int, state: Any, round_no: int) -> Any:
        """Payload ``v`` broadcasts this round (None = silent)."""
        raise NotImplementedError

    def update(
        self,
        v: int,
        state: Any,
        inbox: List[Tuple[int, Any]],
        round_no: int,
    ) -> Any:
        """Return ``v``'s new state given neighbour messages."""
        raise NotImplementedError

    def halted(self, v: int, state: Any) -> bool:
        """True once ``v`` will neither send nor change state again."""
        raise NotImplementedError


@dataclass
class LocalRunResult:
    """Outcome of a LOCAL run: final states and the rounds consumed."""

    states: List[Any]
    rounds: int
    completed: bool
    max_message_words: int = 0
    total_messages: int = 0


class LocalNetwork:
    """Runs a :class:`VertexAlgorithm` on a graph.

    ``bandwidth_words=None`` is the LOCAL model (unbounded messages);
    an integer bound is the CONGEST model with that word budget.
    """

    def __init__(self, graph, bandwidth_words: Optional[int] = None):
        if bandwidth_words is not None and bandwidth_words < 1:
            raise AlgorithmError("bandwidth_words must be >= 1 or None")
        self.graph = graph
        self.bandwidth_words = bandwidth_words

    def run(
        self, algorithm: VertexAlgorithm, max_rounds: int = 10_000
    ) -> LocalRunResult:
        """Execute until all vertices halt or ``max_rounds`` elapse."""
        graph = self.graph
        states: List[Any] = [
            algorithm.init(v, graph.degree(v)) for v in graph.vertices()
        ]
        rounds = 0
        max_words = 0
        total_messages = 0
        for _ in range(max_rounds):
            if all(
                algorithm.halted(v, states[v]) for v in graph.vertices()
            ):
                return LocalRunResult(
                    states=states, rounds=rounds, completed=True,
                    max_message_words=max_words,
                    total_messages=total_messages,
                )
            outgoing: Dict[int, Any] = {}
            for v in graph.vertices():
                if algorithm.halted(v, states[v]):
                    continue
                payload = algorithm.message(v, states[v], rounds)
                if payload is not None:
                    words = payload_words(payload)
                    max_words = max(max_words, words)
                    if (
                        self.bandwidth_words is not None
                        and words > self.bandwidth_words
                    ):
                        raise CongestViolationError(
                            f"vertex {v} broadcast {words} words in round "
                            f"{rounds}, CONGEST budget "
                            f"{self.bandwidth_words}"
                        )
                    outgoing[v] = payload
                    total_messages += graph.degree(v)
            for v in graph.vertices():
                if algorithm.halted(v, states[v]):
                    continue
                inbox = [
                    (u, outgoing[u])
                    for u in graph.neighbors(v)
                    if u in outgoing
                ]
                states[v] = algorithm.update(v, states[v], inbox, rounds)
            rounds += 1
        completed = all(
            algorithm.halted(v, states[v]) for v in graph.vertices()
        )
        return LocalRunResult(
            states=states, rounds=rounds, completed=completed,
            max_message_words=max_words, total_messages=total_messages,
        )


def require_completed(result: LocalRunResult, what: str) -> None:
    """Raise :class:`AlgorithmError` unless the run completed."""
    if not result.completed:
        raise AlgorithmError(
            f"{what} did not converge within {result.rounds} rounds"
        )
