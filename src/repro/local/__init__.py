"""The LOCAL model simulator and classic distributed baselines.

The LOCAL model (synchronous message passing, one message per edge per
round, unbounded local computation) is where the classic symmetry-breaking
algorithms live.  This package provides:

* :class:`LocalNetwork` — a synchronous round simulator over a
  :class:`repro.graph.Graph`;
* Luby's randomized MIS (``O(log n)`` rounds w.h.p.);
* the deterministic bitwise-ID ``(2, O(log n))``-ruling set in the style
  of Awerbuch–Goldberg–Luby–Plotkin (``O(log n)`` rounds);
* Linial's deterministic colour reduction (``O(Δ²)`` colours in
  ``O(log* n)`` rounds) and the colouring-based deterministic MIS.

The network also supports **CONGEST mode** (bounded message words), and
every algorithm here fits O(1)-word messages.

These are the baselines for experiment E8: they pin down the LOCAL-model
round counts that the MPC algorithms are compared against.
"""

from repro.local.network import LocalNetwork, LocalRunResult, VertexAlgorithm
from repro.local.algorithms.luby_mis import LubyMIS, run_luby_mis
from repro.local.algorithms.agl_ruling import (
    BitwiseRulingSet,
    run_bitwise_ruling_set,
)
from repro.local.algorithms.linial_coloring import (
    LinialColoring,
    mis_from_coloring,
    run_coloring_mis,
    run_linial_coloring,
)

__all__ = [
    "LocalNetwork",
    "LocalRunResult",
    "VertexAlgorithm",
    "LubyMIS",
    "run_luby_mis",
    "BitwiseRulingSet",
    "run_bitwise_ruling_set",
    "LinialColoring",
    "run_linial_coloring",
    "mis_from_coloring",
    "run_coloring_mis",
]
