"""Deterministic bitwise-ID ruling set (Awerbuch–Goldberg–Luby–Plotkin style).

Computes a ``(2, O(log n))``-ruling set in ``O(log n)`` LOCAL rounds with
no randomness, by merging id-classes bottom-up, one id bit per level:

* Initially every vertex is a ruler (``R = V``); classes are full ids.
* At level ``b`` (processing bit ``b``, least-significant first), two
  rulers belong to the same *class* if their ids agree above bit ``b``.
  Within each class, rulers with bit ``b`` = 1 abdicate if any neighbour
  ruler of the same class has bit ``b`` = 0.

Invariants (proved in ``tests/local/test_agl_ruling.py`` by checking the
output): after the last level ``R`` is independent, and every vertex is
within ``ceil(log2 n)`` hops of ``R`` — each level can push a vertex's
nearest ruler at most one hop away, because an abdicating ruler is
adjacent to a surviving same-class ruler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.graph.graph import Graph
from repro.local.network import LocalNetwork, VertexAlgorithm
from repro.util.mathx import ilog2_ceil


@dataclass
class _RulingState:
    in_r: bool
    bits: int  # total id bits


class BitwiseRulingSet(VertexAlgorithm):
    """One level per round: rulers broadcast (class-prefix, current bit)."""

    def __init__(self, num_vertices: int):
        self.bits = max(1, ilog2_ceil(max(2, num_vertices)))

    def init(self, v: int, degree: int) -> _RulingState:
        return _RulingState(in_r=True, bits=self.bits)

    def message(self, v: int, state: _RulingState, round_no: int) -> Any:
        if not state.in_r or round_no >= state.bits:
            return None
        prefix = v >> (round_no + 1)
        bit = (v >> round_no) & 1
        return (prefix, bit)

    def update(
        self,
        v: int,
        state: _RulingState,
        inbox: List[Tuple[int, Any]],
        round_no: int,
    ) -> _RulingState:
        if not state.in_r or round_no >= state.bits:
            return state
        my_prefix = v >> (round_no + 1)
        my_bit = (v >> round_no) & 1
        if my_bit == 1:
            for _, (prefix, bit) in inbox:
                if prefix == my_prefix and bit == 0:
                    state.in_r = False
                    break
        return state

    def halted(self, v: int, state: _RulingState) -> bool:
        return not state.in_r


def run_bitwise_ruling_set(graph: Graph) -> Tuple[List[int], int]:
    """Run the bitwise ruling set; return ``(rulers, rounds)``.

    The run needs exactly ``ceil(log2 n)`` rounds; the network is told to
    run that many (halting early only if R becomes empty, which cannot
    happen — bit-0 vertices never abdicate at their level).
    """
    if graph.num_vertices == 0:
        return [], 0
    algorithm = BitwiseRulingSet(graph.num_vertices)
    network = LocalNetwork(graph)
    result = network.run(algorithm, max_rounds=algorithm.bits)
    members = [v for v in graph.vertices() if result.states[v].in_r]
    return members, algorithm.bits
