"""Linial's deterministic coloring and the coloring-based MIS.

Two classic deterministic LOCAL baselines that complement the ruling-set
suite:

**Linial colour reduction.**  Starting from the trivial n-colouring (ids),
each round encodes a vertex's colour as a polynomial of degree < d over
``GF(q)`` (its base-``q`` digits) and recolours to the pair
``(x*, P_v(x*))`` where ``x*`` is the smallest evaluation point at which
``P_v`` differs from every neighbour's polynomial.  Distinct polynomials
of degree < d agree on at most ``d - 1`` points, so at most
``(d - 1)·Δ < q`` points are bad and ``x*`` exists; adjacent vertices
always end with distinct pairs, so properness is invariant.  The palette
shrinks from ``K`` to ``q²`` per round, reaching ``O(Δ² log² Δ)`` colours
in ``O(log* n)`` rounds — Linial's theorem, measured in E8.

**MIS from a colouring.**  Colour classes are processed in increasing
order; class members join the MIS unless a neighbour already did.  With
``C`` colours this takes ``C`` rounds and is fully deterministic — the
classic ``O(Δ²+ log* n)`` deterministic LOCAL MIS when composed with the
reduction above.

Both algorithms broadcast a single colour/flag per round, so they run
unchanged in CONGEST mode (asserted in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.errors import AlgorithmError
from repro.graph.graph import Graph
from repro.local.network import LocalNetwork, VertexAlgorithm
from repro.util.prime import next_prime


def reduction_schedule(
    num_vertices: int, max_degree: int
) -> List[Tuple[int, int, int]]:
    """Precompute the per-round ``(q, d, K)`` parameters.

    Pure arithmetic on the public quantities ``n`` and ``Δ`` (standard
    global knowledge in the LOCAL model).  Stops when a round would not
    shrink the palette.

    >>> schedule = reduction_schedule(1000, 4)
    >>> schedule[-1][2] < 1000   # the final palette beats the trivial one
    True
    """
    schedule: List[Tuple[int, int, int]] = []
    palette = max(1, num_vertices)
    degree = max(1, max_degree)
    while True:
        q, d = _round_parameters(palette, degree)
        if q * q >= palette:
            break
        schedule.append((q, d, q * q))
        palette = q * q
    return schedule


def _round_parameters(palette: int, degree: int) -> Tuple[int, int]:
    """Smallest prime ``q`` (with digit count ``d``) usable for ``palette``.

    Needs ``q^d >= palette`` and ``q > (d - 1) * degree`` so an
    uncontested evaluation point always exists.
    """
    q = 2
    while True:
        q = next_prime(q)
        d = 1
        power = q
        while power < palette:
            power *= q
            d += 1
        if q > (d - 1) * degree:
            return q, d
        q += 1


def _digits(value: int, base: int, count: int) -> List[int]:
    digits = []
    for _ in range(count):
        value, digit = divmod(value, base)
        digits.append(digit)
    return digits


def _evaluate(coefficients: List[int], x: int, q: int) -> int:
    value = 0
    for c in reversed(coefficients):
        value = (value * x + c) % q
    return value


@dataclass
class _ColorState:
    color: int


class LinialColoring(VertexAlgorithm):
    """One palette-reduction round per LOCAL round, per the schedule."""

    def __init__(self, num_vertices: int, max_degree: int):
        self.schedule = reduction_schedule(num_vertices, max_degree)

    def init(self, v: int, degree: int) -> _ColorState:
        return _ColorState(color=v)

    def message(self, v: int, state: _ColorState, round_no: int) -> Any:
        if round_no >= len(self.schedule):
            return None
        return state.color

    def update(
        self,
        v: int,
        state: _ColorState,
        inbox: List[Tuple[int, Any]],
        round_no: int,
    ) -> _ColorState:
        if round_no >= len(self.schedule):
            return state
        q, d, _ = self.schedule[round_no]
        own = _digits(state.color, q, d)
        neighbor_polys = [
            _digits(color, q, d) for _, color in inbox
        ]
        for x in range(q):
            mine = _evaluate(own, x, q)
            if all(
                _evaluate(poly, x, q) != mine for poly in neighbor_polys
            ):
                state.color = x * q + mine
                return state
        raise AlgorithmError(
            "no uncontested evaluation point — schedule invariant broken"
        )

    def halted(self, v: int, state: _ColorState) -> bool:
        return False  # runs for exactly len(schedule) rounds


def run_linial_coloring(graph: Graph) -> Tuple[List[int], int, int]:
    """Run the reduction; return ``(colors, rounds, palette_bound)``."""
    if graph.num_vertices == 0:
        return [], 0, 0
    algorithm = LinialColoring(graph.num_vertices, graph.max_degree())
    rounds = len(algorithm.schedule)
    result = LocalNetwork(graph).run(algorithm, max_rounds=rounds)
    colors = [state.color for state in result.states]
    palette = (
        algorithm.schedule[-1][2] if algorithm.schedule
        else max(1, graph.num_vertices)
    )
    return colors, rounds, palette


class ColorClassMIS(VertexAlgorithm):
    """Colour classes join the MIS in colour order; ``C`` rounds."""

    def __init__(self, colors: List[int]):
        self.colors = colors
        self.num_classes = max(colors) + 1 if colors else 0

    def init(self, v: int, degree: int) -> dict:
        return {"in_mis": False, "blocked": False, "color": self.colors[v]}

    def message(self, v: int, state: dict, round_no: int) -> Any:
        if state["color"] == round_no and not state["blocked"]:
            state["in_mis"] = True
            return 1  # announce joining
        return None

    def update(self, v, state, inbox, round_no) -> dict:
        if any(payload == 1 for _, payload in inbox):
            state["blocked"] = True
        return state

    def halted(self, v: int, state: dict) -> bool:
        return state["in_mis"] or state["blocked"]


def mis_from_coloring(
    graph: Graph, colors: List[int]
) -> Tuple[List[int], int]:
    """Derive an MIS from a proper colouring; returns (members, rounds)."""
    if graph.num_vertices == 0:
        return [], 0
    if len(colors) != graph.num_vertices:
        raise AlgorithmError("one colour per vertex required")
    algorithm = ColorClassMIS(colors)
    rounds = algorithm.num_classes
    result = LocalNetwork(graph).run(algorithm, max_rounds=rounds + 1)
    members = [
        v for v in graph.vertices() if result.states[v]["in_mis"]
    ]
    return members, rounds


def run_coloring_mis(graph: Graph) -> Tuple[List[int], int, int]:
    """Deterministic LOCAL MIS: Linial reduction + colour-class sweep.

    Returns ``(members, total_rounds, palette_bound)`` — the classic
    ``O(Δ² + log* n)`` deterministic pipeline.
    """
    colors, reduction_rounds, palette = run_linial_coloring(graph)
    members, sweep_rounds = mis_from_coloring(graph, colors)
    return members, reduction_rounds + sweep_rounds, palette
