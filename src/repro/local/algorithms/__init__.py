"""Classic LOCAL-model algorithms used as baselines."""

from repro.local.algorithms.luby_mis import LubyMIS, run_luby_mis
from repro.local.algorithms.agl_ruling import (
    BitwiseRulingSet,
    run_bitwise_ruling_set,
)
from repro.local.algorithms.linial_coloring import (
    ColorClassMIS,
    LinialColoring,
    mis_from_coloring,
    run_coloring_mis,
    run_linial_coloring,
)

__all__ = [
    "LubyMIS",
    "run_luby_mis",
    "BitwiseRulingSet",
    "run_bitwise_ruling_set",
    "ColorClassMIS",
    "LinialColoring",
    "run_linial_coloring",
    "mis_from_coloring",
    "run_coloring_mis",
]
