"""Luby's randomized MIS in the LOCAL model.

Each *phase* (two simulated rounds) every active vertex draws a fresh
priority; a vertex whose priority beats all active neighbours joins the
MIS, and MIS members knock their neighbours out.  With fresh uniform
priorities per phase, the active graph loses a constant fraction of its
edges per phase in expectation, giving ``O(log n)`` phases w.h.p. — the
baseline round count that the deterministic MPC algorithms are measured
against in E8.

Priorities are 64-bit draws from per-vertex SplitMix64 streams (forked
from a run seed), with the vertex id as tiebreak, so runs are exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple

from repro.errors import AlgorithmError
from repro.graph.graph import Graph
from repro.local.network import LocalNetwork, VertexAlgorithm, require_completed
from repro.util.rng import SplitMix64

ACTIVE = 0
IN_MIS = 1
OUT = 2


@dataclass
class _LubyState:
    status: int
    rng: SplitMix64
    priority: Tuple[int, int] = (0, 0)
    active_neighbors: set = field(default_factory=set)
    announced: bool = False


class LubyMIS(VertexAlgorithm):
    """Vertex program: phases of (priority exchange, decision exchange)."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.root = SplitMix64(seed=seed)

    def init(self, v: int, degree: int) -> _LubyState:
        return _LubyState(status=ACTIVE, rng=self.root.fork(v))

    def message(self, v: int, state: _LubyState, round_no: int) -> Any:
        if round_no % 2 == 0:
            if state.status != ACTIVE:
                return None
            state.priority = (state.rng.next_u64(), v)
            return ("prio", state.priority)
        if state.status == IN_MIS and not state.announced:
            state.announced = True
            return ("in", v)
        if state.status == OUT and not state.announced:
            state.announced = True
            return ("out", v)
        return None

    def update(
        self,
        v: int,
        state: _LubyState,
        inbox: List[Tuple[int, Any]],
        round_no: int,
    ) -> _LubyState:
        if round_no == 0:
            state.active_neighbors = {u for u, _ in inbox}
        if state.status != ACTIVE:
            return state
        if round_no % 2 == 0:
            lowest = all(
                state.priority < payload[1]
                for u, payload in inbox
                if payload[0] == "prio" and u in state.active_neighbors
            )
            if lowest:
                state.status = IN_MIS
            return state
        for u, payload in inbox:
            if payload[0] == "in":
                state.status = OUT
                state.announced = False
            if payload[0] in ("in", "out"):
                state.active_neighbors.discard(u)
        return state

    def halted(self, v: int, state: _LubyState) -> bool:
        if state.status == ACTIVE:
            return False
        return state.announced


def run_luby_mis(
    graph: Graph, seed: int = 0, max_rounds: int = 10_000
) -> Tuple[List[int], int]:
    """Run Luby's MIS; return ``(mis_members, rounds)``.

    Raises :class:`AlgorithmError` on non-convergence (which for sane
    ``max_rounds`` indicates a bug, not bad luck).
    """
    algorithm = LubyMIS(seed=seed)
    result = LocalNetwork(graph).run(algorithm, max_rounds=max_rounds)
    require_completed(result, "Luby MIS")
    members = [
        v for v in graph.vertices() if result.states[v].status == IN_MIS
    ]
    return members, result.rounds
