"""Command-line interface: generate graphs, solve, verify, sweep.

Installed as ``repro-mpc``::

    repro-mpc generate --family gnp --n 300 --param 12 --out g.txt
    repro-mpc solve --input g.txt --algorithm det-ruling --beta 2
    repro-mpc solve --family powerlaw --n 400 --algorithm det-luby --json
    repro-mpc trace --family gnp --n 256 --out run.trace.jsonl \
        --chrome-out run.trace.json
    repro-mpc verify --input g.txt --members 3,19,40 --beta 2
    repro-mpc sweep --n 128,256 --algorithms det-ruling,det-luby \
        --jobs 4 --checkpoint sweep.jsonl --resume --timeout 120
    repro-mpc batch --requests requests.jsonl --out results.jsonl \
        --cache-dir .repro-cache --jobs 4
    repro-mpc cache stats --cache-dir .repro-cache
    repro-mpc serve --socket /tmp/repro.sock --cache-dir .repro-cache

Every ``solve`` runs on the enforcing simulator and verifies its output;
``--json`` emits a machine-readable record instead of the text summary.
``trace`` (or ``solve --trace-out``) additionally records the
structured superstep trace — per-round words, per-machine budget
utilization, headroom warnings — as JSONL and, with ``--chrome-out``,
in Chrome trace format for ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.sweep import SweepSpec, failures, run_sweep
from repro.analysis.tables import format_table
from repro.core import registry
from repro.core.pipeline import solve_ruling_set, solve_ruling_set_stream
from repro.core.verify import verify_ruling_set
from repro.errors import ReproError
from repro.graph import generators as gen
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list, write_edge_list

FAMILIES = (
    "gnp", "powerlaw", "tree", "grid", "regular", "star", "cycle",
    "rmat", "barbell",
)


def build_graph(family: str, n: int, param: int, seed: int) -> Graph:
    """Construct a workload graph from CLI parameters.

    ``param`` means: expected degree (gnp), degree (regular), columns
    (grid); it is ignored by the other families.
    """
    if family == "gnp":
        return gen.gnp_random_graph(n, max(1, param), n, seed=seed)
    if family == "powerlaw":
        return gen.chung_lu_power_law(n, seed=seed)
    if family == "tree":
        return gen.random_tree(n, seed=seed)
    if family == "grid":
        cols = max(1, param)
        rows = max(1, n // cols)
        return gen.grid_graph(rows, cols)
    if family == "regular":
        return gen.regular_graph(n, max(0, param))
    if family == "star":
        return gen.star_graph(n)
    if family == "cycle":
        return gen.cycle_graph(n)
    if family == "rmat":
        scale = max(1, n.bit_length() - 1)
        return gen.rmat_graph(scale, edge_factor=max(1, param), seed=seed)
    if family == "barbell":
        return gen.barbell_graph(max(2, n // 2), max(0, param))
    raise ReproError(f"unknown family {family!r}")


def _load_or_build(args) -> Graph:
    if args.input:
        return read_edge_list(args.input)
    return build_graph(args.family, args.n, args.param, args.seed)


def _add_graph_source(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", help="edge-list file (header 'n m')")
    parser.add_argument(
        "--family", choices=FAMILIES, default="gnp",
        help="generator family when no --input is given",
    )
    parser.add_argument("--n", type=int, default=200)
    parser.add_argument(
        "--param", type=int, default=12,
        help="family parameter (expected degree / degree / columns)",
    )
    parser.add_argument("--seed", type=int, default=0)


def cmd_generate(args) -> int:
    graph = build_graph(args.family, args.n, args.param, args.seed)
    write_edge_list(graph, args.out)
    print(
        f"wrote {graph.num_vertices} vertices, {graph.num_edges} edges "
        f"to {args.out}"
    )
    return 0


def cmd_solve(args) -> int:
    if getattr(args, "stream", False):
        return _cmd_solve_stream(args)
    graph = _load_or_build(args)
    trace_out = getattr(args, "trace_out", None)
    result = solve_ruling_set(
        graph,
        algorithm=args.algorithm,
        beta=args.beta,
        alpha=args.alpha,
        regime=args.regime,
        seed=args.seed,
        backend=args.backend,
        backend_workers=args.workers,
        kernel=args.kernel,
        trace=trace_out is not None,
        governed=args.governed,
    )
    if trace_out is not None:
        if result.trace is None:
            raise ReproError(
                f"algorithm {args.algorithm!r} does not run on the MPC "
                "simulator; --trace-out needs an MPC algorithm"
            )
        result.trace.write_jsonl(trace_out)
        if not args.json:
            print(
                f"trace:      {trace_out} "
                f"({len(result.trace.events)} events)"
            )
    if args.json:
        payload = result.summary_row()
        payload["members"] = result.members
        payload.update(
            {
                f"time_{phase}_s": seconds
                for phase, seconds in result.time_per_phase.items()
            }
        )
        print(json.dumps(payload, sort_keys=True))
        return 0
    print(f"graph:      n={graph.num_vertices} m={graph.num_edges}")
    print(f"algorithm:  {result.algorithm}")
    print(f"guarantee:  ({result.alpha}, {result.beta})-ruling set")
    print(f"size:       {result.size}")
    print(f"rounds:     {result.rounds}")
    for key in sorted(result.metrics):
        print(f"  {key} = {result.metrics[key]}")
    if result.wall_time_s:
        print(f"wall clock: {result.wall_time_s:.3f}s (simulator, not cluster)")
        for phase in sorted(result.time_per_phase):
            print(f"  time[{phase}] = {result.time_per_phase[phase]:.3f}s")
    return 0


def _cmd_solve_stream(args) -> int:
    if not args.input:
        raise ReproError("--stream requires --input (an edge-list file)")
    if args.alpha != 2:
        raise ReproError(
            "--stream fixes alpha at 2 (alpha > 2 sizes on a "
            "driver-materialized power graph, which contradicts streaming)"
        )
    result = solve_ruling_set_stream(
        args.input,
        algorithm=args.algorithm,
        beta=args.beta,
        regime=args.regime,
        seed=args.seed,
        verify=args.stream_verify,
        num_shards=args.workers,
        kernel=args.kernel,
        governed=args.governed,
    )
    if args.json:
        payload = result.summary_row()
        payload["members"] = result.members
        print(json.dumps(payload, sort_keys=True))
        return 0
    print(f"input:      {args.input} (streamed)")
    print(
        f"ingest:     m={result.metrics['ingest_edges']} "
        f"max_degree={result.metrics['ingest_max_degree']}"
    )
    print(f"algorithm:  {result.algorithm}")
    print(f"guarantee:  ({result.alpha}, {result.beta})-ruling set")
    print(f"size:       {result.size}")
    print(f"rounds:     {result.rounds}")
    for key in sorted(result.metrics):
        print(f"  {key} = {result.metrics[key]}")
    if result.wall_time_s:
        print(f"wall clock: {result.wall_time_s:.3f}s (simulator, not cluster)")
    return 0


def cmd_trace(args) -> int:
    """Solve with the superstep trace enabled; write JSONL (+ Chrome)."""
    graph = _load_or_build(args)
    result = solve_ruling_set(
        graph,
        algorithm=args.algorithm,
        beta=args.beta,
        alpha=args.alpha,
        regime=args.regime,
        seed=args.seed,
        backend=args.backend,
        backend_workers=args.workers,
        kernel=args.kernel,
        trace=True,
        trace_warn_utilization=args.warn_utilization,
        governed=args.governed,
    )
    trace = result.trace
    if trace is None:
        raise ReproError(
            f"algorithm {args.algorithm!r} does not run on the MPC "
            "simulator; there is no superstep trace to record"
        )
    trace.write_jsonl(args.out)
    print(f"graph:        n={graph.num_vertices} m={graph.num_edges}")
    print(f"algorithm:    {result.algorithm}")
    print(f"rounds:       {result.rounds}")
    print(f"total words:  {result.metrics['total_words']}")
    print(
        f"min headroom: {trace.min_headroom_words()} words "
        f"(budget S={result.metrics['memory_words']})"
    )
    print(f"trace jsonl:  {args.out} ({len(trace.events)} events)")
    if args.chrome_out:
        trace.write_chrome_trace(args.chrome_out)
        print(
            f"chrome trace: {args.chrome_out} "
            "(load in chrome://tracing or Perfetto)"
        )
    if trace.warnings:
        lines = trace.format_warnings()
        print(
            f"budget warnings (≥{100 * trace.warn_utilization:.0f}% of S, "
            f"{len(lines)} total):"
        )
        shown = 20
        for line in lines[:shown]:
            print(f"  ! {line}")
        if len(lines) > shown:
            print(
                f"  ... and {len(lines) - shown} more "
                "(full list in the JSONL export)"
            )
    else:
        print(
            "budget warnings: none "
            f"(threshold {100 * trace.warn_utilization:.0f}% of S)"
        )
    return 0


def cmd_match(args) -> int:
    from repro.core.det_matching import solve_matching

    graph = _load_or_build(args)
    trace_out = getattr(args, "trace_out", None)
    result = solve_matching(
        graph,
        deterministic=not args.randomized,
        algorithm=args.algorithm,
        seed=args.seed,
        backend=args.backend,
        backend_workers=args.workers,
        kernel=args.kernel,
        trace=trace_out is not None,
        governed=args.governed,
    )
    if trace_out is not None:
        result.trace.write_jsonl(trace_out)
        if not args.json:
            print(
                f"trace:      {trace_out} "
                f"({len(result.trace.events)} events)"
            )
    if args.json:
        payload = result.summary_row()
        payload["matching"] = [list(edge) for edge in result.matching]
        print(json.dumps(payload, sort_keys=True))
        return 0
    print(f"graph:         n={graph.num_vertices} m={graph.num_edges}")
    print(f"algorithm:     {result.algorithm}")
    print(f"matching size: {result.size}")
    print(f"MPC rounds:    {result.rounds}")
    for key in sorted(result.metrics):
        print(f"  {key} = {result.metrics[key]}")
    return 0


def cmd_verify(args) -> int:
    graph = read_edge_list(args.input)
    members = [int(x) for x in args.members.split(",") if x]
    try:
        check = verify_ruling_set(
            graph, members, alpha=args.alpha, beta=args.beta
        )
    except ReproError as exc:
        print(f"INVALID: {exc}")
        return 1
    print(
        f"VALID ({args.alpha}, {args.beta})-ruling set: size={check.size} "
        f"measured_beta={check.measured_beta}"
    )
    return 0


def cmd_sweep(args) -> int:
    sizes = [int(x) for x in args.n.split(",") if x]
    algorithms = [a for a in args.algorithms.split(",") if a]
    betas = (
        [int(x) for x in args.betas.split(",") if x]
        if args.betas
        else None
    )
    workloads = {
        f"{args.family}-{n}": (
            lambda n=n: build_graph(args.family, n, args.param, args.seed)
        )
        for n in sizes
    }
    records = run_sweep(
        SweepSpec(
            experiment="cli-sweep",
            workloads=workloads,
            algorithms=algorithms,
            beta=args.beta,
            betas=betas,
            regime=args.regime,
            seed=args.seed,
        ),
        jobs=args.jobs,
        checkpoint=args.checkpoint,
        resume=args.resume,
        retries=args.retries,
        timeout=args.timeout,
    )
    failed = failures(records)
    print(
        format_table(
            [r for r in records if r.get("status") != "failed"],
            columns=[
                "workload", "algorithm", "beta", "n", "m", "rounds", "size",
            ],
            title="cli sweep",
        )
    )
    if args.checkpoint:
        print(f"checkpoint: {args.checkpoint} ({len(records)} records)")
    if failed:
        print(f"\n{len(failed)}/{len(records)} cells FAILED:")
        for record in failed:
            print(
                f"  - {record.get('cell')}: {record.get('error_type')}: "
                f"{record.get('error')}"
            )
        return 1
    return 0


def cmd_fuzz(args) -> int:
    from repro.core.harness import fuzz_verify

    solver_seeds = tuple(
        int(x) for x in args.solver_seeds.split(",") if x
    ) or (0,)
    algorithms = (
        [a for a in args.algorithms.split(",") if a]
        if args.algorithms else None
    )
    families = (
        [f for f in args.families.split(",") if f]
        if args.families else None
    )
    report = fuzz_verify(
        scale=args.scale,
        seed=args.seed,
        solver_seeds=solver_seeds,
        families=families,
        algorithms=algorithms,
        governed=args.governed,
    )
    if args.json:
        payload = {
            "governed": report.governed,
            "cells": len(report.cells),
            "failures": [
                {
                    "graph": cell.graph_name,
                    "algorithm": cell.algorithm,
                    "seed": cell.seed,
                    "detail": cell.detail,
                }
                for cell in report.failures
            ],
        }
        print(json.dumps(payload, sort_keys=True))
    else:
        print(report.format())
    return 0 if report.ok else 1


def cmd_batch(args) -> int:
    from repro.serve import (
        BatchEngine,
        ResultCache,
        read_requests,
        records_to_lines,
        write_records,
    )

    cache = ResultCache(
        memory_entries=args.cache_memory, disk_dir=args.cache_dir
    )
    engine = BatchEngine(
        cache,
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        max_requests=args.max_requests,
    )
    requests, linenos = read_requests(args.requests, with_linenos=True)
    records = engine.run(requests, linenos=linenos)
    if args.out:
        write_records(records, args.out)
    else:
        for line in records_to_lines(records):
            print(line)
    if args.trace_out:
        engine.trace.write_jsonl(args.trace_out)
    summary = engine.trace.summary()
    failed = [r for r in records if r.get("status") == "failed"]
    print(
        f"batch: {len(records)} requests | "
        f"hits={summary['cache_hit']} misses={summary['cache_miss']} "
        f"dedup={summary['dedup']} executed={summary['executed']} "
        f"failed={summary['failed']}",
        file=sys.stderr,
    )
    if args.out:
        print(f"records: {args.out}", file=sys.stderr)
    if failed:
        for record in failed:
            print(
                f"  - {record['id']}: {record.get('error_type')}: "
                f"{record.get('error')}",
                file=sys.stderr,
            )
        return 1
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.serve import (
        AdmissionPolicy,
        BatchEngine,
        ResultCache,
        ServeDaemon,
    )

    cache = ResultCache(
        memory_entries=args.cache_memory, disk_dir=args.cache_dir
    )
    # The daemon's per-request path always solves in process (that is
    # what keeps the SessionFactory warm); concurrency comes from the
    # daemon's worker threads, not run_cells fan-out.
    engine = BatchEngine(
        cache, retries=args.retries, graph_pool=args.graph_pool
    )
    daemon = ServeDaemon(
        engine,
        policy=AdmissionPolicy(
            max_queue=args.max_queue,
            max_inflight_words=args.max_inflight_words,
            default_request_words=args.default_request_words,
        ),
        workers=args.workers,
    )
    if args.socket:
        socket_path = Path(args.socket)
        socket_path.unlink(missing_ok=True)  # stale socket from a crash
        print(f"serving on {socket_path}", file=sys.stderr)
        try:
            asyncio.run(daemon.serve_unix(str(socket_path)))
        finally:
            socket_path.unlink(missing_ok=True)
    else:
        asyncio.run(daemon.serve_stdio())
    if args.trace_out:
        engine.trace.write_jsonl(args.trace_out)
    stats = daemon.stats()
    counters = stats["counters"]
    print(
        f"serve done: served={stats['served']} "
        f"refused={stats['refused']} | "
        f"hits={counters.get('cache_hit', 0)} "
        f"executed={counters.get('executed', 0)} "
        f"failed={counters.get('failed', 0)}",
        file=sys.stderr,
    )
    return 0


def cmd_cache(args) -> int:
    from repro.serve import BatchEngine, ResultCache, read_requests

    if args.cache_dir is None:
        # A memory-only cache dies with this process, so every cache
        # maintenance action needs the persistent tier.
        raise ReproError(f"cache {args.action} needs --cache-dir <dir>")
    cache = ResultCache(
        memory_entries=args.cache_memory, disk_dir=args.cache_dir
    )
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache dir:    {args.cache_dir}")
        print(f"disk entries: {stats['disk_entries']}")
        print(f"disk bytes:   {stats['disk_bytes']}")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {args.cache_dir}")
        return 0
    # warm: run a request stream purely to populate the cache.
    if not args.requests:
        raise ReproError("cache warm needs --requests <file.jsonl>")
    engine = BatchEngine(
        cache, jobs=args.jobs, timeout=args.timeout, retries=args.retries
    )
    records = engine.run(read_requests(args.requests))
    summary = engine.trace.summary()
    print(
        f"warmed {args.cache_dir}: {len(records)} requests | "
        f"executed={summary['executed']} "
        f"already-cached={summary['cache_hit']} "
        f"failed={summary['failed']}"
    )
    return 1 if summary["failed"] else 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mpc",
        description="Deterministic MPC ruling sets: solve, verify, sweep.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_generate = sub.add_parser("generate", help="write a workload graph")
    _add_graph_source(p_generate)
    p_generate.add_argument("--out", required=True)
    p_generate.set_defaults(func=cmd_generate)

    def _add_solve_options(parser: argparse.ArgumentParser) -> None:
        # Help text is generated from the registry so it cannot drift
        # from the real algorithm set again (validation happens in the
        # driver, whose unknown-name error also enumerates the registry).
        parser.add_argument(
            "--algorithm", default=registry.DET_RULING,
            help=registry.help_text(problem=registry.RULING_SET, rounds=True),
        )
        parser.add_argument("--beta", type=int, default=2)
        parser.add_argument("--alpha", type=int, default=2)
        parser.add_argument(
            "--regime", default="sublinear",
            choices=("sublinear", "near-linear", "single"),
        )
        parser.add_argument(
            "--backend", default=None,
            choices=("serial", "process", "shard"),
            help="superstep execution backend (results are bit-identical; "
            "'process' fans machine callbacks across worker processes; "
            "'shard' spills machine state to disk and keeps one shard "
            "resident — graphs bigger than RAM)",
        )
        parser.add_argument(
            "--workers", type=int, default=0,
            help="process-pool size for --backend process (0 = one per "
            "CPU); shard count for --backend shard (0 = default)",
        )
        parser.add_argument(
            "--kernel", default=None, choices=("python", "numpy"),
            help="machine-local compute kernel (results are bit-identical; "
            "'numpy' vectorizes the hot loops and falls back to 'python' "
            "when NumPy is not installed; default: $REPRO_KERNEL or "
            "'python')",
        )
        parser.add_argument(
            "--governed", action="store_true",
            help="run under the adaptive load governor: near-budget "
            "rounds throttle exchange chunking and exponentiation "
            "windows instead of faulting (results are bit-identical at "
            "feasible sizes; also $REPRO_GOVERNED=1)",
        )

    p_solve = sub.add_parser("solve", help="compute a verified ruling set")
    _add_graph_source(p_solve)
    _add_solve_options(p_solve)
    p_solve.add_argument(
        "--trace-out", default=None,
        help="enable the superstep trace and write its JSONL here",
    )
    p_solve.add_argument(
        "--stream", action="store_true",
        help="solve --input out-of-core: two-pass streaming ingest "
        "shards the file per machine and the run executes on the shard "
        "backend — no process ever holds the whole graph (requires "
        "--input; alpha is fixed at 2; verification is skipped unless "
        "--stream-verify)",
    )
    p_solve.add_argument(
        "--stream-verify", action="store_true",
        help="with --stream: verify against the sequential oracle by "
        "re-reading the file in memory (debug aid — reintroduces the "
        "O(n + m) footprint streaming avoids)",
    )
    p_solve.add_argument("--json", action="store_true")
    p_solve.set_defaults(func=cmd_solve)

    p_trace = sub.add_parser(
        "trace",
        help="solve with the superstep trace on; export JSONL/Chrome trace",
    )
    _add_graph_source(p_trace)
    _add_solve_options(p_trace)
    p_trace.add_argument(
        "--out", required=True, help="JSONL trace output path"
    )
    p_trace.add_argument(
        "--chrome-out", default=None,
        help="also write Chrome trace format (chrome://tracing, Perfetto)",
    )
    p_trace.add_argument(
        "--warn-utilization", type=float, default=0.9,
        help="budget-audit threshold as a fraction of S (default 0.9)",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_match = sub.add_parser(
        "match", help="compute a verified maximal matching"
    )
    _add_graph_source(p_match)
    p_match.add_argument("--randomized", action="store_true")
    p_match.add_argument(
        "--algorithm", default=None,
        help=registry.help_text(problem=registry.MATCHING, rounds=True)
        + " (default: picked from --randomized)",
    )
    p_match.add_argument(
        "--backend", default=None,
        choices=("serial", "process", "shard"),
        help="superstep execution backend (results are bit-identical)",
    )
    p_match.add_argument(
        "--workers", type=int, default=0,
        help="process-pool size for --backend process (0 = one per "
        "CPU); shard count for --backend shard (0 = default)",
    )
    p_match.add_argument(
        "--kernel", default=None, choices=("python", "numpy"),
        help="machine-local compute kernel (results are bit-identical)",
    )
    p_match.add_argument(
        "--trace-out", default=None,
        help="enable the superstep trace and write its JSONL here",
    )
    p_match.add_argument(
        "--governed", action="store_true",
        help="run under the adaptive load governor (bit-identical at "
        "feasible sizes)",
    )
    p_match.add_argument("--json", action="store_true")
    p_match.set_defaults(func=cmd_match)

    p_verify = sub.add_parser("verify", help="check a claimed ruling set")
    p_verify.add_argument("--input", required=True)
    p_verify.add_argument(
        "--members", required=True, help="comma-separated vertex ids"
    )
    p_verify.add_argument("--alpha", type=int, default=2)
    p_verify.add_argument("--beta", type=int, default=2)
    p_verify.set_defaults(func=cmd_verify)

    p_sweep = sub.add_parser(
        "sweep",
        help="run an algorithm x size grid (parallel, checkpointed)",
    )
    p_sweep.add_argument("--family", choices=FAMILIES, default="gnp")
    p_sweep.add_argument("--n", default="128,256")
    p_sweep.add_argument("--param", type=int, default=12)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--beta", type=int, default=2)
    p_sweep.add_argument(
        "--betas", default=None,
        help="comma-separated beta grid axis (overrides --beta)",
    )
    p_sweep.add_argument(
        "--regime", default="sublinear",
        choices=("sublinear", "near-linear", "single"),
    )
    p_sweep.add_argument(
        "--algorithms",
        default=f"{registry.DET_RULING},{registry.DET_LUBY}",
        help="comma-separated algorithm names ("
        + registry.help_text(problem=registry.RULING_SET) + ")",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for cell execution (records are emitted "
        "in deterministic grid order whatever the fan-out)",
    )
    p_sweep.add_argument(
        "--checkpoint", default=None,
        help="JSONL checkpoint path; each finished cell is appended "
        "(and the file compacted to grid order on completion)",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="skip cells already completed in --checkpoint; failed "
        "cells are re-run",
    )
    p_sweep.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock timeout in seconds (a timed-out cell "
        "becomes a structured failure record)",
    )
    p_sweep.add_argument(
        "--retries", type=int, default=0,
        help="re-run attempts for a failing cell before recording the "
        "failure (default 0)",
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="fuzzing verifier: every registered solver over the "
        "hostile graph suite, checked against the sequential validators",
    )
    p_fuzz.add_argument(
        "--scale", type=int, default=1,
        help="hostile-suite size multiplier (default 1)",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0,
        help="hostile-suite generator seed (default 0)",
    )
    p_fuzz.add_argument(
        "--solver-seeds", default="0",
        help="comma-separated seeds tried per seeded algorithm "
        "(seedless algorithms run once)",
    )
    p_fuzz.add_argument(
        "--families", default=None,
        help="comma-separated family filter: "
        + ",".join(registry.FAMILIES) + " (default: all)",
    )
    p_fuzz.add_argument(
        "--algorithms", default=None,
        help="comma-separated algorithm filter ("
        + registry.help_text() + "; default: all)",
    )
    p_fuzz.add_argument(
        "--governed", action="store_true",
        help="replay the sweep under the adaptive load governor "
        "(results must stay bit-identical)",
    )
    p_fuzz.add_argument("--json", action="store_true")
    p_fuzz.set_defaults(func=cmd_fuzz)

    def _add_cache_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--cache-dir", default=None,
            help="on-disk result-cache directory (omit for memory-only)",
        )
        parser.add_argument(
            "--cache-memory", type=int, default=256,
            help="in-memory LRU tier size in entries (0 disables it)",
        )
        parser.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for cache misses (hits never execute; "
            "records are emitted in request order whatever the fan-out)",
        )
        parser.add_argument(
            "--timeout", type=float, default=None,
            help="per-request wall-clock timeout in seconds (a timed-out "
            "request becomes a structured failure record)",
        )
        parser.add_argument(
            "--retries", type=int, default=0,
            help="re-run attempts for a failing request (default 0)",
        )

    p_batch = sub.add_parser(
        "batch",
        help="serve a JSONL request stream (content-addressed cache, "
        "dedup, bounded fan-out)",
    )
    p_batch.add_argument(
        "--requests", required=True,
        help="JSONL request file (one solve request per line)",
    )
    p_batch.add_argument(
        "--out", default=None,
        help="output JSONL path (default: records on stdout)",
    )
    _add_cache_options(p_batch)
    p_batch.add_argument(
        "--max-requests", type=int, default=10_000,
        help="backpressure bound: refuse larger batches up front",
    )
    p_batch.add_argument(
        "--trace-out", default=None,
        help="write the service trace (hits/misses/dedup/outcomes) "
        "as JSONL here",
    )
    p_batch.set_defaults(func=cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="run the persistent solve daemon (newline-delimited JSON "
        "over a unix socket or stdio)",
    )
    p_serve.add_argument(
        "--socket", default=None,
        help="unix socket path (omit to serve on stdin/stdout)",
    )
    p_serve.add_argument(
        "--cache-dir", default=None,
        help="on-disk result-cache directory (omit for memory-only)",
    )
    p_serve.add_argument(
        "--cache-memory", type=int, default=256,
        help="in-memory LRU tier size in entries (0 disables it)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="worker threads executing solves (default 1)",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=64,
        help="admission bound on admitted-but-unfinished requests; "
        "beyond it new requests are refused with a structured error",
    )
    p_serve.add_argument(
        "--max-inflight-words", type=int, default=0,
        help="admission bound on the summed estimated input words of "
        "work in flight (0 = unbounded)",
    )
    p_serve.add_argument(
        "--default-request-words", type=int, default=0,
        help="conservative price charged against --max-inflight-words "
        "for requests whose cost cannot be estimated up front; lifted "
        "to the peak-hold of priced requests seen so far (0 = legacy "
        "behavior, unpriceable requests are admitted at zero cost)",
    )
    p_serve.add_argument(
        "--graph-pool", type=int, default=64,
        help="warm graph pool size (distinct sources kept loaded)",
    )
    p_serve.add_argument(
        "--retries", type=int, default=0,
        help="re-run attempts for a failing request (default 0)",
    )
    p_serve.add_argument(
        "--trace-out", default=None,
        help="write the service trace (events + per-request latency) "
        "as JSONL here on exit",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_cache = sub.add_parser(
        "cache", help="inspect, clear, or pre-warm a result cache"
    )
    p_cache.add_argument(
        "action", choices=("stats", "clear", "warm"),
        help="stats: entry/byte counts; clear: drop every cached "
        "result; warm: run --requests purely to populate the cache",
    )
    _add_cache_options(p_cache)
    p_cache.add_argument(
        "--requests", default=None,
        help="JSONL request file for the warm action",
    )
    p_cache.set_defaults(func=cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
