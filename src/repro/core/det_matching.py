"""Deterministic maximal matching: the Luby engine on the line graph.

Maximal matching is MIS on the *line graph* (edges are nodes; two edges
conflict when they share an endpoint), so the derandomized Luby engine
applies verbatim once the line graph exists in distributed form.  This
module builds it inside the model and runs the engine — a demonstration
that the derandomization toolkit is problem-agnostic, offered as an
extension (DESIGN.md inventory #20).

Construction (4 MPC rounds):

1. edges get dense ids: each machine numbers its locally-owned edges
   (an edge lives with the owner of its smaller endpoint) and a prefix
   sum turns local counts into global offsets;
2. every edge announces ``(endpoint, edge_id)`` to both endpoints'
   owners (one round);
3. every vertex owner returns its collected incident-edge list to each
   incident edge's home (one round) — edge homes now know their full
   conflict lists.

Memory honesty: a vertex of degree d contributes d(d−1) conflict-list
entries, so the line graph costs Θ(Σ d(v)²) words — quadratic in the
degrees.  Callers size the regime for that (``line_graph_words``), and
the simulator faults where the model genuinely cannot afford it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.det_luby import det_luby_mis
from repro.core.program import Phase, ProgramContext, SuperstepProgram
from repro.errors import AlgorithmError
from repro.graph.graph import Graph
from repro.mpc.graph_store import ADJ, DistributedGraph
from repro.mpc.machine import Machine
from repro.mpc.message import Message
from repro.mpc.ownermap import RangeOwnerMap
from repro.mpc.primitives.prefix import exclusive_prefix_counts

LG_ADJ = "lg_adj"
EDGE_TABLE = "lg_edge_table"
MATCHED = "lg_matched"


def line_graph_words(graph: Graph) -> int:
    """Aggregate footprint of a matching run (for config sizing).

    The base adjacency, the per-edge endpoint table (3 words each), and
    the conflict lists (``Σ_v d(v)(d(v)-1)`` entries) all coexist on the
    machines.
    """
    degree_sq = sum(d * d for d in graph.degrees())
    base = 2 * graph.num_edges + graph.num_vertices
    return base + 3 * graph.num_edges + degree_sq


def matching_config(
    graph: Graph, alpha=(2, 3), slack: int = 8, regime: str = "sublinear"
):
    """An MPC regime sized for the *line graph* this module builds.

    The aggregate footprint is :func:`line_graph_words`; the per-machine
    floor is Ω(Δ²) because a degree-Δ vertex's owner emits Δ incidence
    lists of Δ words in the construction's reflect round.  ``regime``
    selects the same named regimes as the ruling-set path (``sublinear``
    / ``near-linear`` / ``single``), all sized for the line graph.
    """
    from repro.mpc.config import MPCConfig

    n = max(2, graph.num_vertices)
    pseudo_m = max(0, (line_graph_words(graph) - n + 1) // 2)
    # Ω(Δ²) per-machine floor: the machine holding a degree-Δ vertex's
    # edges keeps ~2Δ² conflict entries and the Luby engine multiplies
    # that by its per-entry constant.
    degree_floor = max(graph.max_degree(), graph.max_degree() ** 2)
    if regime == "sublinear":
        base = MPCConfig.sublinear(
            n, pseudo_m, alpha[0], alpha[1],
            slack=slack, max_degree=degree_floor,
        )
    elif regime == "near-linear":
        base = MPCConfig.near_linear(n, pseudo_m, max_degree=degree_floor)
    elif regime == "single":
        base = MPCConfig.single_machine(n, pseudo_m)
    else:
        raise AlgorithmError(f"unknown regime {regime!r}")
    # A matching run carries *two* compact owner tables (vertex ids and
    # edge ids) and pushes 3-word values over the heavier line-graph
    # adjacency, so double the per-machine memory relative to the
    # single-graph regime.
    return MPCConfig(
        num_machines=base.num_machines,
        memory_words=2 * base.memory_words,
        label=base.label + "+matching",
        slack=base.slack,
    )


def build_distributed_line_graph(dg: DistributedGraph) -> DistributedGraph:
    """Materialise the line graph of the active base graph.

    Returns a second :class:`DistributedGraph` (same simulator, its own
    contiguous owner map over edge ids) whose adjacency lives under
    ``LG_ADJ``; each machine also keeps ``EDGE_TABLE`` mapping its edge
    ids to endpoint pairs.  Costs 6 rounds.
    """
    sim = dg.sim

    # --- dense edge ids via a prefix sum over local edge counts --------
    def stage_edges(machine: Machine) -> None:
        adj = machine.store[ADJ]
        local_edges = sorted(
            (v, u) for v, nbrs in adj.items() for u in nbrs if v < u
        )
        machine.store["_lg_local_edges"] = local_edges

    sim.local(stage_edges)
    total_edges = exclusive_prefix_counts(
        sim,
        lambda machine: len(machine.store["_lg_local_edges"]),
        store_key="_lg_offset",
    )

    def assign_ids(machine: Machine) -> None:
        offset = machine.store.pop("_lg_offset")
        local_edges = machine.store.pop("_lg_local_edges")
        machine.store[EDGE_TABLE] = {
            offset + i: pair for i, pair in enumerate(local_edges)
        }

    sim.local(assign_ids)

    # --- edge-id owner map: contiguous ranges by construction ----------
    bounds = [0]
    for count in sim.harvest(lambda m: len(m.store[EDGE_TABLE])):
        bounds.append(bounds[-1] + count)
    line_owner = RangeOwnerMap(tuple(bounds))

    # --- endpoints learn their incident edges (1 round) ----------------
    def announce(machine: Machine) -> List[Message]:
        out = []
        for edge_id, (u, v) in machine.store[EDGE_TABLE].items():
            out.append(Message(dg.owner_of(u), (u, edge_id)))
            out.append(Message(dg.owner_of(v), (v, edge_id)))
        return out

    sim.communicate(announce)

    # --- vertex owners return full incidence lists (1 round) -----------
    def reflect(machine: Machine) -> List[Message]:
        incident: Dict[int, List[int]] = {}
        for vertex, edge_id in machine.inbox:
            incident.setdefault(vertex, []).append(edge_id)
        machine.clear_inbox()
        out = []
        for vertex, edge_ids in incident.items():
            edge_ids.sort()
            for edge_id in edge_ids:
                out.append(
                    Message(
                        line_owner.owner_of(edge_id),
                        (edge_id,) + tuple(edge_ids),
                    )
                )
        return out

    sim.communicate(reflect)

    def build_adjacency(machine: Machine) -> None:
        conflicts: Dict[int, set] = {
            edge_id: set() for edge_id in machine.store[EDGE_TABLE]
        }
        for payload in machine.inbox:
            edge_id = payload[0]
            if edge_id in conflicts:
                conflicts[edge_id].update(payload[1:])
        machine.clear_inbox()
        machine.store[LG_ADJ] = {
            edge_id: tuple(sorted(group - {edge_id}))
            for edge_id, group in conflicts.items()
        }

    serialized = line_owner.serialize()

    def plant_owner(machine: Machine) -> None:
        # Charge each machine for the compact owner-map metadata, the
        # same way DistributedGraph.load does for the base graph.
        machine.store["lg_owner"] = tuple(serialized)

    sim.local(build_adjacency)
    sim.local(plant_owner)
    return DistributedGraph(sim, line_owner, total_edges)


def matching_program(
    chooser=None,
    allow_stalls: int = 0,
) -> SuperstepProgram:
    """Maximal matching as a phase program: Luby MIS on the line graph.

    Three unlabelled steps (the construction and harvest carry no trace
    label of their own, exactly as before the framework; the embedded
    Luby engine emits its usual phase labels): build the distributed
    line graph, solve MIS on it, record the matched endpoint pairs.  The
    matching lands in the context's ``matching`` payload slot.
    """

    def build(ctx: ProgramContext) -> None:
        ctx.state["lg_graph"] = build_distributed_line_graph(ctx.dg)

    def solve(ctx: ProgramContext) -> None:
        sub = det_luby_mis(
            ctx.state["lg_graph"],
            adj_key=LG_ADJ,
            in_set_key="lg_in_set",
            chooser=chooser,
            allow_stalls=allow_stalls,
        )
        ctx.counters.update(sub)

    def record(ctx: ProgramContext) -> None:
        def record_matches(machine: Machine) -> None:
            table = machine.store[EDGE_TABLE]
            chosen = machine.store.pop("lg_in_set")
            machine.store[MATCHED] = sorted(table[eid] for eid in chosen)

        ctx.sim.local(record_matches)
        matching: List[Tuple[int, int]] = []
        for chunk in ctx.sim.harvest(lambda m: m.store[MATCHED]):
            matching.extend(chunk)
        ctx.matching = sorted(matching)

    return SuperstepProgram(
        name="line-graph",
        counters=("phases", "seed_candidates", "isolated_joins"),
        steps=(
            Phase(build, keys=(LG_ADJ, EDGE_TABLE)),
            Phase(solve, keys=("lg_in_set",)),
            Phase(record, keys=(MATCHED,)),
        ),
    )


def det_maximal_matching(
    dg: DistributedGraph,
    chooser=None,
    allow_stalls: int = 0,
) -> Tuple[List[Tuple[int, int]], Dict[str, int]]:
    """Compute a maximal matching of the active graph, deterministically.

    Returns ``(matching_edges, counters)``; matched endpoint pairs are
    also flagged per machine under ``MATCHED``.  ``chooser`` /
    ``allow_stalls`` forward to the Luby engine (pass a random chooser
    and positive stalls for the randomized baseline).

    This is a thin wrapper over :func:`matching_program`.
    """
    program = matching_program(chooser=chooser, allow_stalls=allow_stalls)
    ctx = ProgramContext(dg)
    counters = program.run(ctx)
    return ctx.matching, counters


def solve_matching(
    graph: Graph,
    deterministic: bool = True,
    seed: int = 0,
    verify: bool = True,
    algorithm: Optional[str] = None,
    regime: str = "sublinear",
    alpha_mem: Tuple[int, int] = (2, 3),
    config=None,
    backend: Optional[str] = None,
    backend_workers: int = 0,
    kernel: Optional[str] = None,
    trace: bool = False,
    trace_warn_utilization: float = 0.9,
    governed: bool = False,
    session_factory=None,
) -> "MatchingResult":
    """One-call driver: build the regime, run, verify, return the matching.

    A thin registry lookup over :class:`~repro.core.session.SolverSession`
    — the same dispatch and lifecycle as ``solve_ruling_set``, which is
    what gives matching the full driver surface: named ``regime`` /
    explicit ``config``, ``backend`` / ``backend_workers`` fan-out, the
    ``kernel`` compute backend, and the superstep ``trace`` (all with
    the usual bit-identity contracts).

    ``algorithm`` is any registered matching algorithm name; when
    ``None`` it is picked from the ``deterministic`` flag
    (:data:`~repro.core.registry.DET_MATCHING` /
    :data:`~repro.core.registry.RAND_MATCHING`).

    Returns a :class:`~repro.core.spec.MatchingResult`; iterating it
    yields ``(matching, metrics)``, so existing tuple-unpacking callers
    are unaffected.
    """
    from repro.core import registry
    from repro.core.session import SolverSession
    from repro.core.spec import MatchingResult

    if algorithm is None:
        algorithm = (
            registry.DET_MATCHING if deterministic else registry.RAND_MATCHING
        )
    spec = registry.get_algorithm(algorithm)
    if spec.problem != registry.MATCHING:
        raise AlgorithmError(
            f"{algorithm!r} solves {spec.problem!r}, not "
            f"{registry.MATCHING!r}; matching algorithms: "
            + ", ".join(registry.algorithm_names(problem=registry.MATCHING))
        )
    if graph.num_vertices == 0:
        return MatchingResult(
            matching=[], algorithm=algorithm, metrics={"rounds": 0}
        )
    build_session = (
        session_factory.session if session_factory is not None
        else SolverSession
    )
    session = build_session(
        graph, spec, regime=regime, alpha_mem=alpha_mem, config=config,
        seed=seed, backend=backend, backend_workers=backend_workers,
        kernel=kernel,
        trace=trace, trace_warn_utilization=trace_warn_utilization,
        governed=governed,
    )
    run = session.run()
    if verify:
        verify_maximal_matching(graph, run.payload.matching)
    return MatchingResult(
        matching=run.payload.matching,
        algorithm=algorithm,
        **run.stats.result_kwargs(),
    )


def verify_maximal_matching(
    graph: Graph, matching: List[Tuple[int, int]]
) -> None:
    """Sequential ground truth: matching validity plus maximality."""
    used = set()
    for u, v in matching:
        if not graph.has_edge(u, v):
            raise AlgorithmError(f"({u}, {v}) is not an edge")
        if u in used or v in used:
            raise AlgorithmError(f"endpoint reused by ({u}, {v})")
        used.add(u)
        used.add(v)
    for u, v in graph.edges():
        if u not in used and v not in used:
            raise AlgorithmError(
                f"edge ({u}, {v}) could extend the matching — not maximal"
            )
