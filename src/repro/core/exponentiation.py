"""Graph exponentiation: ball growing by doubling in MPC.

The standard MPC round-compression tool: after ``O(log r)`` doubling
steps (two rounds each) every vertex knows its ball ``B(v, r)``, so ``r``
LOCAL rounds can be answered at once and ``G^r`` adjacency can be formed
locally.  Memory honesty is preserved by the simulator: balls count
against the machine budget, so exponentiation is only legal where the
model actually permits it (small ``r``, bounded growth) — exceeding the
budget faults instead of silently succeeding, which is the behaviour E8
relies on.

Exactness: merging radius-``r`` balls of radius-``r`` ball members yields
exactly ``B(v, 2r)``, so doubling is exact for powers of two; arbitrary
radii are reached by doubling to the largest power of two below the
target and finishing with single-hop expansions.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import AlgorithmError
from repro.mpc.graph_store import ADJ, DistributedGraph
from repro.mpc.machine import Machine
from repro.mpc.message import Message

BALLS = "exp_balls"


def grow_balls(
    dg: DistributedGraph,
    radius: int,
    balls_key: str = BALLS,
    adj_key: str = ADJ,
) -> int:
    """Compute exactly ``B(v, radius)`` for every active vertex.

    Afterwards ``store[balls_key]`` maps each owned active vertex to the
    sorted tuple of vertices within ``radius`` hops (inclusive of ``v``).
    Returns the number of doubling steps used; total cost is
    ``2 * doublings + (radius - 2^doublings)`` rounds.
    """
    if radius < 1:
        raise AlgorithmError(f"radius must be >= 1, got {radius}")
    sim = dg.sim

    def init_balls(machine: Machine) -> None:
        adj = machine.store[adj_key]
        machine.store[balls_key] = {
            v: tuple(sorted(set(nbrs) | {v})) for v, nbrs in adj.items()
        }

    sim.local(init_balls)
    reach = 1
    doublings = 0
    while 2 * reach <= radius:
        _double(dg, balls_key)
        reach *= 2
        doublings += 1
    while reach < radius:
        _expand_one(dg, balls_key, adj_key)
        reach += 1
    return doublings


def power_graph_adjacency(
    dg: DistributedGraph,
    radius: int,
    out_adj_key: str,
    adj_key: str = ADJ,
    balls_key: str = BALLS,
) -> None:
    """Materialise exact ``G^radius`` adjacency under ``out_adj_key``."""
    grow_balls(dg, radius, balls_key=balls_key, adj_key=adj_key)

    def build(machine: Machine) -> None:
        balls = machine.store[balls_key]
        machine.store[out_adj_key] = {
            v: tuple(u for u in ball if u != v) for v, ball in balls.items()
        }

    dg.sim.local(build)


def _double(dg: DistributedGraph, balls_key: str) -> None:
    """One doubling: ``B(v, 2r) = union of B(u, r) over u in B(v, r)``."""
    sim = dg.sim

    # Round 1: each vertex requests the ball of every ball member.
    def request(machine: Machine) -> List[Message]:
        balls = machine.store[balls_key]
        out = []
        for v, ball in balls.items():
            for u in ball:
                if u != v:
                    out.append(Message(dg.owner_of(u), (u, v)))
        return out

    sim.communicate(request)

    # Round 2: owners answer with the requested balls.
    def respond(machine: Machine) -> List[Message]:
        balls = machine.store[balls_key]
        requests: Dict[int, List[int]] = {}
        for u, v in machine.inbox:
            requests.setdefault(u, []).append(v)
        machine.clear_inbox()
        out = []
        for u, requesters in requests.items():
            ball = balls[u]
            for v in requesters:
                out.append(Message(dg.owner_of(v), (v,) + ball))
        return out

    sim.communicate(respond)

    def merge(machine: Machine) -> None:
        balls = machine.store[balls_key]
        unions: Dict[int, Set[int]] = {
            v: set(ball) for v, ball in balls.items()
        }
        for payload in machine.inbox:
            v = payload[0]
            if v in unions:
                unions[v].update(payload[1:])
        machine.clear_inbox()
        machine.store[balls_key] = {
            v: tuple(sorted(members)) for v, members in unions.items()
        }

    sim.local(merge)


def _expand_one(
    dg: DistributedGraph, balls_key: str, adj_key: str
) -> None:
    """Grow every ball by one hop (one push round + local union)."""
    sim = dg.sim

    def send(machine: Machine) -> List[Message]:
        adj = machine.store[adj_key]
        balls = machine.store[balls_key]
        out = []
        for v, ball in balls.items():
            for u in adj[v]:
                out.append(Message(dg.owner_of(u), (u,) + ball))
        return out

    sim.communicate(send)

    def merge(machine: Machine) -> None:
        balls = machine.store[balls_key]
        unions = {v: set(ball) for v, ball in balls.items()}
        for payload in machine.inbox:
            v = payload[0]
            if v in unions:
                unions[v].update(payload[1:])
        machine.clear_inbox()
        machine.store[balls_key] = {
            v: tuple(sorted(members)) for v, members in unions.items()
        }

    sim.local(merge)
