"""Graph exponentiation: ball growing by doubling in MPC.

The standard MPC round-compression tool: after ``O(log r)`` doubling
steps (two rounds each) every vertex knows its ball ``B(v, r)``, so ``r``
LOCAL rounds can be answered at once and ``G^r`` adjacency can be formed
locally.  Memory honesty is preserved by the simulator: balls count
against the machine budget, so exponentiation is only legal where the
model actually permits it (small ``r``, bounded growth) — exceeding the
budget faults instead of silently succeeding, which is the behaviour E8
relies on.

Exactness: merging radius-``r`` balls of radius-``r`` ball members yields
exactly ``B(v, 2r)``, so doubling is exact for powers of two; arbitrary
radii are reached by doubling to the largest power of two below the
target and finishing with single-hop expansions.

Batched growth (``batch_vertices``): unbatched ball-growing concentrates
every vertex's ball traffic in the same round, which is exactly how α>2
exponentiation blows the per-round budget on large inputs.  Batching
splits each growth step into contiguous global-id windows — only the
window's vertices request/push per pass — with all responses served from
a *frozen pre-step snapshot* of the balls, so later windows never see
earlier windows' already-grown balls and the final balls are identical
bit-for-bit to the unbatched step.  Cost: more rounds and a transient
second copy of the balls; gain: per-round ``max_sent``/``max_received``
shrink by roughly the window fraction.  The default stays unbatched —
budget-faulting on oversized unbatched growth is itself the model-honest
behaviour E8 relies on.

Governed growth (``governor``): passing a
:class:`~repro.mpc.governor.LoadGovernor` replans the window size before
*every* growth step from the live ball sizes — the peak-hold throttling
of ROADMAP item 5.  The planner bounds each window's worst per-machine
round traffic (requests plus snapshot-ball responses) and picks the
largest halving of ``n`` that fits the governor's budget target; when
the full window fits, the step runs unbatched and is bit-identical to
the ungoverned step, rounds included.  Dense graphs that would fault
the per-round budget unbatched instead degrade to smaller windows and
complete with the identical balls.  An explicit ``batch_vertices``
always wins over the governor (the caller pinned the schedule).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import AlgorithmError
from repro.mpc.governor import LoadGovernor
from repro.mpc.graph_store import ADJ, DistributedGraph
from repro.mpc.machine import Machine
from repro.mpc.message import Message

BALLS = "exp_balls"

_SNAPSHOT = "_exp_snapshot"


def _batch_windows(
    num_vertices: int, batch_vertices: Optional[int]
) -> List[Optional[Tuple[int, int]]]:
    """Contiguous global-id windows for batched ball growing.

    ``None`` (the default) is the unbatched single window.  Windows are a
    pure function of ``(n, batch_vertices)``, so every machine agrees on
    the schedule without coordination and the run stays deterministic.
    """
    if batch_vertices is None:
        return [None]
    if batch_vertices < 1:
        raise AlgorithmError(
            f"batch_vertices must be >= 1, got {batch_vertices}"
        )
    if num_vertices == 0:
        return [None]
    return [
        (lo, min(lo + batch_vertices, num_vertices))
        for lo in range(0, num_vertices, batch_vertices)
    ]


def _plan_step_windows(
    dg: DistributedGraph,
    governor: LoadGovernor,
    balls_key: str,
    adj_key: str,
    doubling: bool,
) -> List[Optional[Tuple[int, int]]]:
    """Ask the governor for this step's window schedule.

    Harvests the live per-vertex ball sizes (and degrees, for single-hop
    expansion) and hands the governor a conservative per-vertex bound on
    the round words a windowed vertex draws onto one machine: for a
    doubling step each member's snapshot ball answer is at most
    ``max_ball + 1`` words; for an expansion step each incident edge
    pushes at most ``max_ball + 1`` words.  Everything here is a model
    quantity, so the plan — like the step it schedules — is
    deterministic.
    """
    harvested = dg.sim.harvest(
        lambda machine: {
            v: (len(ball), len(machine.store[adj_key].get(v, ())))
            for v, ball in machine.store[balls_key].items()
        }
    )
    sizes: Dict[int, Tuple[int, int]] = {}
    for part in harvested:
        sizes.update(part)
    if not sizes:
        return [None]
    max_ball = max(size for size, _ in sizes.values())
    costs: Dict[int, int] = {}
    for v, (size, degree) in sizes.items():
        if doubling:
            costs[v] = (size + 1) * (max_ball + 1)
        else:
            costs[v] = (degree + 1) * (max_ball + 1)
    batch = governor.plan_batch(dg.num_vertices, costs, dg.owner_of)
    return _batch_windows(dg.num_vertices, batch)


def _freeze(sim, balls_key: str) -> None:
    """Snapshot the balls so batched windows all read pre-step state."""

    def snap(machine: Machine) -> None:
        machine.store[_SNAPSHOT] = dict(machine.store[balls_key])

    sim.local(snap)


def _thaw(sim) -> None:
    def drop(machine: Machine) -> None:
        machine.store.pop(_SNAPSHOT, None)

    sim.local(drop)


def grow_balls(
    dg: DistributedGraph,
    radius: int,
    balls_key: str = BALLS,
    adj_key: str = ADJ,
    batch_vertices: Optional[int] = None,
    governor: Optional[LoadGovernor] = None,
) -> int:
    """Compute exactly ``B(v, radius)`` for every active vertex.

    Afterwards ``store[balls_key]`` maps each owned active vertex to the
    sorted tuple of vertices within ``radius`` hops (inclusive of ``v``).
    Returns the number of doubling steps used; total cost is
    ``2 * doublings + (radius - 2^doublings)`` rounds, multiplied by the
    window count when ``batch_vertices`` is set (see module docstring).
    With a ``governor`` (and no explicit ``batch_vertices``) each step's
    window size is replanned from the live ball sizes before it runs.
    """
    if radius < 1:
        raise AlgorithmError(f"radius must be >= 1, got {radius}")
    sim = dg.sim
    governed = governor is not None and batch_vertices is None
    windows = _batch_windows(dg.num_vertices, batch_vertices)

    def init_balls(machine: Machine) -> None:
        adj = machine.store[adj_key]
        machine.store[balls_key] = {
            v: tuple(sorted(set(nbrs) | {v})) for v, nbrs in adj.items()
        }

    sim.local(init_balls)
    reach = 1
    doublings = 0
    while 2 * reach <= radius:
        if governed:
            windows = _plan_step_windows(
                dg, governor, balls_key, adj_key, doubling=True
            )
        if windows != [None]:
            _freeze(sim, balls_key)
            for window in windows:
                _double(dg, balls_key, _SNAPSHOT, window)
            _thaw(sim)
        else:
            _double(dg, balls_key, balls_key, None)
        reach *= 2
        doublings += 1
    while reach < radius:
        if governed:
            windows = _plan_step_windows(
                dg, governor, balls_key, adj_key, doubling=False
            )
        if windows != [None]:
            _freeze(sim, balls_key)
            for window in windows:
                _expand_one(dg, balls_key, _SNAPSHOT, adj_key, window)
            _thaw(sim)
        else:
            _expand_one(dg, balls_key, balls_key, adj_key, None)
        reach += 1
    return doublings


def power_graph_adjacency(
    dg: DistributedGraph,
    radius: int,
    out_adj_key: str,
    adj_key: str = ADJ,
    balls_key: str = BALLS,
    batch_vertices: Optional[int] = None,
    governor: Optional[LoadGovernor] = None,
) -> None:
    """Materialise exact ``G^radius`` adjacency under ``out_adj_key``."""
    grow_balls(
        dg,
        radius,
        balls_key=balls_key,
        adj_key=adj_key,
        batch_vertices=batch_vertices,
        governor=governor,
    )

    def build(machine: Machine) -> None:
        balls = machine.store[balls_key]
        machine.store[out_adj_key] = {
            v: tuple(u for u in ball if u != v) for v, ball in balls.items()
        }

    dg.sim.local(build)


def _in_window(v: int, window: Optional[Tuple[int, int]]) -> bool:
    return window is None or window[0] <= v < window[1]


def _double(
    dg: DistributedGraph,
    balls_key: str,
    source_key: str,
    window: Optional[Tuple[int, int]],
) -> None:
    """One doubling: ``B(v, 2r) = union of B(u, r) over u in B(v, r)``.

    ``source_key`` is where responders read balls from — the live balls
    when unbatched, the frozen pre-step snapshot when batched, so every
    window's unions combine radius-``r`` balls only.
    """
    sim = dg.sim

    # Round 1: each (windowed) vertex requests the ball of every member.
    def request(machine: Machine) -> List[Message]:
        balls = machine.store[source_key]
        out = []
        for v, ball in balls.items():
            if not _in_window(v, window):
                continue
            for u in ball:
                if u != v:
                    out.append(Message(dg.owner_of(u), (u, v)))
        return out

    sim.communicate(request)

    # Round 2: owners answer with the requested (pre-step) balls.
    def respond(machine: Machine) -> List[Message]:
        balls = machine.store[source_key]
        requests: Dict[int, List[int]] = {}
        for u, v in machine.inbox:
            requests.setdefault(u, []).append(v)
        machine.clear_inbox()
        out = []
        for u, requesters in requests.items():
            ball = balls[u]
            for v in requesters:
                out.append(Message(dg.owner_of(v), (v,) + ball))
        return out

    sim.communicate(respond)

    def merge(machine: Machine) -> None:
        balls = machine.store[balls_key]
        unions: Dict[int, Set[int]] = {
            v: set(ball) for v, ball in balls.items()
        }
        for payload in machine.inbox:
            v = payload[0]
            if v in unions:
                unions[v].update(payload[1:])
        machine.clear_inbox()
        machine.store[balls_key] = {
            v: tuple(sorted(members)) for v, members in unions.items()
        }

    sim.local(merge)


def _expand_one(
    dg: DistributedGraph,
    balls_key: str,
    source_key: str,
    adj_key: str,
    window: Optional[Tuple[int, int]],
) -> None:
    """Grow every (windowed) ball by one hop (one push round + union).

    Senders push their ``source_key`` ball — the frozen pre-step copy
    when batched — so a ball grown by an earlier window is never pushed
    onward within the same step.
    """
    sim = dg.sim

    def send(machine: Machine) -> List[Message]:
        adj = machine.store[adj_key]
        balls = machine.store[source_key]
        out = []
        for v, ball in balls.items():
            if not _in_window(v, window):
                continue
            for u in adj[v]:
                out.append(Message(dg.owner_of(u), (u,) + ball))
        return out

    sim.communicate(send)

    def merge(machine: Machine) -> None:
        balls = machine.store[balls_key]
        unions = {v: set(ball) for v, ball in balls.items()}
        for payload in machine.inbox:
            v = payload[0]
            if v in unions:
                unions[v].update(payload[1:])
        machine.clear_inbox()
        machine.store[balls_key] = {
            v: tuple(sorted(members)) for v, members in unions.items()
        }

    sim.local(merge)
