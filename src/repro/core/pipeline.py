"""One-call drivers: graph in, verified ruling set + metrics out.

:func:`solve_ruling_set` wires together the regime configuration, the
simulator, the distributed graph, the requested algorithm, result
collection, and ground-truth verification.  This is the function the
examples and benchmarks call; using it guarantees that every number a
benchmark reports comes from a budget-enforced, verified run.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.det_luby import det_luby_mis
from repro.core.det_ruling import det_ruling_set
from repro.core.greedy import greedy_mis, greedy_ruling_set
from repro.core.rand_baselines import rand_luby_mis, rand_ruling_set
from repro.core.spec import RulingSetResult
from repro.core.verify import verify_ruling_set
from repro.errors import AlgorithmError
from repro.graph.graph import Graph
from repro.local.algorithms.agl_ruling import run_bitwise_ruling_set
from repro.local.algorithms.linial_coloring import run_coloring_mis
from repro.local.algorithms.luby_mis import run_luby_mis
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator
from repro.util.mathx import ilog2_ceil

MPC_ALGORITHMS = (
    "det-ruling",
    "rand-ruling",
    "det-luby",
    "rand-luby",
)
SEQUENTIAL_ALGORITHMS = ("greedy-mis", "greedy-ruling")
LOCAL_ALGORITHMS = ("local-luby", "local-bitwise", "local-coloring-mis")


def make_config(
    graph: Graph, regime: str = "sublinear", alpha: Tuple[int, int] = (2, 3)
) -> MPCConfig:
    """Build the :class:`MPCConfig` for a named regime.

    ``regime`` is ``"sublinear"`` (``S ≈ n^alpha``), ``"near-linear"``,
    or ``"single"``; pass an explicit :class:`MPCConfig` to
    :func:`solve_ruling_set` for anything else.
    """
    n, m = graph.num_vertices, graph.num_edges
    delta = graph.max_degree()
    if regime == "sublinear":
        return MPCConfig.sublinear(n, m, alpha[0], alpha[1], max_degree=delta)
    if regime == "near-linear":
        return MPCConfig.near_linear(n, m, max_degree=delta)
    if regime == "single":
        return MPCConfig.single_machine(n, m)
    raise AlgorithmError(f"unknown regime {regime!r}")


def solve_ruling_set(
    graph: Graph,
    algorithm: str = "det-ruling",
    beta: int = 2,
    alpha: int = 2,
    regime: str = "sublinear",
    alpha_mem: Tuple[int, int] = (2, 3),
    config: Optional[MPCConfig] = None,
    seed: int = 0,
    verify: bool = True,
    backend: Optional[str] = None,
    backend_workers: int = 0,
    trace: bool = False,
    trace_warn_utilization: float = 0.9,
) -> RulingSetResult:
    """Compute and verify a ruling set of ``graph``.

    Parameters
    ----------
    algorithm:
        One of ``det-ruling`` / ``rand-ruling`` (``(2, β)``-ruling set),
        ``det-luby`` / ``rand-luby`` (MIS), ``greedy-mis`` /
        ``greedy-ruling`` (sequential oracles), ``local-luby`` /
        ``local-bitwise`` / ``local-coloring-mis`` (LOCAL baselines).
    beta:
        Domination radius for the ruling-set algorithms (≥ 2).
    alpha:
        Independence radius (default 2 = plain independence).  ``alpha
        > 2`` is supported by ``det-ruling`` / ``rand-ruling`` (via graph
        exponentiation; the claimed domination becomes ``beta * (alpha -
        1)``) and by ``greedy-ruling`` (claimed ``alpha - 1``).
    regime / alpha_mem / config:
        MPC regime selection for the MPC algorithms; ``config`` overrides
        the named regime.
    seed:
        PRG seed for the randomized algorithms.
    verify:
        Check the output against the sequential oracle (recommended; all
        benchmarks keep it on).
    backend / backend_workers:
        Superstep execution backend override (``"serial"`` or
        ``"process"``; see :mod:`repro.mpc.backends`).  Execution
        strategy only: every backend produces bit-identical members,
        rounds, and communication metrics.
    trace / trace_warn_utilization:
        Enable the structured superstep trace (MPC algorithms only;
        ignored by the sequential/LOCAL baselines, which never touch
        the simulator).  The recorder lands on ``result.trace`` with
        JSONL / Chrome-trace export and budget-headroom warnings at the
        given fraction of ``S``.  Pure observer: traced runs are
        bit-identical to untraced ones.

    Returns a :class:`RulingSetResult` whose ``rounds`` / ``metrics``
    reflect the enforced MPC execution (0 rounds for sequential/LOCAL
    algorithms, whose round counts appear under ``metrics``).
    """
    if graph.num_vertices == 0:
        return RulingSetResult(
            members=[], alpha=alpha, beta=beta, algorithm=algorithm
        )
    if alpha < 2:
        raise AlgorithmError(f"alpha must be >= 2, got {alpha}")
    if alpha > 2 and algorithm not in (
        "det-ruling", "rand-ruling", "greedy-ruling"
    ):
        raise AlgorithmError(
            f"alpha > 2 is not supported by {algorithm!r}"
        )

    if algorithm in SEQUENTIAL_ALGORITHMS:
        if algorithm == "greedy-mis":
            members, claimed_beta = greedy_mis(graph), 1
        else:
            members = greedy_ruling_set(graph, alpha=alpha)
            claimed_beta = alpha - 1
        result = RulingSetResult(
            members=members, alpha=alpha, beta=claimed_beta,
            algorithm=algorithm,
        )
    elif algorithm in LOCAL_ALGORITHMS:
        extra_metrics = {}
        if algorithm == "local-luby":
            members, rounds = run_luby_mis(graph, seed=seed)
            claimed_beta = 1
        elif algorithm == "local-coloring-mis":
            members, rounds, palette = run_coloring_mis(graph)
            claimed_beta = 1
            extra_metrics["palette"] = palette
        else:
            members, rounds = run_bitwise_ruling_set(graph)
            claimed_beta = max(1, ilog2_ceil(max(2, graph.num_vertices)))
        result = RulingSetResult(
            members=members, alpha=2, beta=claimed_beta,
            algorithm=algorithm,
            metrics={"local_rounds": rounds, **extra_metrics},
        )
    elif algorithm in MPC_ALGORITHMS:
        result = _solve_mpc(
            graph, algorithm, beta, alpha, regime, alpha_mem, config, seed,
            backend=backend, backend_workers=backend_workers,
            trace=trace, trace_warn_utilization=trace_warn_utilization,
        )
    else:
        raise AlgorithmError(f"unknown algorithm {algorithm!r}")

    if verify:
        verify_ruling_set(
            graph, result.members, alpha=result.alpha, beta=result.beta
        )
    return result


def _solve_mpc(
    graph: Graph,
    algorithm: str,
    beta: int,
    alpha: int,
    regime: str,
    alpha_mem: Tuple[int, int],
    config: Optional[MPCConfig],
    seed: int,
    backend: Optional[str] = None,
    backend_workers: int = 0,
    trace: bool = False,
    trace_warn_utilization: float = 0.9,
) -> RulingSetResult:
    sizing_graph = graph
    if alpha > 2:
        # The machines will hold G^(alpha-1); size the regime for it.
        from repro.graph.ops import power_graph

        sizing_graph = power_graph(graph, alpha - 1)
    cfg = (
        config
        if config is not None
        else make_config(sizing_graph, regime, alpha_mem)
    )
    if backend is not None:
        cfg = cfg.with_backend(backend, backend_workers)
    if trace and not cfg.trace:
        cfg = cfg.with_trace(warn_utilization=trace_warn_utilization)
    cfg.validate_input_size(
        MPCConfig.input_words(
            sizing_graph.num_vertices, sizing_graph.num_edges
        )
    )
    # Context manager, not a trailing shutdown() call: a solve that
    # raises (e.g. MPCViolationError) must still release the backend's
    # worker pools, or every failed run leaks processes.
    with Simulator(cfg) as sim:
        dg = DistributedGraph.load(sim, graph)

        if algorithm == "det-luby":
            counters = det_luby_mis(dg, in_set_key="result_set")
            claimed_beta = 1
        elif algorithm == "rand-luby":
            counters = rand_luby_mis(dg, in_set_key="result_set", seed=seed)
            claimed_beta = 1
        elif algorithm == "det-ruling":
            if alpha > 2:
                from repro.core.alpha_ruling import det_alpha_ruling_set

                claimed_beta, counters = det_alpha_ruling_set(
                    dg, alpha=alpha, beta=beta, in_set_key="result_set"
                )
            else:
                counters = det_ruling_set(
                    dg, beta=beta, in_set_key="result_set"
                )
                claimed_beta = beta
        else:  # rand-ruling
            if alpha > 2:
                from repro.core.alpha_ruling import det_alpha_ruling_set
                from repro.core.rand_baselines import (
                    random_luby_chooser,
                    random_sampling_chooser,
                )
                from repro.util.rng import SplitMix64

                rng = SplitMix64(seed=seed)
                claimed_beta, counters = det_alpha_ruling_set(
                    dg, alpha=alpha, beta=beta, in_set_key="result_set",
                    chooser=random_sampling_chooser(rng.fork(1)),
                    luby_chooser=random_luby_chooser(rng.fork(2)),
                    luby_allow_stalls=64,
                )
            else:
                counters = rand_ruling_set(
                    dg, beta=beta, in_set_key="result_set", seed=seed
                )
                claimed_beta = beta

        members = dg.collect_marked("result_set")
    metrics = dict(sim.metrics.summary())
    metrics.update({f"alg_{key}": value for key, value in counters.items()})
    metrics["num_machines"] = cfg.num_machines
    metrics["memory_words"] = cfg.memory_words
    return RulingSetResult(
        members=members,
        alpha=alpha,
        beta=claimed_beta,
        algorithm=algorithm,
        rounds=sim.metrics.rounds,
        metrics=metrics,
        phase_rounds=sim.metrics.phase_rounds(),
        wall_time_s=round(sim.metrics.wall_time_s, 6),
        time_per_phase={
            phase: round(seconds, 6)
            for phase, seconds in sim.metrics.time_per_phase.items()
        },
        trace=sim.trace,
    )
