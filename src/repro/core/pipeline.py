"""One-call drivers: graph in, verified ruling set + metrics out.

:func:`solve_ruling_set` is a thin dispatch layer: it looks the
requested algorithm up in :mod:`repro.core.registry`, hands the run to
:class:`repro.core.session.SolverSession` (which owns the whole MPC
lifecycle — regime sizing, backend/trace wiring, simulator entry/exit,
collection, metrics assembly), and verifies the output against the
sequential ground truth.  This is the function the examples and
benchmarks call; using it guarantees that every number a benchmark
reports comes from a budget-enforced, verified run.

The name tuples below (``MPC_ALGORITHMS`` …) are *views* of the registry
kept for backward compatibility — the registry is the single source of
truth, and adding an algorithm there makes it appear here (and in the
CLI, sweeps, and benches) automatically.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core import registry
from repro.core.registry import (
    LOCAL_FAMILY,
    MPC_FAMILY,
    RULING_SET,
    SEQUENTIAL_FAMILY,
)
from repro.core.session import (
    SessionFactory,
    SessionStats,
    SolverSession,
    make_config,
    make_config_from_stats,
)
from repro.core.spec import RulingSetResult
from repro.core.verify import verify_ruling_set
from repro.errors import AlgorithmError
from repro.graph.graph import Graph
from repro.mpc.config import MPCConfig

__all__ = [
    "MPC_ALGORITHMS",
    "SEQUENTIAL_ALGORITHMS",
    "LOCAL_ALGORITHMS",
    "make_config",
    "solve_ruling_set",
    "solve_ruling_set_stream",
]

MPC_ALGORITHMS = registry.algorithm_names(
    family=MPC_FAMILY, problem=RULING_SET
)
SEQUENTIAL_ALGORITHMS = registry.algorithm_names(
    family=SEQUENTIAL_FAMILY, problem=RULING_SET
)
LOCAL_ALGORITHMS = registry.algorithm_names(
    family=LOCAL_FAMILY, problem=RULING_SET
)


def solve_ruling_set(
    graph: Graph,
    algorithm: Optional[str] = None,
    beta: int = 2,
    alpha: int = 2,
    regime: str = "sublinear",
    alpha_mem: Tuple[int, int] = (2, 3),
    config: Optional[MPCConfig] = None,
    seed: int = 0,
    verify: bool = True,
    backend: Optional[str] = None,
    backend_workers: int = 0,
    kernel: Optional[str] = None,
    trace: bool = False,
    trace_warn_utilization: float = 0.9,
    governed: bool = False,
    session_factory: Optional[SessionFactory] = None,
) -> RulingSetResult:
    """Compute and verify a ruling set of ``graph``.

    Parameters
    ----------
    algorithm:
        Any registered ruling-set algorithm name (defaults to the
        paper's headline, :data:`repro.core.registry.DET_RULING`); ask
        :func:`repro.core.registry.algorithm_names` for the list, or
        pass a wrong name — the error enumerates the registry.
    beta:
        Domination radius for the ruling-set algorithms (≥ 2).
    alpha:
        Independence radius (default 2 = plain independence).  ``alpha
        > 2`` is supported exactly by the algorithms whose registry spec
        sets ``supports_alpha_gt2`` (power-graph reduction for the MPC
        engines — the claimed domination becomes ``beta * (alpha - 1)``
        — native for the greedy oracle, claimed ``alpha - 1``).
    regime / alpha_mem / config:
        MPC regime selection for the MPC algorithms; ``config`` overrides
        the named regime.
    seed:
        PRG seed for the randomized algorithms (``uses_seed`` in the
        registry; the deterministic ones ignore it, pinned by test).
    verify:
        Check the output against the sequential oracle (recommended; all
        benchmarks keep it on).
    backend / backend_workers:
        Superstep execution backend override (``"serial"`` or
        ``"process"``; see :mod:`repro.mpc.backends`).  Execution
        strategy only: every backend produces bit-identical members,
        rounds, and communication metrics.
    kernel:
        Machine-local compute kernel override (``"python"`` reference or
        ``"numpy"`` vectorized; see :mod:`repro.mpc.state_layout`).
        ``None`` defers to ``REPRO_KERNEL``, then the reference kernel.
        Like ``backend``, execution strategy only — both kernels are
        bit-identical by contract.
    trace / trace_warn_utilization:
        Enable the structured superstep trace (MPC algorithms only;
        ignored by the sequential/LOCAL baselines, which never touch
        the simulator).  The recorder lands on ``result.trace`` with
        JSONL / Chrome-trace export and budget-headroom warnings at the
        given fraction of ``S``.  Pure observer: traced runs are
        bit-identical to untraced ones.
    governed:
        Enable the adaptive load governor (:mod:`repro.mpc.governor`):
        shard spool chunks and α > 2 in-model exponentiation windows
        throttle against a peak-hold budget estimate.  Execution
        strategy under the DESIGN.md §15 contract — members and error
        texts never change, and runs that needed no throttling are
        bit-identical to ungoverned ones, rounds included.
    session_factory:
        A :class:`~repro.core.session.SessionFactory` to build the
        session warm (reusing the α > 2 power graph and the regime
        config across solves on the same graph).  Warm solves are
        bit-identical to cold ones (pinned by test); the serve layer's
        batch engine passes its factory here.

    Returns a :class:`RulingSetResult` whose ``rounds`` / ``metrics``
    reflect the enforced MPC execution (0 rounds for sequential/LOCAL
    algorithms, whose round counts appear under ``metrics``).
    """
    if algorithm is None:
        algorithm = registry.DET_RULING
    if graph.num_vertices == 0:
        registry.get_algorithm(algorithm)  # typos fail loudly on any input
        return RulingSetResult(
            members=[], alpha=alpha, beta=beta, algorithm=algorithm
        )
    if alpha < 2:
        raise AlgorithmError(f"alpha must be >= 2, got {alpha}")
    spec = registry.get_algorithm(algorithm)
    if spec.problem != RULING_SET:
        raise AlgorithmError(
            f"{algorithm!r} solves {spec.problem!r}, not {RULING_SET!r}; "
            f"ruling-set algorithms: "
            + ", ".join(registry.algorithm_names(problem=RULING_SET))
        )
    if alpha > 2 and not spec.supports_alpha_gt2:
        raise AlgorithmError(f"alpha > 2 is not supported by {algorithm!r}")

    build_session = (
        session_factory.session if session_factory is not None
        else SolverSession
    )
    session = build_session(
        graph, spec, beta=beta, alpha=alpha, regime=regime,
        alpha_mem=alpha_mem, config=config, seed=seed,
        backend=backend, backend_workers=backend_workers, kernel=kernel,
        trace=trace, trace_warn_utilization=trace_warn_utilization,
        governed=governed,
    )
    run = session.run()
    claimed_beta = spec.claimed_beta(graph, alpha, beta)
    # The LOCAL baselines only ever claim plain independence.
    result_alpha = 2 if spec.family == LOCAL_FAMILY else alpha
    result = RulingSetResult(
        members=run.payload.members,
        alpha=result_alpha,
        beta=claimed_beta,
        algorithm=algorithm,
        **run.stats.result_kwargs(),
    )

    if verify:
        verify_ruling_set(
            graph, result.members, alpha=result.alpha, beta=result.beta
        )
    return result


def solve_ruling_set_stream(
    path,
    algorithm: Optional[str] = None,
    beta: int = 2,
    regime: str = "sublinear",
    alpha_mem: Tuple[int, int] = (2, 3),
    seed: int = 0,
    verify: bool = False,
    num_shards: int = 0,
    chunk_messages: int = 0,
    spill_dir: Optional[str] = None,
    kernel: Optional[str] = None,
    governed: bool = False,
    in_set_key: str = "result_set",
) -> RulingSetResult:
    """Solve a ruling set on an edge-list *file*, out-of-core end to end.

    The full shard pipeline: a pass-1 scan sizes the regime from
    ``(n, m, Δ)`` alone (:func:`~repro.core.session.make_config_from_stats`),
    pass-2 ingest shards the edges per machine while reading
    (:func:`~repro.graph.stream.shard_edge_list`), and the run executes on
    the :class:`~repro.mpc.shard.ShardBackend`, so *no process ever holds
    the whole graph*: peak driver memory is O(one machine shard + spool
    chunk).  Members and all model metrics are bit-identical to
    :func:`solve_ruling_set` on the materialized graph under the same
    ``ModOwnerMap`` — pinned by the ingest-parity tests and the
    shard-parity CI gate.

    ``algorithm`` must be an MPC-family ruling-set algorithm (the LOCAL
    and sequential baselines need the whole graph by definition); α is
    fixed at 2 — α > 2 sizes on a driver-materialized power graph, which
    contradicts streaming.  ``verify=True`` is a debug aid that re-reads
    the file *in memory* to run the sequential oracle, deliberately
    defaulting off: it reintroduces exactly the O(n + m) footprint this
    path exists to avoid.

    ``num_shards`` / ``chunk_messages`` / ``spill_dir`` are the
    :class:`~repro.mpc.shard.ShardBackend` knobs; ``governed`` throttles
    the backend's spool flush threshold against the run's peak-hold
    budget estimate (driver memory only — rounds and members are
    bit-identical either way); ingest stats
    (``ingest_edges``, ``ingest_max_degree``, ``ingest_checksum``) and
    the backend's residency stats (``shard_max_resident_words`` …) land
    in ``result.metrics``.
    """
    from repro.core.registry import RunContext
    from repro.graph.io import read_edge_list
    from repro.graph.stream import scan_edge_list_stats, shard_edge_list
    from repro.mpc.graph_store import DistributedGraph
    from repro.mpc.ownermap import ModOwnerMap
    from repro.mpc.shard import ShardBackend
    from repro.mpc.simulator import Simulator

    if algorithm is None:
        algorithm = registry.DET_RULING
    spec = registry.get_algorithm(algorithm)
    if spec.problem != RULING_SET or spec.family != MPC_FAMILY:
        raise AlgorithmError(
            f"streaming solve requires an MPC ruling-set algorithm, "
            f"got {algorithm!r}; choose one of: "
            + ", ".join(
                registry.algorithm_names(
                    family=MPC_FAMILY, problem=RULING_SET
                )
            )
        )

    stats = scan_edge_list_stats(path)
    if stats.num_vertices == 0:
        return RulingSetResult(
            members=[], alpha=2, beta=beta, algorithm=algorithm
        )
    cfg = make_config_from_stats(
        stats.num_vertices,
        stats.declared_edges,
        stats.max_degree,
        regime,
        alpha_mem,
    )
    if kernel is not None:
        cfg = cfg.with_kernel(kernel)
    cfg = cfg.with_backend("shard")
    if governed:
        cfg = cfg.with_governor()
    cfg.validate_input_size(
        MPCConfig.input_words(stats.num_vertices, stats.declared_edges)
    )

    owner_map = ModOwnerMap(stats.num_vertices, cfg.num_machines)
    backend = ShardBackend(
        num_shards=num_shards,
        chunk_messages=chunk_messages,
        spill_dir=spill_dir,
    )
    with shard_edge_list(path, owner_map, spill_dir=spill_dir) as sharded:
        with Simulator(cfg, backend=backend) as sim:
            dg = DistributedGraph.load_sharded(sim, sharded)
            ctx = RunContext(
                graph=None, alpha=2, beta=beta, seed=seed, dg=dg, sim=sim,
                in_set_key=in_set_key,
            )
            payload = spec.runner(ctx)
            if payload.members is None:
                payload.members = dg.collect_marked(in_set_key)
            backend_stats = dict(backend.stats())
        metrics: Dict[str, object] = dict(sim.metrics.summary())
        metrics.update(
            {f"alg_{key}": value for key, value in payload.counters.items()}
        )
        metrics["num_machines"] = cfg.num_machines
        metrics["memory_words"] = cfg.memory_words
        metrics["ingest_edges"] = sharded.num_edges
        metrics["ingest_max_degree"] = sharded.max_degree
        metrics["ingest_checksum"] = sharded.checksum
        metrics.update(
            {f"shard_{key}": value for key, value in backend_stats.items()}
        )
        metrics.update(payload.extra_metrics)
    run_stats = SessionStats(
        rounds=sim.metrics.rounds,
        metrics=metrics,
        phase_rounds=sim.metrics.phase_rounds(),
        wall_time_s=round(sim.metrics.wall_time_s, 6),
        time_per_phase={
            phase: round(seconds, 6)
            for phase, seconds in sim.metrics.time_per_phase.items()
        },
    )
    result = RulingSetResult(
        members=payload.members,
        alpha=2,
        beta=spec.claimed_beta(None, 2, beta),
        algorithm=algorithm,
        **run_stats.result_kwargs(),
    )
    if verify:
        # Debug aid only: materializes the graph, defeating O(shard).
        verify_ruling_set(
            read_edge_list(path), result.members,
            alpha=result.alpha, beta=result.beta,
        )
    return result
