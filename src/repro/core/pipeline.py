"""One-call drivers: graph in, verified ruling set + metrics out.

:func:`solve_ruling_set` is a thin dispatch layer: it looks the
requested algorithm up in :mod:`repro.core.registry`, hands the run to
:class:`repro.core.session.SolverSession` (which owns the whole MPC
lifecycle — regime sizing, backend/trace wiring, simulator entry/exit,
collection, metrics assembly), and verifies the output against the
sequential ground truth.  This is the function the examples and
benchmarks call; using it guarantees that every number a benchmark
reports comes from a budget-enforced, verified run.

The name tuples below (``MPC_ALGORITHMS`` …) are *views* of the registry
kept for backward compatibility — the registry is the single source of
truth, and adding an algorithm there makes it appear here (and in the
CLI, sweeps, and benches) automatically.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core import registry
from repro.core.registry import (
    LOCAL_FAMILY,
    MPC_FAMILY,
    RULING_SET,
    SEQUENTIAL_FAMILY,
)
from repro.core.session import SessionFactory, SolverSession, make_config
from repro.core.spec import RulingSetResult
from repro.core.verify import verify_ruling_set
from repro.errors import AlgorithmError
from repro.graph.graph import Graph
from repro.mpc.config import MPCConfig

__all__ = [
    "MPC_ALGORITHMS",
    "SEQUENTIAL_ALGORITHMS",
    "LOCAL_ALGORITHMS",
    "make_config",
    "solve_ruling_set",
]

MPC_ALGORITHMS = registry.algorithm_names(
    family=MPC_FAMILY, problem=RULING_SET
)
SEQUENTIAL_ALGORITHMS = registry.algorithm_names(
    family=SEQUENTIAL_FAMILY, problem=RULING_SET
)
LOCAL_ALGORITHMS = registry.algorithm_names(
    family=LOCAL_FAMILY, problem=RULING_SET
)


def solve_ruling_set(
    graph: Graph,
    algorithm: Optional[str] = None,
    beta: int = 2,
    alpha: int = 2,
    regime: str = "sublinear",
    alpha_mem: Tuple[int, int] = (2, 3),
    config: Optional[MPCConfig] = None,
    seed: int = 0,
    verify: bool = True,
    backend: Optional[str] = None,
    backend_workers: int = 0,
    kernel: Optional[str] = None,
    trace: bool = False,
    trace_warn_utilization: float = 0.9,
    session_factory: Optional[SessionFactory] = None,
) -> RulingSetResult:
    """Compute and verify a ruling set of ``graph``.

    Parameters
    ----------
    algorithm:
        Any registered ruling-set algorithm name (defaults to the
        paper's headline, :data:`repro.core.registry.DET_RULING`); ask
        :func:`repro.core.registry.algorithm_names` for the list, or
        pass a wrong name — the error enumerates the registry.
    beta:
        Domination radius for the ruling-set algorithms (≥ 2).
    alpha:
        Independence radius (default 2 = plain independence).  ``alpha
        > 2`` is supported exactly by the algorithms whose registry spec
        sets ``supports_alpha_gt2`` (power-graph reduction for the MPC
        engines — the claimed domination becomes ``beta * (alpha - 1)``
        — native for the greedy oracle, claimed ``alpha - 1``).
    regime / alpha_mem / config:
        MPC regime selection for the MPC algorithms; ``config`` overrides
        the named regime.
    seed:
        PRG seed for the randomized algorithms (``uses_seed`` in the
        registry; the deterministic ones ignore it, pinned by test).
    verify:
        Check the output against the sequential oracle (recommended; all
        benchmarks keep it on).
    backend / backend_workers:
        Superstep execution backend override (``"serial"`` or
        ``"process"``; see :mod:`repro.mpc.backends`).  Execution
        strategy only: every backend produces bit-identical members,
        rounds, and communication metrics.
    kernel:
        Machine-local compute kernel override (``"python"`` reference or
        ``"numpy"`` vectorized; see :mod:`repro.mpc.state_layout`).
        ``None`` defers to ``REPRO_KERNEL``, then the reference kernel.
        Like ``backend``, execution strategy only — both kernels are
        bit-identical by contract.
    trace / trace_warn_utilization:
        Enable the structured superstep trace (MPC algorithms only;
        ignored by the sequential/LOCAL baselines, which never touch
        the simulator).  The recorder lands on ``result.trace`` with
        JSONL / Chrome-trace export and budget-headroom warnings at the
        given fraction of ``S``.  Pure observer: traced runs are
        bit-identical to untraced ones.
    session_factory:
        A :class:`~repro.core.session.SessionFactory` to build the
        session warm (reusing the α > 2 power graph and the regime
        config across solves on the same graph).  Warm solves are
        bit-identical to cold ones (pinned by test); the serve layer's
        batch engine passes its factory here.

    Returns a :class:`RulingSetResult` whose ``rounds`` / ``metrics``
    reflect the enforced MPC execution (0 rounds for sequential/LOCAL
    algorithms, whose round counts appear under ``metrics``).
    """
    if algorithm is None:
        algorithm = registry.DET_RULING
    if graph.num_vertices == 0:
        registry.get_algorithm(algorithm)  # typos fail loudly on any input
        return RulingSetResult(
            members=[], alpha=alpha, beta=beta, algorithm=algorithm
        )
    if alpha < 2:
        raise AlgorithmError(f"alpha must be >= 2, got {alpha}")
    spec = registry.get_algorithm(algorithm)
    if spec.problem != RULING_SET:
        raise AlgorithmError(
            f"{algorithm!r} solves {spec.problem!r}, not {RULING_SET!r}; "
            f"ruling-set algorithms: "
            + ", ".join(registry.algorithm_names(problem=RULING_SET))
        )
    if alpha > 2 and not spec.supports_alpha_gt2:
        raise AlgorithmError(f"alpha > 2 is not supported by {algorithm!r}")

    build_session = (
        session_factory.session if session_factory is not None
        else SolverSession
    )
    session = build_session(
        graph, spec, beta=beta, alpha=alpha, regime=regime,
        alpha_mem=alpha_mem, config=config, seed=seed,
        backend=backend, backend_workers=backend_workers, kernel=kernel,
        trace=trace, trace_warn_utilization=trace_warn_utilization,
    )
    run = session.run()
    claimed_beta = spec.claimed_beta(graph, alpha, beta)
    # The LOCAL baselines only ever claim plain independence.
    result_alpha = 2 if spec.family == LOCAL_FAMILY else alpha
    result = RulingSetResult(
        members=run.payload.members,
        alpha=result_alpha,
        beta=claimed_beta,
        algorithm=algorithm,
        **run.stats.result_kwargs(),
    )

    if verify:
        verify_ruling_set(
            graph, result.members, alpha=result.alpha, beta=result.beta
        )
    return result
