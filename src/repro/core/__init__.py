"""The paper's contribution: deterministic MPC ruling-set algorithms.

Public surface:

* :mod:`~repro.core.registry` — the algorithm registry: one
  :class:`~repro.core.registry.AlgorithmSpec` per algorithm (canonical
  name, model family, problem, capability flags, runner).  The single
  source of algorithm names for the drivers, CLI, sweeps, and benches.
* :class:`~repro.core.session.SolverSession` — the one MPC lifecycle
  (regime sizing, backend/trace wiring, simulator context, collection,
  metrics assembly) every registered algorithm runs through.
* :func:`repro.core.pipeline.solve_ruling_set` /
  :func:`repro.core.det_matching.solve_matching` — one-call drivers:
  thin registry lookups over the session, plus ground-truth
  verification, returning :class:`~repro.core.spec.RulingSetResult` /
  :class:`~repro.core.spec.MatchingResult` with full MPC metrics.
* :mod:`~repro.core.det_ruling` — deterministic ``(2, β)``-ruling sets via
  derandomized sparsify-and-gather (the headline algorithm).
* :mod:`~repro.core.det_luby` — deterministic MIS via the derandomized
  Luby step (method of conditional expectations each phase).
* :mod:`~repro.core.rand_baselines` — the randomized counterparts, sharing
  the same code paths so the measured difference is exactly the seed
  search.
* :mod:`~repro.core.greedy` / :mod:`~repro.core.verify` — sequential
  oracle and ground-truth verification.
"""

from repro.core import registry
from repro.core.spec import MatchingResult, RulingSetResult
from repro.core.verify import verify_ruling_set, check_ruling_set
from repro.core.greedy import greedy_mis, greedy_ruling_set
from repro.core.det_luby import det_luby_mis
from repro.core.det_ruling import det_ruling_set
from repro.core.rand_baselines import rand_luby_mis, rand_ruling_set
from repro.core.alpha_ruling import det_alpha_ruling_set
from repro.core.det_matching import (
    det_maximal_matching,
    solve_matching,
    verify_maximal_matching,
)
from repro.core.registry import AlgorithmSpec, algorithm_names, get_algorithm
from repro.core.session import SolverSession
from repro.core.pipeline import solve_ruling_set

__all__ = [
    "registry",
    "AlgorithmSpec",
    "algorithm_names",
    "get_algorithm",
    "SolverSession",
    "RulingSetResult",
    "MatchingResult",
    "verify_ruling_set",
    "check_ruling_set",
    "greedy_mis",
    "greedy_ruling_set",
    "det_luby_mis",
    "det_ruling_set",
    "rand_luby_mis",
    "rand_ruling_set",
    "det_alpha_ruling_set",
    "det_maximal_matching",
    "solve_matching",
    "verify_maximal_matching",
    "solve_ruling_set",
]
