"""The paper's contribution: deterministic MPC ruling-set algorithms.

Public surface:

* :func:`repro.core.pipeline.solve_ruling_set` — one-call driver: builds
  the simulator for a chosen regime, runs the requested algorithm,
  verifies the output, and returns a :class:`~repro.core.spec.RulingSetResult`
  with full MPC metrics.
* :mod:`~repro.core.det_ruling` — deterministic ``(2, β)``-ruling sets via
  derandomized sparsify-and-gather (the headline algorithm).
* :mod:`~repro.core.det_luby` — deterministic MIS via the derandomized
  Luby step (method of conditional expectations each phase).
* :mod:`~repro.core.rand_baselines` — the randomized counterparts, sharing
  the same code paths so the measured difference is exactly the seed
  search.
* :mod:`~repro.core.greedy` / :mod:`~repro.core.verify` — sequential
  oracle and ground-truth verification.
"""

from repro.core.spec import RulingSetResult
from repro.core.verify import verify_ruling_set, check_ruling_set
from repro.core.greedy import greedy_mis, greedy_ruling_set
from repro.core.det_luby import det_luby_mis
from repro.core.det_ruling import det_ruling_set
from repro.core.rand_baselines import rand_luby_mis, rand_ruling_set
from repro.core.alpha_ruling import det_alpha_ruling_set
from repro.core.det_matching import (
    det_maximal_matching,
    solve_matching,
    verify_maximal_matching,
)
from repro.core.pipeline import solve_ruling_set

__all__ = [
    "RulingSetResult",
    "verify_ruling_set",
    "check_ruling_set",
    "greedy_mis",
    "greedy_ruling_set",
    "det_luby_mis",
    "det_ruling_set",
    "rand_luby_mis",
    "rand_ruling_set",
    "det_alpha_ruling_set",
    "det_maximal_matching",
    "solve_matching",
    "verify_maximal_matching",
    "solve_ruling_set",
]
