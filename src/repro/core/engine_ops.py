"""Shared MPC engine subroutines used by the solver phase programs.

These are the reusable superstep building blocks that every ruling-set
style solver composes: measuring an adjacency layer, gathering a small
subgraph to one machine for a sequential solve, the β-hop removal wave,
and the member-set merge/teardown steps.  They were extracted verbatim
from the first solver module so that new families build on them instead
of copy-pasting ~200 lines of scaffolding.

Bit-identity note: machine-store keys are memory-priced words (see
:func:`repro.mpc.machine.words_of`), so every scratch-key literal here
(``_rs_gather_flag``, ``_rs_frontier``, …) is part of the metrics
contract and must not be renamed casually — the refactor-parity oracle
pins ``peak_memory_words`` across these helpers' callers.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.core.greedy import greedy_mis_on_edges
from repro.mpc.graph_store import ADJ, DistributedGraph
from repro.mpc.machine import Machine
from repro.mpc.message import Message
from repro.mpc.primitives.aggregate import reduce_scalar, reduce_vector


def sampling_rate(max_degree: int) -> Tuple[int, int]:
    """Rate ``q = min(1/2, 4/isqrt(Δ))`` as an exact fraction."""
    root = math.isqrt(max(1, max_degree))
    if root <= 8:
        return (1, 2)
    return (4, root)


def adjacency_words(dg: DistributedGraph, adj_key: str) -> Tuple[int, int, int]:
    """Return ``(n_active, m_active, words)`` for one adjacency layer."""
    sim = dg.sim

    def extract(machine: Machine) -> Tuple[int, ...]:
        adj = machine.store[adj_key]
        return (
            len(adj),
            sum(len(nbrs) for nbrs in adj.values()),
        )

    n_active, directed = reduce_vector(
        sim, extract, lambda a, b: (a[0] + b[0], a[1] + b[1]), width=2
    )
    return n_active, directed // 2, directed + n_active


def gather_and_greedy(
    dg: DistributedGraph, adj_key: str, members_key: str
) -> int:
    """Gather the ``adj_key`` subgraph to machine 0, solve, scatter members.

    Flags every active vertex of the layer, ships the subgraph, runs
    greedy MIS at machine 0, and sends each member id to its owner, which
    records it under ``members_key``.  Returns the member count.  Costs 4
    rounds.
    """
    sim = dg.sim

    def flag_all(machine: Machine) -> None:
        machine.store["_rs_gather_flag"] = sorted(machine.store[adj_key])

    sim.local(flag_all)
    dg.gather_flagged_to_zero(
        "_rs_gather_flag", "_rs_gv", "_rs_ge", adj_key=adj_key
    )

    def solve_and_scatter(machine: Machine) -> List[Message]:
        machine.store.pop("_rs_gather_flag")
        if machine.mid != 0:
            return []
        vertices = machine.store.pop("_rs_gv")
        edges = machine.store.pop("_rs_ge")
        members = greedy_mis_on_edges(vertices, edges)
        return [Message(dg.owner_of(v), (v,)) for v in members]

    sim.communicate(solve_and_scatter)

    def record(machine: Machine) -> None:
        for payload in machine.inbox:
            machine.store[members_key].add(payload[0])
        machine.clear_inbox()

    sim.local(record)
    return reduce_scalar(
        sim, lambda m: len(m.store[members_key]), lambda a, b: a + b
    )


def removal_wave(
    dg: DistributedGraph, members_key: str, beta: int, adj_key: str = ADJ
) -> int:
    """Deactivate every active vertex within β hops of the new members.

    β rounds of flag pushes on the base adjacency plus one deactivation
    round.  Returns the number of vertices removed.
    """
    sim = dg.sim

    def seed_wave(machine: Machine) -> None:
        members = set(machine.store[members_key])
        active = set(machine.store[adj_key])
        machine.store["_rs_frontier"] = sorted(members & active)
        machine.store["_rs_removed"] = members & active

    sim.local(seed_wave)
    for _ in range(beta):
        dg.push_flags("_rs_frontier", "_rs_hit", adj_key=adj_key)

        def advance(machine: Machine) -> None:
            removed = machine.store["_rs_removed"]
            hit = machine.store.pop("_rs_hit")
            newly = {
                v
                for v in hit
                if v not in removed and v in machine.store[adj_key]
            }
            removed.update(newly)
            machine.store["_rs_frontier"] = sorted(newly)

        sim.local(advance)

    def finalize(machine: Machine) -> None:
        machine.store.pop("_rs_frontier")
        machine.store["_rs_removed"] = set(machine.store["_rs_removed"])
        machine.store["_rs_removed_count"] = len(machine.store["_rs_removed"])

    sim.local(finalize)
    removed_total = sum(
        sim.harvest(lambda m: m.store.pop("_rs_removed_count"))
    )
    dg.deactivate("_rs_removed", adj_key=adj_key)
    return removed_total


def merge_members(sim, in_set_key: str, iter_key: str) -> int:
    """Fold this iteration's members into the global set; return count."""

    def merge(machine: Machine) -> None:
        new_members = machine.store[iter_key]
        machine.store["_rs_merged"] = len(new_members)
        machine.store[in_set_key].update(new_members)
        machine.store[iter_key] = set()

    sim.local(merge)
    return sum(sim.harvest(lambda m: m.store.pop("_rs_merged")))


def deactivate_all(dg: DistributedGraph, adj_key: str) -> None:
    """Remove every remaining active vertex (after a gather-finish)."""

    def mark_all(machine: Machine) -> None:
        machine.store["_rs_all"] = set(machine.store[adj_key])

    dg.sim.local(mark_all)
    dg.deactivate("_rs_all", adj_key=adj_key)
