"""Fuzzing verifier harness: every registered solver × hostile graphs.

The harness closes the loop the unit tests cannot: unit tests pin each
algorithm on the graphs its author thought of, while the harness replays
*every* registry solver (:func:`repro.core.registry.algorithm_specs` —
never a hand-maintained name list, so new algorithms are covered the day
they are registered) over the adversarial families in
:func:`repro.graph.generators.hostile_suite`, and checks every output
against the **independent** sequential validators in
:mod:`repro.core.verify` — never against another distributed solver.

Three checks per (graph, algorithm) cell:

1. **Validity** — ruling-set outputs must pass
   :func:`~repro.core.verify.verify_ruling_set` at the radius the spec
   *claims* (``spec.claimed_beta``); matchings must pass
   :func:`~repro.core.verify.verify_maximal_matching`.
2. **Determinism** — a second run with identical parameters must return
   bit-identical members/matching and rounds (every solver here is
   deterministic given its seed; seedless solvers must not vary at all).
3. **No faults** — any :class:`~repro.errors.ReproError` escaping the
   solve is recorded as a failure cell rather than aborting the sweep,
   so one bad cell cannot mask others.

The harness is the CI ``fuzz-verify`` job's engine (``repro fuzz`` in
the CLI) and accepts ``governed=True`` to replay the whole sweep under
the adaptive load governor (:mod:`repro.mpc.governor`), pinning the
governor's results-are-bit-identical contract across the suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core import registry
from repro.core.det_matching import solve_matching
from repro.core.pipeline import solve_ruling_set
from repro.core.session import SessionFactory
from repro.core.verify import verify_maximal_matching, verify_ruling_set
from repro.errors import ReproError
from repro.graph.generators import hostile_suite
from repro.graph.graph import Graph

#: Cell outcomes.
OK = "ok"
FAIL = "fail"


@dataclass(frozen=True)
class FuzzCell:
    """One (graph, algorithm, seed) trial and its outcome.

    ``detail`` carries the failing check's message verbatim (the
    validator's reason, the fault's error text, or the determinism
    mismatch) — empty for passing cells.
    """

    graph_name: str
    algorithm: str
    problem: str
    seed: int
    status: str
    detail: str = ""
    output_size: int = 0
    rounds: int = 0


@dataclass
class FuzzReport:
    """Structured outcome of one :func:`fuzz_verify` sweep."""

    cells: List[FuzzCell] = field(default_factory=list)
    governed: bool = False

    @property
    def failures(self) -> List[FuzzCell]:
        """Cells whose check failed, in sweep order."""
        return [cell for cell in self.cells if cell.status != OK]

    @property
    def ok(self) -> bool:
        """Whether every cell passed (an empty sweep is vacuously ok)."""
        return not self.failures

    def format(self) -> str:
        """Human-readable summary: one line per failure, then a tally."""
        lines = []
        for cell in self.failures:
            lines.append(
                f"FAIL {cell.graph_name} × {cell.algorithm} "
                f"(seed={cell.seed}): {cell.detail}"
            )
        mode = "governed" if self.governed else "ungoverned"
        lines.append(
            f"fuzz-verify [{mode}]: {len(self.cells)} cells, "
            f"{len(self.failures)} failures"
        )
        return "\n".join(lines)


def _check_ruling_cell(
    graph: Graph,
    spec: "registry.AlgorithmSpec",
    seed: int,
    governed: bool,
    factory: SessionFactory,
) -> Tuple[str, str, int, int]:
    """Run one ruling-set cell; return (status, detail, size, rounds)."""
    alpha, beta = 2, 2
    result = solve_ruling_set(
        graph, algorithm=spec.name, alpha=alpha, beta=beta, seed=seed,
        verify=False, governed=governed, session_factory=factory,
    )
    claimed = (
        spec.claimed_beta(graph, alpha, beta)
        if spec.claimed_beta is not None else beta
    )
    verify_ruling_set(graph, result.members, alpha=alpha, beta=claimed)
    replay = solve_ruling_set(
        graph, algorithm=spec.name, alpha=alpha, beta=beta, seed=seed,
        verify=False, governed=governed, session_factory=factory,
    )
    if replay.members != result.members or replay.rounds != result.rounds:
        return (
            FAIL,
            "nondeterministic: replay returned "
            f"{len(replay.members)} members / {replay.rounds} rounds vs "
            f"{len(result.members)} / {result.rounds}",
            result.size,
            result.rounds,
        )
    return OK, "", result.size, result.rounds


def _check_matching_cell(
    graph: Graph,
    spec: "registry.AlgorithmSpec",
    seed: int,
    governed: bool,
    factory: SessionFactory,
) -> Tuple[str, str, int, int]:
    """Run one matching cell; return (status, detail, size, rounds)."""
    result = solve_matching(
        graph, algorithm=spec.name, seed=seed, verify=False,
        governed=governed, session_factory=factory,
    )
    verify_maximal_matching(graph, result.matching)
    replay = solve_matching(
        graph, algorithm=spec.name, seed=seed, verify=False,
        governed=governed, session_factory=factory,
    )
    if replay.matching != result.matching or replay.rounds != result.rounds:
        return (
            FAIL,
            "nondeterministic: replay returned "
            f"{len(replay.matching)} edges / {replay.rounds} rounds vs "
            f"{len(result.matching)} / {result.rounds}",
            result.size,
            result.rounds,
        )
    return OK, "", result.size, result.rounds


def fuzz_verify(
    scale: int = 1,
    seed: int = 0,
    solver_seeds: Sequence[int] = (0,),
    families: Optional[Iterable[str]] = None,
    problems: Optional[Iterable[str]] = None,
    algorithms: Optional[Iterable[str]] = None,
    graphs: Optional[Sequence[Tuple[str, Graph]]] = None,
    governed: bool = False,
) -> FuzzReport:
    """Sweep hostile graphs × registered solvers against the validators.

    Parameters
    ----------
    scale / seed:
        Forwarded to :func:`~repro.graph.generators.hostile_suite`
        (ignored when ``graphs`` supplies the suite explicitly).
    solver_seeds:
        Seeds tried per cell.  Seedless algorithms run only the first
        seed (their output is seed-independent by contract — pinned
        elsewhere — so extra seeds would only re-measure the same run).
    families / problems / algorithms:
        Optional filters over the registry sweep (family names,
        problem kinds, canonical algorithm names).  ``None`` = all.
    graphs:
        Explicit ``(name, graph)`` cells to sweep instead of the
        hostile suite — the unit tests' hook for planted-failure cases.
    governed:
        Replay every solve under the adaptive load governor; results
        must stay bit-identical (any divergence shows up as a validity
        or determinism failure against the same validators).

    Returns a :class:`FuzzReport`; the sweep never raises on a failing
    cell — faults are captured as ``FAIL`` cells with the error text.
    """
    family_filter = set(families) if families is not None else None
    problem_filter = set(problems) if problems is not None else None
    name_filter = set(algorithms) if algorithms is not None else None
    suite = (
        list(graphs) if graphs is not None
        else hostile_suite(scale=scale, seed=seed)
    )
    specs = [
        spec
        for spec in registry.algorithm_specs()
        if (family_filter is None or spec.family in family_filter)
        and (problem_filter is None or spec.problem in problem_filter)
        and (name_filter is None or spec.name in name_filter)
    ]
    report = FuzzReport(governed=governed)
    # One factory per sweep: power graphs and sizing configs are
    # memoized across cells, and the replay leg hits the same warm
    # state as the first run (bit-identity is the whole point).
    factory = SessionFactory()
    for graph_name, graph in suite:
        for spec in specs:
            seeds = tuple(solver_seeds) if spec.uses_seed else (
                tuple(solver_seeds)[:1] or (0,)
            )
            for solver_seed in seeds:
                try:
                    if spec.problem == registry.MATCHING:
                        status, detail, size, rounds = _check_matching_cell(
                            graph, spec, solver_seed, governed, factory
                        )
                    else:
                        status, detail, size, rounds = _check_ruling_cell(
                            graph, spec, solver_seed, governed, factory
                        )
                except ReproError as exc:
                    status, detail, size, rounds = (
                        FAIL, f"{type(exc).__name__}: {exc}", 0, 0
                    )
                report.cells.append(FuzzCell(
                    graph_name=graph_name,
                    algorithm=spec.name,
                    problem=spec.problem,
                    seed=solver_seed,
                    status=status,
                    detail=detail,
                    output_size=size,
                    rounds=rounds,
                ))
    return report
