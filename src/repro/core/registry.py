"""The algorithm registry: one :class:`AlgorithmSpec` per algorithm.

This module is the **single source of truth** for algorithm names.  Every
other layer — the one-call drivers (:mod:`repro.core.pipeline`,
:func:`repro.core.det_matching.solve_matching`), the CLI, the sweep
engine's algorithm axis, and the benchmark drivers — derives its name
lists, capability checks, and dispatch from here.  A drift-guard test
(``tests/core/test_registry_drift.py``) enforces that no module under
``src/`` or ``benchmarks/`` spells an algorithm name as a string literal;
code refers to the exported constants (:data:`DET_RULING`, …) or asks
the registry.

Adding an algorithm is a one-registration change::

    register(AlgorithmSpec(
        name="my-alg",                      # canonical CLI/sweep name
        family=MPC_FAMILY,                  # mpc | local | sequential
        problem=RULING_SET,                 # ruling-set | matching
        description="what it computes",
        runner=_run_my_alg,                 # see runner contract below
        claimed_beta=lambda graph, alpha, beta: beta,
        supports_alpha_gt2=False,
        uses_seed=False,
    ))

and it appears everywhere automatically: ``solve_ruling_set`` dispatches
to it, the CLI ``--algorithm`` help lists it, sweeps validate it, and the
drift guard starts protecting its name.

Runner contract
---------------
A runner is a module-level callable ``runner(ctx) -> RunPayload`` where
``ctx`` is a :class:`RunContext`.  For ``mpc``-family algorithms the
context carries the live simulator objects (``ctx.dg`` / ``ctx.sim``)
plus the regime artifacts the session built once (notably
``ctx.power_adjacency`` for α > 2); ruling-set runners mark members
under ``ctx.in_set_key`` and return counters, matching runners return
the matching edges directly.  ``local`` / ``sequential`` runners consume
only ``ctx.graph`` / ``ctx.alpha`` / ``ctx.beta`` / ``ctx.seed`` and
return members (plus LOCAL rounds) in the payload.  Runners import
their algorithm modules lazily so the registry stays import-cycle-free.

The MPC *lifecycle* (regime sizing, backend/trace wiring, simulator
entry/exit, collection, metrics assembly) is owned by
:class:`repro.core.session.SolverSession` — runners only run the
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)

from repro.errors import AlgorithmError
from repro.util.mathx import ilog2_ceil

if TYPE_CHECKING:  # type-only: the registry imports no heavy modules
    from repro.core.program import SuperstepProgram
    from repro.graph.graph import Graph
    from repro.mpc.config import MPCConfig
    from repro.mpc.graph_store import DistributedGraph
    from repro.mpc.simulator import Simulator

# ---------------------------------------------------------------------------
# Canonical names — the ONLY place these strings are spelled in src/ or
# benchmarks/ (enforced by the drift-guard test).
# ---------------------------------------------------------------------------

DET_RULING = "det-ruling"
RAND_RULING = "rand-ruling"
DET_LUBY = "det-luby"
RAND_LUBY = "rand-luby"
GP_RULING = "gp-2ruling"
GREEDY_MIS = "greedy-mis"
GREEDY_RULING = "greedy-ruling"
LOCAL_LUBY = "local-luby"
LOCAL_BITWISE = "local-bitwise"
LOCAL_COLORING_MIS = "local-coloring-mis"
DET_MATCHING = "det-matching"
RAND_MATCHING = "rand-matching"

#: Model families an algorithm can execute in.
MPC_FAMILY = "mpc"
LOCAL_FAMILY = "local"
SEQUENTIAL_FAMILY = "sequential"
FAMILIES = (MPC_FAMILY, LOCAL_FAMILY, SEQUENTIAL_FAMILY)

#: Problem kinds the registry knows about.
RULING_SET = "ruling-set"
MATCHING = "matching"
PROBLEMS = (RULING_SET, MATCHING)


# ---------------------------------------------------------------------------
# Runner plumbing types
# ---------------------------------------------------------------------------


@dataclass
class RunContext:
    """Everything a runner may consume, prepared once by the session.

    ``dg`` / ``sim`` are populated only for ``mpc``-family runs (inside
    the session's simulator context).  ``power_adjacency`` is the
    ``G^{α-1}`` adjacency the session materialised **once** for α > 2 —
    regime sizing and execution share the same build instead of each
    recomputing it.
    """

    graph: "Graph"
    alpha: int = 2
    beta: int = 2
    seed: int = 0
    dg: Optional["DistributedGraph"] = None
    sim: Optional["Simulator"] = None
    power_adjacency: Optional[Dict[int, Tuple[int, ...]]] = None
    in_set_key: str = "result_set"


@dataclass
class RunPayload:
    """What a runner hands back to the session.

    ``members`` is left ``None`` by MPC ruling-set runners — the session
    collects marked vertices from the distributed graph itself, so every
    algorithm shares one collection path.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    members: Optional[List[int]] = None
    matching: Optional[List[Tuple[int, int]]] = None
    local_rounds: Optional[int] = None
    extra_metrics: Dict[str, object] = field(default_factory=dict)


#: ``claimed_beta(graph, alpha, beta) -> int`` — the domination radius
#: the algorithm *claims* for a run with those parameters (verification
#: measures the actual radius against this claim).
ClaimedBeta = Callable[["Graph", int, int], int]

#: ``config_factory(sizing_graph, regime, alpha_mem) -> MPCConfig`` —
#: how an MPC-family algorithm sizes its regime.  ``sizing_graph`` is
#: the graph the machines must actually hold (``G^{α-1}`` for α > 2,
#: built once by the session).
ConfigFactory = Callable[["Graph", str, Tuple[int, int]], "MPCConfig"]

#: ``program_factory(run_context) -> SuperstepProgram`` — how an
#: MPC-family algorithm builds its phase program for one run.  The
#: session prefers this over ``runner`` (it executes the program itself
#: and assembles the payload from the program context); ``runner`` stays
#: as the uniform fallback and the streaming path's entry point.
ProgramFactory = Callable[[RunContext], "SuperstepProgram"]

#: ``claimed_rounds(graph, alpha, beta) -> int`` — a concrete ceiling on
#: the MPC round count the algorithm *claims* for a run with those
#: parameters (tests hold the measured ``rounds`` to it, the same way
#: verification holds the measured radius to ``claimed_beta``).
ClaimedRounds = Callable[["Graph", int, int], int]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm: identity, capabilities, and dispatch.

    Attributes
    ----------
    name:
        Canonical name (CLI ``--algorithm`` value, sweep axis entry,
        record label).
    family:
        Execution model: ``mpc`` (runs on the enforcing simulator),
        ``local`` (LOCAL-model simulator), or ``sequential`` (oracle).
    problem:
        ``ruling-set`` or ``matching``.
    description:
        One line for generated help / docs tables.
    runner:
        The runner callable (see the module docstring contract).
    claimed_beta:
        Claimed domination radius as a function of the run parameters
        (``None`` for problems where β is meaningless, e.g. matching).
    supports_alpha_gt2:
        Whether the algorithm accepts an independence radius α > 2
        (via power-graph reduction or native support).
    uses_seed:
        Whether the ``seed`` parameter influences the output.  Seedless
        algorithms must produce bit-identical results for every seed
        (pinned by test).
    config_factory:
        Regime sizing for ``mpc``-family algorithms; ``None`` selects
        the session's default (:func:`repro.core.session.make_config`
        over the sizing graph).
    program_factory:
        Phase-program construction for ``mpc``-family algorithms; when
        present the session executes the program directly (``runner``
        remains the streaming path's entry point and the fallback).
    round_complexity:
        Asymptotic MPC round complexity as a display string for the
        generated help / README table (``—`` when not meaningful, e.g.
        sequential oracles).
    claimed_rounds:
        Concrete claimed round ceiling as a function of the run
        parameters; ``None`` when the algorithm makes no such claim.
    """

    name: str
    family: str
    problem: str
    description: str
    runner: Callable[[RunContext], RunPayload]
    claimed_beta: Optional[ClaimedBeta] = None
    supports_alpha_gt2: bool = False
    uses_seed: bool = False
    config_factory: Optional[ConfigFactory] = None
    program_factory: Optional[ProgramFactory] = None
    round_complexity: str = "—"
    claimed_rounds: Optional[ClaimedRounds] = None


# ---------------------------------------------------------------------------
# Registry storage and lookup
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, AlgorithmSpec] = {}


def register(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Add ``spec`` to the registry (rejecting duplicates and bad enums)."""
    if spec.family not in FAMILIES:
        raise AlgorithmError(
            f"unknown family {spec.family!r} for {spec.name!r}; "
            f"expected one of {FAMILIES}"
        )
    if spec.problem not in PROBLEMS:
        raise AlgorithmError(
            f"unknown problem {spec.problem!r} for {spec.name!r}; "
            f"expected one of {PROBLEMS}"
        )
    if spec.name in _REGISTRY:
        raise AlgorithmError(f"algorithm {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a spec by canonical name.

    Unknown names raise :class:`AlgorithmError` enumerating the real
    registry contents, so the error is self-documenting.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; registered algorithms: "
            + ", ".join(_REGISTRY)
        ) from None


def is_registered(name: str) -> bool:
    """Whether ``name`` is a registered algorithm."""
    return name in _REGISTRY


def algorithm_specs(
    family: Optional[str] = None, problem: Optional[str] = None
) -> Tuple[AlgorithmSpec, ...]:
    """All specs, optionally filtered, in registration order."""
    return tuple(
        spec
        for spec in _REGISTRY.values()
        if (family is None or spec.family == family)
        and (problem is None or spec.problem == problem)
    )


def algorithm_names(
    family: Optional[str] = None, problem: Optional[str] = None
) -> Tuple[str, ...]:
    """All canonical names, optionally filtered, in registration order."""
    return tuple(
        spec.name for spec in algorithm_specs(family=family, problem=problem)
    )


def help_text(problem: Optional[str] = None, rounds: bool = False) -> str:
    """``name | name | …`` for generated CLI help (cannot drift).

    With ``rounds=True`` each entry carries its round complexity, e.g.
    ``name [O(log n)]`` — the CLI help surfaces the same column the
    README table is generated from.
    """
    if not rounds:
        return " | ".join(algorithm_names(problem=problem))
    return " | ".join(
        f"{spec.name} [{spec.round_complexity}]"
        for spec in algorithm_specs(problem=problem)
    )


def canonical_cache_params(
    spec: AlgorithmSpec,
    *,
    beta: int = 2,
    alpha: int = 2,
    regime: str = "sublinear",
    alpha_mem: Tuple[int, int] = (2, 3),
    seed: int = 0,
    config: Optional["MPCConfig"] = None,
) -> Dict[str, object]:
    """The *semantic* solve parameters, canonicalized for cache keying.

    Two parameterizations that provably produce bit-identical results
    must map to the same dict; parameterizations that can differ in any
    model quantity must not.  The registry owns this because the spec's
    capability flags decide what is semantic:

    * ``seed`` is included only when ``spec.uses_seed`` — the seedless
      (deterministic) algorithms produce identical output for every
      seed (pinned by test), so seeds must not fragment their cache;
    * ``beta`` / ``alpha`` are dropped for problems where they are
      meaningless (matching);
    * an explicit :class:`~repro.mpc.config.MPCConfig` contributes only
      its model-relevant fields (``num_machines`` / ``memory_words``) —
      ``backend`` / ``backend_workers`` / ``trace`` /
      ``trace_warn_utilization`` select execution strategy and
      observability, which the backend and trace layers guarantee to be
      bit-identity-preserving, and ``label`` / ``slack`` are reporting
      annotations;
    * without an explicit config, the named ``regime`` plus the memory
      exponent ``alpha_mem`` determine the derived config.
    """
    params: Dict[str, object] = {
        "algorithm": spec.name,
        "problem": spec.problem,
    }
    if spec.problem == RULING_SET:
        params["beta"] = int(beta)
        params["alpha"] = int(alpha)
    if spec.uses_seed:
        params["seed"] = int(seed)
    if config is not None:
        params["config"] = {
            "num_machines": config.num_machines,
            "memory_words": config.memory_words,
        }
    else:
        params["regime"] = regime
        params["alpha_mem"] = [int(x) for x in alpha_mem]
    return params


def markdown_table(problem: Optional[str] = None) -> str:
    """The algorithm table for README/docs, regenerated from the registry."""
    lines = [
        "| Algorithm | Model | Problem | Rounds | α>2 | Seeded "
        "| What it computes |",
        "|---|---|---|---|---|---|---|",
    ]
    for spec in algorithm_specs(problem=problem):
        lines.append(
            f"| `{spec.name}` | {spec.family.upper()} | {spec.problem} "
            f"| {spec.round_complexity} "
            f"| {'yes' if spec.supports_alpha_gt2 else '—'} "
            f"| {'yes' if spec.uses_seed else '—'} "
            f"| {spec.description} |"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Runners — lazy imports keep the registry cycle-free and cheap to load.
# ---------------------------------------------------------------------------


def _run_det_ruling(ctx: RunContext) -> RunPayload:
    from repro.core.det_ruling import det_ruling_set

    if ctx.alpha > 2:
        from repro.core.alpha_ruling import det_alpha_ruling_set

        _, counters = det_alpha_ruling_set(
            ctx.dg, alpha=ctx.alpha, beta=ctx.beta,
            in_set_key=ctx.in_set_key,
            power_adjacency=ctx.power_adjacency,
        )
        return RunPayload(counters=counters)
    counters = det_ruling_set(ctx.dg, beta=ctx.beta, in_set_key=ctx.in_set_key)
    return RunPayload(counters=counters)


def _run_rand_ruling(ctx: RunContext) -> RunPayload:
    from repro.core.rand_baselines import rand_ruling_set

    if ctx.alpha > 2:
        from repro.core.alpha_ruling import det_alpha_ruling_set
        from repro.core.rand_baselines import (
            random_luby_chooser,
            random_sampling_chooser,
        )
        from repro.util.rng import SplitMix64

        rng = SplitMix64(seed=ctx.seed)
        _, counters = det_alpha_ruling_set(
            ctx.dg, alpha=ctx.alpha, beta=ctx.beta,
            in_set_key=ctx.in_set_key,
            chooser=random_sampling_chooser(rng.fork(1)),
            luby_chooser=random_luby_chooser(rng.fork(2)),
            luby_allow_stalls=64,
            power_adjacency=ctx.power_adjacency,
        )
        return RunPayload(counters=counters)
    counters = rand_ruling_set(
        ctx.dg, beta=ctx.beta, in_set_key=ctx.in_set_key, seed=ctx.seed
    )
    return RunPayload(counters=counters)


def _run_det_luby(ctx: RunContext) -> RunPayload:
    from repro.core.det_luby import det_luby_mis

    return RunPayload(
        counters=det_luby_mis(ctx.dg, in_set_key=ctx.in_set_key)
    )


def _run_gp_ruling(ctx: RunContext) -> RunPayload:
    from repro.core.gp_ruling import gp_2ruling_set

    return RunPayload(
        counters=gp_2ruling_set(ctx.dg, in_set_key=ctx.in_set_key)
    )


def _run_rand_luby(ctx: RunContext) -> RunPayload:
    from repro.core.rand_baselines import rand_luby_mis

    return RunPayload(
        counters=rand_luby_mis(ctx.dg, in_set_key=ctx.in_set_key, seed=ctx.seed)
    )


def _run_greedy_mis(ctx: RunContext) -> RunPayload:
    from repro.core.greedy import greedy_mis

    return RunPayload(members=greedy_mis(ctx.graph))


def _run_greedy_ruling(ctx: RunContext) -> RunPayload:
    from repro.core.greedy import greedy_ruling_set

    return RunPayload(members=greedy_ruling_set(ctx.graph, alpha=ctx.alpha))


def _run_local_luby(ctx: RunContext) -> RunPayload:
    from repro.local.algorithms.luby_mis import run_luby_mis

    members, rounds = run_luby_mis(ctx.graph, seed=ctx.seed)
    return RunPayload(members=members, local_rounds=rounds)


def _run_local_bitwise(ctx: RunContext) -> RunPayload:
    from repro.local.algorithms.agl_ruling import run_bitwise_ruling_set

    members, rounds = run_bitwise_ruling_set(ctx.graph)
    return RunPayload(members=members, local_rounds=rounds)


def _run_local_coloring_mis(ctx: RunContext) -> RunPayload:
    from repro.local.algorithms.linial_coloring import run_coloring_mis

    members, rounds, palette = run_coloring_mis(ctx.graph)
    return RunPayload(
        members=members, local_rounds=rounds,
        extra_metrics={"palette": palette},
    )


def _run_det_matching(ctx: RunContext) -> RunPayload:
    from repro.core.det_matching import det_maximal_matching

    matching, counters = det_maximal_matching(ctx.dg)
    return RunPayload(matching=matching, counters=counters)


def _run_rand_matching(ctx: RunContext) -> RunPayload:
    from repro.core.det_matching import det_maximal_matching
    from repro.core.rand_baselines import random_luby_chooser
    from repro.util.rng import SplitMix64

    matching, counters = det_maximal_matching(
        ctx.dg,
        chooser=random_luby_chooser(SplitMix64(seed=ctx.seed)),
        allow_stalls=64,
    )
    return RunPayload(matching=matching, counters=counters)


# ---------------------------------------------------------------------------
# Program factories — MPC-family algorithms as phase programs.  Each
# mirrors its runner's dispatch exactly; the session executes the
# program when the factory is present, so runner and factory must stay
# bit-identical by construction (the runner is a thin wrapper over the
# same program).
# ---------------------------------------------------------------------------


def _program_det_ruling(ctx: RunContext) -> "SuperstepProgram":
    if ctx.alpha > 2:
        from repro.core.alpha_ruling import alpha_program

        return alpha_program(
            ctx.alpha, beta=ctx.beta, in_set_key=ctx.in_set_key,
            power_adjacency=ctx.power_adjacency,
        )
    from repro.core.det_ruling import ruling_program

    return ruling_program(beta=ctx.beta, in_set_key=ctx.in_set_key)


def _program_rand_ruling(ctx: RunContext) -> "SuperstepProgram":
    if ctx.alpha > 2:
        from repro.core.alpha_ruling import alpha_program
        from repro.core.rand_baselines import (
            random_luby_chooser,
            random_sampling_chooser,
        )
        from repro.util.rng import SplitMix64

        rng = SplitMix64(seed=ctx.seed)
        return alpha_program(
            ctx.alpha, beta=ctx.beta, in_set_key=ctx.in_set_key,
            chooser=random_sampling_chooser(rng.fork(1)),
            luby_chooser=random_luby_chooser(rng.fork(2)),
            luby_allow_stalls=64,
            power_adjacency=ctx.power_adjacency,
        )
    from repro.core.rand_baselines import rand_ruling_program

    return rand_ruling_program(
        beta=ctx.beta, in_set_key=ctx.in_set_key, seed=ctx.seed
    )


def _program_det_luby(ctx: RunContext) -> "SuperstepProgram":
    from repro.core.det_luby import luby_program

    return luby_program(in_set_key=ctx.in_set_key)


def _program_rand_luby(ctx: RunContext) -> "SuperstepProgram":
    from repro.core.rand_baselines import rand_luby_program

    return rand_luby_program(in_set_key=ctx.in_set_key, seed=ctx.seed)


def _program_gp_ruling(ctx: RunContext) -> "SuperstepProgram":
    from repro.core.gp_ruling import gp_program

    return gp_program(in_set_key=ctx.in_set_key)


def _program_det_matching(ctx: RunContext) -> "SuperstepProgram":
    from repro.core.det_matching import matching_program

    return matching_program()


def _program_rand_matching(ctx: RunContext) -> "SuperstepProgram":
    from repro.core.det_matching import matching_program
    from repro.core.rand_baselines import random_luby_chooser
    from repro.util.rng import SplitMix64

    return matching_program(
        chooser=random_luby_chooser(SplitMix64(seed=ctx.seed)),
        allow_stalls=64,
    )


# ---------------------------------------------------------------------------
# Claimed-β functions and config factories
# ---------------------------------------------------------------------------


def _ruling_beta(graph: "Graph", alpha: int, beta: int) -> int:
    # α > 2 runs on G^{α-1}: β-domination there is β(α-1)-domination in G.
    return beta if alpha == 2 else beta * (alpha - 1)


def _mis_beta(graph: "Graph", alpha: int, beta: int) -> int:
    return 1


def _greedy_ruling_beta(graph: "Graph", alpha: int, beta: int) -> int:
    return alpha - 1


def _bitwise_beta(graph: "Graph", alpha: int, beta: int) -> int:
    return max(1, ilog2_ceil(max(2, graph.num_vertices)))


def _gp_beta(graph: "Graph", alpha: int, beta: int) -> int:
    # The degree-class decomposition always yields a (2, 2)-ruling set,
    # regardless of the requested β.  Must tolerate graph=None (the
    # streaming entry point prices the claim before the graph exists).
    return 2


def _gp_rounds(graph: "Graph", alpha: int, beta: int) -> int:
    from repro.core.gp_ruling import claimed_round_bound

    return claimed_round_bound(graph.num_vertices, graph.max_degree())


def _matching_config_factory(
    graph: "Graph", regime: str, alpha_mem: Tuple[int, int]
) -> "MPCConfig":
    from repro.core.det_matching import matching_config

    return matching_config(graph, alpha=alpha_mem, regime=regime)


# ---------------------------------------------------------------------------
# Registrations — registration order is presentation order everywhere
# (CLI help, sweeps' default grids, README table).
# ---------------------------------------------------------------------------

register(AlgorithmSpec(
    name=DET_RULING,
    family=MPC_FAMILY,
    problem=RULING_SET,
    description="deterministic (2, β)-ruling set (derandomized "
    "sparsify-and-gather; the paper's headline)",
    runner=_run_det_ruling,
    claimed_beta=_ruling_beta,
    supports_alpha_gt2=True,
    program_factory=_program_det_ruling,
    round_complexity="O(β log Δ)",
))

register(AlgorithmSpec(
    name=RAND_RULING,
    family=MPC_FAMILY,
    problem=RULING_SET,
    description="randomized (2, β)-ruling set baseline (same engine, "
    "sampled seeds)",
    runner=_run_rand_ruling,
    claimed_beta=_ruling_beta,
    supports_alpha_gt2=True,
    uses_seed=True,
    program_factory=_program_rand_ruling,
    round_complexity="O(β log Δ)",
))

register(AlgorithmSpec(
    name=DET_LUBY,
    family=MPC_FAMILY,
    problem=RULING_SET,
    description="deterministic MIS (derandomized Luby via conditional "
    "expectations)",
    runner=_run_det_luby,
    claimed_beta=_mis_beta,
    program_factory=_program_det_luby,
    round_complexity="O(log n)",
))

register(AlgorithmSpec(
    name=RAND_LUBY,
    family=MPC_FAMILY,
    problem=RULING_SET,
    description="randomized Luby MIS baseline",
    runner=_run_rand_luby,
    claimed_beta=_mis_beta,
    uses_seed=True,
    program_factory=_program_rand_luby,
    round_complexity="O(log n)",
))

register(AlgorithmSpec(
    name=GP_RULING,
    family=MPC_FAMILY,
    problem=RULING_SET,
    description="deterministic (2, 2)-ruling set via degree-class "
    "decomposition (the follow-up paper's O(log log Δ) route)",
    runner=_run_gp_ruling,
    claimed_beta=_gp_beta,
    program_factory=_program_gp_ruling,
    round_complexity="O(log log Δ)",
    claimed_rounds=_gp_rounds,
))

register(AlgorithmSpec(
    name=GREEDY_MIS,
    family=SEQUENTIAL_FAMILY,
    problem=RULING_SET,
    description="sequential greedy MIS oracle",
    runner=_run_greedy_mis,
    claimed_beta=_mis_beta,
))

register(AlgorithmSpec(
    name=GREEDY_RULING,
    family=SEQUENTIAL_FAMILY,
    problem=RULING_SET,
    description="sequential greedy (α, α-1)-ruling set oracle",
    runner=_run_greedy_ruling,
    claimed_beta=_greedy_ruling_beta,
    supports_alpha_gt2=True,
))

register(AlgorithmSpec(
    name=LOCAL_LUBY,
    family=LOCAL_FAMILY,
    problem=RULING_SET,
    description="LOCAL-model randomized Luby MIS baseline",
    runner=_run_local_luby,
    claimed_beta=_mis_beta,
    uses_seed=True,
    round_complexity="O(log n)",
))

register(AlgorithmSpec(
    name=LOCAL_BITWISE,
    family=LOCAL_FAMILY,
    problem=RULING_SET,
    description="LOCAL-model deterministic bitwise (AGLP) ruling set",
    runner=_run_local_bitwise,
    claimed_beta=_bitwise_beta,
    round_complexity="O(log n)",
))

register(AlgorithmSpec(
    name=LOCAL_COLORING_MIS,
    family=LOCAL_FAMILY,
    problem=RULING_SET,
    description="LOCAL-model MIS via Linial coloring reduction",
    runner=_run_local_coloring_mis,
    claimed_beta=_mis_beta,
    round_complexity="O(Δ² + log* n)",
))

register(AlgorithmSpec(
    name=DET_MATCHING,
    family=MPC_FAMILY,
    problem=MATCHING,
    description="deterministic maximal matching (Luby engine on the "
    "distributed line graph)",
    runner=_run_det_matching,
    config_factory=_matching_config_factory,
    program_factory=_program_det_matching,
    round_complexity="O(log m)",
))

register(AlgorithmSpec(
    name=RAND_MATCHING,
    family=MPC_FAMILY,
    problem=MATCHING,
    description="randomized maximal matching baseline (sampled Luby "
    "on the line graph)",
    runner=_run_rand_matching,
    config_factory=_matching_config_factory,
    uses_seed=True,
    program_factory=_program_rand_matching,
    round_complexity="O(log m)",
))
