"""General ``(α, β)``-ruling sets via graph exponentiation.

The paper's setting is α = 2 (plain independence).  The classic
reduction extends every α = 2 algorithm to larger α: members that are
independent in the power graph ``G^{α-1}`` are pairwise at distance ≥ α
in ``G``, and a set that β-dominates ``G^{α-1}`` dominates ``G`` within
``β·(α-1)`` hops.  So:

1. materialise ``G^{α-1}`` adjacency with the MPC exponentiation
   primitive (``O(log α)`` doubling rounds, memory permitting — the
   simulator faults where the model genuinely cannot afford the power
   graph);
2. run the deterministic ``(2, β)``-ruling set engine *on the power
   graph*;
3. the output is an ``(α, β·(α-1))``-ruling set of ``G``.

This module is an *extension* beyond the brief announcement's headline
(recorded in DESIGN.md); its guarantee is verified like everything else,
by BFS on the original graph.  The composition is a phase program: an
``alpha-exponentiation`` phase followed by the ruling engine embedded as
a :class:`~repro.core.program.Subprogram`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.det_ruling import ruling_program
from repro.core.exponentiation import power_graph_adjacency
from repro.core.program import (
    Phase,
    ProgramContext,
    Subprogram,
    SuperstepProgram,
)
from repro.errors import AlgorithmError
from repro.mpc.graph_store import ADJ, DistributedGraph
from repro.mpc.machine import Machine

ORIGINAL_ADJ = "alpha_original_adj"


def alpha_program(
    alpha: int,
    beta: int = 2,
    in_set_key: str = "alpha_rs_in_set",
    chooser=None,
    luby_chooser=None,
    luby_allow_stalls: int = 0,
    power_adjacency: Optional[Dict[int, Tuple[int, ...]]] = None,
) -> SuperstepProgram:
    """The exponentiation reduction as a phase program.

    Requires ``alpha >= 2`` and ``beta >= 2``.  For α = 2 the reduction
    is the identity, so the ruling engine's own program is returned
    unchanged; for α > 2 it is wrapped behind the
    ``alpha-exponentiation`` phase that swaps the power adjacency in
    under ``ADJ`` (preserving the original under ``ORIGINAL_ADJ``).
    """
    if alpha < 2:
        raise AlgorithmError(f"alpha must be >= 2, got {alpha}")
    if beta < 2:
        raise AlgorithmError(f"beta must be >= 2, got {beta}")
    engine = ruling_program(
        beta=beta, in_set_key=in_set_key,
        chooser=chooser, luby_chooser=luby_chooser,
        luby_allow_stalls=luby_allow_stalls,
    )
    if alpha == 2:
        return engine

    def exponentiate(ctx: ProgramContext) -> None:
        dg, sim = ctx.dg, ctx.sim
        if power_adjacency is None:
            # In-model doubling consults the run's governor (if any):
            # dense graphs degrade to windowed growth steps instead of
            # faulting the per-round budget; the balls are identical.
            power_graph_adjacency(
                dg,
                alpha - 1,
                out_adj_key="alpha_power_adj",
                governor=getattr(sim, "governor", None),
            )

            def swap_in_power(machine: Machine) -> None:
                machine.store[ORIGINAL_ADJ] = machine.store[ADJ]
                machine.store[ADJ] = machine.store.pop("alpha_power_adj")
                machine.store.pop("exp_balls", None)

            sim.local(swap_in_power)
        else:

            def install_prebuilt(machine: Machine) -> None:
                adj = machine.store[ADJ]
                machine.store[ORIGINAL_ADJ] = adj
                machine.store[ADJ] = {
                    v: tuple(power_adjacency.get(v, ())) for v in adj
                }

            sim.local(install_prebuilt)

    return SuperstepProgram(
        name="power-graph",
        steps=(
            Phase(
                exponentiate,
                name="alpha-exponentiation",
                keys=(ORIGINAL_ADJ,),
            ),
            Subprogram(engine),
        ),
    )


def det_alpha_ruling_set(
    dg: DistributedGraph,
    alpha: int,
    beta: int = 2,
    in_set_key: str = "alpha_rs_in_set",
    chooser=None,
    luby_chooser=None,
    luby_allow_stalls: int = 0,
    power_adjacency: Optional[Dict[int, Tuple[int, ...]]] = None,
) -> Tuple[int, Dict[str, int]]:
    """Compute an ``(alpha, beta * (alpha - 1))``-ruling set of ``G``.

    Requires ``alpha >= 2`` and ``beta >= 2``.  Returns
    ``(claimed_beta_in_G, counters)``; members accumulate under
    ``store[in_set_key]`` as usual.  The original adjacency is preserved
    under ``store[ORIGINAL_ADJ]`` for any post-processing the caller
    wants to do (the engine consumes the power adjacency).

    ``power_adjacency`` is the ``G^{α-1}`` adjacency when the caller has
    already built it — :class:`~repro.core.session.SolverSession`
    materialises it once for regime sizing and passes it here, so a
    one-call solve does not derive the same graph twice.  It is
    installed under the ``alpha-exponentiation`` phase in one
    budget-charged local step (each machine's slice of the power graph
    must fit its memory exactly as if exponentiation had produced it).
    When ``None`` (direct engine callers), the in-model doubling
    primitive builds it, pricing the ``O(log α)`` exponentiation rounds
    — E9 measures that path explicitly.

    This is a thin wrapper over :func:`alpha_program`.
    """
    program = alpha_program(
        alpha,
        beta=beta,
        in_set_key=in_set_key,
        chooser=chooser,
        luby_chooser=luby_chooser,
        luby_allow_stalls=luby_allow_stalls,
        power_adjacency=power_adjacency,
    )
    counters = program.run(ProgramContext(dg))
    claimed = beta if alpha == 2 else beta * (alpha - 1)
    return claimed, counters
