"""Ground-truth verification of claimed ruling sets.

Verification is sequential and exact (BFS-based), entirely independent of
the distributed code paths it checks: α-independence via depth-limited
BFS from each member, β-domination via one multi-source BFS.  Every
algorithm's output in tests and benchmarks goes through
:func:`verify_ruling_set` — a distributed algorithm is only "done" when
the oracle agrees.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, List

from repro.errors import VerificationError
from repro.graph.graph import Graph
from repro.graph.properties import UNREACHED, multi_source_distances


@dataclass(frozen=True)
class RulingSetCheck:
    """Measured properties of a claimed ruling set."""

    independent_at: int  # largest α' <= alpha_limit certified (see below)
    measured_beta: int
    size: int


def _min_pairwise_distance_at_least(
    graph: Graph, members: List[int], alpha: int
) -> bool:
    """True iff all distinct members are at distance >= alpha.

    Depth-limited BFS from each member; stops early on a violation.
    """
    member_set = set(members)
    limit = alpha - 1
    for src in members:
        dist = {src: 0}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            if dist[u] == limit:
                continue
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    if v in member_set:
                        return False
                    queue.append(v)
    return True


def check_ruling_set(
    graph: Graph, members: Iterable[int], alpha: int = 2
) -> RulingSetCheck:
    """Measure a candidate set; raise only on malformed input.

    Returns the measured domination radius and whether α-independence
    holds (``independent_at`` is ``alpha`` when certified, else 1).
    """
    member_list = sorted(set(members))
    for v in member_list:
        if not 0 <= v < graph.num_vertices:
            raise VerificationError(f"member {v} out of range")
    if graph.num_vertices == 0:
        return RulingSetCheck(independent_at=alpha, measured_beta=0, size=0)
    if not member_list:
        raise VerificationError("empty set cannot rule a non-empty graph")
    independent = _min_pairwise_distance_at_least(graph, member_list, alpha)
    dist = multi_source_distances(graph, member_list)
    beta = 0
    for v, d in enumerate(dist):
        if d == UNREACHED:
            raise VerificationError(
                f"vertex {v} unreachable from the claimed ruling set"
            )
        beta = max(beta, d)
    return RulingSetCheck(
        independent_at=alpha if independent else 1,
        measured_beta=beta,
        size=len(member_list),
    )


def verify_ruling_set(
    graph: Graph,
    members: Iterable[int],
    alpha: int = 2,
    beta: int = 1,
) -> RulingSetCheck:
    """Assert that ``members`` is an ``(alpha, beta)``-ruling set.

    Raises :class:`VerificationError` with a precise reason on failure;
    returns the measured check on success (measured β may be smaller than
    claimed).

    >>> g = Graph.from_edges(3, [(0, 1), (1, 2)])
    >>> verify_ruling_set(g, [1], alpha=2, beta=1).measured_beta
    1
    """
    check = check_ruling_set(graph, members, alpha=alpha)
    if check.independent_at < alpha:
        raise VerificationError(
            f"set is not {alpha}-independent (two members within "
            f"distance {alpha - 1})"
        )
    if check.measured_beta > beta:
        raise VerificationError(
            f"domination radius {check.measured_beta} exceeds claimed "
            f"beta={beta}"
        )
    return check
