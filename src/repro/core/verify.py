"""Ground-truth verification of claimed ruling sets.

Verification is sequential and exact (BFS-based), entirely independent of
the distributed code paths it checks: α-independence via depth-limited
BFS from each member, β-domination via one multi-source BFS.  Every
algorithm's output in tests and benchmarks goes through
:func:`verify_ruling_set` — a distributed algorithm is only "done" when
the oracle agrees.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, List

from repro.errors import VerificationError
from repro.graph.graph import Graph
from repro.graph.properties import UNREACHED, multi_source_distances

__all__ = [
    "RulingSetCheck",
    "check_ruling_set",
    "verify_ruling_set",
    "verify_maximal_matching",
]


@dataclass(frozen=True)
class RulingSetCheck:
    """Measured properties of a claimed ruling set."""

    independent_at: int  # min pairwise member distance, capped at alpha
    measured_beta: int
    size: int


def _min_pairwise_distance(graph: Graph, members: List[int], cap: int) -> int:
    """Minimum distance between distinct members, capped at ``cap``.

    Depth-limited BFS from each member (depth ``cap - 1`` suffices: any
    pair further apart is certified at ``>= cap``).  Works for every α,
    not just the paper's α = 2 regime — the measured value is the
    largest α' <= cap at which the set is α'-independent.  Stops early
    once the floor (distance 1, adjacent members) is witnessed.
    """
    member_set = set(members)
    best = cap
    limit = cap - 1
    for src in members:
        dist = {src: 0}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            if dist[u] >= min(limit, best - 1):
                continue
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    if v in member_set:
                        best = min(best, dist[v])
                        if best == 1:
                            return 1
                    queue.append(v)
    return best


def check_ruling_set(
    graph: Graph, members: Iterable[int], alpha: int = 2
) -> RulingSetCheck:
    """Measure a candidate set; raise only on malformed input.

    ``independent_at`` is the true minimum pairwise member distance,
    capped at ``alpha`` (the set is α-independent iff
    ``independent_at == alpha``); ``measured_beta`` is the exact
    domination radius from one multi-source BFS.
    """
    member_list = sorted(set(members))
    for v in member_list:
        if not 0 <= v < graph.num_vertices:
            raise VerificationError(f"member {v} out of range")
    if graph.num_vertices == 0:
        return RulingSetCheck(independent_at=alpha, measured_beta=0, size=0)
    if not member_list:
        raise VerificationError("empty set cannot rule a non-empty graph")
    independent_at = _min_pairwise_distance(graph, member_list, alpha)
    dist = multi_source_distances(graph, member_list)
    beta = 0
    for v, d in enumerate(dist):
        if d == UNREACHED:
            raise VerificationError(
                f"vertex {v} unreachable from the claimed ruling set"
            )
        beta = max(beta, d)
    return RulingSetCheck(
        independent_at=independent_at,
        measured_beta=beta,
        size=len(member_list),
    )


def verify_ruling_set(
    graph: Graph,
    members: Iterable[int],
    alpha: int = 2,
    beta: int = 1,
) -> RulingSetCheck:
    """Assert that ``members`` is an ``(alpha, beta)``-ruling set.

    Raises :class:`VerificationError` with a precise reason on failure;
    returns the measured check on success (measured β may be smaller than
    claimed).

    >>> g = Graph.from_edges(3, [(0, 1), (1, 2)])
    >>> verify_ruling_set(g, [1], alpha=2, beta=1).measured_beta
    1
    """
    check = check_ruling_set(graph, members, alpha=alpha)
    if check.independent_at < alpha:
        raise VerificationError(
            f"set is not {alpha}-independent (two members within "
            f"distance {alpha - 1})"
        )
    if check.measured_beta > beta:
        raise VerificationError(
            f"domination radius {check.measured_beta} exceeds claimed "
            f"beta={beta}"
        )
    return check


# Matching verification lives next to the matching solvers; re-exported
# here so harnesses can reach every independent validator through one
# module (``repro.core.verify``) regardless of problem kind.
from repro.core.det_matching import verify_maximal_matching  # noqa: E402
